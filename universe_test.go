package piileak

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestLazyMatchesEagerByteIdentical is the tentpole pin at the study
// level: with UniverseSize zero the lazy default population (the
// ecosystem's universe) must reproduce the eager []*site.Site path byte
// for byte — leak JSON and Tables 1, 2 and 4 — at both the paper-exact
// default config and the small config. This is what guarantees the
// SiteSource redesign moved no calibrated output.
func TestLazyMatchesEagerByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"small", SmallConfig(29)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eager, err := NewStudy(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := eager.Run(ctx, WithStream(), WithWorkers(4, 4), WithSites(eager.Eco.Sites)); err != nil {
				t.Fatal(err)
			}
			lazy, err := NewStudy(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := lazy.Run(ctx, WithStream(), WithWorkers(4, 4)); err != nil {
				t.Fatal(err)
			}

			if want, got := leaksJSON(t, eager), leaksJSON(t, lazy); !bytes.Equal(want, got) {
				t.Errorf("lazy leak JSON diverges from eager (%d vs %d bytes)", len(got), len(want))
			}
			if got, want := lazy.Analysis.Headline(), eager.Analysis.Headline(); got != want {
				t.Errorf("headline diverges:\n%+v\n%+v", got, want)
			}
			if !reflect.DeepEqual(lazy.Analysis.ByMethod(), eager.Analysis.ByMethod()) {
				t.Error("Table 1a diverges")
			}
			if !reflect.DeepEqual(lazy.Analysis.ByEncoding(), eager.Analysis.ByEncoding()) {
				t.Error("Table 1b diverges")
			}
			wantT2, err := eager.Tracking()
			if err != nil {
				t.Fatal(err)
			}
			gotT2, err := lazy.Tracking()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotT2, wantT2) {
				t.Error("Table 2 diverges")
			}
			wantT4, err := eager.EvaluateBlocklists()
			if err != nil {
				t.Fatal(err)
			}
			gotT4, err := lazy.EvaluateBlocklists()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotT4, wantT4) {
				t.Error("Table 4 diverges")
			}
		})
	}
}

// TestUniverseTailIsStudyNeutral: extending the universe adds crawled
// sites but moves no calibrated number — the leak bytes, sender set and
// every leak-derived table stay identical to the core-only run, because
// tail sites never leak and never mail the persona.
func TestUniverseTailIsStudyNeutral(t *testing.T) {
	ctx := context.Background()
	core, err := NewStudy(SmallConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(ctx, WithStream(), WithWorkers(4, 4)); err != nil {
		t.Fatal(err)
	}
	big, err := NewStudy(SmallConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Run(ctx, WithStream(), WithWorkers(4, 4), WithUniverse(5000)); err != nil {
		t.Fatal(err)
	}
	if want, got := leaksJSON(t, core), leaksJSON(t, big); !bytes.Equal(want, got) {
		t.Errorf("extended universe moved the leak bytes (%d vs %d)", len(got), len(want))
	}
	if got, want := big.Analysis.Headline().Senders, core.Analysis.Headline().Senders; got != want {
		t.Errorf("extended universe moved the sender count: %d vs %d", got, want)
	}
	if got := len(big.Dataset.Crawls); got != 5000 {
		t.Errorf("extended run crawled %d sites, want 5000", got)
	}
}

// TestWithUniverseValidation: a universe below the study core and a
// WithUniverse+WithSource contradiction both surface as Run errors.
func TestWithUniverseValidation(t *testing.T) {
	s, err := NewStudy(SmallConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), WithUniverse(5)); err == nil {
		t.Error("Run accepted a universe below the study core")
	}
	if err := s.Run(context.Background(), WithUniverse(5000), WithSource(s.Eco.Universe())); err == nil {
		t.Error("Run accepted WithUniverse and WithSource together")
	}
}
