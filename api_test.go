package piileak

import (
	"bytes"
	"context"
	"testing"
	"time"

	"piileak/internal/crawler"
	"piileak/internal/faultsim"
	"piileak/internal/obs"
	"piileak/internal/pipeline"
	"piileak/internal/resilience"
	"piileak/internal/site"
)

// TestRunOptionDefaults pins every RunOption's default against the
// study configuration: the option set a bare Run(ctx) executes under
// must be exactly the batch-compatible settings DefaultConfig
// describes, and each option must move exactly its own knob.
func TestRunOptionDefaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 3
	s := &Study{Config: cfg}

	o := obs.NewRun(nil)
	q, err := crawler.NewQuarantine(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultsim.New(faultsim.Config{Seed: 5, Rate: 0.5})
	pol := resilience.Policy{MaxAttempts: 7}

	for _, tc := range []struct {
		name       string
		opt        RunOption
		def, after any
		get        func(runConfig) any
	}{
		{"WithStream", WithStream(), false, true,
			func(rc runConfig) any { return rc.stream }},
		{"WithWorkers/crawl", WithWorkers(5, 6), cfg.Workers, 5,
			func(rc runConfig) any { return rc.opts.Workers }},
		{"WithWorkers/detect", WithWorkers(5, 6), cfg.Workers, 6,
			func(rc runConfig) any { return rc.opts.DetectWorkers }},
		{"WithBuffer", WithBuffer(4), 0, 4,
			func(rc runConfig) any { return rc.opts.Buffer }},
		{"WithCheckpoint", WithCheckpoint("ck.jsonl"), "", "ck.jsonl",
			func(rc runConfig) any { return rc.opts.CheckpointPath }},
		{"WithResume", WithResume(nil), false, true,
			func(rc runConfig) any { return rc.opts.Resume }},
		{"WithObserver", WithObserver(o), (*obs.Run)(nil), o,
			func(rc runConfig) any { return rc.opts.Obs }},
		{"WithSiteTimeout", WithSiteTimeout(time.Minute), time.Duration(0), time.Minute,
			func(rc runConfig) any { return rc.opts.SiteTimeout }},
		{"WithQuarantine", WithQuarantine(q), (*crawler.Quarantine)(nil), q,
			func(rc runConfig) any { return rc.opts.Quarantine }},
		{"WithSites", WithSites(nil), 0, 0,
			func(rc runConfig) any { return len(rc.opts.Sites) }},
		{"WithSource", WithSource(site.Slice(nil)), false, true,
			func(rc runConfig) any { return rc.opts.Source != nil }},
		{"WithUniverse", WithUniverse(100_000), 0, 100_000,
			func(rc runConfig) any { return rc.universe }},
		{"WithFaults", WithFaults(inj), (*faultsim.Injector)(nil), inj,
			func(rc runConfig) any { return rc.opts.Faults }},
		{"WithRetryPolicy", WithRetryPolicy(pol), resilience.Policy{}, pol,
			func(rc runConfig) any { return rc.opts.Policy }},
		{"WithProgress", WithProgress(func(Event) {}), false, true,
			func(rc runConfig) any { return rc.opts.Progress != nil }},
	} {
		rc := s.defaultRunConfig()
		if got := tc.get(rc); got != tc.def {
			t.Errorf("%s: default = %v, want %v", tc.name, got, tc.def)
		}
		tc.opt(&rc)
		if got := tc.get(rc); got != tc.after {
			t.Errorf("%s: after option = %v, want %v", tc.name, got, tc.after)
		}
	}

	// The remaining defaults a bare Run(ctx) executes under.
	rc := s.defaultRunConfig()
	if rc.stream {
		t.Error("default run is streamed, want batch")
	}
	if rc.opts.OnResume != nil || rc.opts.Resume {
		t.Error("default run resumes")
	}
	if rc.opts.Obs != nil {
		t.Error("default run carries an observer")
	}
}

// TestDeprecatedWrappersMatchRun pins the compatibility contract of
// the old entry points: RunContext and RunStream(Context) are thin
// wrappers over Run(ctx, ...) and must produce byte-identical leak
// output and identical headline numbers.
func TestDeprecatedWrappersMatchRun(t *testing.T) {
	const seed = 41
	ctx := context.Background()

	run := func(f func(*Study) error) *Study {
		t.Helper()
		s, err := NewStudy(SmallConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := f(s); err != nil {
			t.Fatal(err)
		}
		return s
	}

	newBatch := run(func(s *Study) error { return s.Run(ctx) })
	oldBatch := run(func(s *Study) error { return s.RunContext(ctx) })
	newStream := run(func(s *Study) error { return s.Run(ctx, WithStream(), WithWorkers(3, 2)) })
	oldStream := run(func(s *Study) error {
		return s.RunStream(pipeline.Options{Options: crawler.Options{Workers: 3}, DetectWorkers: 2})
	})
	oldStreamCtx := run(func(s *Study) error {
		return s.RunStreamContext(ctx, pipeline.Options{Options: crawler.Options{Workers: 3}, DetectWorkers: 2})
	})

	want := leaksJSON(t, newBatch)
	for name, s := range map[string]*Study{
		"RunContext":       oldBatch,
		"RunStream":        oldStream,
		"RunStreamContext": oldStreamCtx,
		"Run+WithStream":   newStream,
	} {
		if got := leaksJSON(t, s); !bytes.Equal(want, got) {
			t.Errorf("%s: leak JSON diverges from Run(ctx) (%d vs %d bytes)", name, len(got), len(want))
		}
		if got, want := s.Analysis.Headline(), newBatch.Analysis.Headline(); got != want {
			t.Errorf("%s: headline diverges:\n%+v\n%+v", name, got, want)
		}
	}
	if newStream.Streamed != oldStream.Streamed {
		t.Error("streamed flag diverges between old and new stream entry points")
	}
}

// TestTelemetryIsSideChannel pins the observability layer's core
// guarantee from two directions: attaching an observer never moves an
// output byte (fault-free and under fault injection), and two
// identically-seeded observed runs export byte-identical metrics and
// trace files.
func TestTelemetryIsSideChannel(t *testing.T) {
	ctx := context.Background()
	for _, faulty := range []bool{false, true} {
		name := "fault-free"
		if faulty {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			newStudy := func() *Study {
				cfg := SmallConfig(23)
				if faulty {
					cfg.Ecosystem.Faults = &faultsim.Config{Seed: 23, Rate: 0.3}
				}
				s, err := NewStudy(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}

			plain := newStudy()
			if err := plain.Run(ctx); err != nil {
				t.Fatal(err)
			}
			o1, o2 := obs.NewRun(nil), obs.NewRun(nil)
			obs1 := newStudy()
			if err := obs1.Run(ctx, WithObserver(o1), WithWorkers(3, 2)); err != nil {
				t.Fatal(err)
			}
			obs2 := newStudy()
			if err := obs2.Run(ctx, WithObserver(o2), WithWorkers(3, 2)); err != nil {
				t.Fatal(err)
			}

			want := leaksJSON(t, plain)
			for name, s := range map[string]*Study{"observed-1": obs1, "observed-2": obs2} {
				if got := leaksJSON(t, s); !bytes.Equal(want, got) {
					t.Errorf("%s: observer moved the leak bytes (%d vs %d)", name, len(got), len(want))
				}
			}

			var m1, m2, t1, t2 bytes.Buffer
			if err := o1.WriteMetrics(&m1); err != nil {
				t.Fatal(err)
			}
			if err := o2.WriteMetrics(&m2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
				t.Error("identically-seeded runs exported different metrics bytes")
			}
			if err := o1.WriteTrace(&t1); err != nil {
				t.Fatal(err)
			}
			if err := o2.WriteTrace(&t2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
				t.Error("identically-seeded runs exported different trace bytes")
			}

			// The manifest's pipeline fold must agree with the study's own
			// counters — telemetry mirrors the run, it does not invent one.
			man := o1.Manifest()
			if man.Pipeline.Leaks != int64(len(obs1.Leaks)) {
				t.Errorf("manifest leaks = %d, study detected %d", man.Pipeline.Leaks, len(obs1.Leaks))
			}
			if man.Pipeline.CrawledSites != int64(len(obs1.Eco.Sites)) {
				t.Errorf("manifest crawled sites = %d, ecosystem has %d", man.Pipeline.CrawledSites, len(obs1.Eco.Sites))
			}
			if man.Run.EcoSeed != 23 || man.Run.Streamed {
				t.Errorf("manifest run info = %+v, want seed 23, batch", man.Run)
			}
			if faulty {
				if man.Run.FaultSeed != 23 {
					t.Errorf("manifest fault seed = %d, want 23", man.Run.FaultSeed)
				}
				total := int64(0)
				for _, n := range man.Faults {
					total += n
				}
				if total == 0 {
					t.Error("faulty run injected no faults into the manifest")
				}
				if man.Resilience.Attempts == 0 {
					t.Error("faulty run recorded no fetch attempts")
				}
			}
		})
	}
}
