package piileak_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The piiserve end-to-end tests drive the built binary over real HTTP
// and real signals, pinning the service's three headline contracts:
//
//   - byte-identity across the API boundary: a job's served leaks match
//     `piicrawl -stream` for the same spec, byte for byte;
//   - crash-only recovery: kill -9 mid-study, restart, and the job
//     resumes from its checkpoint to the same bytes;
//   - graceful drain: SIGTERM mid-study exits 0 with the job durably
//     re-queued, and a restart completes it;
//   - admission control: a saturated queue refuses with 429 +
//     Retry-After instead of buffering without bound.

// buildServeBinaries compiles piiserve and piicrawl into dir.
func buildServeBinaries(t *testing.T, dir string) (serveBin, crawlBin string) {
	t.Helper()
	serveBin = filepath.Join(dir, "piiserve")
	crawlBin = filepath.Join(dir, "piicrawl")
	for bin, pkg := range map[string]string{serveBin: "./cmd/piiserve", crawlBin: "./cmd/piicrawl"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return serveBin, crawlBin
}

// referenceLeaks runs piicrawl -stream for the e2e spec and returns the
// leak bytes the service must reproduce.
func referenceLeaks(t *testing.T, crawlBin, dir string) []byte {
	t.Helper()
	ref := filepath.Join(dir, "ref-leaks.json")
	if out, err := exec.Command(crawlBin, "-small", "-seed", "7", "-stream", "-o", ref).CombinedOutput(); err != nil {
		t.Fatalf("reference piicrawl run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

var listenRe = regexp.MustCompile(`serving on http://([^ ]+)`)

// serverProc is one running piiserve process under test.
type serverProc struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *lockedBuffer
	done   chan error
}

type lockedBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newLockedBuffer() *lockedBuffer {
	b := &lockedBuffer{mu: make(chan struct{}, 1)}
	b.mu <- struct{}{}
	return b
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.String()
}

// startServer launches piiserve on an ephemeral port and waits for its
// listen line; extra args append to the baseline flag set.
func startServer(t *testing.T, bin, state string, extra ...string) *serverProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-state", state}, extra...)
	cmd := exec.Command(bin, args...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	p := &serverProc{cmd: cmd, stderr: newLockedBuffer(), done: make(chan error, 1)}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(p.stderr, line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { p.done <- cmd.Wait() }()
	select {
	case addr := <-addrc:
		p.base = "http://" + addr
	case err := <-p.done:
		t.Fatalf("piiserve exited before listening: %v\n%s", err, p.stderr.String())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("piiserve never reported its listen address\n%s", p.stderr.String())
	}
	return p
}

func (p *serverProc) kill() {
	p.cmd.Process.Kill()
	<-p.done
}

// submitJob posts the e2e spec and returns the job ID.
func submitJob(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || view.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, view)
	}
	return view.ID
}

// waitCheckpoint blocks until the job's crawl checkpoint holds at least
// n lines — the mid-study moment the crash and drain arms need — or the
// job is already done (fast machines), returning false in that case.
func waitCheckpoint(t *testing.T, base, state, id string, n int) bool {
	t.Helper()
	ckpt := filepath.Join(state, "jobs", id, "checkpoint.jsonl")
	for deadline := time.Now().Add(60 * time.Second); time.Now().Before(deadline); {
		if data, err := os.ReadFile(ckpt); err == nil && bytes.Count(data, []byte("\n")) >= n {
			return true
		}
		if jobState(t, base, id) == "done" {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s checkpoint never reached %d lines", id, n)
	return false
}

func jobState(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return "" // the server may be mid-restart
	}
	defer resp.Body.Close()
	var view struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return ""
	}
	if view.State == "failed" {
		t.Fatalf("job %s failed: %s", id, view.Error)
	}
	return view.State
}

// waitDone polls the job until it is done.
func waitDone(t *testing.T, base, id string) {
	t.Helper()
	for deadline := time.Now().Add(120 * time.Second); time.Now().Before(deadline); {
		if jobState(t, base, id) == "done" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never completed", id)
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

const e2eSpec = `{"seed":7,"small":true}`

// TestPiiserveKill9RestartByteIdentity is the acceptance pin: kill -9
// the service mid-study, restart it over the same state directory, and
// the recovered job completes to leak bytes identical to piicrawl's.
func TestPiiserveKill9RestartByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	dir := t.TempDir()
	serveBin, crawlBin := buildServeBinaries(t, dir)
	want := referenceLeaks(t, crawlBin, dir)

	state := filepath.Join(dir, "state")
	p := startServer(t, serveBin, state)
	id := submitJob(t, p.base, e2eSpec)
	midStudy := waitCheckpoint(t, p.base, state, id, 3)
	// SIGKILL: no drain, no checkpoint flush beyond what is already
	// fsynced. This is the crash-only worst case.
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p.done
	if !midStudy {
		t.Log("study finished before the kill; recovery covers the full checkpoint")
	}

	p2 := startServer(t, serveBin, state)
	defer p2.kill()
	waitDone(t, p2.base, id)
	if midStudy && !strings.Contains(p2.stderr.String(), "recovered") {
		t.Errorf("restarted server did not report recovery:\n%s", p2.stderr.String())
	}
	got := fetch(t, p2.base+"/v1/jobs/"+id+"/leaks")
	if !bytes.Equal(got, want) {
		t.Errorf("post-crash leaks differ from piicrawl -stream (%d vs %d bytes)", len(got), len(want))
	}
	// The tables must be served and non-empty; their byte-identity to
	// the library renderers is pinned in internal/serve's tests.
	for _, n := range []string{"1", "2", "4"} {
		if len(fetch(t, p2.base+"/v1/jobs/"+id+"/tables/"+n)) == 0 {
			t.Errorf("table %s is empty", n)
		}
	}
}

// TestPiiserveSIGTERMDrainsAndResumes pins the graceful half: SIGTERM
// mid-study exits 0 with the job re-queued, and a restarted server
// completes it to the same bytes.
func TestPiiserveSIGTERMDrainsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	dir := t.TempDir()
	serveBin, crawlBin := buildServeBinaries(t, dir)
	want := referenceLeaks(t, crawlBin, dir)

	state := filepath.Join(dir, "state")
	p := startServer(t, serveBin, state)
	id := submitJob(t, p.base, e2eSpec)
	midStudy := waitCheckpoint(t, p.base, state, id, 3)
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-p.done; err != nil {
		t.Fatalf("drained piiserve exited non-zero: %v\n%s", err, p.stderr.String())
	}
	if midStudy && !strings.Contains(p.stderr.String(), "draining") {
		t.Errorf("drain message missing from stderr:\n%s", p.stderr.String())
	}

	p2 := startServer(t, serveBin, state)
	defer p2.kill()
	waitDone(t, p2.base, id)
	got := fetch(t, p2.base+"/v1/jobs/"+id+"/leaks")
	if !bytes.Equal(got, want) {
		t.Errorf("post-drain leaks differ from piicrawl -stream (%d vs %d bytes)", len(got), len(want))
	}
}

// TestPiiserveSaturationSheds429 pins admission control on the real
// binary: with one slot and a one-deep queue, a burst of submissions is
// refused with 429 + Retry-After.
func TestPiiserveSaturationSheds429(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	serveBin, _ := buildServeBinaries(t, dir)
	p := startServer(t, serveBin, filepath.Join(dir, "state"), "-slots", "1", "-queue-depth", "1")
	defer p.kill()

	saw429 := false
	for i := 0; i < 4 && !saw429; i++ {
		resp, err := http.Post(p.base+"/v1/jobs", "application/json", strings.NewReader(e2eSpec))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
				t.Errorf("429 Retry-After = %q, want a positive whole-seconds hint", ra)
			}
		} else if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("four burst submissions against slots=1 queue-depth=1 never saturated")
	}
}
