package piileak

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"piileak/internal/core"
	"piileak/internal/obs"
	"piileak/internal/resilience"
	"piileak/internal/shard"
)

// TestEngineMatchesLegacyDetectorAcrossModes anchors the two-phase
// detection engine to the single-phase core.Detector at the study level:
// for several seeds, the leaks a full run produces through the Engine
// (batch, streamed-parallel, and sharded) are byte-identical to
// re-detecting the batch run's dataset with a freshly built legacy
// detector over the same candidate set and CNAME zone. This is the
// refactor's ground truth — if the Engine's prefilter, memoization, or
// channel automata ever drop or reorder a leak, this diff catches it
// regardless of which runtime mode surfaced it.
func TestEngineMatchesLegacyDetectorAcrossModes(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []uint64{11, 37, 53} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			batch, err := NewStudy(SmallConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := batch.Run(ctx); err != nil {
				t.Fatal(err)
			}

			// The legacy anchor: one Detector, the old single-phase scan,
			// over the exact dataset the batch run crawled.
			legacy := core.NewDetector(batch.Candidates, batch.Engine.CNAME())
			var want []core.Leak
			for _, c := range batch.Dataset.Successes() {
				want = append(want, legacy.DetectSite(c.Domain, c.Records)...)
			}
			if len(want) == 0 {
				t.Fatal("legacy detector found no leaks; differential is vacuous")
			}
			if len(batch.Leaks) != len(want) || !reflect.DeepEqual(want, batch.Leaks) {
				t.Fatalf("batch engine output diverges from legacy detector: %d vs %d leaks",
					len(batch.Leaks), len(want))
			}
			ref := leaksJSON(t, batch)

			// Streamed-parallel: per-worker scanners over the shared engine.
			par, err := NewStudy(SmallConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := par.Run(ctx, WithStream(), WithWorkers(4, 4), WithObserver(obs.NewRun(nil))); err != nil {
				t.Fatal(err)
			}
			if got := leaksJSON(t, par); !bytes.Equal(ref, got) {
				t.Errorf("streamed-parallel leak bytes diverge from legacy-anchored batch (%d vs %d bytes)",
					len(got), len(ref))
			}

			// Sharded: each shard builds its own engine from the same
			// config; the merged output must still match the anchor.
			sh, err := NewStudy(SmallConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sh.RunSharded(ctx, shard.Options{
				Shards:        2,
				Dir:           t.TempDir(),
				Workers:       2,
				DetectWorkers: 2,
				Clock:         resilience.NewVirtualClock(),
				Obs:           obs.NewRun(nil),
				Fresh:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Partial {
				t.Fatalf("sharded run degraded: %+v", rep)
			}
			if got := leaksJSON(t, sh); !bytes.Equal(ref, got) {
				t.Errorf("sharded leak bytes diverge from legacy-anchored batch (%d vs %d bytes)",
					len(got), len(ref))
			}
		})
	}
}
