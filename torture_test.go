package piileak

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/pii"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// The crash-consistency torture harness. The parent test re-execs this
// test binary as a checkpointing crawl subprocess and kills it — via
// os.Exit at a seeded random checkpoint append, before, between, or
// after the two halves of a record write — then resumes, repeatedly,
// until a run survives to completion. The surviving dataset, its leak
// list and Tables 1/2/4 must be identical to an uninterrupted run's: a
// kill at any point may cost in-flight work, never correctness.

const (
	tortureSeed     = 97
	tortureExitCode = 137 // the child's simulated SIGKILL
)

func tortureEcosystem() *webgen.Ecosystem {
	cfg := webgen.SmallConfig(tortureSeed)
	cfg.Faults = &faultsim.Config{Rate: 0.3}
	return webgen.MustGenerate(cfg)
}

// tortureTables runs the detection pipeline and the paper's table
// computations over a dataset, the way the study does.
func tortureTables(t *testing.T, ds *crawler.Dataset) ([]core.Leak, *core.Analysis, *tracking.Classification, *countermeasure.Table4) {
	t.Helper()
	cands, err := pii.BuildCandidates(ds.Persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(cands, dnssim.NewClassifier(ds.Zone()))
	var leaks []core.Leak
	successes := ds.Successes()
	for _, c := range successes {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}
	analysis := core.Analyze(leaks, len(successes))
	cls := tracking.Classify(leaks)
	eco := tortureEcosystem()
	lists, err := countermeasure.ParseLists(eco.EasyListText, eco.EasyPrivacyText)
	if err != nil {
		t.Fatal(err)
	}
	var trackers []string
	for _, tr := range cls.Trackers {
		trackers = append(trackers, tr.Receiver)
	}
	return leaks, analysis, cls, countermeasure.EvaluateBlocklists(leaks, ds, lists, trackers)
}

// TestTortureChild is the subprocess body: a resumable checkpointing
// crawl that may be configured to kill itself partway through a
// checkpoint append. It only runs when re-exec'd by the torture parent.
func TestTortureChild(t *testing.T) {
	if os.Getenv("PIILEAK_TORTURE_CHILD") != "1" {
		t.Skip("torture child: only runs re-exec'd by TestTortureCrashConsistency")
	}
	killAt, _ := strconv.Atoi(os.Getenv("PIILEAK_TORTURE_KILL_N"))
	killEvent := os.Getenv("PIILEAK_TORTURE_KILL_EVENT")
	if killAt > 0 {
		crawler.CheckpointFailpoint = func(event string, appends int) {
			if event == killEvent && appends >= killAt {
				os.Exit(tortureExitCode)
			}
		}
	}
	ds, err := crawler.ResumeCrawl(context.Background(), tortureEcosystem(), browser.Firefox88(),
		os.Getenv("PIILEAK_TORTURE_CKPT"), crawler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteJSONFile(os.Getenv("PIILEAK_TORTURE_OUT")); err != nil {
		t.Fatal(err)
	}
}

// runTortureChild re-execs the test binary as a torture child and
// returns its exit code (0 = survived, tortureExitCode = killed at the
// configured failpoint; anything else fails the test).
func runTortureChild(t *testing.T, ckpt, out string, killAt int, killEvent string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestTortureChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"PIILEAK_TORTURE_CHILD=1",
		"PIILEAK_TORTURE_CKPT="+ckpt,
		"PIILEAK_TORTURE_OUT="+out,
		fmt.Sprintf("PIILEAK_TORTURE_KILL_N=%d", killAt),
		"PIILEAK_TORTURE_KILL_EVENT="+killEvent,
	)
	output, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == tortureExitCode {
		return tortureExitCode
	}
	t.Fatalf("torture child (kill %s@%d): %v\n%s", killEvent, killAt, err, output)
	return -1
}

// TestTortureCrashConsistency kills a checkpointing crawl subprocess at
// seeded random points — including mid-record, leaving a genuinely torn
// tail — resumes it until it completes, and asserts the result is
// indistinguishable from a run that was never interrupted.
func TestTortureCrashConsistency(t *testing.T) {
	eco := tortureEcosystem()
	ref, err := crawler.CrawlOpts(context.Background(), eco, browser.Firefox88(), crawler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	if err := ref.WriteJSON(&refBuf); err != nil {
		t.Fatal(err)
	}
	refLeaks, refT1, refT2, refT4 := tortureTables(t, ref)

	rounds, maxKills := 3, 4
	if testing.Short() {
		rounds, maxKills = 1, 3
	}
	rng := rand.New(rand.NewSource(911))
	events := []string{"pre", "mid", "post"}

	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		ckpt := filepath.Join(dir, "ckpt.jsonl")
		out := filepath.Join(dir, "ds.json")

		kills := 0
		finished := false
		for k := 0; k < maxKills && !finished; k++ {
			killAt := 1 + rng.Intn(12)
			event := events[rng.Intn(len(events))]
			if runTortureChild(t, ckpt, out, killAt, event) == 0 {
				finished = true // completed before reaching the failpoint
			} else {
				kills++
			}
		}
		if !finished && runTortureChild(t, ckpt, out, 0, "") != 0 {
			t.Fatalf("round %d: uninterrupted resume did not complete", round)
		}
		t.Logf("round %d: survived %d kills", round, kills)

		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBuf.Bytes(), got) {
			t.Fatalf("round %d: dataset after %d kills is not byte-identical to the uninterrupted run (%d vs %d bytes)",
				round, kills, len(got), refBuf.Len())
		}
		ds, err := crawler.ReadJSONFile(out)
		if err != nil {
			t.Fatal(err)
		}
		leaks, t1, t2, t4 := tortureTables(t, ds)
		if !reflect.DeepEqual(leaks, refLeaks) {
			t.Errorf("round %d: leaks diverge (%d vs %d)", round, len(leaks), len(refLeaks))
		}
		if !reflect.DeepEqual(t1, refT1) {
			t.Errorf("round %d: Table 1 analysis diverges", round)
		}
		if !reflect.DeepEqual(t2, refT2) {
			t.Errorf("round %d: Table 2 classification diverges", round)
		}
		if !reflect.DeepEqual(t4, refT4) {
			t.Errorf("round %d: Table 4 blocklist evaluation diverges", round)
		}
	}
}
