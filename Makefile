GO ?= go

.PHONY: all build test vet fmt lint race bench fuzz torture torture-shard check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Repo-specific determinism, PII-hygiene and concurrency-safety
# analyzers (internal/analysis, DESIGN.md §8, §13): closecheck, ctxflow,
# detrand, goroleak, lockdiscipline, maporder, obskey, piilog. Runs the
# parallel DAG driver with the content-keyed cache, so a warm `make
# lint` only re-analyzes packages whose source (or whose dependencies'
# facts) changed. Zero findings or the gate fails with file:line
# diagnostics.
lint:
	$(GO) run ./cmd/piilint -workers 8 -cache .lintcache ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runs the full suite, then records the streaming-pipeline comparison
# (batch vs streamed at 1/4/8 workers) as test2json event lines in
# BENCH_pipeline.json — the repo's perf trajectory file.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...
	$(GO) test -json -bench '^BenchmarkPipeline$$' -benchmem -run '^$$' . > BENCH_pipeline.json
	$(GO) test -json -bench '^BenchmarkPiilint$$' -benchmem -run '^$$' ./internal/analysis/suite > BENCH_lint.json
	$(GO) test -json -bench '^BenchmarkWatchdog$$' -benchmem -run '^$$' . > BENCH_ctx.json
	$(GO) test -json -bench '^BenchmarkObsOverhead$$' -benchmem -run '^$$' . > BENCH_obs.json
	$(GO) test -json -bench '^BenchmarkShardMerge$$' -benchmem -run '^$$' . > BENCH_shard.json
	$(GO) test -json -bench '^BenchmarkUniverse$$' -benchmem -run '^$$' ./internal/webgen/ > BENCH_universe.json
	$(GO) test -json -bench '^Benchmark(Scan|DetectSite)$$' -benchmem -run '^$$' ./internal/detect/ > BENCH_detect.json

# Short fuzz smoke for the dataset decoder hardening and the sharded
# runtime's plan/result readers.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadJSON -fuzztime 10s ./internal/crawler/
	$(GO) test -run '^$$' -fuzz FuzzParsePlan -fuzztime 10s ./internal/shard/
	$(GO) test -run '^$$' -fuzz FuzzParseResult -fuzztime 10s ./internal/shard/

# Crash-consistency torture: re-execs a checkpointing crawl subprocess,
# kills it at seeded random points (including mid-record), resumes, and
# asserts the final dataset, leaks and Tables 1/2/4 are byte-identical
# to an uninterrupted run. -short trims the kill rounds for CI.
torture:
	$(GO) test -short -timeout 300s -count=1 -run '^TestTortureCrashConsistency$$' -v .

# Sharded torture: same kill machinery, but each victim is a re-execed
# shard worker of a K-way split. Shards are killed mid-checkpoint-append,
# resumed until they complete, then the digest-verified merge must be
# byte-identical to an uninterrupted unsharded run (DESIGN.md §11).
torture-shard:
	$(GO) test -short -timeout 300s -count=1 -run '^TestTortureShardedCrashConsistency$$' -v .

# The gate every change must pass.
check: fmt vet lint build race
