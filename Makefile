GO ?= go

.PHONY: all build test vet race bench fuzz check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Short fuzz smoke for the dataset decoder hardening.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadJSON -fuzztime 10s ./internal/crawler/

# The gate every change must pass.
check: vet build race
