package piileak

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/obs"
)

func leaksJSON(t *testing.T, s *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteLeaksJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamModesByteIdentical is the pipeline's hard invariant: batch,
// streamed-serial, streamed-parallel and checkpoint-resumed runs must
// produce byte-identical leak output and identical Table 1/2/4 numbers,
// regardless of worker counts or completion order. The streamed arms
// run with an active observer — telemetry is a side channel and must
// not move a single output byte.
func TestStreamModesByteIdentical(t *testing.T) {
	const seed = 37
	ctx := context.Background()

	newStudy := func() *Study {
		s, err := NewStudy(SmallConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	batch := newStudy()
	if err := batch.Run(ctx); err != nil {
		t.Fatal(err)
	}

	serial := newStudy()
	if err := serial.Run(ctx, WithStream(), WithObserver(obs.NewRun(nil))); err != nil {
		t.Fatal(err)
	}

	parallel := newStudy()
	if err := parallel.Run(ctx, WithStream(), WithWorkers(4, 4), WithBuffer(2), WithObserver(obs.NewRun(nil))); err != nil {
		t.Fatal(err)
	}

	// Resumed: pre-crawl half the sites into a checkpoint, then stream
	// the study with Resume — the checkpointed half is emitted from the
	// file, the rest is crawled live.
	resumed := newStudy()
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	half := resumed.Eco.Sites[:len(resumed.Eco.Sites)/2]
	if _, err := crawler.CrawlOpts(context.Background(), resumed.Eco, resumed.Config.Browser, crawler.Options{
		Sites: half, CheckpointPath: ckpt,
	}); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(ctx, WithStream(), WithWorkers(3, 2),
		WithCheckpoint(ckpt), WithResume(nil), WithObserver(obs.NewRun(nil))); err != nil {
		t.Fatal(err)
	}

	want := leaksJSON(t, batch)
	wantT2, err := batch.Tracking()
	if err != nil {
		t.Fatal(err)
	}
	wantT4, err := batch.EvaluateBlocklists()
	if err != nil {
		t.Fatal(err)
	}

	for name, s := range map[string]*Study{
		"streamed-serial":   serial,
		"streamed-parallel": parallel,
		"resumed":           resumed,
	} {
		if got := leaksJSON(t, s); !bytes.Equal(want, got) {
			t.Errorf("%s: leak JSON diverges from batch (%d vs %d bytes)", name, len(got), len(want))
		}
		if got, want := s.Analysis.Headline(), batch.Analysis.Headline(); got != want {
			t.Errorf("%s: headline diverges:\n%+v\n%+v", name, got, want)
		}
		if !reflect.DeepEqual(s.Analysis.ByMethod(), batch.Analysis.ByMethod()) {
			t.Errorf("%s: Table 1a diverges", name)
		}
		if !reflect.DeepEqual(s.Analysis.ByEncoding(), batch.Analysis.ByEncoding()) {
			t.Errorf("%s: Table 1b diverges", name)
		}
		cls, err := s.Tracking()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cls, wantT2) {
			t.Errorf("%s: Table 2 diverges", name)
		}
		t4, err := s.EvaluateBlocklists()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t4, wantT4) {
			t.Errorf("%s: Table 4 diverges", name)
		}
	}
}

// TestStreamedStudyThin pins the streamed study's released-captures
// contract: the dataset survives without records, record counts come
// from the store, and capture-rescanning experiments refuse to run
// while capture-free ones still work.
func TestStreamedStudyThin(t *testing.T) {
	s, err := NewStudy(SmallConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), WithStream(), WithWorkers(2, 2)); err != nil {
		t.Fatal(err)
	}
	if !s.Streamed {
		t.Fatal("study not marked Streamed")
	}
	for i := range s.Dataset.Crawls {
		if len(s.Dataset.Crawls[i].Records) != 0 {
			t.Fatalf("site %s retained %d records after streaming",
				s.Dataset.Crawls[i].Domain, len(s.Dataset.Crawls[i].Records))
		}
	}
	if s.Dataset.TotalRecords() != 0 {
		t.Errorf("thin dataset reports %d records", s.Dataset.TotalRecords())
	}
	if s.TotalRecords() == 0 {
		t.Error("study lost the pre-release record count")
	}
	for _, id := range []string{"A1", "A2", "A3", "A5"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		if !e.NeedsCaptures {
			t.Errorf("%s not marked NeedsCaptures", id)
		}
		if _, err := e.Run(s); err == nil {
			t.Errorf("%s ran on a streamed study despite released captures", id)
		}
	}
	for _, id := range []string{"E0", "E1", "E6", "E7", "E8", "E10"} {
		e, _ := ExperimentByID(id)
		if out, err := e.Run(s); err != nil {
			t.Errorf("%s failed on streamed study: %v", id, err)
		} else if len(out) < 40 {
			t.Errorf("%s output suspiciously short", id)
		}
	}
}

// TestPolicyAuditZeroLeaks: a completed study with zero leaks must
// produce an empty (non-panicking) Table 3 and an empty census.
func TestPolicyAuditZeroLeaks(t *testing.T) {
	s, err := NewStudy(SmallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-populate a completed zero-leak study (the analysis exists,
	// no sender ever leaked).
	s.Analysis = core.Analyze(nil, 0)
	tbl, err := s.PolicyAudit()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Total != 0 || tbl.NotSpecific != 0 || tbl.Specific != 0 ||
		tbl.NoDescription != 0 || tbl.ExplicitlyNot != 0 {
		t.Errorf("zero-leak audit = %+v, want all zero", tbl)
	}
	cls, err := s.Tracking()
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Providers) != 0 || cls.MultiSenderID != 0 || cls.SingleSender != 0 {
		t.Errorf("zero-leak census = %+v, want empty", cls)
	}
}

// TestPolicyAuditCNAMECloaked: a leak to a CNAME-cloaked receiver is
// the first-party site's disclosure obligation, so the audit counts the
// sender under its own domain — the cloaked tracker never appears in
// the audited population.
func TestPolicyAuditCNAMECloaked(t *testing.T) {
	s, err := NewStudy(SmallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	sender := s.Eco.Sites[0]
	s.Leaks = []core.Leak{{
		Site:     sender.Domain,
		Receiver: "omtrdc.net",
		Cloaked:  true,
	}}
	s.Analysis = core.Analyze(s.Leaks, 1)
	tbl, err := s.PolicyAudit()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Total != 1 {
		t.Fatalf("audited sites = %d, want 1 (the cloaked leak's first-party sender)", tbl.Total)
	}
	if got := tbl.NotSpecific + tbl.Specific + tbl.NoDescription + tbl.ExplicitlyNot; got != 1 {
		t.Errorf("audit categories sum to %d, want 1", got)
	}
}

// TestEvaluateBrowsersBeforeRun pins the documented crawl-independence
// of the §7.1 evaluation: it re-crawls sender sites itself, so calling
// it before Run is valid and returns the full profile set.
func TestEvaluateBrowsersBeforeRun(t *testing.T) {
	s, err := NewStudy(SmallConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	if s.Analysis != nil {
		t.Fatal("fixture unexpectedly ran")
	}
	results := s.EvaluateBrowsers()
	if len(results) != 6 { // baseline + 5 profiles
		t.Fatalf("results = %d, want 6", len(results))
	}
	if results[0].Senders == 0 {
		t.Error("baseline saw no senders")
	}
}
