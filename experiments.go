package piileak

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/detect"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/report"
)

// Experiment regenerates one of the paper's tables or figures (or one of
// this reproduction's ablations) from a completed Study.
type Experiment struct {
	// ID is the DESIGN.md experiment identifier (E0..E10, A1..A5,
	// X1..X4).
	ID string
	// Title names the paper artifact.
	Title string
	// Run renders the regenerated artifact with a paper-vs-measured
	// comparison.
	Run func(*Study) (string, error)
	// NeedsCaptures marks experiments that rescan the raw captured
	// records; a streamed study released them, so these refuse to run
	// (and piirepro -stream skips them).
	NeedsCaptures bool
}

// Experiments returns the full registry, in DESIGN.md order: the
// paper's artifacts (E0-E10), this reproduction's ablations (A1-A5),
// and the extension experiments (X1-X4).
func Experiments() []Experiment {
	return append([]Experiment{
		{"E0", "§3.2 collection funnel", runE0, false},
		{"E1", "§4.2 headline leakage statistics", runE1, false},
		{"E2", "Table 1a — leakage by method", runE2, false},
		{"E3", "Table 1b — leakage by encoding/hashing", runE3, false},
		{"E4", "Table 1c — leakage by PII type", runE4, false},
		{"E5", "Figure 2 — top third-party receivers", runE5, false},
		{"E6", "Table 2 — persistent-tracking providers", runE6, false},
		{"E7", "§4.2.3 — marketing e-mail follow-up", runE7, false},
		{"E8", "Table 3 — privacy-policy disclosures", runE8, false},
		{"E9", "§7.1 — browser countermeasures", runE9, false},
		{"E10", "Table 4 — blocklist countermeasures", runE10, false},
		{"A1", "Ablation — candidate-set depth", runA1, true},
		{"A2", "Ablation — token-matching strategy", runA2, true},
		{"A3", "Ablation — decode-based vs candidate-set detection", runA3, true},
	}, extraExperiments...)
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runE0(s *Study) (string, error) {
	if s.Dataset == nil {
		return "", fmt.Errorf("E0: Run the study first")
	}
	counts := s.Dataset.FunnelCounts()
	rows := []report.ComparisonRow{
		{Metric: "candidate shopping sites", Paper: itoa(Paper.CandidateSites), Measured: itoa(len(s.Dataset.Crawls))},
		{Metric: "unreachable", Paper: itoa(Paper.Unreachable), Measured: itoa(counts[crawler.OutcomeUnreachable])},
		{Metric: "no auth flow", Paper: itoa(Paper.NoAuthFlow), Measured: itoa(counts[crawler.OutcomeNoAuthFlow])},
		{Metric: "sign-up blocked by policy", Paper: itoa(Paper.SignupBlocked), Measured: itoa(counts[crawler.OutcomeSignupBlocked])},
		{Metric: "completed auth flows", Paper: itoa(Paper.CrawledSites), Measured: itoa(len(s.Dataset.Successes()))},
	}
	confirm, bot := 0, 0
	for _, c := range s.Dataset.Successes() {
		if c.EmailConfirm {
			confirm++
		}
		if c.BotDetection {
			bot++
		}
	}
	rows = append(rows,
		report.ComparisonRow{Metric: "requiring e-mail confirmation", Paper: itoa(Paper.EmailConfirm), Measured: itoa(confirm)},
		report.ComparisonRow{Metric: "using bot detection", Paper: itoa(Paper.BotDetection), Measured: itoa(bot)},
	)
	return report.Comparison("E0 — collection funnel (§3.2)", rows), nil
}

func runE1(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	h := s.Analysis.Headline()
	rows := []report.ComparisonRow{
		{Metric: "first-party senders", Paper: itoa(Paper.Senders), Measured: itoa(h.Senders)},
		{Metric: "sender share of crawled sites", Paper: pct(Paper.SenderPct), Measured: pct(h.LeakRate)},
		{Metric: "third-party receivers", Paper: itoa(Paper.Receivers), Measured: itoa(h.Receivers)},
		{Metric: "requests containing leaked PII", Paper: itoa(Paper.LeakyRequests), Measured: itoa(h.LeakyRequests)},
		{Metric: "mean receivers per sender", Paper: f2(Paper.MeanReceivers), Measured: f2(h.MeanReceivers)},
		{Metric: "senders with ≥3 receivers", Paper: pct(Paper.SendersAtLeast3Pct), Measured: pct(h.SendersAtLeast3Pc)},
		{Metric: "max receivers for one sender", Paper: itoa(Paper.MaxReceivers), Measured: fmt.Sprintf("%d (%s)", h.MaxReceivers, h.MaxReceiverSite)},
	}
	return report.Headline(h) + "\n" + report.Comparison("E1 — headline (§4.2)", rows), nil
}

func breakdownComparison(title string, rows []core.BreakdownRow, paperSenders, paperReceivers map[string]int) string {
	var cmp []report.ComparisonRow
	for _, r := range rows {
		ps, okS := paperSenders[r.Label]
		pr, okR := paperReceivers[r.Label]
		paperCell := "—"
		if okS || okR {
			paperCell = fmt.Sprintf("%d senders / %d receivers", ps, pr)
		}
		cmp = append(cmp, report.ComparisonRow{
			Metric:   r.Label,
			Paper:    paperCell,
			Measured: fmt.Sprintf("%d senders / %d receivers", r.Senders, r.Receivers),
		})
	}
	return report.Comparison(title, cmp)
}

func runE2(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	rows := s.Analysis.ByMethod()
	out := report.Breakdown("Table 1a — by method", rows, len(s.Analysis.Senders), len(s.Analysis.Receivers))
	return out + "\n" + breakdownComparison("E2 — paper vs measured", rows, Paper.MethodSenders, Paper.MethodReceivers), nil
}

func runE3(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	rows := s.Analysis.ByEncoding()
	out := report.Breakdown("Table 1b — by encoding/hashing", rows, len(s.Analysis.Senders), len(s.Analysis.Receivers))
	return out + "\n" + breakdownComparison("E3 — paper vs measured", rows, Paper.EncodingSenders, Paper.EncodingReceivers), nil
}

func runE4(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	rows := s.Analysis.ByPIIType()
	out := report.Breakdown("Table 1c — by PII type", rows, len(s.Analysis.Senders), len(s.Analysis.Receivers))
	return out + "\n" + breakdownComparison("E4 — paper vs measured", rows, Paper.PIISenders, Paper.PIIReceivers), nil
}

func runE5(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	top := s.Analysis.TopReceivers(15)
	out := report.Figure2(top)
	fbPct := 0.0
	for _, r := range top {
		if r.Receiver == "facebook.com" {
			fbPct = r.SenderPct
		}
	}
	cmp := []report.ComparisonRow{
		{Metric: "facebook.com share of senders", Paper: pct(Paper.FacebookSenderPct), Measured: pct(fbPct)},
		{Metric: "distinct receivers in top-15", Paper: "15", Measured: itoa(len(top))},
	}
	return out + "\n" + report.Comparison("E5 — paper vs measured", cmp), nil
}

func runE6(s *Study) (string, error) {
	cls, err := s.Tracking()
	if err != nil {
		return "", err
	}
	out := report.Table2(cls.Trackers)

	cmp := []report.ComparisonRow{
		{Metric: "tracking providers", Paper: itoa(Paper.TrackingProviders), Measured: itoa(len(cls.Trackers))},
		{Metric: "receivers with same ID from >1 sender", Paper: itoa(Paper.MultiSenderReceivers), Measured: itoa(cls.MultiSenderID)},
		{Metric: "single-sender receivers", Paper: itoa(Paper.SingleSenderReceivers), Measured: itoa(cls.SingleSender)},
	}
	// Per-provider sender counts, in paper order.
	domains := make([]string, 0, len(Paper.Table2Senders))
	for d := range Paper.Table2Senders {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(a, b int) bool {
		if Paper.Table2Senders[domains[a]] != Paper.Table2Senders[domains[b]] {
			return Paper.Table2Senders[domains[a]] > Paper.Table2Senders[domains[b]]
		}
		return domains[a] < domains[b]
	})
	measured := map[string]int{}
	for i := range cls.Trackers {
		measured[cls.Trackers[i].Receiver] = cls.Trackers[i].Senders
	}
	for _, d := range domains {
		paperN := Paper.Table2Senders[d]
		if d == "omtrdc.net" {
			// The paper's Table 2 row counts only the URI senders;
			// our measured count includes the four cookie-channel
			// senders of §4.2.1.
			paperN = 3
		}
		cmp = append(cmp, report.ComparisonRow{
			Metric:   "senders feeding " + d,
			Paper:    itoa(paperN),
			Measured: itoa(measured[d]),
		})
	}
	return out + "\n" + report.Comparison("E6 — paper vs measured", cmp), nil
}

func runE7(s *Study) (string, error) {
	if s.Dataset == nil || s.Dataset.Mailbox == nil {
		return "", fmt.Errorf("E7: Run the study first")
	}
	if err := s.mustRun(); err != nil {
		return "", err
	}
	mb := s.Dataset.Mailbox
	receivers := map[string]bool{}
	for _, r := range s.Analysis.Receivers {
		receivers[r] = true
	}
	fromReceivers := mb.FromAny(receivers)
	cmp := []report.ComparisonRow{
		{Metric: "marketing mails in inbox", Paper: itoa(Paper.InboxMails), Measured: itoa(mb.Count("inbox"))},
		{Metric: "mails in spam folder", Paper: itoa(Paper.SpamMails), Measured: itoa(mb.Count("spam"))},
		{Metric: "mails from leak receivers", Paper: "0", Measured: itoa(len(fromReceivers))},
	}
	return report.Comparison("E7 — e-mail follow-up (§4.2.3)", cmp), nil
}

func runE8(s *Study) (string, error) {
	tbl, err := s.PolicyAudit()
	if err != nil {
		return "", err
	}
	out := report.Table3(tbl)
	cmp := []report.ComparisonRow{
		{Metric: "disclose sharing, not specific", Paper: itoa(Paper.PolicyNotSpecific), Measured: itoa(tbl.NotSpecific)},
		{Metric: "disclose sharing, specific list", Paper: itoa(Paper.PolicySpecific), Measured: itoa(tbl.Specific)},
		{Metric: "no description of sharing", Paper: itoa(Paper.PolicyNoDescription), Measured: itoa(tbl.NoDescription)},
		{Metric: "explicitly not shared", Paper: itoa(Paper.PolicyExplicitNot), Measured: itoa(tbl.ExplicitlyNot)},
	}
	return out + "\n" + report.Comparison("E8 — paper vs measured", cmp), nil
}

func runE9(s *Study) (string, error) {
	results := s.EvaluateBrowsers()
	out := report.Browsers(results)
	var brave *struct {
		senderRed, receiverRed float64
		missed, failures       int
	}
	for _, r := range results {
		if strings.HasPrefix(r.Browser, "Brave") {
			brave = &struct {
				senderRed, receiverRed float64
				missed, failures       int
			}{r.SenderReductionPct, r.ReceiverReductionPct, len(r.MissedReceivers), r.SignupFailures}
		}
	}
	if brave == nil {
		return out, nil
	}
	cmp := []report.ComparisonRow{
		{Metric: "Brave sender reduction", Paper: pct(Paper.BraveSenderReductionPct), Measured: pct(brave.senderRed)},
		{Metric: "Brave receiver reduction", Paper: pct(Paper.BraveReceiverReductionPct), Measured: pct(brave.receiverRed)},
		{Metric: "receivers missed by shields", Paper: itoa(Paper.BraveMissedReceivers), Measured: itoa(brave.missed)},
		{Metric: "sign-up flows broken", Paper: itoa(Paper.BraveSignupFailures), Measured: itoa(brave.failures)},
		{Metric: "other browsers' effect", Paper: "none", Measured: "none"},
	}
	return out + "\n" + report.Comparison("E9 — paper vs measured", cmp), nil
}

func runE10(s *Study) (string, error) {
	t4, err := s.EvaluateBlocklists()
	if err != nil {
		return "", err
	}
	out := report.Table4(t4)
	find := func(metric, method string) (el, ep, comb int) {
		for _, r := range t4.Rows {
			if r.Metric == metric && r.Method == method {
				return r.EasyList.Count, r.EasyPrivacy.Count, r.Combined.Count
			}
		}
		return 0, 0, 0
	}
	sEL, sEP, sC := find("senders", "total")
	rEL, rEP, rC := find("receivers", "total")
	cmp := []report.ComparisonRow{
		{Metric: "senders covered by EasyList", Paper: itoa(Paper.EasyListSendersTotal), Measured: itoa(sEL)},
		{Metric: "senders covered by EasyPrivacy", Paper: itoa(Paper.EasyPrivacySendersTotal), Measured: itoa(sEP)},
		{Metric: "senders covered combined", Paper: itoa(Paper.CombinedSendersTotal), Measured: itoa(sC)},
		{Metric: "receivers covered by EasyList", Paper: itoa(Paper.EasyListReceiversTotal), Measured: itoa(rEL)},
		{Metric: "receivers covered by EasyPrivacy", Paper: itoa(Paper.EasyPrivacyReceiversTotal), Measured: itoa(rEP)},
		{Metric: "receivers covered combined", Paper: itoa(Paper.CombinedReceiversTotal), Measured: itoa(rC)},
		{Metric: "tracking providers missed", Paper: strings.Join(Paper.MissedTrackerDomains, ", "), Measured: strings.Join(t4.MissedTrackers, ", ")},
	}
	return out + "\n" + report.Comparison("E10 — paper vs measured", cmp), nil
}

// runA1 measures candidate-set growth and detection recall per chain
// depth.
func runA1(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	if err := s.requireCaptures("A1"); err != nil {
		return "", err
	}
	baseline := len(s.Leaks)
	var rows [][]string
	for depth := 1; depth <= 3; depth++ {
		cfg := pii.CandidateConfig{MaxDepth: depth}
		if depth == 3 {
			// Depth 3 over the full transform set explodes
			// combinatorially; restrict to the transforms trackers
			// actually chain (hashes + base64), as DESIGN.md notes.
			cfg.Transforms = []string{"md5", "sha1", "sha256", "sha512", "base64", "base32", "ripemd_160", "sha3_256"}
		}
		start := time.Now() //lint:allow detrand A-series ablations report real build/scan wall time; not part of the pinned study bytes
		eng, err := detect.NewEngine(s.Eco.Persona, s.Detector.CNAME, detect.Config{Candidates: cfg})
		if err != nil {
			return "", err
		}
		buildTime := time.Since(start) //lint:allow detrand A-series ablations report real build/scan wall time; not part of the pinned study bytes
		cs := eng.Candidates()
		found := 0
		for _, c := range s.Dataset.Successes() {
			found += len(eng.DetectSite(c.Domain, c.Records))
		}
		recall := 0.0
		if baseline > 0 {
			recall = 100 * float64(found) / float64(baseline)
		}
		build := buildTime.Round(time.Millisecond).String()
		if eng.FromCache() {
			// The depth-2 row reuses the study's own compile via the
			// engine build cache; its wall time is a cache fetch.
			build += " (cached)"
		}
		rows = append(rows, []string{
			itoa(depth), itoa(cs.Size()), itoa(cs.States()),
			build,
			fmt.Sprintf("%.1f%%", recall),
		})
	}
	return "A1 — candidate-set depth ablation (baseline: study depth 2)\n" +
		report.Table([]string{"depth", "tokens", "automaton states", "build time", "leak recall"}, rows), nil
}

// runA2 compares Aho-Corasick scanning against naive per-token substring
// search on the study's own traffic.
func runA2(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	if err := s.requireCaptures("A2"); err != nil {
		return "", err
	}
	// Sample surfaces from the dataset.
	var blobs [][]byte
	for _, c := range s.Dataset.Successes() {
		for i := range c.Records {
			for _, surf := range httpmodel.Surfaces(&c.Records[i].Request) {
				blobs = append(blobs, surf.Data)
			}
		}
		if len(blobs) > 4000 {
			break
		}
	}
	tokens := s.Candidates.Tokens()

	start := time.Now() //lint:allow detrand A-series ablations report real build/scan wall time; not part of the pinned study bytes
	acHits := 0
	for _, b := range blobs {
		acHits += len(s.Candidates.FindIn(b))
	}
	acTime := time.Since(start) //lint:allow detrand A-series ablations report real build/scan wall time; not part of the pinned study bytes

	start = time.Now() //lint:allow detrand A-series ablations report real build/scan wall time; not part of the pinned study bytes
	naiveHits := 0
	for _, b := range blobs {
		for i := range tokens {
			if bytes.Contains(b, []byte(tokens[i].Value)) {
				naiveHits++
			}
		}
	}
	naiveTime := time.Since(start) //lint:allow detrand A-series ablations report real build/scan wall time; not part of the pinned study bytes

	speedup := float64(naiveTime) / float64(acTime)
	rows := [][]string{
		{"aho-corasick", acTime.Round(time.Millisecond).String(), itoa(acHits)},
		{"naive substring", naiveTime.Round(time.Millisecond).String(), itoa(naiveHits)},
	}
	return fmt.Sprintf("A2 — matcher ablation (%d surfaces, %d tokens, speedup %.1fx)\n",
		len(blobs), len(tokens), speedup) +
		report.Table([]string{"strategy", "scan time", "hits"}, rows), nil
}

// runA3 compares decode-based detection (small hash-only candidate set +
// iterative decoding) against the full candidate-set detector.
func runA3(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	if err := s.requireCaptures("A3"); err != nil {
		return "", err
	}
	eng, err := detect.NewEngine(s.Eco.Persona, s.Detector.CNAME, detect.Config{
		Candidates: pii.CandidateConfig{
			MaxDepth:   1,
			Transforms: []string{"md5", "sha1", "sha256", "sha512", "sha3_256", "ripemd_160"},
		},
	})
	if err != nil {
		return "", err
	}
	hashOnly := eng.Candidates()
	sc := eng.NewScanner()

	decodeLeaks := 0
	for _, c := range s.Dataset.Successes() {
		for i := range c.Records {
			decodeLeaks += len(sc.DecodeDetect(c.Domain, &c.Records[i], 2))
		}
	}
	baseline := len(s.Leaks)
	pctOf := 0.0
	if baseline > 0 {
		pctOf = 100 * float64(decodeLeaks) / float64(baseline)
	}
	rows := [][]string{
		{"candidate-set (study)", itoa(s.Candidates.Size()), itoa(baseline), "100.0%"},
		{"decode-based", itoa(hashOnly.Size()), itoa(decodeLeaks), fmt.Sprintf("%.1f%%", pctOf)},
	}
	return "A3 — decode-based vs candidate-set detection\n" +
		report.Table([]string{"strategy", "tokens", "leaks found", "vs study"}, rows) +
		"decode-based detection misses non-invertible chains (e.g. sha256ofmd5) by construction\n", nil
}

func itoa(n int) string    { return fmt.Sprintf("%d", n) }
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f) }
func f2(f float64) string  { return fmt.Sprintf("%.2f", f) }
