package piileak

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"piileak/internal/faultsim"
	"piileak/internal/obs"
	"piileak/internal/resilience"
	"piileak/internal/shard"
)

// shardedConfig is the sharded suite's study configuration: a faulty
// small ecosystem, so shard workers exercise the resilient transport's
// retry paths while the byte-identity invariant is checked.
func shardedConfig(seed uint64) Config {
	cfg := SmallConfig(seed)
	cfg.Ecosystem.Faults = &faultsim.Config{Rate: 0.3}
	return cfg
}

// TestShardedRunsByteIdentical is the tentpole invariant at the study
// level: for K in {1, 2, 4, 8}, a supervised sharded run's leak bytes
// and Tables 1/2/4 are byte-identical to the unsharded streamed run —
// and stay identical when shards are killed and restarted mid-study.
func TestShardedRunsByteIdentical(t *testing.T) {
	const seed = 41
	ctx := context.Background()

	ref, err := NewStudy(shardedConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, WithStream(), WithWorkers(2, 2)); err != nil {
		t.Fatal(err)
	}
	want := leaksJSON(t, ref)
	wantT2, err := ref.Tracking()
	if err != nil {
		t.Fatal(err)
	}
	wantT4, err := ref.EvaluateBlocklists()
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, s *Study, rep *shard.Report) {
		t.Helper()
		if rep.Partial {
			t.Fatalf("sharded run degraded: %+v", rep)
		}
		if !s.Streamed {
			t.Error("sharded study not marked Streamed")
		}
		if got := leaksJSON(t, s); !bytes.Equal(want, got) {
			t.Errorf("leak JSON diverges from unsharded run (%d vs %d bytes)", len(got), len(want))
		}
		if got, want := s.Analysis.Headline(), ref.Analysis.Headline(); got != want {
			t.Errorf("headline diverges:\n%+v\n%+v", got, want)
		}
		if !reflect.DeepEqual(s.Analysis.ByMethod(), ref.Analysis.ByMethod()) {
			t.Error("Table 1a diverges")
		}
		if !reflect.DeepEqual(s.Analysis.ByEncoding(), ref.Analysis.ByEncoding()) {
			t.Error("Table 1b diverges")
		}
		cls, err := s.Tracking()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cls, wantT2) {
			t.Error("Table 2 diverges")
		}
		t4, err := s.EvaluateBlocklists()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t4, wantT4) {
			t.Error("Table 4 diverges")
		}
	}

	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			s, err := NewStudy(shardedConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.RunSharded(ctx, shard.Options{
				Shards:        k,
				Dir:           t.TempDir(),
				Workers:       2,
				DetectWorkers: 2,
				Clock:         resilience.NewVirtualClock(),
				Obs:           obs.NewRun(nil),
				Fresh:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			check(t, s, rep)
		})
	}

	// The kill arm: every shard's first attempt dies, one shard dies
	// twice. The supervisor restarts each from its checkpoint; the output
	// must not move by a byte.
	t.Run("K=4-with-kills", func(t *testing.T) {
		shard.WorkerFailpoint = func(sh, attempt int) error {
			if attempt == 1 || (sh == 2 && attempt == 2) {
				return fmt.Errorf("scripted kill of shard %d attempt %d", sh, attempt)
			}
			return nil
		}
		defer func() { shard.WorkerFailpoint = nil }()

		s, err := NewStudy(shardedConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		o := obs.NewRun(nil)
		rep, err := s.RunSharded(ctx, shard.Options{
			Shards:        4,
			Dir:           t.TempDir(),
			Workers:       2,
			DetectWorkers: 2,
			Clock:         resilience.NewVirtualClock(),
			Obs:           o,
			Fresh:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s, rep)
		for sh := 0; sh < 4; sh++ {
			wantRestarts := 1
			if sh == 2 {
				wantRestarts = 2
			}
			if got := rep.Restarts[sh]; got != wantRestarts {
				t.Errorf("shard %d restarts = %d, want %d", sh, got, wantRestarts)
			}
		}
		m := o.Manifest()
		if m.Sharding == nil || m.Sharding.Restarts != 5 {
			t.Errorf("observer sharding manifest = %+v, want 5 restarts", m.Sharding)
		}
		if m.Run.Shards != 4 || !m.Run.Streamed {
			t.Errorf("run info = %+v, want 4 shards, streamed", m.Run)
		}
	})

	// The scale arm: the study core plus a lazily generated 100k-site
	// ranked tail, split across 4 shards. Each worker derives only its
	// interleaved slice on demand — the materialized-site gauge must stay
	// at the shard's share of the universe, not the whole universe — and
	// the merge must still be byte-identical to the single lazy run.
	t.Run("K=4-universe-100k", func(t *testing.T) {
		const universe = 100_000
		big := SmallConfig(seed)
		big.Ecosystem.UniverseSize = universe

		bigRef, err := NewStudy(big)
		if err != nil {
			t.Fatal(err)
		}
		if err := bigRef.Run(ctx, WithStream(), WithWorkers(2, 2)); err != nil {
			t.Fatal(err)
		}
		wantBig := leaksJSON(t, bigRef)

		s, err := NewStudy(big)
		if err != nil {
			t.Fatal(err)
		}
		o := obs.NewRun(nil)
		rep, err := s.RunSharded(ctx, shard.Options{
			Shards:        4,
			Dir:           t.TempDir(),
			Workers:       2,
			DetectWorkers: 2,
			Clock:         resilience.NewVirtualClock(),
			Obs:           o,
			Fresh:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Partial {
			t.Fatalf("sharded run degraded: %+v", rep)
		}
		if got := leaksJSON(t, s); !bytes.Equal(wantBig, got) {
			t.Errorf("leak JSON diverges from unsharded 100k run (%d vs %d bytes)", len(got), len(wantBig))
		}
		if got, want := s.Analysis.Headline(), bigRef.Analysis.Headline(); got != want {
			t.Errorf("headline diverges:\n%+v\n%+v", got, want)
		}
		if m := o.Manifest(); m.Run.Sites != universe || m.Run.Shards != 4 {
			t.Errorf("run info = %+v, want %d sites over 4 shards", m.Run, universe)
		}
		// Per-worker memory pin: no worker materialized more than its
		// interleaved share of the universe (ceil(universe/4)), within a
		// small constant for captures in flight.
		const share = (universe + 3) / 4
		if got := o.Snapshot().Gauges[obs.MetricUniverseMaterialized]; got == 0 || got > share+8 {
			t.Errorf("materialized-site gauge = %d, want within (0, %d]", got, share+8)
		}
	})
}

// BenchmarkShardMerge measures the verified merge itself: K shard
// results, already crawled and digest-verified, folded back into one
// study result. This is the fixed per-run cost sharding adds over the
// crawl, and the number BENCH_shard.json tracks.
func BenchmarkShardMerge(b *testing.B) {
	const shards = 4
	s, err := NewStudy(shardedConfig(41))
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	ctx := context.Background()
	for sh := 0; sh < shards; sh++ {
		if _, err := shard.RunWorker(ctx, s.Eco, s.Config.Browser, s.Detector, shard.WorkerConfig{
			Shard: sh, Shards: shards, Dir: dir,
		}); err != nil {
			b.Fatal(err)
		}
	}
	plan, err := shard.NewPlan(s.Eco, shards)
	if err != nil {
		b.Fatal(err)
	}
	var results []*shard.Result
	for sh := 0; sh < shards; sh++ {
		r, err := shard.ReadResult(shard.ResultPath(dir, sh, shards))
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, r)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, rep, err := shard.Merge(s.Eco, s.Config.Browser, plan, results)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Partial || len(res.Leaks) != rep.Leaks {
			b.Fatalf("merge went wrong: %+v", rep)
		}
	}
}
