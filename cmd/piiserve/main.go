// Command piiserve runs the study as a long-running, multi-tenant HTTP
// service: submitted job specs queue behind a bounded worker pool, every
// job runs checkpointed under the crash-only runtime, and results — the
// leak dataset plus the paper's Tables 1, 2 and 4 — are byte-identical
// to the same spec run via piicrawl.
//
// Usage:
//
//	piiserve -state DIR [-addr :8344] [-slots N] [-queue-depth N]
//	         [-job-timeout D] [-retry-after D] [-pprof addr]
//
// The service is crash-only end to end. Jobs live in an append-only
// JSONL WAL under -state; kill -9 the server and restart it, and queued
// jobs re-enqueue while interrupted jobs resume from their per-job
// checkpoint to byte-identical results. Saturation is shed, not
// buffered: once the queue holds -queue-depth jobs, submissions get
// 429 with a Retry-After tracking observed job durations.
//
// Shutdown mirrors piicrawl's signal contract: the first SIGINT/SIGTERM
// drains — admission stops, running jobs checkpoint and re-queue
// durably, and the process exits 0 with everything resumable. A second
// signal (or a drain overrun) hard-exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux's profile endpoints
	"os"
	"os/signal"
	"syscall"
	"time"

	"piileak/internal/serve"
)

const prog = "piiserve"

func main() {
	addr := flag.String("addr", "localhost:8344", "HTTP listen address")
	state := flag.String("state", "", "state directory: job WAL, per-job checkpoints and results (required)")
	slots := flag.Int("slots", 2, "concurrent study slots")
	queueDepth := flag.Int("queue-depth", 16, "max queued (not yet running) jobs before submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job watchdog budget; over-budget jobs are cancelled and marked failed (0 disables)")
	retryAfter := flag.Duration("retry-after", 5*time.Second, "Retry-After hint before any job duration has been observed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (diagnostics only)")
	flag.Parse()

	if *state == "" {
		fatal(fmt.Errorf("-state is required (the durable job store lives there)"))
	}
	if *slots < 1 {
		fatal(fmt.Errorf("-slots %d: need at least one study slot", *slots))
	}
	if *queueDepth < 1 {
		fatal(fmt.Errorf("-queue-depth %d: need at least one queue slot", *queueDepth))
	}
	if err := startPprof(*pprofAddr); err != nil {
		fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Dir:        *state,
		Slots:      *slots,
		QueueDepth: *queueDepth,
		JobTimeout: *jobTimeout,
		RetryAfter: *retryAfter,
	})
	if err != nil {
		fatal(err)
	}
	if n := srv.Store().Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "%s: recovered %d interrupted job(s); they resume from their checkpoints\n", prog, n)
	}
	if n := srv.Store().TornRecords(); n > 0 {
		fmt.Fprintf(os.Stderr, "%s: dropped %d torn job-store record(s) from a previous crash\n", prog, n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	listenOn := ln.Addr().String() // a TCP listen address, not postal PII
	fmt.Fprintf(os.Stderr, "%s: serving on http://%s (state %s, %d slots, queue %d)\n",
		prog, listenOn, *state, *slots, *queueDepth)

	// Graceful drain, mirroring piicrawl's contract: first signal stops
	// admission and checkpoints everything, second hard-exits.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	//lint:allow goroleak the drain goroutine lives until process exit by design
	go func() {
		defer close(done)
		<-sigc
		fmt.Fprintf(os.Stderr, "%s: signal: draining — admission stopped, in-flight jobs checkpointing (signal again to hard-exit)\n", prog)
		go func() {
			// The second-signal escape hatch: a wedged drain must not
			// make the server unkillable-gracefully.
			<-sigc
			fmt.Fprintf(os.Stderr, "%s: second signal: hard exit\n", prog)
			os.Exit(130)
		}()
		srv.Drain()
		srv.Wait()
		//lint:allow detrand CLI shutdown grace is wall-clock by design; nothing reproducible depends on it
		shutdownCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
		defer stop()
		httpSrv.Shutdown(shutdownCtx) //nolint:errcheck // drain already persisted everything that matters
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: close store: %v\n", prog, err)
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
	fmt.Fprintf(os.Stderr, "%s: drained: job store is consistent; restart to resume queued work\n", prog)
}

// startPprof serves net/http/pprof's default mux for live diagnostics.
func startPprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	pprofOn := ln.Addr().String() // a TCP listen address, not postal PII
	fmt.Fprintf(os.Stderr, "%s: pprof on http://%s/debug/pprof/\n", prog, pprofOn)
	//lint:allow goroleak the pprof server serves for the process lifetime by design
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof server: %v\n", prog, err)
		}
	}()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, prog+":", err)
	os.Exit(1)
}
