package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"

	"piileak/internal/analysis"
	"piileak/internal/analysis/suite"
)

// vetConfig is the unit-of-work description the go vet driver passes a
// -vettool binary: one package, pre-resolved file lists and export-data
// locations. Field names follow the x/tools unitchecker protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package under the go vet driver and exits with
// the protocol's status codes (0 clean, 2 diagnostics).
func vetUnit(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalVet(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalVet(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}

	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalVet(err)
		}
		syntax = append(syntax, f)
	}

	imp := vetImporter{cfg: &cfg, gc: analysis.ExportImporter(fset, cfg.PackageFile)}
	conf := types.Config{Importer: imp}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalVet(err)
	}

	pkg := &analysis.Package{
		PkgPath: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info,
	}
	res, err := analysis.AnalyzePackage(pkg, suite.Analyzers(), readVetxFacts(&cfg))
	if err != nil {
		fatalVet(err)
	}
	if cfg.VetxOutput != "" {
		facts, err := res.Facts.Encode()
		if err != nil {
			fatalVet(err)
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			fatalVet(err)
		}
	}
	if cfg.VetxOnly || len(res.Findings) == 0 {
		return
	}
	for _, f := range res.Findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	os.Exit(2)
}

// readVetxFacts loads the dependency fact sets the vet driver recorded
// in PackageVetx (each file holds one package's FactSet.Encode output).
// Absent or empty files mean "no facts", never an error — packages
// without fact-producing code write empty sets.
func readVetxFacts(cfg *vetConfig) analysis.FactReader {
	deps := analysis.FactReader{}
	for ipath, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		fs, err := analysis.DecodeFactSet(ipath, data)
		if err != nil {
			continue
		}
		deps[ipath] = fs
	}
	return deps
}

// vetImporter resolves imports through the driver-provided export-data
// map, honoring ImportMap (vendoring) indirection. A single underlying
// gc importer preserves package identity across imports.
type vetImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (v vetImporter) Import(path string) (*types.Package, error) {
	if m, ok := v.cfg.ImportMap[path]; ok {
		path = m
	}
	return v.gc.Import(path)
}

func fatalVet(err error) {
	fmt.Fprintln(os.Stderr, "piilint:", err)
	os.Exit(1)
}
