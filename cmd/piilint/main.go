// Command piilint runs the repo's determinism and concurrency-hygiene
// analyzer suite (internal/analysis): closecheck, ctxflow, detrand,
// goroleak, lockdiscipline, maporder, obskey, piilog.
//
// Standalone:
//
//	piilint ./...                      # lint packages, exit 1 on findings
//	piilint -workers 8 ./...           # parallel DAG driver
//	piilint -cache .lintcache ./...    # content-keyed result cache
//	piilint -json ./...                # JSON lines + summary trailer
//	piilint -github ./...              # GitHub Actions ::error annotations
//	piilint -stats ./...               # analyzed/cached counts on stderr
//	piilint -list                      # describe the suite
//
// As a vet tool (the go/analysis unitchecker protocol):
//
//	go vet -vettool=$(which piilint) ./...
//
// Findings print as file:line:col: analyzer: message, in one canonical
// order (file, line, column, analyzer, message) regardless of worker
// count or cache state. Suppress a deliberate exception with a trailing
// or preceding comment:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; see internal/analysis/README.md.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"piileak/internal/analysis"
	"piileak/internal/analysis/suite"
)

// printVersion emits the version line the go vet driver hashes into
// its build cache key; the buildID must change when the binary does,
// so it is a digest of the executable itself.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, id)
}

// jsonFinding is one -json output line; the field order here is the
// byte order in the output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSummary is the -json trailer line.
type jsonSummary struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
	Analyzed   int `json:"analyzed"`
	Cached     int `json:"cached"`
}

func main() {
	// The go vet driver probes the tool before handing it work.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			// The go command derives a cache key from this exact
			// shape: "<name> version devel ... buildID=<hash>".
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			vetUnit(os.Args[1])
			return
		}
	}

	list := flag.Bool("list", false, "describe the analyzers and exit")
	workers := flag.Int("workers", 0, "concurrent package analyses (0 = GOMAXPROCS, 1 = sequential)")
	cacheDir := flag.String("cache", "", "content-keyed result cache directory (empty = no cache)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines plus a summary trailer")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
	stats := flag.Bool("stats", false, "print analyzed/cached package counts to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: piilint [-list] [-workers n] [-cache dir] [-json] [-github] [-stats] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	graph, err := analysis.LoadGraph("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piilint:", err)
		os.Exit(2)
	}
	driver := &analysis.Driver{Workers: *workers}
	if *cacheDir != "" {
		driver.Cache = &analysis.Cache{Dir: *cacheDir}
	}
	findings, st, err := driver.Run(graph, suite.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "piilint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
				return r
			}
		}
		return name
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		name := rel(f.Pos.Filename)
		if *jsonOut {
			// Encode never fails on these flat structs; findings stay
			// one-object-per-line in the canonical finding order.
			enc.Encode(jsonFinding{
				File: name, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		} else {
			fmt.Printf("%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
		if *github {
			// The workflow-command grammar reserves these characters in
			// property values.
			esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ",", "%2C").Replace
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n",
				esc(name), f.Pos.Line, f.Pos.Column,
				strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(f.Analyzer+": "+f.Message))
		}
	}
	if *jsonOut {
		enc.Encode(jsonSummary{
			Findings:   len(findings),
			Suppressed: st.Suppressed,
			Analyzed:   len(st.Analyzed),
			Cached:     len(st.Cached),
		})
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "piilint: %d package(s) analyzed, %d from cache, %d finding(s), %d suppressed\n",
			len(st.Analyzed), len(st.Cached), len(findings), st.Suppressed)
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "piilint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
