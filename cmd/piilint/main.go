// Command piilint runs the repo's determinism and PII-hygiene analyzer
// suite (internal/analysis): detrand, maporder, piilog, closecheck.
//
// Standalone:
//
//	piilint ./...            # lint packages, exit 1 on findings
//	piilint -list            # describe the suite
//
// As a vet tool (the go/analysis unitchecker protocol):
//
//	go vet -vettool=$(which piilint) ./...
//
// Findings print as file:line:col: analyzer: message. Suppress a
// deliberate exception with a trailing or preceding comment:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; see internal/analysis/README.md.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"piileak/internal/analysis"
	"piileak/internal/analysis/suite"
)

// printVersion emits the version line the go vet driver hashes into
// its build cache key; the buildID must change when the binary does,
// so it is a digest of the executable itself.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, id)
}

func main() {
	// The go vet driver probes the tool before handing it work.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			// The go command derives a cache key from this exact
			// shape: "<name> version devel ... buildID=<hash>".
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			vetUnit(os.Args[1])
			return
		}
	}

	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: piilint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piilint:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, suite.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "piilint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "piilint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
