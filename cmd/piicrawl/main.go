// Command piicrawl runs the §3.2 data collection over the synthetic
// ecosystem and writes the captured traffic as a JSON dataset, which the
// other tools consume.
//
// Usage:
//
//	piicrawl [-seed N] [-small] [-browser firefox|chrome|brave] [-o dataset.json]
//	         [-workers N] [-funnel] [-stream]
//	         [-faults RATE] [-fault-seed N] [-retries N]
//	         [-checkpoint file] [-resume]
//
// -faults opts the substrate into deterministic fault injection (a
// fraction RATE of hosts become flaky, degrading or dead) and the crawl
// into the resilient runtime: retries with backoff, per-host circuit
// breakers, and partial records instead of dropped sites. -checkpoint
// persists per-site progress; -resume continues a killed run from that
// file, producing the same dataset an uninterrupted run would have.
//
// -stream fuses crawl and detection into the streaming pipeline:
// per-site captures are scanned as they complete and released
// immediately, per-stage progress counters go to stderr, and the output
// is the detected leak list (identical to piidetect's over a full
// dataset) instead of the dataset — the captures are never all in
// memory, so there is no dataset to write.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/pii"
	"piileak/internal/pipeline"
	"piileak/internal/resilience"
	"piileak/internal/webgen"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	browserName := flag.String("browser", "firefox", "collection browser: firefox, chrome, opera, safari, firefox-etp, brave")
	out := flag.String("o", "", "output dataset path (default stdout)")
	funnel := flag.Bool("funnel", false, "print the §3.2 funnel summary to stderr")
	workers := flag.Int("workers", 0, "parallel crawl workers (0 = serial)")
	faults := flag.Float64("faults", 0, "fraction of hosts made faulty (0 disables fault injection)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault-injection seed (default: the ecosystem seed)")
	retries := flag.Int("retries", 0, "max fetch attempts per request under faults (default 4)")
	checkpoint := flag.String("checkpoint", "", "write per-site progress to this file")
	resume := flag.Bool("resume", false, "resume a previous run from -checkpoint")
	stream := flag.Bool("stream", false, "fuse crawl+detect: stream captures through detection, output leaks")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	if *small {
		cfg = webgen.SmallConfig(*seed)
	}
	cfg.Seed = *seed
	if *faults < 0 || *faults > 1 {
		fatal(fmt.Errorf("-faults %v out of range [0, 1]", *faults))
	}
	if *faults > 0 {
		cfg.Faults = &faultsim.Config{Seed: *faultSeed, Rate: *faults}
	}
	if *resume && *checkpoint == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	eco, err := webgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	var profile browser.Profile
	switch *browserName {
	case "firefox":
		profile = browser.Firefox88()
	case "chrome":
		profile = browser.Chrome93()
	case "opera":
		profile = browser.Opera79()
	case "safari":
		profile = browser.Safari14()
	case "firefox-etp":
		profile = browser.Firefox88ETP(eco.BraveShields)
	case "brave":
		profile = browser.Brave129(eco.BraveShields)
	default:
		fatal(fmt.Errorf("unknown browser %q", *browserName))
	}

	copts := crawler.Options{
		Policy:         resilience.Policy{MaxAttempts: *retries},
		CheckpointPath: *checkpoint,
		Resume:         *resume,
	}

	if *stream {
		streamRun(eco, profile, copts, *workers, *out, *funnel, *faults > 0)
		return
	}

	copts.Workers = *workers
	ds, err := crawler.CrawlOpts(eco, profile, copts)
	if err != nil {
		fatal(err)
	}

	if *funnel {
		counts := ds.FunnelCounts()
		fmt.Fprintf(os.Stderr, "sites: %d  success: %d  unreachable: %d  no-auth: %d  signup-blocked: %d  captcha: %d  partial: %d\n",
			len(ds.Crawls), counts[crawler.OutcomeSuccess], counts[crawler.OutcomeUnreachable],
			counts[crawler.OutcomeNoAuthFlow], counts[crawler.OutcomeSignupBlocked],
			counts[crawler.OutcomeCaptcha], counts[crawler.OutcomePartial])
		fmt.Fprintf(os.Stderr, "records: %d  inbox mails: %d  spam mails: %d\n",
			ds.TotalRecords(), ds.Mailbox.Count("inbox"), ds.Mailbox.Count("spam"))
		if *faults > 0 {
			attempts, retried, failed := 0, 0, 0
			for _, c := range ds.Crawls {
				attempts += c.Attempts
				retried += c.Retries
				failed += c.FailedFetches
			}
			fmt.Fprintf(os.Stderr, "fetch attempts: %d  retries: %d  failed fetches: %d\n",
				attempts, retried, failed)
		}
	}

	if *out != "" {
		if err := ds.WriteJSONFile(*out); err != nil {
			fatal(err)
		}
		return
	}
	if err := ds.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

// streamRun executes the fused crawl+detect pipeline and writes the
// detected leaks (indented JSON, same shape as Study.WriteLeaksJSON).
func streamRun(eco *webgen.Ecosystem, profile browser.Profile, copts crawler.Options, workers int, out string, funnel, faulty bool) {
	cs, err := pii.BuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		fatal(err)
	}
	det := core.NewDetector(cs, dnssim.NewClassifier(eco.Zone))

	crawled := 0
	res, err := pipeline.Run(eco, profile, det, pipeline.Options{
		CrawlWorkers:  workers,
		DetectWorkers: workers,
		Crawl:         copts,
		Progress: func(ev pipeline.Event) {
			if ev.Stage == "crawl" {
				crawled = ev.Done
				return
			}
			if ev.Done%25 == 0 || ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "piicrawl: crawl %d/%d  detect %d/%d  leaks %d\n",
					crawled, ev.Total, ev.Done, ev.Total, ev.Leaks)
			}
		},
	})
	if err != nil {
		fatal(err)
	}

	if funnel {
		ds := res.Dataset
		counts := ds.FunnelCounts()
		fmt.Fprintf(os.Stderr, "sites: %d  success: %d  unreachable: %d  no-auth: %d  signup-blocked: %d  captcha: %d  partial: %d\n",
			len(ds.Crawls), counts[crawler.OutcomeSuccess], counts[crawler.OutcomeUnreachable],
			counts[crawler.OutcomeNoAuthFlow], counts[crawler.OutcomeSignupBlocked],
			counts[crawler.OutcomeCaptcha], counts[crawler.OutcomePartial])
		fmt.Fprintf(os.Stderr, "records: %d  inbox mails: %d  spam mails: %d  capture high-water: %d sites\n",
			res.TotalRecords, ds.Mailbox.Count("inbox"), ds.Mailbox.Count("spam"), res.Stats.CaptureHighWater)
		if faulty {
			attempts, retried, failed := 0, 0, 0
			for _, c := range ds.Crawls {
				attempts += c.Attempts
				retried += c.Retries
				failed += c.FailedFetches
			}
			fmt.Fprintf(os.Stderr, "fetch attempts: %d  retries: %d  failed fetches: %d\n",
				attempts, retried, failed)
		}
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(res.Leaks); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piicrawl:", err)
	os.Exit(1)
}
