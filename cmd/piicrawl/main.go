// Command piicrawl runs the §3.2 data collection over the synthetic
// ecosystem and writes the captured traffic as a JSON dataset, which the
// other tools consume.
//
// Usage:
//
//	piicrawl [-seed N] [-small] [-browser firefox|chrome|brave] [-o dataset.json]
//	         [-universe N] [-workers N] [-funnel] [-stream] [-only domains]
//	         [-faults RATE] [-fault-seed N] [-retries N]
//	         [-site-timeout D] [-quarantine dir]
//	         [-checkpoint file] [-resume]
//	         [-metrics out.json] [-trace out.jsonl] [-pprof addr]
//
// -faults opts the substrate into deterministic fault injection (a
// fraction RATE of hosts become flaky, degrading or dead) and the crawl
// into the resilient runtime: retries with backoff, per-host circuit
// breakers, and partial records instead of dropped sites. -checkpoint
// persists per-site progress; -resume continues a killed run from that
// file, producing the same dataset an uninterrupted run would have.
// -site-timeout caps each site's crawl budget (on the run's clock, so
// fault-injected virtual time counts); sites over budget are recorded as
// "timeout" with their partial captures. -quarantine names a directory
// that collects diagnostics bundles for sites whose crawl or detection
// panicked; the study continues without them and -only re-runs them
// individually.
//
// -metrics and -trace attach the deterministic observer: the former
// writes the run's counter registry and manifest as JSON, the latter
// the per-site stage spans as JSONL. Telemetry is a side channel — the
// dataset and leak output are byte-identical with it on or off, and two
// identically-seeded runs write identical telemetry. -pprof serves
// net/http/pprof for live profiling (wall-clock, inherently
// nondeterministic — diagnostics only).
//
// Shutdown is crash-only: the first SIGINT/SIGTERM cancels the run —
// the site in flight is dropped, finished sites stay checkpointed, and
// the process exits 0 with a valid, resumable checkpoint. A second
// signal hard-exits immediately.
//
// -stream fuses crawl and detection into the streaming pipeline:
// per-site captures are scanned as they complete and released
// immediately, per-stage progress counters go to stderr, and the output
// is the detected leak list (identical to piidetect's over a full
// dataset) instead of the dataset — the captures are never all in
// memory, so there is no dataset to write.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"

	"piileak"
	"piileak/internal/cliflags"
	"piileak/internal/crawler"
	"piileak/internal/obs"
	"piileak/internal/resilience"
	"piileak/internal/shard"
	"piileak/internal/webgen"
)

const prog = "piicrawl"

func main() {
	common := cliflags.Register(flag.CommandLine)
	out := flag.String("o", "", "output path (default stdout): the dataset, or with -stream the leak list")
	funnel := flag.Bool("funnel", false, "print the §3.2 funnel summary to stderr")
	flag.Parse()

	if err := common.Validate(); err != nil {
		fatal(err)
	}
	if err := common.StartPprof(prog); err != nil {
		fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cliflags.InstallSignalHandler(prog, cancel)

	if shardIdx, shardN, isWorker := common.ShardCoords(); isWorker || common.Supervise {
		study, err := piileak.NewStudy(common.StudyConfig())
		if err != nil {
			fatal(err)
		}
		profile, err := common.ResolveProfile(study.Eco)
		if err != nil {
			fatal(err)
		}
		study.Config.Browser = profile
		rt, err := common.Runtime(study.Eco)
		if err != nil {
			fatal(err)
		}
		if isWorker {
			workerRun(ctx, study, common, rt, shardIdx, shardN)
		} else {
			superviseRun(ctx, study, common, rt, *out)
		}
		return
	}

	if common.Stream {
		// Only the fused pipeline needs the detection machinery (the
		// candidate set costs most of the startup); dataset mode below
		// generates just the ecosystem.
		study, err := piileak.NewStudy(common.StudyConfig())
		if err != nil {
			fatal(err)
		}
		profile, err := common.ResolveProfile(study.Eco)
		if err != nil {
			fatal(err)
		}
		study.Config.Browser = profile
		rt, err := common.Runtime(study.Eco)
		if err != nil {
			fatal(err)
		}
		streamRun(ctx, study, common, rt, *out, *funnel)
		return
	}

	eco, err := webgen.Generate(common.EcosystemConfig())
	if err != nil {
		fatal(err)
	}
	profile, err := common.ResolveProfile(eco)
	if err != nil {
		fatal(err)
	}
	rt, err := common.Runtime(eco)
	if err != nil {
		fatal(err)
	}

	ds, err := crawler.CrawlOpts(ctx, eco, profile, common.CrawlerOptions(rt, prog))
	if err != nil {
		if errors.Is(err, context.Canceled) {
			cliflags.ExitInterrupted(prog, common.Checkpoint)
		}
		fatal(err)
	}

	if *funnel {
		printFunnel(ds, ds.TotalRecords(), -1, common.Faults > 0)
	}
	cliflags.PrintQuarantine(prog, rt.Quarantine)
	if err := common.WriteTelemetry(rt); err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := ds.WriteJSONFile(*out); err != nil {
			fatal(err)
		}
		return
	}
	if err := ds.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

// printFunnel writes the §3.2 funnel summary. captureHighWater < 0
// means the batch path (no high-water gauge).
func printFunnel(ds *crawler.Dataset, totalRecords, captureHighWater int, faulty bool) {
	counts := ds.FunnelCounts()
	fmt.Fprintf(os.Stderr, "sites: %d  success: %d  unreachable: %d  no-auth: %d  signup-blocked: %d  captcha: %d  partial: %d  timeout: %d  crashed: %d\n",
		len(ds.Crawls), counts[crawler.OutcomeSuccess], counts[crawler.OutcomeUnreachable],
		counts[crawler.OutcomeNoAuthFlow], counts[crawler.OutcomeSignupBlocked],
		counts[crawler.OutcomeCaptcha], counts[crawler.OutcomePartial],
		counts[crawler.OutcomeTimeout], counts[crawler.OutcomeCrashed])
	if captureHighWater >= 0 {
		fmt.Fprintf(os.Stderr, "records: %d  inbox mails: %d  spam mails: %d  capture high-water: %d sites\n",
			totalRecords, ds.Mailbox.Count("inbox"), ds.Mailbox.Count("spam"), captureHighWater)
	} else {
		fmt.Fprintf(os.Stderr, "records: %d  inbox mails: %d  spam mails: %d\n",
			totalRecords, ds.Mailbox.Count("inbox"), ds.Mailbox.Count("spam"))
	}
	if faulty {
		attempts, retried, failed := 0, 0, 0
		for _, c := range ds.Crawls {
			attempts += c.Attempts
			retried += c.Retries
			failed += c.FailedFetches
		}
		fmt.Fprintf(os.Stderr, "fetch attempts: %d  retries: %d  failed fetches: %d\n",
			attempts, retried, failed)
	}
}

// shardCrawlerOptions is the crawl-knob subset a sharded run forwards
// to its workers: the shard runtime owns sites, checkpoints and
// quarantine paths, so only the behavioural knobs pass through.
func shardCrawlerOptions(common *cliflags.Common, rt *cliflags.Runtime) crawler.Options {
	return crawler.Options{
		Policy:      resilience.Policy{MaxAttempts: common.Retries},
		SiteTimeout: common.SiteTimeout,
		Obs:         rt.Observer,
	}
}

// workerRun executes one shard worker: crawl + detect over the shard's
// interleaved site slice, checkpointed, ending in the shard's verified
// result file under -shard-dir. The supervisor (or a later
// merge) picks the file up; the worker itself writes no dataset.
func workerRun(ctx context.Context, study *piileak.Study, common *cliflags.Common, rt *cliflags.Runtime, shardIdx, shardN int) {
	if o := rt.Observer; o != nil {
		o.SetInfo(obs.RunInfo{
			EcoSeed:      study.Eco.Config.Seed,
			Browser:      study.Config.Browser.Name + " " + study.Config.Browser.Version,
			Sites:        (study.Eco.Universe().Len() + shardN - 1 - shardIdx) / shardN,
			CrawlWorkers: common.Workers,
			Streamed:     true,
			Shards:       shardN,
			Shard:        fmt.Sprintf("%d/%d", shardIdx, shardN),
		})
	}
	path, err := shard.RunWorker(ctx, study.Eco, study.Config.Browser, study.Detector, shard.WorkerConfig{
		Shard:         shardIdx,
		Shards:        shardN,
		Dir:           common.ShardDir,
		Workers:       common.Workers,
		DetectWorkers: common.EffectiveDetectWorkers(),
		Options:       shardCrawlerOptions(common, rt),
		QuarantineDir: common.QuarantineDir,
		QuarantineMax: common.QuarantineMax,
		Checkpoint:    common.Checkpoint,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			ckpt := common.Checkpoint
			if ckpt == "" {
				ckpt = shard.CheckpointPath(common.ShardDir, shardIdx, shardN)
			}
			cliflags.ExitInterrupted(prog, ckpt)
		}
		fatal(err)
	}
	if err := common.WriteTelemetry(rt); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: shard %d/%d complete: %s\n", prog, shardIdx, shardN, path)
}

// superviseRun runs the full sharded study under the self-healing
// supervisor and writes the merged leak list (the -stream output
// shape). A partial merge — some shard exhausted its restarts — still
// writes the surviving leaks; the gaps are in the report.
func superviseRun(ctx context.Context, study *piileak.Study, common *cliflags.Common, rt *cliflags.Runtime, out string) {
	sopts := shard.Options{
		Shards:        common.Shards,
		Dir:           common.ShardDir,
		Workers:       common.Workers,
		DetectWorkers: common.EffectiveDetectWorkers(),
		Crawl:         shardCrawlerOptions(common, rt),
		QuarantineDir: common.QuarantineDir,
		QuarantineMax: common.QuarantineMax,
		MaxRestarts:   common.MaxRestarts,
		Obs:           rt.Observer,
		Fresh:         !common.Resume,
		StallTimeout:  common.StallTimeout,
	}
	if common.Reexec {
		exe, err := os.Executable()
		if err != nil {
			fatal(err)
		}
		sopts.Command = func(s int) *exec.Cmd {
			// The supervisor owns the worker's lifetime: its stall
			// watchdog kills the process, and the per-attempt ctx does
			// not exist when this factory runs.
			cmd := exec.Command(exe, common.ShardWorkerArgs(s)...) //lint:allow ctxflow supervisor kills the worker itself; per-attempt ctx unavailable here
			cmd.Stderr = os.Stderr
			return cmd
		}
	}
	report, err := study.RunSharded(ctx, sopts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "%s: interrupted: shard state under %s is valid; continue with -resume\n", prog, common.ShardDir)
			os.Exit(0)
		}
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "%s: %d/%d shards merged, %d sites, %d leaks\n",
		prog, len(report.Completed), report.Shards, report.MergedSites, report.Leaks)
	if report.Partial {
		for _, m := range report.Missing {
			fmt.Fprintf(os.Stderr, "%s: shard %d missing after %d attempt(s): %d site(s) not in the tables (see %s)\n",
				prog, m.Shard, m.Attempts, len(m.Sites), shard.ReportPath(common.ShardDir))
		}
	}
	if err := common.WriteTelemetry(rt); err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(study.Leaks); err != nil {
		fatal(err)
	}
}

// streamRun executes the fused crawl+detect pipeline through the
// study's Run API and writes the detected leaks (indented JSON, same
// shape as Study.WriteLeaksJSON).
func streamRun(ctx context.Context, study *piileak.Study, common *cliflags.Common, rt *cliflags.Runtime, out string, funnel bool) {
	opts := common.RunOptions(rt, prog, cliflags.ProgressPrinter(prog, os.Stderr))
	if err := study.Run(ctx, opts...); err != nil {
		if errors.Is(err, context.Canceled) {
			cliflags.ExitInterrupted(prog, common.Checkpoint)
		}
		fatal(err)
	}

	if funnel {
		printFunnel(study.Dataset, study.TotalRecords(), study.Result.Stats.CaptureHighWater, common.Faults > 0)
	}
	cliflags.PrintQuarantine(prog, rt.Quarantine)
	if err := common.WriteTelemetry(rt); err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(study.Leaks); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, prog+":", err)
	os.Exit(1)
}
