// Command piicrawl runs the §3.2 data collection over the synthetic
// ecosystem and writes the captured traffic as a JSON dataset, which the
// other tools consume.
//
// Usage:
//
//	piicrawl [-seed N] [-small] [-browser firefox|chrome|brave] [-o dataset.json]
//	         [-workers N] [-funnel] [-stream] [-only domains]
//	         [-faults RATE] [-fault-seed N] [-retries N]
//	         [-site-timeout D] [-quarantine dir]
//	         [-checkpoint file] [-resume]
//
// -faults opts the substrate into deterministic fault injection (a
// fraction RATE of hosts become flaky, degrading or dead) and the crawl
// into the resilient runtime: retries with backoff, per-host circuit
// breakers, and partial records instead of dropped sites. -checkpoint
// persists per-site progress; -resume continues a killed run from that
// file, producing the same dataset an uninterrupted run would have.
// -site-timeout caps each site's crawl budget (on the run's clock, so
// fault-injected virtual time counts); sites over budget are recorded as
// "timeout" with their partial captures. -quarantine names a directory
// that collects diagnostics bundles for sites whose crawl or detection
// panicked; the study continues without them and -only re-runs them
// individually.
//
// Shutdown is crash-only: the first SIGINT/SIGTERM cancels the run —
// the site in flight is dropped, finished sites stay checkpointed, and
// the process exits 0 with a valid, resumable checkpoint. A second
// signal hard-exits immediately.
//
// -stream fuses crawl and detection into the streaming pipeline:
// per-site captures are scanned as they complete and released
// immediately, per-stage progress counters go to stderr, and the output
// is the detected leak list (identical to piidetect's over a full
// dataset) instead of the dataset — the captures are never all in
// memory, so there is no dataset to write.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/pii"
	"piileak/internal/pipeline"
	"piileak/internal/resilience"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	browserName := flag.String("browser", "firefox", "collection browser: firefox, chrome, opera, safari, firefox-etp, brave")
	out := flag.String("o", "", "output dataset path (default stdout)")
	funnel := flag.Bool("funnel", false, "print the §3.2 funnel summary to stderr")
	workers := flag.Int("workers", 0, "parallel crawl workers (0 = serial)")
	faults := flag.Float64("faults", 0, "fraction of hosts made faulty (0 disables fault injection)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault-injection seed (default: the ecosystem seed)")
	retries := flag.Int("retries", 0, "max fetch attempts per request under faults (default 4)")
	siteTimeout := flag.Duration("site-timeout", 0, "per-site watchdog budget on the run's clock (0 disables)")
	quarantineDir := flag.String("quarantine", "", "directory collecting diagnostics for panicked sites")
	only := flag.String("only", "", "comma-separated site domains to crawl (e.g. re-running quarantined sites)")
	checkpoint := flag.String("checkpoint", "", "write per-site progress to this file")
	resume := flag.Bool("resume", false, "resume a previous run from -checkpoint")
	stream := flag.Bool("stream", false, "fuse crawl+detect: stream captures through detection, output leaks")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	if *small {
		cfg = webgen.SmallConfig(*seed)
	}
	cfg.Seed = *seed
	if *faults < 0 || *faults > 1 {
		fatal(fmt.Errorf("-faults %v out of range [0, 1]", *faults))
	}
	if *faults > 0 {
		cfg.Faults = &faultsim.Config{Seed: *faultSeed, Rate: *faults}
	}
	if *resume && *checkpoint == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	eco, err := webgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	var profile browser.Profile
	switch *browserName {
	case "firefox":
		profile = browser.Firefox88()
	case "chrome":
		profile = browser.Chrome93()
	case "opera":
		profile = browser.Opera79()
	case "safari":
		profile = browser.Safari14()
	case "firefox-etp":
		profile = browser.Firefox88ETP(eco.BraveShields)
	case "brave":
		profile = browser.Brave129(eco.BraveShields)
	default:
		fatal(fmt.Errorf("unknown browser %q", *browserName))
	}

	var quarantine *crawler.Quarantine
	if *quarantineDir != "" {
		quarantine, err = crawler.NewQuarantine(*quarantineDir)
		if err != nil {
			fatal(err)
		}
	}

	copts := crawler.Options{
		Policy:         resilience.Policy{MaxAttempts: *retries},
		SiteTimeout:    *siteTimeout,
		Quarantine:     quarantine,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		OnResume: func(rs crawler.ResumeSummary) {
			fmt.Fprintf(os.Stderr, "piicrawl: resume: %d sites loaded from checkpoint, %d torn records dropped\n",
				rs.Completed, rs.TornRecords)
		},
	}
	if *only != "" {
		copts.Sites, err = selectSites(eco, *only)
		if err != nil {
			fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	installSignalHandler(cancel)

	if *stream {
		streamRun(ctx, eco, profile, copts, *workers, *out, *checkpoint, *funnel, *faults > 0)
		return
	}

	copts.Workers = *workers
	ds, err := crawler.CrawlOpts(ctx, eco, profile, copts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			exitInterrupted(*checkpoint)
		}
		fatal(err)
	}

	if *funnel {
		printFunnel(ds, ds.TotalRecords(), -1, *faults > 0)
	}
	printQuarantine(quarantine)

	if *out != "" {
		if err := ds.WriteJSONFile(*out); err != nil {
			fatal(err)
		}
		return
	}
	if err := ds.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

// selectSites resolves a -only domain list against the ecosystem.
func selectSites(eco *webgen.Ecosystem, only string) ([]*site.Site, error) {
	want := map[string]bool{}
	for _, d := range strings.Split(only, ",") {
		if d = strings.TrimSpace(d); d != "" {
			want[d] = true
		}
	}
	var sel []*site.Site
	for _, s := range eco.Sites {
		if want[s.Domain] {
			sel = append(sel, s)
			delete(want, s.Domain)
		}
	}
	if len(want) > 0 {
		var missing []string
		for d := range want {
			missing = append(missing, d)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("-only: unknown site domains: %s", strings.Join(missing, ", "))
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("-only: no sites selected")
	}
	return sel, nil
}

// installSignalHandler wires crash-only shutdown: the first
// SIGINT/SIGTERM cancels the run and bounds the drain on the wall
// clock; a second signal (or a drain overrun) hard-exits.
func installSignalHandler(cancel context.CancelFunc) {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "piicrawl: interrupted: draining workers and flushing the checkpoint (signal again to hard-exit)")
		cancel()
		// Shutdown grace is genuinely wall time — a hung worker must
		// not turn Ctrl-C into an indefinite hang.
		grace, stop := context.WithTimeout(context.Background(), 30*time.Second) //lint:allow detrand CLI shutdown grace is wall time by design
		defer stop()
		select {
		case <-sigc:
			fmt.Fprintln(os.Stderr, "piicrawl: second signal: hard exit")
		case <-grace.Done():
			fmt.Fprintln(os.Stderr, "piicrawl: drain exceeded 30s grace: hard exit")
		}
		os.Exit(130)
	}()
}

// exitInterrupted reports a cancelled run. With a checkpoint the exit is
// the crash-only success path: progress is on disk and resumable.
func exitInterrupted(checkpoint string) {
	if checkpoint != "" {
		fmt.Fprintf(os.Stderr, "piicrawl: interrupted: checkpoint %s is valid; continue with -resume -checkpoint %s\n",
			checkpoint, checkpoint)
		os.Exit(0)
	}
	fmt.Fprintln(os.Stderr, "piicrawl: interrupted: no checkpoint, progress lost (use -checkpoint for resumable runs)")
	os.Exit(1)
}

// printFunnel writes the §3.2 funnel summary. captureHighWater < 0
// means the batch path (no high-water gauge).
func printFunnel(ds *crawler.Dataset, totalRecords, captureHighWater int, faulty bool) {
	counts := ds.FunnelCounts()
	fmt.Fprintf(os.Stderr, "sites: %d  success: %d  unreachable: %d  no-auth: %d  signup-blocked: %d  captcha: %d  partial: %d  timeout: %d  crashed: %d\n",
		len(ds.Crawls), counts[crawler.OutcomeSuccess], counts[crawler.OutcomeUnreachable],
		counts[crawler.OutcomeNoAuthFlow], counts[crawler.OutcomeSignupBlocked],
		counts[crawler.OutcomeCaptcha], counts[crawler.OutcomePartial],
		counts[crawler.OutcomeTimeout], counts[crawler.OutcomeCrashed])
	if captureHighWater >= 0 {
		fmt.Fprintf(os.Stderr, "records: %d  inbox mails: %d  spam mails: %d  capture high-water: %d sites\n",
			totalRecords, ds.Mailbox.Count("inbox"), ds.Mailbox.Count("spam"), captureHighWater)
	} else {
		fmt.Fprintf(os.Stderr, "records: %d  inbox mails: %d  spam mails: %d\n",
			totalRecords, ds.Mailbox.Count("inbox"), ds.Mailbox.Count("spam"))
	}
	if faulty {
		attempts, retried, failed := 0, 0, 0
		for _, c := range ds.Crawls {
			attempts += c.Attempts
			retried += c.Retries
			failed += c.FailedFetches
		}
		fmt.Fprintf(os.Stderr, "fetch attempts: %d  retries: %d  failed fetches: %d\n",
			attempts, retried, failed)
	}
}

// printQuarantine lists quarantined sites; the study still succeeded,
// so this is a report, not an error.
func printQuarantine(q *crawler.Quarantine) {
	if q.Len() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "piicrawl: %d site(s) quarantined (see %s): %s\n",
		q.Len(), q.ManifestPath(), strings.Join(q.Sites(), ", "))
	fmt.Fprintf(os.Stderr, "piicrawl: re-run them individually with -only %s\n", strings.Join(q.Sites(), ","))
}

// streamRun executes the fused crawl+detect pipeline and writes the
// detected leaks (indented JSON, same shape as Study.WriteLeaksJSON).
func streamRun(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, copts crawler.Options, workers int, out, checkpoint string, funnel, faulty bool) {
	cs, err := pii.BuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		fatal(err)
	}
	det := core.NewDetector(cs, dnssim.NewClassifier(eco.Zone))

	crawled := 0
	res, err := pipeline.Run(ctx, eco, profile, det, pipeline.Options{
		CrawlWorkers:  workers,
		DetectWorkers: workers,
		Crawl:         copts,
		Progress: func(ev pipeline.Event) {
			if ev.Stage == "crawl" {
				crawled = ev.Done
				return
			}
			if ev.Done%25 == 0 || ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "piicrawl: crawl %d/%d  detect %d/%d  leaks %d\n",
					crawled, ev.Total, ev.Done, ev.Total, ev.Leaks)
			}
		},
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			exitInterrupted(checkpoint)
		}
		fatal(err)
	}

	if funnel {
		printFunnel(res.Dataset, res.TotalRecords, res.Stats.CaptureHighWater, faulty)
	}
	printQuarantine(copts.Quarantine)

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(res.Leaks); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piicrawl:", err)
	os.Exit(1)
}
