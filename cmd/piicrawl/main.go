// Command piicrawl runs the §3.2 data collection over the synthetic
// ecosystem and writes the captured traffic as a JSON dataset, which the
// other tools consume.
//
// Usage:
//
//	piicrawl [-seed N] [-small] [-browser firefox|chrome|brave] [-o dataset.json] [-funnel]
package main

import (
	"flag"
	"fmt"
	"os"

	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/webgen"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	browserName := flag.String("browser", "firefox", "collection browser: firefox, chrome, opera, safari, firefox-etp, brave")
	out := flag.String("o", "", "output dataset path (default stdout)")
	funnel := flag.Bool("funnel", false, "print the §3.2 funnel summary to stderr")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	if *small {
		cfg = webgen.SmallConfig(*seed)
	}
	cfg.Seed = *seed

	eco, err := webgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	var profile browser.Profile
	switch *browserName {
	case "firefox":
		profile = browser.Firefox88()
	case "chrome":
		profile = browser.Chrome93()
	case "opera":
		profile = browser.Opera79()
	case "safari":
		profile = browser.Safari14()
	case "firefox-etp":
		profile = browser.Firefox88ETP(eco.BraveShields)
	case "brave":
		profile = browser.Brave129(eco.BraveShields)
	default:
		fatal(fmt.Errorf("unknown browser %q", *browserName))
	}

	ds := crawler.Crawl(eco, profile)

	if *funnel {
		counts := ds.FunnelCounts()
		fmt.Fprintf(os.Stderr, "sites: %d  success: %d  unreachable: %d  no-auth: %d  signup-blocked: %d  captcha: %d\n",
			len(ds.Crawls), counts[crawler.OutcomeSuccess], counts[crawler.OutcomeUnreachable],
			counts[crawler.OutcomeNoAuthFlow], counts[crawler.OutcomeSignupBlocked], counts[crawler.OutcomeCaptcha])
		fmt.Fprintf(os.Stderr, "records: %d  inbox mails: %d  spam mails: %d\n",
			ds.TotalRecords(), ds.Mailbox.Count("inbox"), ds.Mailbox.Count("spam"))
	}

	if *out != "" {
		if err := ds.WriteJSONFile(*out); err != nil {
			fatal(err)
		}
		return
	}
	if err := ds.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piicrawl:", err)
	os.Exit(1)
}
