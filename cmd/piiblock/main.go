// Command piiblock runs the §7.2 blocklist evaluation (Table 4) against
// the ecosystem's EasyList/EasyPrivacy corpora, or against custom filter
// lists supplied on the command line.
//
// Usage:
//
//	piiblock [-seed N] [-small] [-easylist file] [-easyprivacy file]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"piileak"
	"piileak/internal/countermeasure"
	"piileak/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	elPath := flag.String("easylist", "", "custom EasyList file (default: the ecosystem's corpus)")
	epPath := flag.String("easyprivacy", "", "custom EasyPrivacy file (default: the ecosystem's corpus)")
	flag.Parse()

	cfg := piileak.DefaultConfig()
	if *small {
		cfg = piileak.SmallConfig(*seed)
	}
	cfg.Ecosystem.Seed = *seed

	study, err := piileak.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	if err := study.Run(context.Background()); err != nil {
		fatal(err)
	}

	elText := study.Eco.EasyListText
	epText := study.Eco.EasyPrivacyText
	if *elPath != "" {
		b, err := os.ReadFile(*elPath)
		if err != nil {
			fatal(err)
		}
		elText = string(b)
	}
	if *epPath != "" {
		b, err := os.ReadFile(*epPath)
		if err != nil {
			fatal(err)
		}
		epText = string(b)
	}

	lists, err := countermeasure.ParseLists(elText, epText)
	if err != nil {
		fatal(err)
	}
	cls, err := study.Tracking()
	if err != nil {
		fatal(err)
	}
	var trackers []string
	for _, tr := range cls.Trackers {
		trackers = append(trackers, tr.Receiver)
	}
	t4 := countermeasure.EvaluateBlocklists(study.Leaks, study.Dataset, lists, trackers)
	fmt.Println(report.Table4(t4))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piiblock:", err)
	os.Exit(1)
}
