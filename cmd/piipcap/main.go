// Command piipcap exports a piicrawl dataset as a classic libpcap
// capture: every recorded HTTP exchange becomes a synthesized TCP
// connection over Ethernet/IPv4, openable in Wireshark or tcpdump.
//
// Usage:
//
//	piicrawl -o ds.json && piipcap -i ds.json -o crawl.pcap
//	piipcap -i ds.json -site urbanmarket.com -o one-site.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"piileak/internal/crawler"
	"piileak/internal/pcap"
)

func main() {
	in := flag.String("i", "", "input dataset path (default stdin)")
	out := flag.String("o", "", "output pcap path (default stdout)")
	site := flag.String("site", "", "export only this site's crawl")
	flag.Parse()

	var ds *crawler.Dataset
	var err error
	if *in != "" {
		ds, err = crawler.ReadJSONFile(*in)
	} else {
		ds, err = crawler.ReadJSON(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	closeOut := func() error { return nil }
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		closeOut = f.Close
		w = f
	}

	pw := pcap.NewWriter(w)
	exchanges := 0
	for i := range ds.Crawls {
		c := &ds.Crawls[i]
		if *site != "" && c.Domain != *site {
			continue
		}
		if err := pw.WriteRecords(c.Records); err != nil {
			fatal(err)
		}
		exchanges += len(c.Records)
	}
	if *site != "" && exchanges == 0 {
		fatal(fmt.Errorf("site %q not in the dataset", *site))
	}
	// Close errors matter here: the pcap lives in kernel buffers until
	// the file is flushed, and a silent failure hands the user a
	// truncated capture.
	if err := closeOut(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "piipcap: %d HTTP exchanges exported\n", exchanges)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piipcap:", err)
	os.Exit(1)
}
