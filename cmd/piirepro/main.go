// Command piirepro runs the full reproduction: it generates the
// paper-calibrated ecosystem, performs the §3.2 crawl, and regenerates
// every table and figure of the paper's evaluation with paper-vs-measured
// comparisons — the contents of EXPERIMENTS.md.
//
// Usage:
//
//	piirepro [-seed N] [-small] [-experiments E1,E6,E10] [-stream] [-workers N]
//
// -stream runs the fused crawl+detect pipeline: captures are released
// after detection (peak memory stays bounded), every table is identical
// to the batch run's, and the few ablations that rescan raw captures
// (A1, A2, A3, A5) are skipped with a note.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piileak"
	"piileak/internal/pipeline"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	only := flag.String("experiments", "", "comma-separated experiment IDs (default: all)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable summary instead of text reports")
	stream := flag.Bool("stream", false, "fuse crawl+detect and release captures after detection")
	workers := flag.Int("workers", 0, "parallel crawl/detect workers (0 = serial)")
	flag.Parse()

	cfg := piileak.DefaultConfig()
	if *small {
		cfg = piileak.SmallConfig(*seed)
	}
	cfg.Ecosystem.Seed = *seed
	cfg.Workers = *workers

	study, err := piileak.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	installSignalHandler(cancel)

	fmt.Fprintf(os.Stderr, "piirepro: crawling %d candidate sites with %s...\n",
		len(study.Eco.Sites), cfg.Browser.Name)
	if *stream {
		crawled := 0
		err = study.RunStreamContext(ctx, pipeline.Options{
			Progress: func(ev pipeline.Event) {
				if ev.Stage == "crawl" {
					crawled = ev.Done
					return
				}
				if ev.Done%25 == 0 || ev.Done == ev.Total {
					fmt.Fprintf(os.Stderr, "piirepro: crawl %d/%d  detect %d/%d  leaks %d\n",
						crawled, ev.Total, ev.Done, ev.Total, ev.Leaks)
				}
			},
		})
	} else {
		err = study.RunContext(ctx)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "piirepro: interrupted: crawl cancelled before completion; nothing written")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "piirepro: %d records captured, %d leaks detected\n",
		study.TotalRecords(), len(study.Leaks))

	if *jsonOut {
		if err := study.WriteSummaryJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, e := range piileak.Experiments() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		if *stream && e.NeedsCaptures && !wanted[e.ID] {
			fmt.Printf("==== %s — %s ====\n\nSKIPPED: rescans raw captures, which the streamed run released\n\n", e.ID, e.Title)
			continue
		}
		fmt.Printf("==== %s — %s ====\n\n", e.ID, e.Title)
		out, err := e.Run(study)
		if err != nil {
			failed = true
			fmt.Printf("ERROR: %v\n\n", err)
			continue
		}
		fmt.Println(out)
	}
	if failed {
		os.Exit(1)
	}
}

// installSignalHandler wires crash-only shutdown: the first
// SIGINT/SIGTERM cancels the run (workers drain, the site in flight is
// dropped); a second signal or an overrun drain hard-exits.
func installSignalHandler(cancel context.CancelFunc) {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "piirepro: interrupted: draining workers (signal again to hard-exit)")
		cancel()
		// Shutdown grace is genuinely wall time — a hung worker must
		// not turn Ctrl-C into an indefinite hang.
		grace, stop := context.WithTimeout(context.Background(), 30*time.Second) //lint:allow detrand CLI shutdown grace is wall time by design
		defer stop()
		select {
		case <-sigc:
			fmt.Fprintln(os.Stderr, "piirepro: second signal: hard exit")
		case <-grace.Done():
			fmt.Fprintln(os.Stderr, "piirepro: drain exceeded 30s grace: hard exit")
		}
		os.Exit(130)
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piirepro:", err)
	os.Exit(1)
}
