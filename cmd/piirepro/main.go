// Command piirepro runs the full reproduction: it generates the
// paper-calibrated ecosystem, performs the §3.2 crawl, and regenerates
// every table and figure of the paper's evaluation with paper-vs-measured
// comparisons — the contents of EXPERIMENTS.md.
//
// Usage:
//
//	piirepro [-seed N] [-small] [-experiments E1,E6,E10] [-stream] [-workers N]
//	         [-browser NAME] [-faults RATE] [-fault-seed N] [-retries N]
//	         [-site-timeout D] [-quarantine dir] [-only domains]
//	         [-checkpoint file] [-resume]
//	         [-metrics out.json] [-trace out.jsonl] [-pprof addr]
//
// piirepro shares piicrawl's full flag surface (internal/cliflags): the
// crash-only runtime's knobs (-site-timeout, -quarantine, -checkpoint,
// -resume, -only), deterministic fault injection (-faults), alternate
// collection browsers (-browser), and the telemetry outputs. -metrics
// and -trace attach the deterministic observer — the tables are
// byte-identical with telemetry on or off, and two identically-seeded
// runs write identical telemetry files.
//
// -stream runs the fused crawl+detect pipeline: captures are released
// after detection (peak memory stays bounded), every table is identical
// to the batch run's, and the few ablations that rescan raw captures
// (A1, A2, A3, A5) are skipped with a note.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"piileak"
	"piileak/internal/cliflags"
)

const prog = "piirepro"

func main() {
	common := cliflags.Register(flag.CommandLine)
	only := flag.String("experiments", "", "comma-separated experiment IDs (default: all)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable summary instead of text reports")
	flag.Parse()

	if err := common.Validate(); err != nil {
		fatal(err)
	}
	if err := common.StartPprof(prog); err != nil {
		fatal(err)
	}

	study, err := piileak.NewStudy(common.StudyConfig())
	if err != nil {
		fatal(err)
	}
	profile, err := common.ResolveProfile(study.Eco)
	if err != nil {
		fatal(err)
	}
	study.Config.Browser = profile
	rt, err := common.Runtime(study.Eco)
	if err != nil {
		fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cliflags.InstallSignalHandler(prog, cancel)

	fmt.Fprintf(os.Stderr, "piirepro: crawling %d candidate sites with %s...\n",
		study.Eco.Universe().Len(), profile.Name)
	var progress func(piileak.Event)
	if common.Stream {
		progress = cliflags.ProgressPrinter(prog, os.Stderr)
	}
	err = study.Run(ctx, common.RunOptions(rt, prog, progress)...)
	if errors.Is(err, context.Canceled) {
		if common.Checkpoint != "" {
			fmt.Fprintf(os.Stderr, "piirepro: interrupted: checkpoint %s is valid; continue with -resume -checkpoint %s\n",
				common.Checkpoint, common.Checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "piirepro: interrupted: crawl cancelled before completion; nothing written")
		}
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "piirepro: %d records captured, %d leaks detected\n",
		study.TotalRecords(), len(study.Leaks))
	cliflags.PrintQuarantine(prog, rt.Quarantine)
	if err := common.WriteTelemetry(rt); err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := study.WriteSummaryJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, e := range piileak.Experiments() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		if common.Stream && e.NeedsCaptures && !wanted[e.ID] {
			fmt.Printf("==== %s — %s ====\n\nSKIPPED: rescans raw captures, which the streamed run released\n\n", e.ID, e.Title)
			continue
		}
		fmt.Printf("==== %s — %s ====\n\n", e.ID, e.Title)
		out, err := e.Run(study)
		if err != nil {
			failed = true
			fmt.Printf("ERROR: %v\n\n", err)
			continue
		}
		fmt.Println(out)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, prog+":", err)
	os.Exit(1)
}
