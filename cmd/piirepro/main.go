// Command piirepro runs the full reproduction: it generates the
// paper-calibrated ecosystem, performs the §3.2 crawl, and regenerates
// every table and figure of the paper's evaluation with paper-vs-measured
// comparisons — the contents of EXPERIMENTS.md.
//
// Usage:
//
//	piirepro [-seed N] [-small] [-experiments E1,E6,E10] [-stream] [-workers N]
//
// -stream runs the fused crawl+detect pipeline: captures are released
// after detection (peak memory stays bounded), every table is identical
// to the batch run's, and the few ablations that rescan raw captures
// (A1, A2, A3, A5) are skipped with a note.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"piileak"
	"piileak/internal/pipeline"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	only := flag.String("experiments", "", "comma-separated experiment IDs (default: all)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable summary instead of text reports")
	stream := flag.Bool("stream", false, "fuse crawl+detect and release captures after detection")
	workers := flag.Int("workers", 0, "parallel crawl/detect workers (0 = serial)")
	flag.Parse()

	cfg := piileak.DefaultConfig()
	if *small {
		cfg = piileak.SmallConfig(*seed)
	}
	cfg.Ecosystem.Seed = *seed
	cfg.Workers = *workers

	study, err := piileak.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "piirepro: crawling %d candidate sites with %s...\n",
		len(study.Eco.Sites), cfg.Browser.Name)
	if *stream {
		crawled := 0
		err = study.RunStream(pipeline.Options{
			Progress: func(ev pipeline.Event) {
				if ev.Stage == "crawl" {
					crawled = ev.Done
					return
				}
				if ev.Done%25 == 0 || ev.Done == ev.Total {
					fmt.Fprintf(os.Stderr, "piirepro: crawl %d/%d  detect %d/%d  leaks %d\n",
						crawled, ev.Total, ev.Done, ev.Total, ev.Leaks)
				}
			},
		})
	} else {
		err = study.Run()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "piirepro: %d records captured, %d leaks detected\n",
		study.TotalRecords(), len(study.Leaks))

	if *jsonOut {
		if err := study.WriteSummaryJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, e := range piileak.Experiments() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		if *stream && e.NeedsCaptures && !wanted[e.ID] {
			fmt.Printf("==== %s — %s ====\n\nSKIPPED: rescans raw captures, which the streamed run released\n\n", e.ID, e.Title)
			continue
		}
		fmt.Printf("==== %s — %s ====\n\n", e.ID, e.Title)
		out, err := e.Run(study)
		if err != nil {
			failed = true
			fmt.Printf("ERROR: %v\n\n", err)
			continue
		}
		fmt.Println(out)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piirepro:", err)
	os.Exit(1)
}
