// Command piidetect runs the §4 leak detection and prints the headline
// statistics, the Table 1 breakdowns and Figure 2.
//
// It consumes either a piicrawl dataset or a real browser capture in HAR
// format:
//
//	piicrawl -o ds.json && piidetect -i ds.json [-depth 2] [-top 15]
//	piidetect -har capture.har -site myshop.example [-persona persona.json]
//
// The persona JSON mirrors the pii.Persona fields; without it the
// study's default persona is used.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/har"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/report"
)

func main() {
	in := flag.String("i", "", "input dataset path (default stdin)")
	harPath := flag.String("har", "", "input HAR capture instead of a dataset")
	siteDomain := flag.String("site", "", "first-party registrable domain for -har input")
	personaPath := flag.String("persona", "", "persona JSON for -har input (default: study persona)")
	depth := flag.Int("depth", 2, "candidate-chain depth; 2 covers every chain the paper observed, 3 builds a very large token set")
	top := flag.Int("top", 15, "Figure 2 receiver count")
	leaksOut := flag.String("leaks", "", "also write the raw leak records as JSON to this path")
	flag.Parse()

	// Sites are kept as an ordered slice (dataset order), not a map:
	// the -leaks output must be deterministic across runs.
	type siteRecords struct {
		domain  string
		records []httpmodel.Record
	}
	var (
		persona pii.Persona
		sites   []siteRecords
		nSites  int
		zone    = dnssim.NewZone()
	)

	switch {
	case *harPath != "":
		if *siteDomain == "" {
			fatal(fmt.Errorf("-har requires -site (the first-party registrable domain)"))
		}
		records, err := har.ParseFile(*harPath)
		if err != nil {
			fatal(err)
		}
		persona = pii.Default()
		if *personaPath != "" {
			b, err := os.ReadFile(*personaPath)
			if err != nil {
				fatal(err)
			}
			if err := json.Unmarshal(b, &persona); err != nil {
				fatal(fmt.Errorf("parsing persona: %w", err))
			}
		}
		sites = []siteRecords{{*siteDomain, records}}
		nSites = 1
	default:
		var ds *crawler.Dataset
		var err error
		if *in != "" {
			ds, err = crawler.ReadJSONFile(*in)
		} else {
			ds, err = crawler.ReadJSON(os.Stdin)
		}
		if err != nil {
			fatal(err)
		}
		persona = ds.Persona
		zone = ds.Zone()
		for _, c := range ds.Successes() {
			sites = append(sites, siteRecords{c.Domain, c.Records})
		}
		nSites = len(sites)
	}

	cs, err := pii.BuildCandidates(persona, pii.CandidateConfig{MaxDepth: *depth})
	if err != nil {
		fatal(err)
	}
	det := core.NewDetector(cs, dnssim.NewClassifier(zone))

	var leaks []core.Leak
	for _, s := range sites {
		leaks = append(leaks, det.DetectSite(s.domain, s.records)...)
	}
	a := core.Analyze(leaks, nSites)

	if *leaksOut != "" {
		f, err := os.Create(*leaksOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(leaks); err != nil {
			fatal(err)
		}
		f.Close()
	}

	fmt.Println(report.Headline(a.Headline()))
	fmt.Println(report.Breakdown("Table 1a — by method", a.ByMethod(), len(a.Senders), len(a.Receivers)))
	fmt.Println(report.Breakdown("Table 1b — by encoding/hashing", a.ByEncoding(), len(a.Senders), len(a.Receivers)))
	fmt.Println(report.Breakdown("Table 1c — by PII type", a.ByPIIType(), len(a.Senders), len(a.Receivers)))
	fmt.Println(report.Figure2(a.TopReceivers(*top)))

	if *harPath != "" {
		for _, l := range leaks {
			cloak := ""
			if l.Cloaked {
				cloak = " (CNAME-cloaked)"
			}
			fmt.Printf("leak: %-9s -> %s%s  %s of %s in %q (%s)\n",
				l.Method, l.Receiver, cloak, l.EncodingLabel(), l.Token.Field.Type, l.Param, l.RequestURL)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piidetect:", err)
	os.Exit(1)
}
