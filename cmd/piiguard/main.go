// Command piiguard runs the §7.1 browser-countermeasure evaluation:
// it re-crawls the sender sites under every browser profile and reports
// how much PII leakage each one prevents.
//
// Usage:
//
//	piiguard [-seed N] [-small]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"piileak"
	"piileak/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	flag.Parse()

	cfg := piileak.DefaultConfig()
	if *small {
		cfg = piileak.SmallConfig(*seed)
	}
	cfg.Ecosystem.Seed = *seed

	study, err := piileak.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	results := study.EvaluateBrowsers()
	fmt.Println(report.Browsers(results))
	for _, r := range results {
		if len(r.MissedReceivers) > 0 {
			fmt.Printf("%s still leaks to: %s\n", r.Browser, strings.Join(r.MissedReceivers, ", "))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piiguard:", err)
	os.Exit(1)
}
