// Command piitrack runs the §5.2 persistent-tracking classification over
// a captured dataset and prints Table 2 plus the receiver census.
//
// Usage:
//
//	piicrawl -o ds.json && piitrack -i ds.json
package main

import (
	"flag"
	"fmt"
	"os"

	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/pii"
	"piileak/internal/report"
	"piileak/internal/tracking"
)

func main() {
	in := flag.String("i", "", "input dataset path (default stdin)")
	depth := flag.Int("depth", 2, "candidate-chain depth; 2 covers every chain the paper observed, 3 builds a very large token set")
	flag.Parse()

	var ds *crawler.Dataset
	var err error
	if *in != "" {
		ds, err = crawler.ReadJSONFile(*in)
	} else {
		ds, err = crawler.ReadJSON(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	cs, err := pii.BuildCandidates(ds.Persona, pii.CandidateConfig{MaxDepth: *depth})
	if err != nil {
		fatal(err)
	}
	det := core.NewDetector(cs, dnssim.NewClassifier(ds.Zone()))

	var leaks []core.Leak
	for _, c := range ds.Successes() {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}
	cls := tracking.Classify(leaks)

	fmt.Println(report.Table2(cls.Trackers))
	fmt.Printf("receivers with the same ID from >1 sender: %d\n", cls.MultiSenderID)
	fmt.Printf("multi-sender receivers:                    %d\n", cls.MultiSender)
	fmt.Printf("single-sender receivers:                   %d\n", cls.SingleSender)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piitrack:", err)
	os.Exit(1)
}
