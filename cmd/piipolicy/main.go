// Command piipolicy runs the §6 transparency audit: it generates the
// ecosystem, detects the sender population, and classifies every
// sender's privacy policy (Table 3). With -dump it also prints the
// policy text of one site.
//
// Usage:
//
//	piipolicy [-seed N] [-small] [-dump domain]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"piileak"
	"piileak/internal/policy"
	"piileak/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2021, "ecosystem seed")
	small := flag.Bool("small", false, "use the scaled-down ecosystem")
	dump := flag.String("dump", "", "print the generated policy text of this site domain")
	flag.Parse()

	cfg := piileak.DefaultConfig()
	if *small {
		cfg = piileak.SmallConfig(*seed)
	}
	cfg.Ecosystem.Seed = *seed

	study, err := piileak.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}

	if *dump != "" {
		for _, s := range study.Eco.Sites {
			if s.Domain == *dump {
				fmt.Println(policy.Generate(s))
				return
			}
		}
		fatal(fmt.Errorf("site %q not in the ecosystem", *dump))
	}

	if err := study.Run(context.Background()); err != nil {
		fatal(err)
	}
	tbl, err := study.PolicyAudit()
	if err != nil {
		fatal(err)
	}
	fmt.Println(report.Table3(tbl))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piipolicy:", err)
	os.Exit(1)
}
