package piileak

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// fullStudy runs the paper-scale study once and shares it across tests.
var fullStudy = struct {
	once  sync.Once
	study *Study
	err   error
}{}

func study(t testing.TB) *Study {
	fullStudy.once.Do(func() {
		s, err := NewStudy(DefaultConfig())
		if err == nil {
			err = s.Run(context.Background())
		}
		fullStudy.study, fullStudy.err = s, err
	})
	if fullStudy.err != nil {
		t.Fatal(fullStudy.err)
	}
	return fullStudy.study
}

func TestFullStudyFunnel(t *testing.T) {
	s := study(t)
	if got := len(s.Dataset.Crawls); got != Paper.CandidateSites {
		t.Errorf("candidate sites = %d, want %d", got, Paper.CandidateSites)
	}
	if got := len(s.Dataset.Successes()); got != Paper.CrawledSites {
		t.Errorf("crawled sites = %d, want %d", got, Paper.CrawledSites)
	}
}

func TestFullStudyHeadline(t *testing.T) {
	s := study(t)
	h := s.Analysis.Headline()
	if h.Senders != Paper.Senders {
		t.Errorf("senders = %d, want %d", h.Senders, Paper.Senders)
	}
	if h.Receivers != Paper.Receivers {
		t.Errorf("receivers = %d, want %d", h.Receivers, Paper.Receivers)
	}
	if h.LeakRate < 42.0 || h.LeakRate > 42.6 {
		t.Errorf("leak rate = %.2f%%, want 42.3%%", h.LeakRate)
	}
	// Shape bands for the distribution statistics.
	if h.LeakyRequests < 1300 || h.LeakyRequests > 1800 {
		t.Errorf("leaky requests = %d, want ≈ %d", h.LeakyRequests, Paper.LeakyRequests)
	}
	if h.MeanReceivers < 2.6 || h.MeanReceivers > 3.4 {
		t.Errorf("mean receivers = %.2f, want ≈ %.2f", h.MeanReceivers, Paper.MeanReceivers)
	}
	if h.MaxReceivers != Paper.MaxReceivers {
		t.Errorf("max receivers = %d, want %d", h.MaxReceivers, Paper.MaxReceivers)
	}
	if h.SendersAtLeast3Pc < 35 || h.SendersAtLeast3Pc > 62 {
		t.Errorf("senders ≥3 = %.1f%%, want ≈ %.1f%%", h.SendersAtLeast3Pc, Paper.SendersAtLeast3Pct)
	}
}

func TestFullStudyMethodShape(t *testing.T) {
	s := study(t)
	rows := map[string]int{}
	recvRows := map[string]int{}
	for _, r := range s.Analysis.ByMethod() {
		rows[r.Label] = r.Senders
		recvRows[r.Label] = r.Receivers
	}
	// Exact where engineered, banded where emergent.
	if rows["referer header"] != 3 {
		t.Errorf("referer senders = %d, want 3", rows["referer header"])
	}
	if rows["cookie"] != 5 {
		t.Errorf("cookie senders = %d, want 5", rows["cookie"])
	}
	if rows["uri"] < 110 || rows["uri"] > 127 {
		t.Errorf("uri senders = %d, want ≈ 118", rows["uri"])
	}
	if rows["payload body"] < 30 || rows["payload body"] > 55 {
		t.Errorf("payload senders = %d, want ≈ 43", rows["payload body"])
	}
	if recvRows["referer header"] != 7 {
		t.Errorf("referer receivers = %d, want 7", recvRows["referer header"])
	}
	if recvRows["uri"] < 70 || recvRows["uri"] > 86 {
		t.Errorf("uri receivers = %d, want ≈ 78", recvRows["uri"])
	}
	// The paper's ordering: URI dominates, payload second, cookie and
	// referer rare.
	if !(rows["uri"] > rows["payload body"] && rows["payload body"] > rows["cookie"]) {
		t.Error("method ordering does not match the paper")
	}
}

func TestFullStudyEncodingShape(t *testing.T) {
	s := study(t)
	rows := map[string]int{}
	for _, r := range s.Analysis.ByEncoding() {
		rows[r.Label] = r.Senders
	}
	if rows["sha256ofmd5"] != 2 {
		t.Errorf("sha256ofmd5 senders = %d, want 2", rows["sha256ofmd5"])
	}
	// The paper's Table 2 alone implies ~147 sha256 sender slots, so
	// sha256 coverage runs above the paper's 91 unless sender overlap
	// is extreme; the domination *shape* is what must hold.
	if rows["sha256"] < 80 || rows["sha256"] > 125 {
		t.Errorf("sha256 senders = %d, want ≈ 91-120", rows["sha256"])
	}
	if rows["md5"] < 28 || rows["md5"] > 48 {
		t.Errorf("md5 senders = %d, want ≈ 35", rows["md5"])
	}
	if rows["plaintext"] < 25 || rows["plaintext"] > 50 {
		t.Errorf("plaintext senders = %d, want ≈ 42", rows["plaintext"])
	}
	if rows["sha1"] < 6 || rows["sha1"] > 14 {
		t.Errorf("sha1 senders = %d, want ≈ 9", rows["sha1"])
	}
	if rows["base64"] < 12 || rows["base64"] > 26 {
		t.Errorf("base64 senders = %d, want ≈ 19", rows["base64"])
	}
	// SHA256 must dominate (the paper's 70%).
	for lab, n := range rows {
		if lab != "sha256" && n > rows["sha256"] {
			t.Errorf("%s (%d senders) exceeds sha256 (%d)", lab, n, rows["sha256"])
		}
	}
}

func TestFullStudyPIITypeShape(t *testing.T) {
	s := study(t)
	rows := map[string]int{}
	for _, r := range s.Analysis.ByPIIType() {
		rows[r.Label] = r.Senders
	}
	if rows["email,name"] != 29 {
		t.Errorf("email+name senders = %d, want 29", rows["email,name"])
	}
	if rows["email,username"] != 3 {
		t.Errorf("email+username senders = %d, want 3", rows["email,username"])
	}
	if rows["username"] != 1 {
		t.Errorf("username-only senders = %d, want 1", rows["username"])
	}
	// Every sender except the username-only one leaks the email
	// address; the GET-form senders leak *all* typed fields via the
	// referer, landing in wider buckets.
	emailSenders := 0
	for lab, n := range rows {
		if strings.Contains(lab, "email") {
			emailSenders += n
		}
	}
	if emailSenders != 129 {
		t.Errorf("email-leaking senders = %d, want 129", emailSenders)
	}
}

func TestFullStudyFigure2(t *testing.T) {
	s := study(t)
	top := s.Analysis.TopReceivers(15)
	if len(top) != 15 {
		t.Fatalf("top receivers = %d", len(top))
	}
	if top[0].Receiver != "facebook.com" {
		t.Errorf("top receiver = %s, want facebook.com", top[0].Receiver)
	}
	if top[0].SenderPct < 55 || top[0].SenderPct > 63 {
		t.Errorf("facebook share = %.1f%%, want ≈ 60%%", top[0].SenderPct)
	}
	// criteo and pinterest are next, as in Figure 2.
	names := map[string]bool{}
	for _, r := range top[:4] {
		names[r.Receiver] = true
	}
	if !names["criteo.com"] || !names["pinterest.com"] {
		t.Errorf("top-4 receivers missing criteo/pinterest: %+v", top[:4])
	}
}

func TestFullStudyTable2(t *testing.T) {
	s := study(t)
	cls, err := s.Tracking()
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Trackers) != Paper.TrackingProviders {
		t.Fatalf("tracking providers = %d, want %d", len(cls.Trackers), Paper.TrackingProviders)
	}
	if cls.MultiSenderID != Paper.MultiSenderReceivers {
		t.Errorf("same-ID multi-sender receivers = %d, want %d", cls.MultiSenderID, Paper.MultiSenderReceivers)
	}
	if cls.SingleSender != Paper.SingleSenderReceivers {
		t.Errorf("single-sender receivers = %d, want %d", cls.SingleSender, Paper.SingleSenderReceivers)
	}
	measured := map[string]int{}
	for i := range cls.Trackers {
		measured[cls.Trackers[i].Receiver] = cls.Trackers[i].Senders
	}
	for domain, want := range Paper.Table2Senders {
		if domain == "omtrdc.net" {
			want = 7 // 3 URI (Table 2) + 4 cookie (§4.2.1)
		}
		if got := measured[domain]; got != want {
			t.Errorf("%s senders = %d, want %d", domain, got, want)
		}
	}
	// Display names: the cloaked provider prints as adobe_cname.
	foundCname := false
	for i := range cls.Trackers {
		if cls.Trackers[i].Display() == "adobe_cname" {
			foundCname = true
		}
	}
	if !foundCname {
		t.Error("adobe_cname missing from Table 2")
	}
}

func TestFullStudyMailbox(t *testing.T) {
	s := study(t)
	mb := s.Dataset.Mailbox
	if got := mb.Count("inbox"); got != Paper.InboxMails {
		t.Errorf("inbox = %d, want %d", got, Paper.InboxMails)
	}
	if got := mb.Count("spam"); got != Paper.SpamMails {
		t.Errorf("spam = %d, want %d", got, Paper.SpamMails)
	}
	receivers := map[string]bool{}
	for _, r := range s.Analysis.Receivers {
		receivers[r] = true
	}
	if hits := mb.FromAny(receivers); hits != nil {
		t.Errorf("mail from leak receivers: %v", hits)
	}
}

func TestFullStudyPolicy(t *testing.T) {
	s := study(t)
	tbl, err := s.PolicyAudit()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Total != Paper.Senders {
		t.Errorf("audited sites = %d, want %d", tbl.Total, Paper.Senders)
	}
	if tbl.NotSpecific != Paper.PolicyNotSpecific || tbl.Specific != Paper.PolicySpecific ||
		tbl.NoDescription != Paper.PolicyNoDescription || tbl.ExplicitlyNot != Paper.PolicyExplicitNot {
		t.Errorf("policy census = %+v, want %d/%d/%d/%d", tbl,
			Paper.PolicyNotSpecific, Paper.PolicySpecific, Paper.PolicyNoDescription, Paper.PolicyExplicitNot)
	}
}

func TestFullStudyBrowsers(t *testing.T) {
	s := study(t)
	results := s.EvaluateBrowsers()
	base := results[0]
	if base.Senders != Paper.Senders {
		t.Fatalf("baseline senders = %d", base.Senders)
	}
	var brave *countermeasureResult
	for _, r := range results {
		r := r
		switch {
		case strings.HasPrefix(r.Browser, "Brave"):
			brave = &countermeasureResult{r.Senders, r.Receivers, r.SenderReductionPct, r.ReceiverReductionPct, len(r.MissedReceivers), r.SignupFailures}
		case r.Browser == base.Browser:
		default:
			if r.Senders != base.Senders || r.Receivers != base.Receivers {
				t.Errorf("%s affected leakage (%d/%d vs %d/%d) — paper found no effect",
					r.Browser, r.Senders, r.Receivers, base.Senders, base.Receivers)
			}
		}
	}
	if brave == nil {
		t.Fatal("no Brave result")
	}
	if brave.senders != 9 {
		t.Errorf("Brave surviving senders = %d, want 9 (93.1%% reduction)", brave.senders)
	}
	if brave.receivers != 8 {
		t.Errorf("Brave surviving receivers = %d, want 8 (92%% reduction)", brave.receivers)
	}
	if brave.senderRed < 92.5 || brave.senderRed > 93.5 {
		t.Errorf("Brave sender reduction = %.1f%%, want 93.1%%", brave.senderRed)
	}
	if brave.failures != 1 {
		t.Errorf("Brave signup failures = %d, want 1", brave.failures)
	}
}

type countermeasureResult struct {
	senders, receivers     int
	senderRed, receiverRed float64
	missed, failures       int
}

func TestFullStudyBlocklists(t *testing.T) {
	s := study(t)
	t4, err := s.EvaluateBlocklists()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]struct{ el, ep, comb, total int }{}
	for _, r := range t4.Rows {
		rows[r.Metric+"/"+r.Method] = struct{ el, ep, comb, total int }{
			r.EasyList.Count, r.EasyPrivacy.Count, r.Combined.Count, r.Combined.Total,
		}
	}
	st := rows["senders/total"]
	// Paper: 1 sender fully covered by EasyList alone. Our assignment
	// can also fully cover the odd single-edge sender whose only
	// receiver is an ad domain (doubleclick etc.).
	if st.el < 1 || st.el > 4 {
		t.Errorf("EasyList senders = %d, want ≈ %d", st.el, Paper.EasyListSendersTotal)
	}
	if st.ep < 80 || st.ep > 105 {
		t.Errorf("EasyPrivacy senders = %d, want ≈ %d", st.ep, Paper.EasyPrivacySendersTotal)
	}
	if st.comb < st.ep || st.comb > 112 {
		t.Errorf("combined senders = %d, want ≈ %d", st.comb, Paper.CombinedSendersTotal)
	}
	rt := rows["receivers/total"]
	if rt.ep < 55 || rt.ep > 72 {
		t.Errorf("EasyPrivacy receivers = %d, want ≈ %d", rt.ep, Paper.EasyPrivacyReceiversTotal)
	}
	if rt.el < 5 || rt.el > 12 {
		t.Errorf("EasyList receivers = %d, want ≈ %d", rt.el, Paper.EasyListReceiversTotal)
	}
	// The three escapees.
	missed := map[string]bool{}
	for _, d := range t4.MissedTrackers {
		missed[d] = true
	}
	for _, want := range Paper.MissedTrackerDomains {
		if !missed[want] {
			t.Errorf("%s should escape the combined lists; got %v", want, t4.MissedTrackers)
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	s := study(t)
	for _, e := range Experiments() {
		out, err := e.Run(s)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(out) < 40 {
			t.Errorf("%s produced suspiciously short output: %q", e.ID, out)
		}
	}
}

func TestExperimentByID(t *testing.T) {
	if _, ok := ExperimentByID("E6"); !ok {
		t.Error("E6 not found")
	}
	if _, ok := ExperimentByID("E99"); ok {
		t.Error("E99 found")
	}
}

func TestExperimentsRequireRun(t *testing.T) {
	s, err := NewStudy(SmallConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E0", "E1", "E6", "E7"} {
		e, _ := ExperimentByID(id)
		if _, err := e.Run(s); err == nil {
			t.Errorf("%s ran without study data", id)
		}
	}
}

func TestStudyDeterministic(t *testing.T) {
	a, err := NewStudy(SmallConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(SmallConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.Leaks) != len(b.Leaks) {
		t.Errorf("leak counts differ: %d vs %d", len(a.Leaks), len(b.Leaks))
	}
	ha, hb := a.Analysis.Headline(), b.Analysis.Headline()
	if ha != hb {
		t.Errorf("headlines differ:\n%+v\n%+v", ha, hb)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	s := study(t)
	var buf bytes.Buffer
	if err := s.WriteSummaryJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadSummaryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Headline.Senders != Paper.Senders || sum.Headline.Receivers != Paper.Receivers {
		t.Errorf("summary headline = %+v", sum.Headline)
	}
	if sum.Census.Trackers != Paper.TrackingProviders {
		t.Errorf("summary trackers = %d", sum.Census.Trackers)
	}
	if sum.Mail.Inbox != Paper.InboxMails || len(sum.Mail.FromReceivers) != 0 {
		t.Errorf("summary mail = %+v", sum.Mail)
	}
	if sum.Funnel["success"] != Paper.CrawledSites {
		t.Errorf("summary funnel = %+v", sum.Funnel)
	}
	if len(sum.Blocklists) == 0 || len(sum.Browsers) == 0 {
		t.Error("summary missing countermeasure sections")
	}
}

func TestSummaryRequiresRun(t *testing.T) {
	s, err := NewStudy(SmallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Summary(); err == nil {
		t.Error("Summary succeeded without Run")
	}
}

func TestReadSummaryJSONError(t *testing.T) {
	if _, err := ReadSummaryJSON(strings.NewReader("{bad")); err == nil {
		t.Error("malformed summary accepted")
	}
}

func TestParallelStudyMatchesSerial(t *testing.T) {
	serial, err := NewStudy(SmallConfig(37))
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig(37)
	cfg.Workers = 4
	par, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if serial.Analysis.Headline() != par.Analysis.Headline() {
		t.Errorf("parallel study diverged:\n%+v\n%+v",
			serial.Analysis.Headline(), par.Analysis.Headline())
	}
}
