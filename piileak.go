// Package piileak reproduces the CoNEXT 2021 study "Alternative to
// third-party cookies: Investigating persistent PII leakage-based web
// tracking" (Dao & Fukuda) as a runnable system: a calibrated synthetic
// web of shopping sites and trackers, the §3.2 crawl, the §4 leak
// detection pipeline, the §5 persistent-tracking classification, the §6
// policy audit and the §7 countermeasure evaluations.
//
// Quick start:
//
//	study, err := piileak.NewStudy(piileak.DefaultConfig())
//	if err != nil { ... }
//	if err := study.Run(); err != nil { ... }
//	fmt.Println(report of study.Analysis.Headline())
//
// Every experiment from the paper's evaluation is registered in
// Experiments(); cmd/piirepro runs them all.
package piileak

import (
	"encoding/json"
	"fmt"
	"io"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/pii"
	"piileak/internal/policy"
	"piileak/internal/site"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// Config configures a study run.
type Config struct {
	// Ecosystem parameterizes the synthetic web (webgen.DefaultConfig
	// reproduces the paper's population).
	Ecosystem webgen.Config
	// CandidateDepth is the transform-chain depth of the detection
	// candidate set (§3.1; default 2, covering every chain in the
	// paper's Table 2).
	CandidateDepth int
	// Browser is the collection profile (§3.2 used vanilla Firefox 88).
	Browser browser.Profile
	// Workers > 0 crawls with that many parallel workers (results are
	// identical to the serial crawl); 0 keeps the serial crawler.
	Workers int
}

// DefaultConfig reproduces the paper's setup.
func DefaultConfig() Config {
	return Config{
		Ecosystem:      webgen.DefaultConfig(),
		CandidateDepth: 2,
		Browser:        browser.Firefox88(),
	}
}

// SmallConfig is a scaled-down configuration for examples and quick
// experimentation.
func SmallConfig(seed uint64) Config {
	return Config{
		Ecosystem:      webgen.SmallConfig(seed),
		CandidateDepth: 2,
		Browser:        browser.Firefox88(),
	}
}

// Study is one full reproduction run.
type Study struct {
	Config Config

	// Eco is the generated synthetic web.
	Eco *webgen.Ecosystem
	// Candidates is the persona's compiled token set.
	Candidates *pii.CandidateSet
	// Detector is the §4.1 leak detector.
	Detector *core.Detector

	// Dataset, Leaks and Analysis are populated by Run.
	Dataset  *crawler.Dataset
	Leaks    []core.Leak
	Analysis *core.Analysis
}

// NewStudy generates the ecosystem and builds the detection machinery.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.CandidateDepth == 0 {
		cfg.CandidateDepth = 2
	}
	if cfg.Browser.Name == "" {
		cfg.Browser = browser.Firefox88()
	}
	eco, err := webgen.Generate(cfg.Ecosystem)
	if err != nil {
		return nil, err
	}
	cs, err := pii.BuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: cfg.CandidateDepth})
	if err != nil {
		return nil, err
	}
	return &Study{
		Config:     cfg,
		Eco:        eco,
		Candidates: cs,
		Detector:   core.NewDetector(cs, dnssim.NewClassifier(eco.Zone)),
	}, nil
}

// Run executes the §3.2 crawl and the §4 detection over every candidate
// site, populating Dataset, Leaks and Analysis.
func (s *Study) Run() error {
	if s.Config.Workers > 0 {
		s.Dataset = crawler.CrawlParallel(s.Eco, s.Config.Browser, s.Config.Workers)
	} else {
		s.Dataset = crawler.Crawl(s.Eco, s.Config.Browser)
	}
	s.Leaks = nil
	for _, c := range s.Dataset.Successes() {
		s.Leaks = append(s.Leaks, s.Detector.DetectSite(c.Domain, c.Records)...)
	}
	s.Analysis = core.Analyze(s.Leaks, len(s.Dataset.Successes()))
	return nil
}

// mustRun guards accessors that need Run's outputs.
func (s *Study) mustRun() error {
	if s.Analysis == nil {
		return fmt.Errorf("piileak: Run the study first")
	}
	return nil
}

// Tracking runs the §5.2 persistent-tracking classification.
func (s *Study) Tracking() (*tracking.Classification, error) {
	if err := s.mustRun(); err != nil {
		return nil, err
	}
	return tracking.Classify(s.Leaks), nil
}

// PolicyAudit runs the §6 disclosure audit over the detected senders.
func (s *Study) PolicyAudit() (policy.Table3, error) {
	if err := s.mustRun(); err != nil {
		return policy.Table3{}, err
	}
	senders := map[string]bool{}
	for _, l := range s.Leaks {
		senders[l.Site] = true
	}
	var out []*site.Site
	for _, st := range s.Eco.Sites {
		if senders[st.Domain] {
			out = append(out, st)
		}
	}
	return policy.Audit(out), nil
}

// EvaluateBrowsers runs the §7.1 browser comparison.
func (s *Study) EvaluateBrowsers() []countermeasure.BrowserResult {
	return countermeasure.EvaluateBrowsers(s.Eco, s.Config.Browser, countermeasure.Profiles(s.Eco))
}

// EvaluateBlocklists runs the §7.2 filter-list evaluation.
func (s *Study) EvaluateBlocklists() (*countermeasure.Table4, error) {
	if err := s.mustRun(); err != nil {
		return nil, err
	}
	lists, err := countermeasure.ParseLists(s.Eco.EasyListText, s.Eco.EasyPrivacyText)
	if err != nil {
		return nil, err
	}
	cls, err := s.Tracking()
	if err != nil {
		return nil, err
	}
	var trackers []string
	for _, tr := range cls.Trackers {
		trackers = append(trackers, tr.Receiver)
	}
	return countermeasure.EvaluateBlocklists(s.Leaks, s.Dataset, lists, trackers), nil
}

// WriteLeaksJSON exports the detected leak records as indented JSON for
// external analysis (spreadsheets, notebooks, diffing runs).
func (s *Study) WriteLeaksJSON(w io.Writer) error {
	if err := s.mustRun(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.Leaks)
}
