// Package piileak reproduces the CoNEXT 2021 study "Alternative to
// third-party cookies: Investigating persistent PII leakage-based web
// tracking" (Dao & Fukuda) as a runnable system: a calibrated synthetic
// web of shopping sites and trackers, the §3.2 crawl, the §4 leak
// detection pipeline, the §5 persistent-tracking classification, the §6
// policy audit and the §7 countermeasure evaluations.
//
// Quick start:
//
//	study, err := piileak.NewStudy(piileak.DefaultConfig())
//	if err != nil { ... }
//	if err := study.Run(); err != nil { ... }
//	fmt.Println(report of study.Analysis.Headline())
//
// Every experiment from the paper's evaluation is registered in
// Experiments(); cmd/piirepro runs them all.
package piileak

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/pii"
	"piileak/internal/pipeline"
	"piileak/internal/policy"
	"piileak/internal/site"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// Config configures a study run.
type Config struct {
	// Ecosystem parameterizes the synthetic web (webgen.DefaultConfig
	// reproduces the paper's population).
	Ecosystem webgen.Config
	// CandidateDepth is the transform-chain depth of the detection
	// candidate set (§3.1; default 2, covering every chain in the
	// paper's Table 2).
	CandidateDepth int
	// Browser is the collection profile (§3.2 used vanilla Firefox 88).
	Browser browser.Profile
	// Workers > 0 crawls with that many parallel workers (results are
	// identical to the serial crawl); 0 keeps the serial crawler.
	Workers int
}

// DefaultConfig reproduces the paper's setup.
func DefaultConfig() Config {
	return Config{
		Ecosystem:      webgen.DefaultConfig(),
		CandidateDepth: 2,
		Browser:        browser.Firefox88(),
	}
}

// SmallConfig is a scaled-down configuration for examples and quick
// experimentation.
func SmallConfig(seed uint64) Config {
	return Config{
		Ecosystem:      webgen.SmallConfig(seed),
		CandidateDepth: 2,
		Browser:        browser.Firefox88(),
	}
}

// Study is one full reproduction run.
type Study struct {
	Config Config

	// Eco is the generated synthetic web.
	Eco *webgen.Ecosystem
	// Candidates is the persona's compiled token set.
	Candidates *pii.CandidateSet
	// Detector is the §4.1 leak detector.
	Detector *core.Detector

	// Dataset, Leaks and Analysis are populated by Run (or RunStream).
	Dataset  *crawler.Dataset
	Leaks    []core.Leak
	Analysis *core.Analysis

	// Result is the shared store both run modes populate: the §4.2
	// analysis, the incremental §5 tracking index, the §6 audit sender
	// set and the §7.2 request index, all built in one pass. Tracking,
	// PolicyAudit and EvaluateBlocklists are views over it.
	Result *pipeline.Result
	// Streamed marks a RunStream study whose captures were released
	// after detection; experiments needing raw records refuse to run.
	Streamed bool
}

// NewStudy generates the ecosystem and builds the detection machinery.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.CandidateDepth == 0 {
		cfg.CandidateDepth = 2
	}
	if cfg.Browser.Name == "" {
		cfg.Browser = browser.Firefox88()
	}
	eco, err := webgen.Generate(cfg.Ecosystem)
	if err != nil {
		return nil, err
	}
	cs, err := pii.BuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: cfg.CandidateDepth})
	if err != nil {
		return nil, err
	}
	return &Study{
		Config:     cfg,
		Eco:        eco,
		Candidates: cs,
		Detector:   core.NewDetector(cs, dnssim.NewClassifier(eco.Zone)),
	}, nil
}

// Run executes the §3.2 crawl and the §4 detection over every candidate
// site, populating Dataset, Leaks, Analysis and the shared Result
// store. It runs the same fused pipeline as RunStream but keeps the
// full captures, so the dataset is byte-identical to a batch crawl.
func (s *Study) Run() error {
	return s.RunContext(context.Background())
}

// RunContext is Run under a cancellable context: cancellation stops the
// crawl between sites (see pipeline.Run) and surfaces ctx's error.
func (s *Study) RunContext(ctx context.Context) error {
	return s.RunStreamContext(ctx, pipeline.Options{
		DetectWorkers: s.Config.Workers,
		KeepRecords:   true,
	})
}

// RunStream executes the fused crawl+detect pipeline under explicit
// options. Unless opts.KeepRecords is set, per-site captures are
// released right after detection (peak memory stays bounded by the
// in-flight worker count) and the study is marked Streamed: Dataset is
// thin — crawl outcomes, mailbox and block counters survive, Records do
// not — and experiments needing raw captures refuse to run. Leaks,
// analysis and every table are byte-identical to Run's regardless of
// worker counts or completion order.
func (s *Study) RunStream(opts pipeline.Options) error {
	return s.RunStreamContext(context.Background(), opts)
}

// RunStreamContext is RunStream under a cancellable context.
func (s *Study) RunStreamContext(ctx context.Context, opts pipeline.Options) error {
	if opts.CrawlWorkers == 0 {
		opts.CrawlWorkers = s.Config.Workers
	}
	res, err := pipeline.Run(ctx, s.Eco, s.Config.Browser, s.Detector, opts)
	if err != nil {
		return err
	}
	s.Result = res
	s.Dataset = res.Dataset
	s.Leaks = res.Leaks
	s.Analysis = res.Analysis
	s.Streamed = !opts.KeepRecords
	return nil
}

// TotalRecords reports the captured request count, served from the
// result store so streamed runs report the true pre-release total.
func (s *Study) TotalRecords() int {
	if s.Result != nil {
		return s.Result.TotalRecords
	}
	if s.Dataset != nil {
		return s.Dataset.TotalRecords()
	}
	return 0
}

// mustRun guards accessors that need Run's outputs.
func (s *Study) mustRun() error {
	if s.Analysis == nil {
		return fmt.Errorf("piileak: Run the study first")
	}
	return nil
}

// Tracking runs the §5.2 persistent-tracking classification, served
// from the result store's incremental index. Studies populated outside
// Run/RunStream (loaded datasets, hand-built fixtures) fall back to a
// batch classification of Leaks.
func (s *Study) Tracking() (*tracking.Classification, error) {
	if err := s.mustRun(); err != nil {
		return nil, err
	}
	if s.Result != nil {
		return s.Result.Tracking.Classification(), nil
	}
	return tracking.Classify(s.Leaks), nil
}

// PolicyAudit runs the §6 disclosure audit over the detected senders,
// taken from the result store's accumulated sender set.
func (s *Study) PolicyAudit() (policy.Table3, error) {
	if err := s.mustRun(); err != nil {
		return policy.Table3{}, err
	}
	senders := s.senderSet()
	var out []*site.Site
	for _, st := range s.Eco.Sites {
		if senders[st.Domain] {
			out = append(out, st)
		}
	}
	return policy.Audit(out), nil
}

// senderSet returns the distinct leaking first parties.
func (s *Study) senderSet() map[string]bool {
	if s.Result != nil {
		return s.Result.Senders
	}
	senders := map[string]bool{}
	for _, l := range s.Leaks {
		senders[l.Site] = true
	}
	return senders
}

// EvaluateBrowsers runs the §7.1 browser comparison. It is
// intentionally not mustRun-guarded: the evaluation re-crawls the
// ecosystem's sender sites per browser profile itself, so it depends
// only on the generated ecosystem, never on this study's crawl, leaks
// or analysis — calling it before Run is valid and produces the same
// result as calling it after.
func (s *Study) EvaluateBrowsers() []countermeasure.BrowserResult {
	return countermeasure.EvaluateBrowsers(s.Eco, s.Config.Browser, countermeasure.Profiles(s.Eco))
}

// EvaluateBlocklists runs the §7.2 filter-list evaluation.
func (s *Study) EvaluateBlocklists() (*countermeasure.Table4, error) {
	if err := s.mustRun(); err != nil {
		return nil, err
	}
	lists, err := countermeasure.ParseLists(s.Eco.EasyListText, s.Eco.EasyPrivacyText)
	if err != nil {
		return nil, err
	}
	cls, err := s.Tracking()
	if err != nil {
		return nil, err
	}
	var trackers []string
	for _, tr := range cls.Trackers {
		trackers = append(trackers, tr.Receiver)
	}
	if s.Result != nil {
		// The store's request index covers every leaky site — the only
		// sites whose initiator chains the evaluation walks — so the
		// indexed path reproduces the full-dataset result exactly, with
		// or without retained captures.
		return countermeasure.EvaluateBlocklistsIndexed(s.Leaks, s.Result.Requests, lists, trackers), nil
	}
	return countermeasure.EvaluateBlocklists(s.Leaks, s.Dataset, lists, trackers), nil
}

// requireCaptures guards experiments that rescan raw captured records:
// a streamed study released them after detection.
func (s *Study) requireCaptures(id string) error {
	if s.Streamed {
		return fmt.Errorf("%s: needs raw captures, but the study ran in streamed mode (records were released after detection); re-run without -stream", id)
	}
	return nil
}

// WriteLeaksJSON exports the detected leak records as indented JSON for
// external analysis (spreadsheets, notebooks, diffing runs).
func (s *Study) WriteLeaksJSON(w io.Writer) error {
	if err := s.mustRun(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.Leaks)
}
