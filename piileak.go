// Package piileak reproduces the CoNEXT 2021 study "Alternative to
// third-party cookies: Investigating persistent PII leakage-based web
// tracking" (Dao & Fukuda) as a runnable system: a calibrated synthetic
// web of shopping sites and trackers, the §3.2 crawl, the §4 leak
// detection pipeline, the §5 persistent-tracking classification, the §6
// policy audit and the §7 countermeasure evaluations.
//
// Quick start:
//
//	study, err := piileak.NewStudy(piileak.DefaultConfig())
//	if err != nil { ... }
//	if err := study.Run(context.Background()); err != nil { ... }
//	fmt.Println(report of study.Analysis.Headline())
//
// Run takes functional options: WithStream() releases captures after
// detection, WithWorkers(4, 4) parallelizes both stages,
// WithCheckpoint(path) makes the run resumable, and WithObserver(run)
// attaches an obs.Run that collects deterministic metrics and stage
// traces without changing a single output byte.
//
// Every experiment from the paper's evaluation is registered in
// Experiments(); cmd/piirepro runs them all.
package piileak

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/crawler"
	"piileak/internal/detect"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/obs"
	"piileak/internal/pii"
	"piileak/internal/pipeline"
	"piileak/internal/policy"
	"piileak/internal/resilience"
	"piileak/internal/shard"
	"piileak/internal/site"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// Config configures a study run.
type Config struct {
	// Ecosystem parameterizes the synthetic web (webgen.DefaultConfig
	// reproduces the paper's population).
	Ecosystem webgen.Config
	// CandidateDepth is the transform-chain depth of the detection
	// candidate set (§3.1; default 2, covering every chain in the
	// paper's Table 2).
	CandidateDepth int
	// Browser is the collection profile (§3.2 used vanilla Firefox 88).
	Browser browser.Profile
	// Workers > 0 crawls with that many parallel workers (results are
	// identical to the serial crawl); 0 keeps the serial crawler.
	Workers int
}

// DefaultConfig reproduces the paper's setup.
func DefaultConfig() Config {
	return Config{
		Ecosystem:      webgen.DefaultConfig(),
		CandidateDepth: 2,
		Browser:        browser.Firefox88(),
	}
}

// SmallConfig is a scaled-down configuration for examples and quick
// experimentation.
func SmallConfig(seed uint64) Config {
	return Config{
		Ecosystem:      webgen.SmallConfig(seed),
		CandidateDepth: 2,
		Browser:        browser.Firefox88(),
	}
}

// Study is one full reproduction run.
type Study struct {
	Config Config

	// Eco is the generated synthetic web.
	Eco *webgen.Ecosystem
	// Engine is the compiled two-phase detection engine: the immutable,
	// shareable phase-1 state (candidate automaton, PSL, CNAME
	// classifier) every run mode and detect worker scans through. It
	// comes out of the process-wide build cache, so studies sharing a
	// persona and candidate config share one compile.
	Engine *detect.Engine
	// Candidates is the persona's compiled token set (the Engine's).
	Candidates *pii.CandidateSet
	// Detector is the legacy single-phase §4.1 leak detector, kept as
	// the reference implementation; it shares the Engine's candidate
	// set, so holding both costs no extra compile.
	Detector *core.Detector

	// Dataset, Leaks and Analysis are populated by Run (or RunStream).
	Dataset  *crawler.Dataset
	Leaks    []core.Leak
	Analysis *core.Analysis

	// Result is the shared store both run modes populate: the §4.2
	// analysis, the incremental §5 tracking index, the §6 audit sender
	// set and the §7.2 request index, all built in one pass. Tracking,
	// PolicyAudit and EvaluateBlocklists are views over it.
	Result *pipeline.Result
	// Streamed marks a RunStream study whose captures were released
	// after detection; experiments needing raw records refuse to run.
	Streamed bool
}

// NewStudy generates the ecosystem and builds the detection machinery.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.CandidateDepth == 0 {
		cfg.CandidateDepth = 2
	}
	if cfg.Browser.Name == "" {
		cfg.Browser = browser.Firefox88()
	}
	eco, err := webgen.Generate(cfg.Ecosystem)
	if err != nil {
		return nil, err
	}
	cname := dnssim.NewClassifier(eco.Zone)
	eng, err := detect.NewEngine(eco.Persona, cname, detect.Config{
		Candidates: pii.CandidateConfig{MaxDepth: cfg.CandidateDepth},
	})
	if err != nil {
		return nil, err
	}
	cs := eng.Candidates()
	return &Study{
		Config:     cfg,
		Eco:        eco,
		Engine:     eng,
		Candidates: cs,
		Detector:   core.NewDetector(cs, cname),
	}, nil
}

// RunOption configures one Study.Run call. Options apply in order over
// the study's defaults (Config.Workers for both stages, batch mode with
// full captures, no checkpoint, no observer).
type RunOption func(*runConfig)

// runConfig is the resolved option set a Run call executes under.
type runConfig struct {
	opts     pipeline.Options
	stream   bool
	universe int
}

// defaultRunConfig seeds the option set from the study's Config,
// matching what the deprecated RunContext wrapper always did: both
// stages at Config.Workers, batch (KeepRecords) mode.
func (s *Study) defaultRunConfig() runConfig {
	var rc runConfig
	rc.opts.Workers = s.Config.Workers
	rc.opts.DetectWorkers = s.Config.Workers
	return rc
}

// WithStream releases per-site captures right after detection: peak
// memory stays bounded by the in-flight worker count, the assembled
// Dataset is thin (crawl outcomes, mailbox and block counters survive,
// Records do not), and the study is marked Streamed so experiments
// needing raw captures refuse to run. Leaks, analysis and every table
// are byte-identical to a batch run's.
func WithStream() RunOption {
	return func(rc *runConfig) { rc.stream = true }
}

// WithWorkers sets the crawl and detect stages' parallelism. Values <= 1
// run the stage serially; results are byte-identical at any setting.
func WithWorkers(crawl, detect int) RunOption {
	return func(rc *runConfig) {
		rc.opts.Workers = crawl
		rc.opts.DetectWorkers = detect
	}
}

// WithBuffer sets the capture channel's capacity (default 2). Together
// with the worker counts it bounds the captures in flight.
func WithBuffer(n int) RunOption {
	return func(rc *runConfig) { rc.opts.Buffer = n }
}

// WithCheckpoint persists per-site progress to path so an interrupted
// run can continue with WithResume.
func WithCheckpoint(path string) RunOption {
	return func(rc *runConfig) { rc.opts.CheckpointPath = path }
}

// WithResume loads completed sites from the WithCheckpoint file instead
// of re-crawling them. onResume, when non-nil, receives the loaded
// checkpoint's summary before crawling begins.
func WithResume(onResume func(crawler.ResumeSummary)) RunOption {
	return func(rc *runConfig) {
		rc.opts.Resume = true
		rc.opts.OnResume = onResume
	}
}

// WithObserver attaches a telemetry run: deterministic metrics, stage
// spans and the run manifest (internal/obs). Observation is a side
// channel — leak output and every table stay byte-identical with it on
// or off.
func WithObserver(o *obs.Run) RunOption {
	return func(rc *runConfig) { rc.opts.Obs = o }
}

// WithSiteTimeout caps each site's crawl budget on the run's clock
// (virtual under fault injection); sites over budget are recorded as
// OutcomeTimeout with their partial captures.
func WithSiteTimeout(d time.Duration) RunOption {
	return func(rc *runConfig) { rc.opts.SiteTimeout = d }
}

// WithQuarantine collects diagnostics bundles for sites whose crawl or
// detection panicked; the study continues without them.
func WithQuarantine(q *crawler.Quarantine) RunOption {
	return func(rc *runConfig) { rc.opts.Quarantine = q }
}

// WithSites restricts the run to a materialized site subset (re-running
// quarantined domains, bisecting failures).
//
// Deprecated: use WithSource(site.Slice(sites)) — the source-based API
// covers both materialized subsets and lazy populations. WithSites
// survives as a thin wrapper for one release, pinned byte-identical.
func WithSites(sites []*site.Site) RunOption {
	return func(rc *runConfig) { rc.opts.Sites = sites }
}

// WithSource supplies the run's site population lazily: sites
// materialize one at a time as the crawl reaches them, so peak site
// memory is bounded by the captures in flight, not the population's
// length.
func WithSource(src site.Source) RunOption {
	return func(rc *runConfig) { rc.opts.Source = src }
}

// WithUniverse extends the study core with a lazily generated ranked
// tail to n total sites for this run — the paper-exact head stays
// byte-identical, and tail site i is derived on demand from
// (seed, rank). n == 0 keeps the configured scale; n smaller than the
// study core is an error.
func WithUniverse(n int) RunOption {
	return func(rc *runConfig) { rc.universe = n }
}

// WithFaults overrides the ecosystem's fault injector for this run.
func WithFaults(inj *faultsim.Injector) RunOption {
	return func(rc *runConfig) { rc.opts.Faults = inj }
}

// WithRetryPolicy tunes the resilient transport's retry/backoff/breaker
// behaviour; zero fields take resilience.DefaultPolicy values.
func WithRetryPolicy(p resilience.Policy) RunOption {
	return func(rc *runConfig) { rc.opts.Policy = p }
}

// Event is one progress tick from a pipeline stage, re-exported so
// WithProgress callers outside this module's internals can name it.
type Event = pipeline.Event

// WithProgress receives per-stage completion events; it is never called
// concurrently.
func WithProgress(fn func(Event)) RunOption {
	return func(rc *runConfig) { rc.opts.Progress = fn }
}

// Run executes the §3.2 crawl and the §4 detection over every candidate
// site, populating Dataset, Leaks, Analysis and the shared Result
// store. The default is batch-compatible: the fused pipeline runs with
// full captures kept, so the dataset is byte-identical to a batch
// crawl. Options select streaming, parallelism, checkpointing,
// observation and the crash-only runtime's knobs; contradictory
// combinations are rejected up front (pipeline.Options.Validate).
// Cancelling ctx stops the crawl between sites and surfaces ctx's
// error.
func (s *Study) Run(ctx context.Context, options ...RunOption) error {
	rc := s.defaultRunConfig()
	for _, opt := range options {
		if opt != nil {
			opt(&rc)
		}
	}
	if rc.universe != 0 {
		if rc.opts.Source != nil {
			return fmt.Errorf("piileak: WithUniverse and WithSource are both set — pick one site supply")
		}
		u, err := s.Eco.UniverseOf(rc.universe)
		if err != nil {
			return err
		}
		rc.opts.Source = u
	}
	rc.opts.KeepRecords = !rc.stream
	return s.runPipeline(ctx, rc.opts)
}

// RunSharded executes the study as a supervised sharded run: the site
// universe is partitioned into opts.Shards rank-interleaved failure
// domains, each crawled by an independently-checkpointed worker under
// restart supervision, and the per-shard outputs are digest-verified
// and merged back into the study. With every shard completing, Leaks,
// Analysis and every table are byte-identical to an unsharded streamed
// run; when a shard exhausts its retry budget the study holds the
// partial merge and the returned report lists exactly what is missing
// (Report.Partial, Report.Missing). The study is always marked
// Streamed — shard workers release captures after detection.
func (s *Study) RunSharded(ctx context.Context, opts shard.Options) (*shard.Report, error) {
	if o := opts.Obs; o != nil {
		info := obs.RunInfo{
			EcoSeed:       s.Eco.Config.Seed,
			Browser:       s.Config.Browser.Name + " " + s.Config.Browser.Version,
			Sites:         s.Eco.Universe().Len(),
			CrawlWorkers:  opts.Workers,
			DetectWorkers: opts.DetectWorkers,
			Streamed:      true,
			Shards:        opts.Shards,
		}
		if s.Eco.Faults != nil {
			info.FaultSeed = s.Eco.Faults.Seed()
		}
		if opts.Crawl.Faults != nil {
			info.FaultSeed = opts.Crawl.Faults.Seed()
		}
		o.SetInfo(info)
	}
	res, report, err := shard.Supervise(ctx, s.Eco, s.Config.Browser, s.detector(), opts)
	if err != nil {
		return nil, err
	}
	s.Result = res
	s.Dataset = res.Dataset
	s.Leaks = res.Leaks
	s.Analysis = res.Analysis
	s.Streamed = true
	return report, nil
}

// RunContext is Run without options.
//
// Deprecated: call Run(ctx) — RunContext survives as a thin wrapper for
// one release.
func (s *Study) RunContext(ctx context.Context) error {
	return s.Run(ctx)
}

// RunStream executes the fused pipeline under a raw pipeline.Options.
//
// Deprecated: call Run(ctx, WithStream(), ...) — functional options
// replace the raw struct. RunStream survives as a thin wrapper for one
// release.
func (s *Study) RunStream(opts pipeline.Options) error {
	//lint:allow ctxflow deprecated no-ctx wrapper, kept for one release
	return s.RunStreamContext(context.Background(), opts)
}

// RunStreamContext is RunStream under a cancellable context.
//
// Deprecated: call Run(ctx, WithStream(), ...) — functional options
// replace the raw struct. RunStreamContext survives as a thin wrapper
// for one release.
func (s *Study) RunStreamContext(ctx context.Context, opts pipeline.Options) error {
	if opts.Workers == 0 {
		opts.Workers = s.Config.Workers
	}
	return s.runPipeline(ctx, opts)
}

// runPipeline is the single execution path every entry point funnels
// into: validate, stamp the observer's run manifest, run the fused
// pipeline, populate the study.
func (s *Study) runPipeline(ctx context.Context, opts pipeline.Options) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	if o := opts.Obs; o != nil {
		info := obs.RunInfo{
			EcoSeed:       s.Eco.Config.Seed,
			Browser:       s.Config.Browser.Name + " " + s.Config.Browser.Version,
			Sites:         s.Eco.Universe().Len(),
			CrawlWorkers:  opts.Workers,
			DetectWorkers: opts.DetectWorkers,
			Streamed:      !opts.KeepRecords,
		}
		if opts.Sites != nil {
			info.Sites = len(opts.Sites)
		}
		if opts.Source != nil {
			info.Sites = opts.Source.Len()
		}
		if s.Eco.Faults != nil {
			info.FaultSeed = s.Eco.Faults.Seed()
		}
		if opts.Faults != nil {
			info.FaultSeed = opts.Faults.Seed()
		}
		o.SetInfo(info)
	}
	res, err := pipeline.Run(ctx, s.Eco, s.Config.Browser, s.detector(), opts)
	if err != nil {
		return err
	}
	s.Result = res
	s.Dataset = res.Dataset
	s.Leaks = res.Leaks
	s.Analysis = res.Analysis
	s.Streamed = !opts.KeepRecords
	return nil
}

// detector returns the detector every run mode scans with: the
// two-phase Engine when present (detect workers derive per-worker
// Scanners from it), falling back to the legacy Detector for studies
// assembled by hand.
func (s *Study) detector() pipeline.Detector {
	if s.Engine != nil {
		return s.Engine
	}
	return s.Detector
}

// TotalRecords reports the captured request count, served from the
// result store so streamed runs report the true pre-release total.
func (s *Study) TotalRecords() int {
	if s.Result != nil {
		return s.Result.TotalRecords
	}
	if s.Dataset != nil {
		return s.Dataset.TotalRecords()
	}
	return 0
}

// mustRun guards accessors that need Run's outputs.
func (s *Study) mustRun() error {
	if s.Analysis == nil {
		return fmt.Errorf("piileak: Run the study first")
	}
	return nil
}

// Tracking runs the §5.2 persistent-tracking classification, served
// from the result store's incremental index. Studies populated outside
// Run/RunStream (loaded datasets, hand-built fixtures) fall back to a
// batch classification of Leaks.
func (s *Study) Tracking() (*tracking.Classification, error) {
	if err := s.mustRun(); err != nil {
		return nil, err
	}
	if s.Result != nil {
		return s.Result.Tracking.Classification(), nil
	}
	return tracking.Classify(s.Leaks), nil
}

// PolicyAudit runs the §6 disclosure audit over the detected senders,
// taken from the result store's accumulated sender set.
func (s *Study) PolicyAudit() (policy.Table3, error) {
	if err := s.mustRun(); err != nil {
		return policy.Table3{}, err
	}
	senders := s.senderSet()
	var out []*site.Site
	for _, st := range s.Eco.Sites {
		if senders[st.Domain] {
			out = append(out, st)
		}
	}
	return policy.Audit(out), nil
}

// senderSet returns the distinct leaking first parties.
func (s *Study) senderSet() map[string]bool {
	if s.Result != nil {
		return s.Result.Senders
	}
	senders := map[string]bool{}
	for _, l := range s.Leaks {
		senders[l.Site] = true
	}
	return senders
}

// EvaluateBrowsers runs the §7.1 browser comparison. It is
// intentionally not mustRun-guarded: the evaluation re-crawls the
// ecosystem's sender sites per browser profile itself, so it depends
// only on the generated ecosystem, never on this study's crawl, leaks
// or analysis — calling it before Run is valid and produces the same
// result as calling it after.
func (s *Study) EvaluateBrowsers() []countermeasure.BrowserResult {
	return countermeasure.EvaluateBrowsers(s.Eco, s.Config.Browser, countermeasure.Profiles(s.Eco))
}

// EvaluateBlocklists runs the §7.2 filter-list evaluation.
func (s *Study) EvaluateBlocklists() (*countermeasure.Table4, error) {
	if err := s.mustRun(); err != nil {
		return nil, err
	}
	lists, err := countermeasure.ParseLists(s.Eco.EasyListText, s.Eco.EasyPrivacyText)
	if err != nil {
		return nil, err
	}
	cls, err := s.Tracking()
	if err != nil {
		return nil, err
	}
	var trackers []string
	for _, tr := range cls.Trackers {
		trackers = append(trackers, tr.Receiver)
	}
	if s.Result != nil {
		// The store's request index covers every leaky site — the only
		// sites whose initiator chains the evaluation walks — so the
		// indexed path reproduces the full-dataset result exactly, with
		// or without retained captures.
		return countermeasure.EvaluateBlocklistsIndexed(s.Leaks, s.Result.Requests, lists, trackers), nil
	}
	return countermeasure.EvaluateBlocklists(s.Leaks, s.Dataset, lists, trackers), nil
}

// requireCaptures guards experiments that rescan raw captured records:
// a streamed study released them after detection.
func (s *Study) requireCaptures(id string) error {
	if s.Streamed {
		return fmt.Errorf("%s: needs raw captures, but the study ran in streamed mode (records were released after detection); re-run without -stream", id)
	}
	return nil
}

// WriteLeaksJSON exports the detected leak records as indented JSON for
// external analysis (spreadsheets, notebooks, diffing runs).
func (s *Study) WriteLeaksJSON(w io.Writer) error {
	if err := s.mustRun(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.Leaks)
}
