package piileak

import (
	"encoding/json"
	"io"

	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/policy"
	"piileak/internal/tracking"
)

// Summary is the machine-readable result of a study run: every quantity
// the text experiments print, as one JSON-serializable document, for
// downstream tooling (plotting, regression tracking, dashboards).
type Summary struct {
	Seed    uint64 `json:"seed"`
	Browser string `json:"browser"`

	// Funnel maps crawl outcomes to counts (E0).
	Funnel map[string]int `json:"funnel"`

	// Headline carries the §4.2 statistics (E1).
	Headline core.Headline `json:"headline"`

	// Methods, Encodings and PIITypes are the Table 1 panels (E2-E4).
	Methods   []core.BreakdownRow `json:"methods"`
	Encodings []core.BreakdownRow `json:"encodings"`
	PIITypes  []core.BreakdownRow `json:"pii_types"`

	// TopReceivers is Figure 2 (E5).
	TopReceivers []core.ReceiverRank `json:"top_receivers"`

	// Trackers is Table 2 (E6); Census carries the §5.2 partition.
	Trackers []tracking.Provider `json:"trackers"`
	Census   TrackerCensus       `json:"census"`

	// Mail is §4.2.3 (E7).
	Mail MailSummary `json:"mail"`

	// Policy is Table 3 (E8).
	Policy policy.Table3 `json:"policy"`

	// Browsers is §7.1 (E9).
	Browsers []countermeasure.BrowserResult `json:"browsers"`

	// Blocklists is Table 4 (E10).
	Blocklists []countermeasure.Table4Row `json:"blocklists"`
	// MissedTrackers are the Table 2 providers the combined lists
	// fail to cover.
	MissedTrackers []string `json:"missed_trackers"`
}

// TrackerCensus is the §5.2 receiver partition.
type TrackerCensus struct {
	Trackers      int `json:"tracking_providers"`
	MultiSenderID int `json:"same_id_multi_sender_receivers"`
	MultiSender   int `json:"multi_sender_receivers"`
	SingleSender  int `json:"single_sender_receivers"`
}

// MailSummary is the §4.2.3 result.
type MailSummary struct {
	Inbox         int      `json:"inbox"`
	Spam          int      `json:"spam"`
	FromReceivers []string `json:"from_receivers,omitempty"`
}

// Summary assembles the machine-readable result. The study must have
// Run; the browser and blocklist evaluations execute as part of the
// call.
func (s *Study) Summary() (*Summary, error) {
	if err := s.mustRun(); err != nil {
		return nil, err
	}
	cls, err := s.Tracking()
	if err != nil {
		return nil, err
	}
	t3, err := s.PolicyAudit()
	if err != nil {
		return nil, err
	}
	t4, err := s.EvaluateBlocklists()
	if err != nil {
		return nil, err
	}

	funnel := map[string]int{}
	for outcome, n := range s.Dataset.FunnelCounts() {
		funnel[string(outcome)] = n
	}
	receivers := map[string]bool{}
	for _, r := range s.Analysis.Receivers {
		receivers[r] = true
	}

	return &Summary{
		Seed:         s.Config.Ecosystem.Seed,
		Browser:      s.Dataset.Browser,
		Funnel:       funnel,
		Headline:     s.Analysis.Headline(),
		Methods:      s.Analysis.ByMethod(),
		Encodings:    s.Analysis.ByEncoding(),
		PIITypes:     s.Analysis.ByPIIType(),
		TopReceivers: s.Analysis.TopReceivers(15),
		Trackers:     cls.Trackers,
		Census: TrackerCensus{
			Trackers:      len(cls.Trackers),
			MultiSenderID: cls.MultiSenderID,
			MultiSender:   cls.MultiSender,
			SingleSender:  cls.SingleSender,
		},
		Mail: MailSummary{
			Inbox:         s.Dataset.Mailbox.Count("inbox"),
			Spam:          s.Dataset.Mailbox.Count("spam"),
			FromReceivers: s.Dataset.Mailbox.FromAny(receivers),
		},
		Policy:         t3,
		Browsers:       s.EvaluateBrowsers(),
		Blocklists:     t4.Rows,
		MissedTrackers: t4.MissedTrackers,
	}, nil
}

// WriteSummaryJSON renders the summary as indented JSON.
func (s *Study) WriteSummaryJSON(w io.Writer) error {
	sum, err := s.Summary()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

// ReadSummaryJSON loads a summary written by WriteSummaryJSON.
func ReadSummaryJSON(r io.Reader) (*Summary, error) {
	var sum Summary
	if err := json.NewDecoder(r).Decode(&sum); err != nil {
		return nil, err
	}
	return &sum, nil
}
