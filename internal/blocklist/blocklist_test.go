package blocklist

import (
	"strings"
	"testing"
)

func engine(t *testing.T, rules ...string) *Engine {
	t.Helper()
	l, err := ParseList("test", strings.Join(rules, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(l)
}

func req(url string) RequestInfo {
	return RequestInfo{URL: url, PageHost: "site.com", Type: TypeScript, ThirdParty: true}
}

func TestDomainAnchor(t *testing.T) {
	e := engine(t, "||tracker.net^")
	cases := map[string]bool{
		"https://tracker.net/p.js":          true,
		"https://pixel.tracker.net/x":       true,
		"http://tracker.net":                true,
		"https://tracker.net.evil.com/p.js": false,
		"https://nottracker.net/p.js":       false,
		"https://site.com/tracker.net/p":    false,
	}
	for url, want := range cases {
		if got := e.ShouldBlock(req(url)); got != want {
			t.Errorf("||tracker.net^ vs %s = %v, want %v", url, got, want)
		}
	}
}

func TestStartEndAnchors(t *testing.T) {
	e := engine(t, "|https://ads.example.com/banner|")
	if !e.ShouldBlock(req("https://ads.example.com/banner")) {
		t.Error("exact anchored URL not blocked")
	}
	if e.ShouldBlock(req("https://ads.example.com/banner/extra")) {
		t.Error("end anchor ignored")
	}
	if e.ShouldBlock(req("http://evil.com/https://ads.example.com/banner")) {
		t.Error("start anchor ignored")
	}
}

func TestWildcardAndSeparator(t *testing.T) {
	e := engine(t, "/collect^*pii=")
	if !e.ShouldBlock(req("https://t.net/collect?pii=abc")) {
		t.Error("wildcard rule missed")
	}
	if e.ShouldBlock(req("https://t.net/collection?pii=abc")) {
		t.Error("separator ^ matched a word character")
	}
}

func TestSeparatorAtEnd(t *testing.T) {
	e := engine(t, "||t.net/path^")
	if !e.ShouldBlock(req("https://t.net/path")) {
		t.Error("^ should match end of URL")
	}
	if !e.ShouldBlock(req("https://t.net/path?q=1")) {
		t.Error("^ should match ?")
	}
	if e.ShouldBlock(req("https://t.net/pathology")) {
		t.Error("^ matched a letter")
	}
}

func TestPlainSubstring(t *testing.T) {
	e := engine(t, "/ads/")
	if !e.ShouldBlock(req("https://cdn.com/ads/banner.png")) {
		t.Error("substring rule missed")
	}
	if e.ShouldBlock(req("https://cdn.com/loads/banner.png")) {
		t.Error("substring rule over-matched")
	}
}

func TestCaseInsensitive(t *testing.T) {
	e := engine(t, "||Tracker.NET^")
	if !e.ShouldBlock(req("https://TRACKER.net/x")) {
		t.Error("matching is not case-insensitive")
	}
}

func TestExceptionOverridesBlock(t *testing.T) {
	e := engine(t, "||tracker.net^", "@@||tracker.net/allowed^")
	if e.ShouldBlock(req("https://tracker.net/allowed?x=1")) {
		t.Error("exception did not override block")
	}
	if !e.ShouldBlock(req("https://tracker.net/other")) {
		t.Error("block rule lost entirely")
	}
	d := e.Match(req("https://tracker.net/allowed"))
	if d.Blocked || d.Rule == nil || !d.Rule.Exception {
		t.Errorf("Match decision = %+v", d)
	}
}

func TestThirdPartyOption(t *testing.T) {
	e := engine(t, "||widgets.net^$third-party")
	ri := req("https://widgets.net/w.js")
	if !e.ShouldBlock(ri) {
		t.Error("third-party request not blocked")
	}
	ri.ThirdParty = false
	if e.ShouldBlock(ri) {
		t.Error("first-party request blocked by $third-party rule")
	}

	e2 := engine(t, "||widgets.net^$~third-party")
	if e2.ShouldBlock(req("https://widgets.net/w.js")) {
		t.Error("$~third-party blocked a third-party request")
	}
}

func TestDomainOption(t *testing.T) {
	e := engine(t, "||tracker.net^$domain=shop.com|~mail.shop.com")
	ri := req("https://tracker.net/x")
	ri.PageHost = "www.shop.com"
	if !e.ShouldBlock(ri) {
		t.Error("domain= did not match subdomain of shop.com")
	}
	ri.PageHost = "mail.shop.com"
	if e.ShouldBlock(ri) {
		t.Error("~mail.shop.com exclusion ignored")
	}
	ri.PageHost = "other.com"
	if e.ShouldBlock(ri) {
		t.Error("domain= matched unrelated page host")
	}
}

func TestTypeOptions(t *testing.T) {
	e := engine(t, "||tracker.net^$script,image")
	ri := req("https://tracker.net/x")
	ri.Type = TypeScript
	if !e.ShouldBlock(ri) {
		t.Error("script not blocked")
	}
	ri.Type = TypeXHR
	if e.ShouldBlock(ri) {
		t.Error("xhr blocked despite $script,image")
	}

	inv := engine(t, "||tracker.net^$~image")
	ri.Type = TypeImage
	if inv.ShouldBlock(ri) {
		t.Error("$~image blocked an image")
	}
	ri.Type = TypeScript
	if !inv.ShouldBlock(ri) {
		t.Error("$~image failed to block a script")
	}
}

func TestUnsupportedOptionSkipsRule(t *testing.T) {
	l := MustParseList("t", "||x.com^$popup\n||y.com^")
	if len(l.Rules) != 1 {
		t.Fatalf("rules = %d, want 1 (popup rule skipped)", len(l.Rules))
	}
	if l.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", l.Skipped)
	}
}

func TestCommentsCosmeticHeadersSkipped(t *testing.T) {
	text := "[Adblock Plus 2.0]\n! comment\nsite.com##.ad-banner\n\n||real.net^\n"
	l := MustParseList("t", text)
	if len(l.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(l.Rules))
	}
	// Header, comment, cosmetic rule, blank line, trailing blank line.
	if l.Skipped != 5 {
		t.Errorf("Skipped = %d, want 5", l.Skipped)
	}
}

func TestMultipleListsDecisionNamesList(t *testing.T) {
	el := MustParseList("easylist", "/banner.")
	ep := MustParseList("easyprivacy", "||tracker.net^")
	e := NewEngine(el, ep)
	d := e.Match(req("https://tracker.net/p"))
	if !d.Blocked || d.List != "easyprivacy" {
		t.Errorf("decision = %+v", d)
	}
}

func TestNothingMatches(t *testing.T) {
	e := engine(t, "||tracker.net^")
	d := e.Match(req("https://benign.org/app.js"))
	if d.Blocked || d.Rule != nil {
		t.Errorf("decision = %+v", d)
	}
}

func BenchmarkEngineMatch(b *testing.B) {
	var rules []string
	for i := 0; i < 200; i++ {
		rules = append(rules, "||tracker"+string(rune('a'+i%26))+".net^$third-party")
	}
	rules = append(rules, "||victim.net^")
	l := MustParseList("bench", strings.Join(rules, "\n"))
	e := NewEngine(l)
	ri := RequestInfo{URL: "https://victim.net/pixel?ud=abc", PageHost: "site.com", Type: TypeImage, ThirdParty: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.ShouldBlock(ri) {
			b.Fatal("miss")
		}
	}
}
