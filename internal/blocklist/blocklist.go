// Package blocklist implements an Adblock Plus filter engine with the
// rule semantics the paper's §7.2 evaluation relies on (it used the
// Python adblockparser library over EasyList and EasyPrivacy): domain
// anchors (||), start/end anchors (|), wildcards (*), the ^ separator,
// exception rules (@@), and the $ options third-party/~third-party,
// domain= and resource types.
//
// Element-hiding rules (##, #@#) and the rarely relevant options (popup,
// csp, ...) are parsed and skipped, exactly as a network-request matcher
// should treat them.
package blocklist

import (
	"fmt"
	"regexp"
	"strings"

	"piileak/internal/httpmodel"
	"piileak/internal/psl"
)

// ResourceType classifies a request for $type options. It is the traffic
// model's resource type.
type ResourceType = httpmodel.ResourceType

// Resource types re-exported for rule matching.
const (
	TypeScript      = httpmodel.TypeScript
	TypeImage       = httpmodel.TypeImage
	TypeStylesheet  = httpmodel.TypeStylesheet
	TypeXHR         = httpmodel.TypeXHR
	TypeSubdocument = httpmodel.TypeSubdocument
	TypePing        = httpmodel.TypePing
	TypeDocument    = httpmodel.TypeDocument
	TypeOther       = httpmodel.TypeOther
)

// RequestInfo carries the request attributes rule options inspect.
type RequestInfo struct {
	// URL is the absolute request URL.
	URL string
	// PageHost is the host of the page issuing the request.
	PageHost string
	// Type is the resource type.
	Type ResourceType
	// ThirdParty reports whether the request crosses registrable
	// domains (computed by the caller, usually via psl).
	ThirdParty bool
}

// Rule is one compiled network filter.
type Rule struct {
	// Raw is the original filter text.
	Raw string
	// Exception marks @@ rules.
	Exception bool

	re          *regexp.Regexp
	hasTP       bool
	tpValue     bool // value required when hasTP
	types       map[ResourceType]bool
	typesInvert bool
	domains     []domainOpt
}

type domainOpt struct {
	domain string
	invert bool
}

// List is a named, ordered set of compiled rules.
type List struct {
	Name  string
	Rules []Rule
	// Skipped counts lines that were comments, cosmetic filters or
	// unsupported rules.
	Skipped int
}

// ParseList compiles a filter list from ABP text format.
func ParseList(name, text string) (*List, error) {
	l := &List{Name: name}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			l.Skipped++
			continue
		}
		// Cosmetic filters.
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			l.Skipped++
			continue
		}
		rule, ok, err := compileRule(line)
		if err != nil {
			return nil, fmt.Errorf("blocklist: line %d: %w", lineNo+1, err)
		}
		if !ok {
			l.Skipped++
			continue
		}
		l.Rules = append(l.Rules, rule)
	}
	return l, nil
}

// MustParseList panics on error; for embedded lists.
func MustParseList(name, text string) *List {
	l, err := ParseList(name, text)
	if err != nil {
		panic(err)
	}
	return l
}

// compileRule translates one filter into a Rule. ok=false means the rule
// is recognized but unsupported (skipped).
func compileRule(line string) (Rule, bool, error) {
	r := Rule{Raw: line}
	body := line
	if strings.HasPrefix(body, "@@") {
		r.Exception = true
		body = body[2:]
	}

	// Split off options at the last unescaped '$'.
	if idx := strings.LastIndex(body, "$"); idx >= 0 && !strings.Contains(body[idx:], "/") {
		opts := strings.Split(body[idx+1:], ",")
		body = body[:idx]
		for _, o := range opts {
			o = strings.TrimSpace(o)
			switch {
			case o == "third-party":
				r.hasTP, r.tpValue = true, true
			case o == "~third-party":
				r.hasTP, r.tpValue = true, false
			case strings.HasPrefix(o, "domain="):
				for _, d := range strings.Split(o[len("domain="):], "|") {
					d = strings.TrimSpace(d)
					if d == "" {
						continue
					}
					if strings.HasPrefix(d, "~") {
						r.domains = append(r.domains, domainOpt{domain: psl.Normalize(d[1:]), invert: true})
					} else {
						r.domains = append(r.domains, domainOpt{domain: psl.Normalize(d)})
					}
				}
			case isTypeOption(o):
				if r.types == nil {
					r.types = make(map[ResourceType]bool)
				}
				if strings.HasPrefix(o, "~") {
					r.typesInvert = true
					r.types[ResourceType(o[1:])] = true
				} else {
					r.types[ResourceType(o)] = true
				}
			default:
				// Unsupported option (popup, csp, redirect, ...):
				// skip the whole rule, as adblockparser does when
				// asked to honour unsupported options.
				return Rule{}, false, nil
			}
		}
	}

	if body == "" {
		return Rule{}, false, nil
	}
	re, err := ruleToRegexp(body)
	if err != nil {
		return Rule{}, false, err
	}
	r.re = re
	return r, true, nil
}

func isTypeOption(o string) bool {
	o = strings.TrimPrefix(o, "~")
	switch ResourceType(o) {
	case TypeScript, TypeImage, TypeStylesheet, TypeXHR, TypeSubdocument, TypePing, TypeDocument, TypeOther:
		return true
	}
	return false
}

// ruleToRegexp mirrors adblockparser's translation of ABP filter syntax
// to a regular expression.
func ruleToRegexp(body string) (*regexp.Regexp, error) {
	var sb strings.Builder
	sb.WriteString("(?i)") // ABP matching is case-insensitive

	i := 0
	// Domain anchor.
	if strings.HasPrefix(body, "||") {
		sb.WriteString(`^(?:[^:/?#]+:)?(?://(?:[^/?#]*\.)?)?`)
		i = 2
	} else if strings.HasPrefix(body, "|") {
		sb.WriteString("^")
		i = 1
	}
	end := len(body)
	endAnchor := false
	if strings.HasSuffix(body, "|") && end > i {
		endAnchor = true
		end--
	}
	for ; i < end; i++ {
		c := body[i]
		switch c {
		case '*':
			sb.WriteString(".*")
		case '^':
			sb.WriteString(`(?:[^\w\-.%]|$)`)
		case '.', '+', '?', '$', '{', '}', '(', ')', '[', ']', '/', '\\', '|':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		default:
			sb.WriteByte(c)
		}
	}
	if endAnchor {
		sb.WriteString("$")
	}
	return regexp.Compile(sb.String())
}

// matches reports whether the rule's pattern and options all hold.
func (r *Rule) matches(ri RequestInfo) bool {
	if r.hasTP && ri.ThirdParty != r.tpValue {
		return false
	}
	if len(r.domains) > 0 && !r.domainAllowed(ri.PageHost) {
		return false
	}
	if r.types != nil {
		in := r.types[ri.Type]
		if r.typesInvert {
			in = !in
		}
		if !in {
			return false
		}
	}
	return r.re.MatchString(ri.URL)
}

func (r *Rule) domainAllowed(pageHost string) bool {
	pageHost = psl.Normalize(pageHost)
	anyPositive := false
	matchedPositive := false
	for _, d := range r.domains {
		suffixMatch := pageHost == d.domain || strings.HasSuffix(pageHost, "."+d.domain)
		if d.invert {
			if suffixMatch {
				return false
			}
			continue
		}
		anyPositive = true
		if suffixMatch {
			matchedPositive = true
		}
	}
	if anyPositive && !matchedPositive {
		return false
	}
	return true
}

// Decision is the outcome of matching one request against lists.
type Decision struct {
	// Blocked reports the final verdict.
	Blocked bool
	// Rule is the filter that decided the outcome (a block rule, or
	// the exception that saved the request); nil when nothing matched.
	Rule *Rule
	// List is the name of the list the deciding rule came from.
	List string
}

// Engine matches requests against one or more lists with ABP semantics:
// any matching exception rule overrides any matching block rule.
type Engine struct {
	lists []*List
}

// NewEngine combines lists; order only affects which rule gets reported.
func NewEngine(lists ...*List) *Engine { return &Engine{lists: lists} }

// Lists returns the engine's lists.
func (e *Engine) Lists() []*List { return e.lists }

// Match evaluates a request.
func (e *Engine) Match(ri RequestInfo) Decision {
	var blockRule *Rule
	var blockList string
	for _, l := range e.lists {
		for i := range l.Rules {
			rule := &l.Rules[i]
			if !rule.matches(ri) {
				continue
			}
			if rule.Exception {
				return Decision{Blocked: false, Rule: rule, List: l.Name}
			}
			if blockRule == nil {
				blockRule = rule
				blockList = l.Name
			}
		}
	}
	if blockRule != nil {
		return Decision{Blocked: true, Rule: blockRule, List: blockList}
	}
	return Decision{}
}

// ShouldBlock is Match reduced to the verdict.
func (e *Engine) ShouldBlock(ri RequestInfo) bool { return e.Match(ri).Blocked }
