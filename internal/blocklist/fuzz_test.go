package blocklist

import "testing"

// FuzzParseList ensures arbitrary filter text never panics the parser
// and that every accepted rule can be matched without panicking.
func FuzzParseList(f *testing.F) {
	f.Add("||tracker.net^")
	f.Add("@@||ok.net^$third-party")
	f.Add("|https://x|\n/ads/*^\nsite.com##.x")
	f.Add("$domain=a.com|~b.com")
	f.Add("||x.com^$script,~image,domain=")
	f.Add("*")
	f.Add("^^^^")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<12 {
			return
		}
		l, err := ParseList("fuzz", text)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		e := NewEngine(l)
		e.Match(RequestInfo{
			URL: "https://pixel.tracker.net/p?x=1", PageHost: "site.com",
			Type: TypeImage, ThirdParty: true,
		})
	})
}
