package blocklist_test

import (
	"fmt"

	"piileak/internal/blocklist"
)

// Example shows the Adblock-Plus engine on a tracker request: the block
// rule matches, the exception saves an allowed path.
func Example() {
	list := blocklist.MustParseList("easyprivacy", `
||tracker.example^$third-party
@@||tracker.example/unsubscribe^
`)
	engine := blocklist.NewEngine(list)

	for _, url := range []string{
		"https://px.tracker.example/collect?ud=abc",
		"https://px.tracker.example/unsubscribe?u=1",
	} {
		d := engine.Match(blocklist.RequestInfo{
			URL: url, PageHost: "www.shop.example",
			Type: blocklist.TypeImage, ThirdParty: true,
		})
		fmt.Printf("%v %s\n", d.Blocked, url)
	}
	// Output:
	// true https://px.tracker.example/collect?ud=abc
	// false https://px.tracker.example/unsubscribe?u=1
}
