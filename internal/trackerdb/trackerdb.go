// Package trackerdb simulates the *tracker's side* of §5.1: the server
// that receives PII-derived identifiers and stores, per identifier, a
// persistent profile of the user's browsing — Figure 3's scenario made
// concrete. It shows what a receiver can reconstruct from the leaks the
// study detects: a cross-site, cross-browser history keyed by (hashed)
// e-mail rather than by any cookie.
//
// The store consumes detection output (core.Leak) rather than raw
// traffic, which mirrors reality: whatever the detector can see in a
// request, the receiving server sees too.
package trackerdb

import (
	"fmt"
	"sort"
	"strings"

	"piileak/internal/core"
	"piileak/internal/httpmodel"
)

// Visit is one observed page interaction attributed to a profile.
type Visit struct {
	// Site is the first party the user was on.
	Site string
	// Phase is the flow step observed (signup, signin, subpage, ...).
	Phase httpmodel.Phase
	// Context is the browsing context the observation came from
	// (browser/device), when the feeder supplies one.
	Context string
	// Seq orders visits within a context.
	Seq int
}

// Profile is the tracker's record for one identifier.
type Profile struct {
	// ID is the identifier value as received (e.g. the SHA-256 of the
	// e-mail address).
	ID string
	// Encoding is the identifier's encoding label ("sha256", ...).
	Encoding string
	// Params are the identifier parameters the ID arrived in.
	Params []string
	// Visits is the accumulated browsing history.
	Visits []Visit
	// Sites is the distinct first-party set, sorted.
	Sites []string
	// Contexts is the distinct browsing-context set, sorted.
	Contexts []string
}

// Server is one tracking provider's profile store.
type Server struct {
	// Domain is the provider's registrable domain.
	Domain string

	profiles map[string]*profileState
}

type profileState struct {
	encoding string
	params   map[string]bool
	visits   []Visit
	sites    map[string]bool
	contexts map[string]bool
}

// NewServer creates an empty store for a provider.
func NewServer(domain string) *Server {
	return &Server{Domain: domain, profiles: map[string]*profileState{}}
}

// Ingest feeds one detected leak destined to this provider; leaks for
// other receivers and non-identifier leaks (referer channel) are
// ignored. context labels the browsing context ("" is fine for a single
// browser).
func (s *Server) Ingest(l *core.Leak, context string) {
	if l.Receiver != s.Domain {
		return
	}
	if l.Param == "" || l.Method == httpmodel.SurfaceReferer {
		return
	}
	st := s.profiles[l.Token.Value]
	if st == nil {
		st = &profileState{
			encoding: l.EncodingLabel(),
			params:   map[string]bool{},
			sites:    map[string]bool{},
			contexts: map[string]bool{},
		}
		s.profiles[l.Token.Value] = st
	}
	st.params[l.Param] = true
	st.sites[l.Site] = true
	if context != "" {
		st.contexts[context] = true
	}
	st.visits = append(st.visits, Visit{
		Site: l.Site, Phase: l.Phase, Context: context, Seq: l.Seq,
	})
}

// IngestAll feeds a batch of leaks from one context.
func (s *Server) IngestAll(leaks []core.Leak, context string) {
	for i := range leaks {
		s.Ingest(&leaks[i], context)
	}
}

// Profiles returns the stored profiles, largest history first.
func (s *Server) Profiles() []Profile {
	out := make([]Profile, 0, len(s.profiles))
	for id, st := range s.profiles {
		p := Profile{
			ID:       id,
			Encoding: st.encoding,
			Params:   sortedKeys(st.params),
			Visits:   append([]Visit(nil), st.visits...),
			Sites:    sortedKeys(st.sites),
			Contexts: sortedKeys(st.contexts),
		}
		sort.SliceStable(p.Visits, func(a, b int) bool {
			if p.Visits[a].Context != p.Visits[b].Context {
				return p.Visits[a].Context < p.Visits[b].Context
			}
			return p.Visits[a].Seq < p.Visits[b].Seq
		})
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Sites) != len(out[b].Sites) {
			return len(out[a].Sites) > len(out[b].Sites)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// ProfileCount returns the number of distinct identifiers stored.
func (s *Server) ProfileCount() int { return len(s.profiles) }

// History renders one profile's browsing history as text — what the
// provider "knows" about the user.
func (p *Profile) History() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s (%s, params %s)\n",
		truncate(p.ID, 24), p.Encoding, strings.Join(p.Params, "/"))
	fmt.Fprintf(&b, "  %d sites across %d contexts\n", len(p.Sites), max(1, len(p.Contexts)))
	for _, v := range p.Visits {
		ctx := v.Context
		if ctx == "" {
			ctx = "-"
		}
		fmt.Fprintf(&b, "  %-16s %-10s %s\n", ctx, v.Phase, v.Site)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
