package trackerdb

import (
	"strings"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

func mkLeak(site, recv, param, value string, phase httpmodel.Phase, seq int) core.Leak {
	return core.Leak{
		Site: site, Receiver: recv, Method: httpmodel.SurfaceURI,
		Param: param, Phase: phase, Seq: seq,
		Token: pii.Token{Value: value, Field: pii.Field{Type: pii.TypeEmail}, Chain: []string{"sha256"}},
	}
}

func TestIngestBuildsProfile(t *testing.T) {
	s := NewServer("fb.com")
	s.Ingest(&[]core.Leak{mkLeak("a.com", "fb.com", "udff[em]", "HASH", httpmodel.PhaseSignup, 1)}[0], "laptop")
	s.Ingest(&[]core.Leak{mkLeak("b.com", "fb.com", "udff[em]", "HASH", httpmodel.PhaseSubpage, 9)}[0], "phone")

	if s.ProfileCount() != 1 {
		t.Fatalf("profiles = %d, want 1 (same ID merges)", s.ProfileCount())
	}
	p := s.Profiles()[0]
	if p.ID != "HASH" || p.Encoding != "sha256" {
		t.Errorf("profile = %+v", p)
	}
	if len(p.Sites) != 2 || len(p.Contexts) != 2 {
		t.Errorf("sites = %v, contexts = %v", p.Sites, p.Contexts)
	}
	if len(p.Visits) != 2 {
		t.Errorf("visits = %+v", p.Visits)
	}
	hist := p.History()
	if !strings.Contains(hist, "a.com") || !strings.Contains(hist, "phone") {
		t.Errorf("history:\n%s", hist)
	}
}

func TestIngestIgnoresOtherReceivers(t *testing.T) {
	s := NewServer("fb.com")
	l := mkLeak("a.com", "criteo.com", "p0", "H2", httpmodel.PhaseSignup, 1)
	s.Ingest(&l, "")
	if s.ProfileCount() != 0 {
		t.Error("foreign receiver ingested")
	}
}

func TestIngestIgnoresRefererLeaks(t *testing.T) {
	s := NewServer("ads.net")
	l := core.Leak{
		Site: "a.com", Receiver: "ads.net", Method: httpmodel.SurfaceReferer,
		Token: pii.Token{Value: "plain@e.mail", Field: pii.Field{Type: pii.TypeEmail}},
	}
	s.Ingest(&l, "")
	if s.ProfileCount() != 0 {
		t.Error("referer leak stored as identifier")
	}
}

func TestDistinctIDsDistinctProfiles(t *testing.T) {
	s := NewServer("t.net")
	a := mkLeak("a.com", "t.net", "uid", "ID1", httpmodel.PhaseSignup, 1)
	b := mkLeak("b.com", "t.net", "uid", "ID2", httpmodel.PhaseSignup, 1)
	s.Ingest(&a, "")
	s.Ingest(&b, "")
	if s.ProfileCount() != 2 {
		t.Errorf("profiles = %d", s.ProfileCount())
	}
}

// TestServerReconstructsStudyHistory is the §5.1 scenario end to end:
// the facebook store, fed only with what the detector saw, reconstructs
// the persona's cross-site browsing history.
func TestServerReconstructsStudyHistory(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(71))
	ds := crawler.Crawl(eco, browser.Firefox88())
	cs := pii.MustBuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	det := core.NewDetector(cs, dnssim.NewClassifier(eco.Zone))

	var leaks []core.Leak
	for _, c := range ds.Successes() {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}

	srv := NewServer("facebook.com")
	srv.IngestAll(leaks, "laptop-firefox")

	// One profile per identifier encoding: facebook's Table 2 rows use
	// sha256 (udff[em]) and md5 (ud[em]), so at most two. Server-side,
	// the provider trivially links them — it computes both hashes from
	// the raw address.
	if n := srv.ProfileCount(); n < 1 || n > 2 {
		t.Fatalf("facebook holds %d profiles for one persona", n)
	}
	p := srv.Profiles()[0] // the largest: the sha256 identifier

	// Every sender on facebook's sha256 slot appears in the history.
	want := map[string]bool{}
	for _, ed := range eco.Edges {
		if eco.Providers[ed.Provider].Domain == "facebook.com" &&
			len(ed.Chain) == 1 && ed.Chain[0] == "sha256" {
			want[eco.SenderSites[ed.Sender].Domain] = true
		}
	}
	got := map[string]bool{}
	for _, site := range p.Sites {
		got[site] = true
	}
	for site := range want {
		if !got[site] {
			t.Errorf("history missing %s", site)
		}
	}
	for site := range got {
		if !want[site] {
			t.Errorf("history has unexpected site %s", site)
		}
	}

	// Subpage visits are present: the persistence that makes the ID a
	// cookie replacement.
	foundSubpage := false
	for _, v := range p.Visits {
		if v.Phase == httpmodel.PhaseSubpage {
			foundSubpage = true
		}
	}
	if !foundSubpage {
		t.Error("no subpage visits in the reconstructed history")
	}
}
