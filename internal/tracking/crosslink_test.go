package tracking

import (
	"reflect"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

func TestCrossContextLinksSameID(t *testing.T) {
	fb := func(site string) core.Leak {
		return leak(site, "fb.com", "udff[em]", httpmodel.SurfaceURI, httpmodel.PhaseSignup, []string{"sha256"})
	}
	links := CrossContext([]ContextLeaks{
		{Context: "laptop-firefox", Leaks: []core.Leak{fb("a.com")}},
		{Context: "phone-chrome", Leaks: []core.Leak{fb("b.com")}},
	})
	if len(links) != 1 {
		t.Fatalf("links = %+v", links)
	}
	l := links[0]
	if l.Receiver != "fb.com" {
		t.Errorf("receiver = %s", l.Receiver)
	}
	if !reflect.DeepEqual(l.Contexts, []string{"laptop-firefox", "phone-chrome"}) {
		t.Errorf("contexts = %v", l.Contexts)
	}
	if !reflect.DeepEqual(l.Sites, []string{"a.com", "b.com"}) {
		t.Errorf("sites = %v", l.Sites)
	}
	if got := LinkingReceivers(links); len(got) != 1 || got[0] != "fb.com" {
		t.Errorf("LinkingReceivers = %v", got)
	}
}

func TestCrossContextDifferentIDsDoNotLink(t *testing.T) {
	a := leak("a.com", "t.net", "uid", httpmodel.SurfaceURI, httpmodel.PhaseSignup, []string{"sha256"})
	b := leak("b.com", "t.net", "uid", httpmodel.SurfaceURI, httpmodel.PhaseSignup, []string{"md5"})
	// Different chains yield different token values (leak() bakes the
	// label into the value).
	links := CrossContext([]ContextLeaks{
		{Context: "c1", Leaks: []core.Leak{a}},
		{Context: "c2", Leaks: []core.Leak{b}},
	})
	if len(links) != 0 {
		t.Errorf("links = %+v", links)
	}
}

func TestCrossContextSingleContextNoLink(t *testing.T) {
	l := leak("a.com", "t.net", "uid", httpmodel.SurfaceURI, httpmodel.PhaseSignup, nil)
	links := CrossContext([]ContextLeaks{{Context: "only", Leaks: []core.Leak{l, l}}})
	if len(links) != 0 {
		t.Errorf("one context linked with itself: %+v", links)
	}
}

func TestCrossContextRefererNotIdentifiable(t *testing.T) {
	r := leak("a.com", "ads.net", "", httpmodel.SurfaceReferer, httpmodel.PhaseSignup, nil)
	links := CrossContext([]ContextLeaks{
		{Context: "c1", Leaks: []core.Leak{r}},
		{Context: "c2", Leaks: []core.Leak{r}},
	})
	if len(links) != 0 {
		t.Errorf("referer leak linked contexts: %+v", links)
	}
}

// TestCrossBrowserEndToEnd reproduces §5.1's claim on the simulator: the
// same persona completing auth flows in two different browsers hands
// every tracking provider an identical ID in both.
func TestCrossBrowserEndToEnd(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(61))
	cs := pii.MustBuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	det := core.NewDetector(cs, dnssim.NewClassifier(eco.Zone))

	detect := func(profile browser.Profile) []core.Leak {
		ds := crawler.CrawlSenders(eco, profile)
		var leaks []core.Leak
		for _, c := range ds.Crawls {
			leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
		}
		return leaks
	}

	links := CrossContext([]ContextLeaks{
		{Context: "firefox", Leaks: detect(browser.Firefox88())},
		{Context: "chrome", Leaks: detect(browser.Chrome93())},
	})
	linkers := map[string]bool{}
	for _, r := range LinkingReceivers(links) {
		linkers[r] = true
	}

	cls := Classify(detect(browser.Firefox88()))
	if len(cls.Trackers) == 0 {
		t.Fatal("no trackers in the small ecosystem")
	}
	for _, tr := range cls.Trackers {
		if !linkers[tr.Receiver] {
			t.Errorf("tracking provider %s cannot link the two browsers", tr.Receiver)
		}
	}
}
