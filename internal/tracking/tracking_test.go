package tracking

import (
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

func leak(site, recv, param string, method httpmodel.SurfaceKind, phase httpmodel.Phase, chain []string) core.Leak {
	return core.Leak{
		Site: site, Receiver: recv, Method: method, Param: param, Phase: phase,
		Token: pii.Token{
			Value: "tokenvalue-" + pii.ChainLabel(chain),
			Field: pii.Field{Type: pii.TypeEmail},
			Chain: chain,
		},
	}
}

func TestClassifyTracker(t *testing.T) {
	leaks := []core.Leak{
		leak("a.com", "fb.com", "udff[em]", httpmodel.SurfaceURI, httpmodel.PhaseSignup, []string{"sha256"}),
		leak("b.com", "fb.com", "udff[em]", httpmodel.SurfaceURI, httpmodel.PhaseSignup, []string{"sha256"}),
		leak("a.com", "fb.com", "udff[em]", httpmodel.SurfaceURI, httpmodel.PhaseSubpage, []string{"sha256"}),
	}
	c := Classify(leaks)
	if len(c.Trackers) != 1 {
		t.Fatalf("trackers = %d, want 1", len(c.Trackers))
	}
	tr := c.Trackers[0]
	if tr.Receiver != "fb.com" || !tr.MultiSenderID || !tr.Persistent {
		t.Errorf("tracker = %+v", tr)
	}
	if tr.Senders != 2 {
		t.Errorf("senders = %d", tr.Senders)
	}
	if len(tr.Rows) != 1 || tr.Rows[0].Encoding != "sha256" || tr.Rows[0].Senders != 2 {
		t.Errorf("rows = %+v", tr.Rows)
	}
}

func TestClassifyNotPersistent(t *testing.T) {
	// Same ID from two senders but never on subpages: cross-site cue
	// only.
	leaks := []core.Leak{
		leak("a.com", "ga.com", "em", httpmodel.SurfaceURI, httpmodel.PhaseSignup, []string{"sha256"}),
		leak("b.com", "ga.com", "em", httpmodel.SurfaceURI, httpmodel.PhaseSignin, []string{"sha256"}),
	}
	c := Classify(leaks)
	if len(c.Trackers) != 0 {
		t.Fatalf("trackers = %+v", c.Trackers)
	}
	if c.MultiSenderID != 1 {
		t.Errorf("multi-sender-ID receivers = %d", c.MultiSenderID)
	}
}

func TestClassifyInconsistentParams(t *testing.T) {
	// Two senders, but different identifier parameters and values: the
	// cross-site cue fails.
	a := leak("a.com", "cl.ms", "cl_em1", httpmodel.SurfaceURI, httpmodel.PhaseSubpage, []string{"sha256"})
	b := leak("b.com", "cl.ms", "cl_em2", httpmodel.SurfaceURI, httpmodel.PhaseSubpage, []string{"sha256"})
	b.Token.Value = "another-token"
	c := Classify([]core.Leak{a, b})
	if len(c.Trackers) != 0 {
		t.Fatalf("inconsistent-param receiver classified as tracker")
	}
	if c.MultiSender != 1 || c.MultiSenderID != 0 {
		t.Errorf("census = %+v", c)
	}
}

func TestClassifyRefererNotIdentifiable(t *testing.T) {
	leaks := []core.Leak{
		leak("a.com", "ads.net", "", httpmodel.SurfaceReferer, httpmodel.PhaseSignup, nil),
		leak("b.com", "ads.net", "", httpmodel.SurfaceReferer, httpmodel.PhaseSignup, nil),
	}
	c := Classify(leaks)
	if len(c.Trackers) != 0 || c.MultiSenderID != 0 {
		t.Errorf("referer receiver misclassified: %+v", c)
	}
	if c.MultiSender != 1 {
		t.Errorf("multi-sender = %d", c.MultiSender)
	}
}

func TestDisplayCloaked(t *testing.T) {
	p := Provider{Receiver: "omtrdc.net", Cloaked: true}
	if got := p.Display(); got != "adobe_cname" {
		t.Errorf("Display = %q", got)
	}
	p2 := Provider{Receiver: "eulerian.net", Cloaked: true}
	if got := p2.Display(); got != "eulerian_cname" {
		t.Errorf("Display = %q", got)
	}
	p3 := Provider{Receiver: "facebook.com"}
	if got := p3.Display(); got != "facebook.com" {
		t.Errorf("Display = %q", got)
	}
}

func TestEndToEndTrackerCensus(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(31))
	ds := crawler.Crawl(eco, browser.Firefox88())
	cs := pii.MustBuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	det := core.NewDetector(cs, dnssim.NewClassifier(eco.Zone))

	var leaks []core.Leak
	for _, c := range ds.Successes() {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}
	cls := Classify(leaks)

	// The recovered tracker set must be exactly the ecosystem's
	// persistent providers that kept >= 2 senders after scaling.
	wantTrackers := map[string]bool{}
	senderCount := map[string]map[int]bool{}
	for _, ed := range eco.Edges {
		p := eco.Providers[ed.Provider]
		if !p.Persistent {
			continue
		}
		if senderCount[p.Domain] == nil {
			senderCount[p.Domain] = map[int]bool{}
		}
		senderCount[p.Domain][ed.Sender] = true
	}
	for dom, ss := range senderCount {
		if len(ss) >= 2 {
			wantTrackers[dom] = true
		}
	}
	got := map[string]bool{}
	for _, tr := range cls.Trackers {
		got[tr.Receiver] = true
	}
	for dom := range wantTrackers {
		if !got[dom] {
			t.Errorf("tracking provider not recovered: %s", dom)
		}
	}
	for dom := range got {
		if !wantTrackers[dom] {
			t.Errorf("false tracking provider: %s", dom)
		}
	}

	// All trackers identify through the email address.
	for _, tr := range cls.Trackers {
		types := PIITypes(leaks, tr.Receiver)
		hasEmail := false
		for _, tp := range types {
			if tp == pii.TypeEmail {
				hasEmail = true
			}
		}
		if !hasEmail {
			t.Errorf("%s does not use the email address", tr.Receiver)
		}
	}
}
