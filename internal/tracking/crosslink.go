package tracking

import (
	"sort"

	"piileak/internal/core"
)

// This file implements §5.1's presumption as a measurable analysis:
// because the PII-derived identifier is a function of the *user* rather
// than of the browser instance, a receiver that obtains the same ID from
// two different browsing contexts (browsers, devices) can link them —
// something third-party cookies, which are minted per browser profile,
// cannot do once blocked or cleared.

// ContextLeaks is the detected leakage of one browsing context.
type ContextLeaks struct {
	// Context names the browser/device ("laptop-firefox", ...).
	Context string
	// Leaks is the §4 detection output for that context.
	Leaks []core.Leak
}

// Linkage is one receiver's ability to join browsing contexts.
type Linkage struct {
	// Receiver is the third party holding the identifier.
	Receiver string
	// IDValue is the shared PII-derived identifier (token value).
	IDValue string
	// Contexts are the linked browsing contexts, sorted.
	Contexts []string
	// Sites are the first parties observed across those contexts,
	// sorted — the browsing history the receiver can merge.
	Sites []string
}

// CrossContext finds every receiver that received the same identifiable
// token value from more than one browsing context. The result is sorted
// by receiver, then identifier.
func CrossContext(contexts []ContextLeaks) []Linkage {
	type key struct {
		receiver string
		value    string
	}
	ctxs := map[key]map[string]bool{}
	sites := map[key]map[string]bool{}
	for _, c := range contexts {
		for i := range c.Leaks {
			l := &c.Leaks[i]
			if !identifiable(l) {
				continue
			}
			k := key{l.Receiver, l.Token.Value}
			if ctxs[k] == nil {
				ctxs[k] = map[string]bool{}
				sites[k] = map[string]bool{}
			}
			ctxs[k][c.Context] = true
			sites[k][l.Site] = true
		}
	}
	var out []Linkage
	for k, cs := range ctxs {
		if len(cs) < 2 {
			continue
		}
		out = append(out, Linkage{
			Receiver: k.receiver,
			IDValue:  k.value,
			Contexts: sortedSet(cs),
			Sites:    sortedSet(sites[k]),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Receiver != out[b].Receiver {
			return out[a].Receiver < out[b].Receiver
		}
		return out[a].IDValue < out[b].IDValue
	})
	return out
}

// LinkingReceivers reduces CrossContext output to the distinct receivers
// able to join contexts, sorted.
func LinkingReceivers(links []Linkage) []string {
	set := map[string]bool{}
	for _, l := range links {
		set[l.Receiver] = true
	}
	return sortedSet(set)
}
