// Package tracking implements §5's persistent-tracking analysis: mining
// PII identifier parameters (trackids) from detected leaks, checking the
// cross-site cue (the same ID parameter fed by more than one sender) and
// the persistence cue (the ID re-appears on first-party subpages), and
// classifying third-party receivers as PII-leakage-based tracking
// providers (Table 2).
package tracking

import (
	"sort"
	"strings"

	"piileak/internal/core"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

// Row is one behaviour row of a provider in Table 2: the senders using
// one encoding form, with the methods and identifier parameters seen.
type Row struct {
	Senders  int
	Methods  []string // e.g. ["URI", "Payload"]
	Encoding string   // Table 1b vocabulary
	Params   []string // identifier parameter names
}

// Provider is one classified receiver.
type Provider struct {
	// Receiver is the registrable domain (after uncloaking).
	Receiver string
	// Cloaked marks CNAME-cloaked deployments (reported with the
	// paper's "_cname" suffix).
	Cloaked bool
	// Senders is the count of distinct senders feeding identifier
	// parameters.
	Senders int
	// MultiSenderID holds §5.2's cross-site cue: some identifier
	// parameter receives the same PII-derived ID from ≥ 2 senders.
	MultiSenderID bool
	// Persistent holds §5.2's storage cue: the identifier also appears
	// on sender subpages.
	Persistent bool
	// Rows is the Table 2 breakdown by encoding form.
	Rows []Row
}

// IsTracker reports the §5.2 classification: a tracking provider shows
// both the cross-site and the persistence cue.
func (p *Provider) IsTracker() bool { return p.MultiSenderID && p.Persistent }

// Display renders the receiver name, marking cloaked deployments the way
// the paper does ("adobe_cname").
func (p *Provider) Display() string {
	if !p.Cloaked {
		return p.Receiver
	}
	base := p.Receiver
	if i := strings.IndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	if base == "omtrdc" {
		base = "adobe"
	}
	return base + "_cname"
}

// Classification is the full §5.2 census.
type Classification struct {
	// Providers holds every receiver, most senders first.
	Providers []Provider
	// Trackers is the Table 2 subset (cross-site + persistent).
	Trackers []Provider
	// MultiSenderID counts receivers with the cross-site cue (the
	// paper's 34).
	MultiSenderID int
	// MultiSender counts receivers fed by ≥ 2 senders regardless of
	// parameter consistency.
	MultiSender int
	// SingleSender counts receivers seen with exactly one sender (the
	// paper's 58 possibly-missed trackers).
	SingleSender int
}

// identifiable reports whether a leak can serve as a stored identifier:
// it rode in a named parameter, body field or cookie.
func identifiable(l *core.Leak) bool {
	return l.Param != "" && l.Method != httpmodel.SurfaceReferer
}

// Classify runs the §5.2 analysis over detected leaks.
func Classify(leaks []core.Leak) *Classification {
	type provKey struct {
		receiver string
		cloaked  bool
	}
	byProv := map[provKey][]core.Leak{}
	for _, l := range leaks {
		k := provKey{l.Receiver, l.Cloaked}
		byProv[k] = append(byProv[k], l)
	}
	keys := make([]provKey, 0, len(byProv))
	for k := range byProv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].receiver < keys[b].receiver })

	c := &Classification{}
	for _, k := range keys {
		ls := byProv[k]
		p := buildProvider(k.receiver, k.cloaked, ls)

		senders := map[string]bool{}
		for _, l := range ls {
			senders[l.Site] = true
		}
		if len(senders) >= 2 {
			c.MultiSender++
		} else {
			c.SingleSender++
		}
		if p.MultiSenderID {
			c.MultiSenderID++
		}
		c.Providers = append(c.Providers, p)
		if p.IsTracker() {
			c.Trackers = append(c.Trackers, p)
		}
	}
	sort.SliceStable(c.Providers, func(a, b int) bool {
		if c.Providers[a].Senders != c.Providers[b].Senders {
			return c.Providers[a].Senders > c.Providers[b].Senders
		}
		return c.Providers[a].Receiver < c.Providers[b].Receiver
	})
	sort.SliceStable(c.Trackers, func(a, b int) bool {
		if c.Trackers[a].Senders != c.Trackers[b].Senders {
			return c.Trackers[a].Senders > c.Trackers[b].Senders
		}
		return c.Trackers[a].Receiver < c.Trackers[b].Receiver
	})
	return c
}

func buildProvider(receiver string, cloaked bool, ls []core.Leak) Provider {
	p := Provider{Receiver: receiver, Cloaked: cloaked}

	// Cross-site cue (§5.2): the receiver gets the *same ID* — the
	// same PII-derived token value — from at least two senders. The
	// persona is one user, so equal encodings yield equal IDs across
	// sites; receivers whose senders use different encodings (or no
	// identifier parameter at all) fail the cue.
	valueSenders := map[string]map[string]bool{} // token value -> senders
	senders := map[string]bool{}
	for i := range ls {
		l := &ls[i]
		if !identifiable(l) {
			continue
		}
		senders[l.Site] = true
		if valueSenders[l.Token.Value] == nil {
			valueSenders[l.Token.Value] = map[string]bool{}
		}
		valueSenders[l.Token.Value][l.Site] = true
	}
	p.Senders = len(senders)
	for _, ss := range valueSenders {
		if len(ss) >= 2 {
			p.MultiSenderID = true
			break
		}
	}

	// Persistence cue: identifier leaks on subpages.
	for i := range ls {
		l := &ls[i]
		if identifiable(l) && l.Phase == httpmodel.PhaseSubpage {
			p.Persistent = true
			break
		}
	}

	// Table 2 rows: group identifier leaks by encoding form.
	type agg struct {
		senders map[string]bool
		methods map[string]bool
		params  map[string]bool
	}
	rows := map[string]*agg{}
	for i := range ls {
		l := &ls[i]
		if !identifiable(l) {
			continue
		}
		lab := l.EncodingLabel()
		a := rows[lab]
		if a == nil {
			a = &agg{senders: map[string]bool{}, methods: map[string]bool{}, params: map[string]bool{}}
			rows[lab] = a
		}
		a.senders[l.Site] = true
		a.methods[methodName(l.Method)] = true
		a.params[l.Param] = true
	}
	for lab, a := range rows {
		p.Rows = append(p.Rows, Row{
			Senders:  len(a.senders),
			Methods:  sortedSet(a.methods),
			Encoding: lab,
			Params:   sortedSet(a.params),
		})
	}
	sort.Slice(p.Rows, func(a, b int) bool {
		if p.Rows[a].Senders != p.Rows[b].Senders {
			return p.Rows[a].Senders > p.Rows[b].Senders
		}
		return p.Rows[a].Encoding < p.Rows[b].Encoding
	})
	return p
}

func methodName(m httpmodel.SurfaceKind) string {
	switch m {
	case httpmodel.SurfaceURI:
		return "URI"
	case httpmodel.SurfaceBody:
		return "Payload"
	case httpmodel.SurfaceCookie:
		return "Cookie"
	case httpmodel.SurfaceReferer:
		return "Referer"
	}
	return string(m)
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PIITypes returns the distinct PII types a tracker receives (the
// paper's observation that all 20 use the email address).
func PIITypes(leaks []core.Leak, receiver string) []pii.Type {
	set := map[pii.Type]bool{}
	for _, l := range leaks {
		if l.Receiver == receiver && identifiable(&l) {
			set[l.Token.Field.Type] = true
		}
	}
	out := make([]pii.Type, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
