// Package tracking implements §5's persistent-tracking analysis: mining
// PII identifier parameters (trackids) from detected leaks, checking the
// cross-site cue (the same ID parameter fed by more than one sender) and
// the persistence cue (the ID re-appears on first-party subpages), and
// classifying third-party receivers as PII-leakage-based tracking
// providers (Table 2).
package tracking

import (
	"sort"
	"strings"

	"piileak/internal/core"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

// Row is one behaviour row of a provider in Table 2: the senders using
// one encoding form, with the methods and identifier parameters seen.
type Row struct {
	Senders  int
	Methods  []string // e.g. ["URI", "Payload"]
	Encoding string   // Table 1b vocabulary
	Params   []string // identifier parameter names
}

// Provider is one classified receiver.
type Provider struct {
	// Receiver is the registrable domain (after uncloaking).
	Receiver string
	// Cloaked marks CNAME-cloaked deployments (reported with the
	// paper's "_cname" suffix).
	Cloaked bool
	// Senders is the count of distinct senders feeding identifier
	// parameters.
	Senders int
	// MultiSenderID holds §5.2's cross-site cue: some identifier
	// parameter receives the same PII-derived ID from ≥ 2 senders.
	MultiSenderID bool
	// Persistent holds §5.2's storage cue: the identifier also appears
	// on sender subpages.
	Persistent bool
	// Rows is the Table 2 breakdown by encoding form.
	Rows []Row
}

// IsTracker reports the §5.2 classification: a tracking provider shows
// both the cross-site and the persistence cue.
func (p *Provider) IsTracker() bool { return p.MultiSenderID && p.Persistent }

// Display renders the receiver name, marking cloaked deployments the way
// the paper does ("adobe_cname").
func (p *Provider) Display() string {
	if !p.Cloaked {
		return p.Receiver
	}
	base := p.Receiver
	if i := strings.IndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	if base == "omtrdc" {
		base = "adobe"
	}
	return base + "_cname"
}

// Classification is the full §5.2 census.
type Classification struct {
	// Providers holds every receiver, most senders first.
	Providers []Provider
	// Trackers is the Table 2 subset (cross-site + persistent).
	Trackers []Provider
	// MultiSenderID counts receivers with the cross-site cue (the
	// paper's 34).
	MultiSenderID int
	// MultiSender counts receivers fed by ≥ 2 senders regardless of
	// parameter consistency.
	MultiSender int
	// SingleSender counts receivers seen with exactly one sender (the
	// paper's 58 possibly-missed trackers).
	SingleSender int
}

// identifiable reports whether a leak can serve as a stored identifier:
// it rode in a named parameter, body field or cookie.
func identifiable(l *core.Leak) bool {
	return l.Param != "" && l.Method != httpmodel.SurfaceReferer
}

// Classify runs the §5.2 analysis over detected leaks in one batch
// pass: it feeds a fresh incremental Index and materializes the census.
// The cross-site cue lives in the Index: the receiver gets the *same
// ID* — the same PII-derived token value — from at least two senders.
// The persona is one user, so equal encodings yield equal IDs across
// sites; receivers whose senders use different encodings (or no
// identifier parameter at all) fail the cue.
func Classify(leaks []core.Leak) *Classification {
	ix := NewIndex()
	for i := range leaks {
		ix.Add(&leaks[i])
	}
	return ix.Classification()
}

func methodName(m httpmodel.SurfaceKind) string {
	switch m {
	case httpmodel.SurfaceURI:
		return "URI"
	case httpmodel.SurfaceBody:
		return "Payload"
	case httpmodel.SurfaceCookie:
		return "Cookie"
	case httpmodel.SurfaceReferer:
		return "Referer"
	}
	return string(m)
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PIITypes returns the distinct PII types a tracker receives (the
// paper's observation that all 20 use the email address).
func PIITypes(leaks []core.Leak, receiver string) []pii.Type {
	set := map[pii.Type]bool{}
	for _, l := range leaks {
		if l.Receiver == receiver && identifiable(&l) {
			set[l.Token.Field.Type] = true
		}
	}
	out := make([]pii.Type, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
