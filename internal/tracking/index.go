package tracking

import (
	"sort"

	"piileak/internal/core"
	"piileak/internal/httpmodel"
)

// Index is the incremental form of the §5 analysis: leaks are folded in
// one at a time (in any order — every aggregate is a set), and the
// Table 2 classification is materialized on demand as a view. Classify
// is now a thin wrapper that feeds a fresh Index; the streaming pipeline
// calls Add as each site's detection completes instead of buffering a
// global leak slice.
type Index struct {
	byProv map[provKey]*provAgg
}

type provKey struct {
	receiver string
	cloaked  bool
}

// provAgg is one receiver's accumulated §5 state.
type provAgg struct {
	// allSenders counts every sender feeding the receiver (the
	// multi-/single-sender census partition).
	allSenders map[string]bool
	// idSenders counts senders of *identifiable* leaks (named param,
	// non-referer) — the Table 2 sender column.
	idSenders map[string]bool
	// valueSenders maps identifier token value -> sender set (the
	// cross-site same-ID cue).
	valueSenders map[string]map[string]bool
	// persistent records the storage cue: an identifiable leak seen on
	// a subpage.
	persistent bool
	// rows aggregates the Table 2 breakdown by encoding label.
	rows map[string]*rowAgg
}

type rowAgg struct {
	senders map[string]bool
	methods map[string]bool
	params  map[string]bool
}

// NewIndex returns an empty incremental tracking index.
func NewIndex() *Index {
	return &Index{byProv: map[provKey]*provAgg{}}
}

// Add folds one detected leak into the receiver's aggregates.
func (ix *Index) Add(l *core.Leak) {
	k := provKey{l.Receiver, l.Cloaked}
	p := ix.byProv[k]
	if p == nil {
		p = &provAgg{
			allSenders:   map[string]bool{},
			idSenders:    map[string]bool{},
			valueSenders: map[string]map[string]bool{},
			rows:         map[string]*rowAgg{},
		}
		ix.byProv[k] = p
	}
	p.allSenders[l.Site] = true
	if !identifiable(l) {
		return
	}
	p.idSenders[l.Site] = true
	vs := p.valueSenders[l.Token.Value]
	if vs == nil {
		vs = map[string]bool{}
		p.valueSenders[l.Token.Value] = vs
	}
	vs[l.Site] = true
	if l.Phase == httpmodel.PhaseSubpage {
		p.persistent = true
	}
	lab := l.EncodingLabel()
	r := p.rows[lab]
	if r == nil {
		r = &rowAgg{senders: map[string]bool{}, methods: map[string]bool{}, params: map[string]bool{}}
		p.rows[lab] = r
	}
	r.senders[l.Site] = true
	r.methods[methodName(l.Method)] = true
	r.params[l.Param] = true
}

// Receivers reports how many distinct (receiver, cloaked) populations
// the index holds.
func (ix *Index) Receivers() int { return len(ix.byProv) }

// Classification materializes the §5.2 census from the accumulated
// state. It can be called repeatedly; each call builds a fresh view.
func (ix *Index) Classification() *Classification {
	keys := make([]provKey, 0, len(ix.byProv))
	for k := range ix.byProv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].receiver != keys[b].receiver {
			return keys[a].receiver < keys[b].receiver
		}
		return !keys[a].cloaked && keys[b].cloaked
	})

	c := &Classification{}
	for _, k := range keys {
		agg := ix.byProv[k]
		p := Provider{Receiver: k.receiver, Cloaked: k.cloaked, Senders: len(agg.idSenders), Persistent: agg.persistent}
		for _, ss := range agg.valueSenders {
			if len(ss) >= 2 {
				p.MultiSenderID = true
				break
			}
		}
		for lab, r := range agg.rows {
			p.Rows = append(p.Rows, Row{
				Senders:  len(r.senders),
				Methods:  sortedSet(r.methods),
				Encoding: lab,
				Params:   sortedSet(r.params),
			})
		}
		sort.Slice(p.Rows, func(a, b int) bool {
			if p.Rows[a].Senders != p.Rows[b].Senders {
				return p.Rows[a].Senders > p.Rows[b].Senders
			}
			return p.Rows[a].Encoding < p.Rows[b].Encoding
		})

		if len(agg.allSenders) >= 2 {
			c.MultiSender++
		} else {
			c.SingleSender++
		}
		if p.MultiSenderID {
			c.MultiSenderID++
		}
		c.Providers = append(c.Providers, p)
		if p.IsTracker() {
			c.Trackers = append(c.Trackers, p)
		}
	}
	sort.SliceStable(c.Providers, func(a, b int) bool {
		if c.Providers[a].Senders != c.Providers[b].Senders {
			return c.Providers[a].Senders > c.Providers[b].Senders
		}
		return c.Providers[a].Receiver < c.Providers[b].Receiver
	})
	sort.SliceStable(c.Trackers, func(a, b int) bool {
		if c.Trackers[a].Senders != c.Trackers[b].Senders {
			return c.Trackers[a].Senders > c.Trackers[b].Senders
		}
		return c.Trackers[a].Receiver < c.Trackers[b].Receiver
	})
	return c
}
