// Package dnssim simulates the DNS view the paper needs to uncover CNAME
// cloaking (§4.1, footnote 3): a zone store with CNAME records, a
// chain-following resolver, and a cloaking classifier that matches
// resolved chains against a blocklist of known cloaking tracker domains
// (the AdGuard/NextDNS-style lists of refs [12, 14, 21]).
package dnssim

import (
	"fmt"
	"sort"
	"strings"

	"piileak/internal/psl"
)

// Zone is a CNAME record store. The zero value is empty; Add records and
// resolve chains. Zone is not safe for concurrent mutation.
type Zone struct {
	cnames map[string]string
}

// NewZone returns an empty zone.
func NewZone() *Zone { return &Zone{cnames: make(map[string]string)} }

// AddCNAME maps host to target. Adding a host twice overwrites.
func (z *Zone) AddCNAME(host, target string) {
	z.cnames[psl.Normalize(host)] = psl.Normalize(target)
}

// Resolve follows the CNAME chain from host, returning the chain targets
// in order. It returns an error on chains longer than 16 hops (loops).
func (z *Zone) Resolve(host string) ([]string, error) {
	var chain []string
	cur := psl.Normalize(host)
	for i := 0; i < 16; i++ {
		target, ok := z.cnames[cur]
		if !ok {
			return chain, nil
		}
		chain = append(chain, target)
		cur = target
	}
	return nil, fmt.Errorf("dnssim: CNAME chain from %q exceeds 16 hops (loop?)", host)
}

// Hosts returns every host with a CNAME record, sorted.
func (z *Zone) Hosts() []string {
	hosts := make([]string, 0, len(z.cnames))
	for h := range z.cnames {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// LookupHook lets a fault injector veto a resolution: it sees the host
// and the 1-based count of lookups this resolver has made for it, and
// returns the injected error (nil = resolution proceeds). faultsim's
// Injector.DNSHook produces one.
type LookupHook func(host string, attempt int) error

// Resolver answers lookups against a zone with optional injected
// faults. In the synthetic web every host resolves, so a Resolver
// without a hook never fails; with one, hosts can be made transiently
// unresolvable — the DNS leg of the crawl's fault model. The per-host
// attempt counter is what lets flaky-then-healthy hosts recover under
// retry. Not safe for concurrent use; scope one per crawl.
type Resolver struct {
	zone     *Zone
	hook     LookupHook
	attempts map[string]int
}

// NewResolver wires a resolver over a zone; hook may be nil.
func NewResolver(zone *Zone, hook LookupHook) *Resolver {
	if zone == nil {
		zone = NewZone()
	}
	return &Resolver{zone: zone, hook: hook, attempts: map[string]int{}}
}

// Lookup resolves host, returning its CNAME chain (empty for apex
// hosts) or the injected resolution error.
func (r *Resolver) Lookup(host string) ([]string, error) {
	host = psl.Normalize(host)
	r.attempts[host]++
	if r.hook != nil {
		if err := r.hook(host, r.attempts[host]); err != nil {
			return nil, err
		}
	}
	return r.zone.Resolve(host)
}

// Attempts reports how many lookups host has seen.
func (r *Resolver) Attempts(host string) int {
	return r.attempts[psl.Normalize(host)]
}

// CloakingList is a blocklist of tracker registrable domains known to
// offer CNAME cloaking.
type CloakingList struct {
	domains map[string]bool
}

// NewCloakingList builds a list from tracker registrable domains.
func NewCloakingList(domains ...string) *CloakingList {
	l := &CloakingList{domains: make(map[string]bool, len(domains))}
	for _, d := range domains {
		l.domains[psl.Normalize(d)] = true
	}
	return l
}

// DefaultCloakingList mirrors the well-known cloaking providers from the
// public CNAME-cloaking blocklists, including the Adobe Experience Cloud
// domains the paper's five cookie-leak cases route through.
func DefaultCloakingList() *CloakingList {
	return NewCloakingList(
		"omtrdc.net", "2o7.net", "adobedc.net", // Adobe
		"eulerian.net", "at-o.net", "dnsdelegation.io",
		"tagcommander.com", "wizaly.com", "affex.org",
		"intentmedia.net", "webtrekk.net", "oghub.io",
		"keyade.com", "adclear.net", "actonservice.com",
	)
}

// Contains reports whether a registrable domain is on the list.
func (l *CloakingList) Contains(domain string) bool {
	return l.domains[psl.Normalize(domain)]
}

// Classifier combines a zone, a cloaking list and a suffix list to decide
// whether a first-party host is a cloaked tracker.
type Classifier struct {
	Zone *Zone
	List *CloakingList
	PSL  *psl.List
}

// NewClassifier wires a classifier with the default cloaking list and
// suffix list.
func NewClassifier(zone *Zone) *Classifier {
	return &Classifier{Zone: zone, List: DefaultCloakingList(), PSL: psl.Default()}
}

// Uncloak resolves host's CNAME chain; if any hop's registrable domain is
// a known cloaking tracker, it returns that tracker domain and true.
// Hosts without cloaking return ("", false).
func (c *Classifier) Uncloak(host string) (tracker string, cloaked bool) {
	chain, err := c.Zone.Resolve(host)
	if err != nil {
		return "", false
	}
	for _, hop := range chain {
		e, err := c.PSL.ETLDPlusOne(hop)
		if err != nil {
			continue
		}
		if c.List.Contains(e) {
			return e, true
		}
	}
	return "", false
}

// EffectiveParty returns the registrable domain a request to host really
// talks to: the cloaking tracker when host is cloaked, the host's own
// registrable domain otherwise.
func (c *Classifier) EffectiveParty(host string) string {
	if tracker, ok := c.Uncloak(host); ok {
		return tracker
	}
	e, err := c.PSL.ETLDPlusOne(host)
	if err != nil {
		return psl.Normalize(host)
	}
	return e
}

// IsCloakedThirdParty reports whether host — nominally same-site with
// siteHost — is in fact a third party via CNAME cloaking (§4.1's
// combination of "CNAME cloaking and third-party resources").
func (c *Classifier) IsCloakedThirdParty(siteHost, host string) bool {
	if c.PSL.IsThirdParty(siteHost, host) {
		return false // already a plain third party
	}
	_, cloaked := c.Uncloak(host)
	return cloaked
}

// String renders the cloaking list for documentation output.
func (l *CloakingList) String() string {
	var ds []string
	for d := range l.domains {
		ds = append(ds, d)
	}
	sort.Strings(ds)
	return strings.Join(ds, ", ")
}
