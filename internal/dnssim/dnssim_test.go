package dnssim

import (
	"reflect"
	"testing"
)

func TestResolveChain(t *testing.T) {
	z := NewZone()
	z.AddCNAME("metrics.shop.example.com", "shop-example.sc.omtrdc.net")
	z.AddCNAME("shop-example.sc.omtrdc.net", "edge.adobedc.net")

	chain, err := z.Resolve("metrics.shop.example.com")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"shop-example.sc.omtrdc.net", "edge.adobedc.net"}
	if !reflect.DeepEqual(chain, want) {
		t.Errorf("chain = %v, want %v", chain, want)
	}
}

func TestResolveNoRecord(t *testing.T) {
	z := NewZone()
	chain, err := z.Resolve("plain.example.com")
	if err != nil || chain != nil {
		t.Errorf("Resolve = %v, %v; want nil, nil", chain, err)
	}
}

func TestResolveLoop(t *testing.T) {
	z := NewZone()
	z.AddCNAME("a.example.com", "b.example.com")
	z.AddCNAME("b.example.com", "a.example.com")
	if _, err := z.Resolve("a.example.com"); err == nil {
		t.Error("CNAME loop not detected")
	}
}

func TestResolveNormalizesCase(t *testing.T) {
	z := NewZone()
	z.AddCNAME("Metrics.Example.COM", "T.Tracker.NET")
	chain, err := z.Resolve("metrics.example.com")
	if err != nil || len(chain) != 1 || chain[0] != "t.tracker.net" {
		t.Errorf("chain = %v, %v", chain, err)
	}
}

func TestUncloakDetectsAdobe(t *testing.T) {
	z := NewZone()
	z.AddCNAME("smetrics.shop.example.com", "shopexample.sc.omtrdc.net")
	c := NewClassifier(z)

	tracker, ok := c.Uncloak("smetrics.shop.example.com")
	if !ok || tracker != "omtrdc.net" {
		t.Errorf("Uncloak = %q, %v; want omtrdc.net, true", tracker, ok)
	}
}

func TestUncloakIgnoresBenignCNAME(t *testing.T) {
	z := NewZone()
	z.AddCNAME("www.shop.example.com", "shop-example.cloudfront.net")
	c := NewClassifier(z)
	if tracker, ok := c.Uncloak("www.shop.example.com"); ok {
		t.Errorf("benign CDN flagged as cloaking: %q", tracker)
	}
}

func TestEffectiveParty(t *testing.T) {
	z := NewZone()
	z.AddCNAME("metrics.shop.example.com", "x.eulerian.net")
	c := NewClassifier(z)

	if got := c.EffectiveParty("metrics.shop.example.com"); got != "eulerian.net" {
		t.Errorf("EffectiveParty(cloaked) = %q", got)
	}
	if got := c.EffectiveParty("cdn.shop.example.com"); got != "example.com" {
		t.Errorf("EffectiveParty(plain) = %q", got)
	}
}

func TestIsCloakedThirdParty(t *testing.T) {
	z := NewZone()
	z.AddCNAME("metrics.shop.example.com", "x.omtrdc.net")
	c := NewClassifier(z)

	if !c.IsCloakedThirdParty("shop.example.com", "metrics.shop.example.com") {
		t.Error("cloaked subdomain not flagged")
	}
	// A plain third party is not *cloaked* third party.
	if c.IsCloakedThirdParty("shop.example.com", "pixel.tracker.net") {
		t.Error("plain third party misreported as cloaked")
	}
	if c.IsCloakedThirdParty("shop.example.com", "cdn.shop.example.com") {
		t.Error("benign first-party subdomain flagged")
	}
}

func TestDefaultCloakingListContents(t *testing.T) {
	l := DefaultCloakingList()
	for _, d := range []string{"omtrdc.net", "eulerian.net", "2o7.net"} {
		if !l.Contains(d) {
			t.Errorf("default list missing %s", d)
		}
	}
	if l.Contains("example.com") {
		t.Error("default list contains example.com")
	}
	if l.String() == "" {
		t.Error("String() empty")
	}
}

func TestZoneHostsSorted(t *testing.T) {
	z := NewZone()
	z.AddCNAME("b.example.com", "t.net")
	z.AddCNAME("a.example.com", "t.net")
	got := z.Hosts()
	if !reflect.DeepEqual(got, []string{"a.example.com", "b.example.com"}) {
		t.Errorf("Hosts = %v", got)
	}
}
