package dnssim

import (
	"errors"
	"testing"
)

func TestResolverWithoutHookNeverFails(t *testing.T) {
	z := NewZone()
	z.AddCNAME("metrics.shop.example", "t.tracker.net")
	r := NewResolver(z, nil)
	for _, host := range []string{"metrics.shop.example", "plain.example.com"} {
		if _, err := r.Lookup(host); err != nil {
			t.Errorf("%s: %v", host, err)
		}
	}
	if r.Attempts("plain.example.com") != 1 {
		t.Errorf("attempts = %d, want 1", r.Attempts("plain.example.com"))
	}
}

func TestResolverHookVetoesByAttempt(t *testing.T) {
	// A hook failing the first lookup models a transient SERVFAIL: the
	// second lookup of the same host succeeds because the resolver's
	// per-host counter advanced.
	r := NewResolver(NewZone(), func(host string, attempt int) error {
		if host == "flaky.example.com" && attempt == 1 {
			return errors.New("SERVFAIL")
		}
		return nil
	})
	if _, err := r.Lookup("flaky.example.com"); err == nil {
		t.Fatal("first lookup should fail")
	}
	if _, err := r.Lookup("flaky.example.com"); err != nil {
		t.Fatalf("second lookup = %v, want recovery", err)
	}
	if _, err := r.Lookup("other.example.com"); err != nil {
		t.Errorf("unrelated host failed: %v", err)
	}
	if r.Attempts("flaky.example.com") != 2 {
		t.Errorf("attempts = %d, want 2", r.Attempts("flaky.example.com"))
	}
}

func TestResolverNormalizesHostForAccounting(t *testing.T) {
	r := NewResolver(NewZone(), nil)
	r.Lookup("WWW.Example.COM")
	if r.Attempts("www.example.com") != 1 {
		t.Error("attempt accounting is case-sensitive")
	}
}

func TestNilZoneResolver(t *testing.T) {
	r := NewResolver(nil, nil)
	if _, err := r.Lookup("anything.example"); err != nil {
		t.Errorf("nil-zone resolver failed: %v", err)
	}
}
