package encode

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBase16(t *testing.T) {
	got, err := Apply("base16", []byte("foo@mydom.com"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "666f6f406d79646f6d2e636f6d" {
		t.Errorf("base16 = %s", got)
	}
}

func TestBase64Vectors(t *testing.T) {
	got, _ := Apply("base64", []byte("foo@mydom.com"))
	if string(got) != "Zm9vQG15ZG9tLmNvbQ==" {
		t.Errorf("base64 = %s", got)
	}
	url, _ := Apply("base64url", []byte{0xfb, 0xff})
	if string(url) != "-_8" {
		t.Errorf("base64url = %s", url)
	}
}

func TestRot13(t *testing.T) {
	got, _ := Apply("rot13", []byte("foo@MyDom.com"))
	if string(got) != "sbb@ZlQbz.pbz" {
		t.Errorf("rot13 = %s", got)
	}
	// Involution.
	back, _ := Apply("rot13", got)
	if string(back) != "foo@MyDom.com" {
		t.Errorf("rot13 is not an involution: %s", back)
	}
}

func TestBase58Vectors(t *testing.T) {
	cases := map[string]string{
		"":            "",
		"\x00":        "1",
		"\x00\x00a":   "112g",
		"hello world": "StV1DL6CwTryKyV",
	}
	for in, want := range cases {
		if got := Base58Encode([]byte(in)); got != want {
			t.Errorf("Base58Encode(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBase58RoundTrip(t *testing.T) {
	property := func(data []byte) bool {
		enc := Base58Encode(data)
		dec, err := Base58Decode(enc)
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

func TestBase58DecodeInvalid(t *testing.T) {
	for _, bad := range []string{"0", "O", "I", "l", "abc!"} {
		if _, err := Base58Decode(bad); err == nil {
			t.Errorf("Base58Decode(%q) succeeded", bad)
		}
	}
}

func TestInvertibleCodecsRoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("a"),
		[]byte("foo@mydom.com"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{0x00, 0xff, 0x10}, 100),
	}
	for _, name := range Invertible() {
		c, _ := Lookup(name)
		for _, in := range inputs {
			enc := c.Encode(in)
			dec, err := c.Decode(enc)
			if err != nil {
				t.Errorf("%s: decode error: %v", name, err)
				continue
			}
			if !bytes.Equal(dec, in) {
				t.Errorf("%s: round trip failed for %d-byte input", name, len(in))
			}
		}
	}
}

func TestAllCodecsRegistered(t *testing.T) {
	want := []string{
		"base16", "base32", "base32hex", "base58", "base64", "base64url",
		"bzip2", "deflate", "gz", "rot13",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestApplyUnknown(t *testing.T) {
	if _, err := Apply("base1024", []byte("x")); err == nil {
		t.Error("Apply with unknown codec succeeded")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	data := []byte("persona@example.test")
	for _, name := range Names() {
		c, _ := Lookup(name)
		a := c.Encode(data)
		b := c.Encode(data)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: non-deterministic encode", name)
		}
	}
}

func TestEncodeDoesNotMutateInput(t *testing.T) {
	data := []byte("mutation-check")
	orig := append([]byte(nil), data...)
	for _, name := range Names() {
		c, _ := Lookup(name)
		c.Encode(data)
		if !bytes.Equal(data, orig) {
			t.Fatalf("%s: Encode mutated its input", name)
		}
	}
}

// TestRFC4648Vectors pins the base16/32/32hex codecs to the RFC's
// published test vectors.
func TestRFC4648Vectors(t *testing.T) {
	cases := []struct{ codec, in, want string }{
		{"base16", "foobar", "666f6f626172"},
		{"base32", "f", "MY======"},
		{"base32", "fo", "MZXQ===="},
		{"base32", "foobar", "MZXW6YTBOI======"},
		{"base32hex", "f", "CO======"},
		{"base32hex", "fo", "CPNG===="},
		{"base32hex", "foobar", "CPNMUOJ1E8======"},
		{"base64", "foobar", "Zm9vYmFy"},
		{"base64", "fooba", "Zm9vYmE="},
	}
	for _, c := range cases {
		got, err := Apply(c.codec, []byte(c.in))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != c.want {
			t.Errorf("%s(%q) = %q, want %q", c.codec, c.in, got, c.want)
		}
	}
}
