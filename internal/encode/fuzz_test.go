package encode

import (
	"bytes"
	"compress/bzip2"
	"io"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test` and support
// `go test -fuzz` for deeper exploration.

func FuzzBzip2RoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("foo@mydom.com"))
	f.Add(bytes.Repeat([]byte{0}, 300))
	f.Add(bytes.Repeat([]byte("ab"), 200))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(Bzip2Compress(data))))
		if err != nil {
			t.Fatalf("stdlib rejected our stream for %d bytes: %v", len(data), err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip mismatch for %d bytes", len(data))
		}
	})
}

func FuzzBase58RoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 1})
	f.Add([]byte("hello world"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return
		}
		enc := Base58Encode(data)
		dec, err := Base58Decode(enc)
		if err != nil {
			t.Fatalf("decode of our own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip mismatch")
		}
	})
}

func FuzzBase58DecodeNeverPanics(f *testing.F) {
	f.Add("StV1DL6CwTryKyV")
	f.Add("0OIl")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		// Must return an error or a value, never panic.
		Base58Decode(s) //nolint:errcheck
	})
}
