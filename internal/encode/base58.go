package encode

import (
	"fmt"
	"math/big"
)

// Base58 with the Bitcoin alphabet, the variant tracking scripts in the
// wild use. Leading zero bytes map to leading '1' characters.

const base58Alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

var base58Index = func() (idx [256]int8) {
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < len(base58Alphabet); i++ {
		idx[base58Alphabet[i]] = int8(i)
	}
	return idx
}()

// Base58Encode encodes data in Bitcoin-alphabet base58.
func Base58Encode(data []byte) string {
	zeros := 0
	for zeros < len(data) && data[zeros] == 0 {
		zeros++
	}
	n := new(big.Int).SetBytes(data)
	radix := big.NewInt(58)
	mod := new(big.Int)
	// Digits come out least-significant first.
	var digits []byte
	for n.Sign() > 0 {
		n.DivMod(n, radix, mod)
		digits = append(digits, base58Alphabet[mod.Int64()])
	}
	out := make([]byte, 0, zeros+len(digits))
	for i := 0; i < zeros; i++ {
		out = append(out, '1')
	}
	for i := len(digits) - 1; i >= 0; i-- {
		out = append(out, digits[i])
	}
	return string(out)
}

// Base58Decode decodes Bitcoin-alphabet base58 text.
func Base58Decode(s string) ([]byte, error) {
	zeros := 0
	for zeros < len(s) && s[zeros] == '1' {
		zeros++
	}
	n := new(big.Int)
	radix := big.NewInt(58)
	for i := 0; i < len(s); i++ {
		d := base58Index[s[i]]
		if d < 0 {
			return nil, fmt.Errorf("encode: invalid base58 character %q at index %d", s[i], i)
		}
		n.Mul(n, radix)
		n.Add(n, big.NewInt(int64(d)))
	}
	body := n.Bytes()
	out := make([]byte, zeros+len(body))
	copy(out[zeros:], body)
	return out, nil
}
