package encode

import (
	"container/heap"
	"sort"
)

// This file implements a from-scratch bzip2 COMPRESSOR. The Go standard
// library only ships a decompressor (compress/bzip2), but the paper's
// candidate-token set includes bzip2-compressed PII, so the injector and
// the detector need deterministic bzip2 bytes. The implementation follows
// the classic pipeline — RLE1, Burrows-Wheeler transform, move-to-front,
// zero run-length coding (RUNA/RUNB), and selector-switched canonical
// Huffman coding — and is verified in bzip2_test.go by round-tripping
// every output through the standard library's decompressor.

const (
	bzBlockMagic  = 0x314159265359 // "pi"
	bzFooterMagic = 0x177245385090 // "sqrt(pi)"
	bzMaxCodeLen  = 20
	// bzRawChunk bounds the raw bytes per block so that worst-case RLE1
	// expansion (5/4) stays well under the level-1 block size of 100000.
	bzRawChunk = 70000
)

// Bzip2Compress compresses data as a level-1 ("BZh1") bzip2 stream.
// The output is deterministic for a given input.
func Bzip2Compress(data []byte) []byte {
	w := &bitWriter{}
	w.writeByte('B')
	w.writeByte('Z')
	w.writeByte('h')
	w.writeByte('1')

	var combinedCRC uint32
	for off := 0; off < len(data); off += bzRawChunk {
		end := off + bzRawChunk
		if end > len(data) {
			end = len(data)
		}
		crc := bzCRC(data[off:end])
		combinedCRC = (combinedCRC<<1 | combinedCRC>>31) ^ crc
		bzWriteBlock(w, data[off:end], crc)
	}

	w.writeBits(bzFooterMagic, 48)
	w.writeBits(uint64(combinedCRC), 32)
	return w.finish()
}

// --- bit writer (MSB-first) -------------------------------------------

type bitWriter struct {
	buf  []byte
	cur  byte
	nCur uint // bits used in cur
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := n; i > 0; i-- {
		bit := byte(v>>(i-1)) & 1
		w.cur = w.cur<<1 | bit
		w.nCur++
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

func (w *bitWriter) writeByte(b byte) { w.writeBits(uint64(b), 8) }

// finish pads to a byte boundary with zero bits and returns the stream.
func (w *bitWriter) finish() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// --- bzip2 CRC-32 (MSB-first, poly 0x04C11DB7) ------------------------

var bzCRCTable = func() (t [256]uint32) {
	for i := range t {
		crc := uint32(i) << 24
		for b := 0; b < 8; b++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ 0x04C11DB7
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

func bzCRC(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc<<8 ^ bzCRCTable[byte(crc>>24)^b]
	}
	return ^crc
}

// --- block pipeline ----------------------------------------------------

func bzWriteBlock(w *bitWriter, raw []byte, crc uint32) {
	rle := bzRLE1(raw)
	bwt, origPtr := bzBWT(rle)

	// Symbol map: which byte values occur in the BWT output.
	var used [256]bool
	for _, b := range bwt {
		used[b] = true
	}
	var symToIdx [256]int
	numSyms := 0
	for v := 0; v < 256; v++ {
		if used[v] {
			symToIdx[v] = numSyms
			numSyms++
		}
	}

	// MTF + RLE2 into the extended alphabet:
	// 0 = RUNA, 1 = RUNB, v -> v+1 for v >= 1, EOB = numSyms+1.
	eob := numSyms + 1
	alphaSize := numSyms + 2
	mtfSyms := bzMTFRLE2(bwt, &symToIdx, numSyms)
	mtfSyms = append(mtfSyms, uint16(eob))

	// Huffman: two identical tables (minimum group count) built over the
	// whole block; every alphabet symbol participates so the canonical
	// code is complete.
	freq := make([]int, alphaSize)
	for i := range freq {
		freq[i] = 1
	}
	for _, s := range mtfSyms {
		freq[s]++
	}
	lengths := bzHuffmanLengths(freq, bzMaxCodeLen)
	codes := bzCanonicalCodes(lengths)

	nSelectors := (len(mtfSyms) + 49) / 50

	// Header.
	w.writeBits(bzBlockMagic, 48)
	w.writeBits(uint64(crc), 32)
	w.writeBits(0, 1) // not randomized
	w.writeBits(uint64(origPtr), 24)

	// Symbol map: 16-bit range map, then 16-bit maps per used range.
	var rangeMap uint64
	for r := 0; r < 16; r++ {
		for v := r * 16; v < (r+1)*16; v++ {
			if used[v] {
				rangeMap |= 1 << (15 - r)
				break
			}
		}
	}
	w.writeBits(rangeMap, 16)
	for r := 0; r < 16; r++ {
		if rangeMap&(1<<(15-r)) == 0 {
			continue
		}
		var m uint64
		for i := 0; i < 16; i++ {
			if used[r*16+i] {
				m |= 1 << (15 - i)
			}
		}
		w.writeBits(m, 16)
	}

	w.writeBits(2, 3)                   // nGroups
	w.writeBits(uint64(nSelectors), 15) // nSelectors
	for i := 0; i < nSelectors; i++ {   // all selectors: group 0
		w.writeBits(0, 1) // MTF'd selector value 0 is a bare stop bit
	}

	// Two copies of the delta-encoded code-length table.
	for g := 0; g < 2; g++ {
		cur := int(lengths[0])
		w.writeBits(uint64(cur), 5)
		for _, l := range lengths {
			for cur < int(l) {
				w.writeBits(0b10, 2) // increment
				cur++
			}
			for cur > int(l) {
				w.writeBits(0b11, 2) // decrement
				cur--
			}
			w.writeBits(0, 1) // done with this symbol
		}
	}

	// Symbol stream.
	for _, s := range mtfSyms {
		w.writeBits(uint64(codes[s]), uint(lengths[s]))
	}
}

// bzRLE1 applies bzip2's first-stage run-length encoding: any run of 4..255
// equal bytes becomes the 4 bytes followed by a count byte (runLen-4).
func bzRLE1(data []byte) []byte {
	out := make([]byte, 0, len(data)+len(data)/4)
	for i := 0; i < len(data); {
		b := data[i]
		run := 1
		for i+run < len(data) && data[i+run] == b && run < 255+4 {
			run++
		}
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
		} else {
			for k := 0; k < run; k++ {
				out = append(out, b)
			}
		}
		i += run
	}
	return out
}

// bzBWT computes the Burrows-Wheeler transform over all cyclic rotations
// using prefix doubling (O(n log² n)), returning the last column and the
// row index of the original string.
func bzBWT(data []byte) (last []byte, origPtr int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	sa := make([]int, n)   // rotation start offsets, sorted by rotation
	rank := make([]int, n) // current rank of rotation starting at i
	tmp := make([]int, n)
	for i := range sa {
		sa[i] = i
		rank[i] = int(data[i])
	}
	for k := 1; ; k *= 2 {
		key := func(i int) (int, int) { return rank[i], rank[(i+k)%n] }
		sort.Slice(sa, func(a, b int) bool {
			r1a, r2a := key(sa[a])
			r1b, r2b := key(sa[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[sa[0]] = 0
		distinct := 1
		for i := 1; i < n; i++ {
			r1p, r2p := key(sa[i-1])
			r1c, r2c := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if r1p != r1c || r2p != r2c {
				tmp[sa[i]]++
				distinct++
			}
		}
		copy(rank, tmp)
		if distinct == n || k >= n {
			break
		}
	}
	last = make([]byte, n)
	origPtr = -1
	for i, start := range sa {
		last[i] = data[(start+n-1)%n]
		if start == 0 {
			origPtr = i
		}
	}
	return last, origPtr
}

// bzMTFRLE2 move-to-front codes the BWT output and run-length codes zero
// runs with RUNA/RUNB symbols, mapping nonzero MTF value v to symbol v+1.
func bzMTFRLE2(bwt []byte, symToIdx *[256]int, numSyms int) []uint16 {
	mtf := make([]int, numSyms)
	for i := range mtf {
		mtf[i] = i
	}
	out := make([]uint16, 0, len(bwt))
	zeroRun := 0
	flushRun := func() {
		n := zeroRun
		for n > 0 {
			n--
			if n&1 != 0 {
				out = append(out, 1) // RUNB
			} else {
				out = append(out, 0) // RUNA
			}
			n >>= 1
		}
		zeroRun = 0
	}
	for _, b := range bwt {
		idx := symToIdx[b]
		pos := 0
		for mtf[pos] != idx {
			pos++
		}
		// Move to front.
		copy(mtf[1:pos+1], mtf[:pos])
		mtf[0] = idx
		if pos == 0 {
			zeroRun++
			continue
		}
		flushRun()
		out = append(out, uint16(pos+1))
	}
	flushRun()
	return out
}

// --- Huffman -----------------------------------------------------------

type bzHuffNode struct {
	freq        int
	left, right int // child node indices, -1 for leaves
	sym         int
}

type bzHuffHeap struct {
	nodes *[]bzHuffNode
	idx   []int
}

func (h bzHuffHeap) Len() int { return len(h.idx) }
func (h bzHuffHeap) Less(a, b int) bool {
	na, nb := (*h.nodes)[h.idx[a]], (*h.nodes)[h.idx[b]]
	if na.freq != nb.freq {
		return na.freq < nb.freq
	}
	return h.idx[a] < h.idx[b] // deterministic tie-break
}
func (h bzHuffHeap) Swap(a, b int)       { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *bzHuffHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *bzHuffHeap) Pop() interface{} {
	old := h.idx
	v := old[len(old)-1]
	h.idx = old[:len(old)-1]
	return v
}

// bzHuffmanLengths builds Huffman code lengths for freq, flattening the
// tree (bzip2-style frequency halving) until no length exceeds maxLen.
func bzHuffmanLengths(freq []int, maxLen int) []uint8 {
	f := append([]int(nil), freq...)
	for {
		lengths := bzBuildLengths(f)
		over := false
		for _, l := range lengths {
			if int(l) > maxLen {
				over = true
				break
			}
		}
		if !over {
			return lengths
		}
		for i := range f {
			f[i] = f[i]/2 + 1
		}
	}
}

func bzBuildLengths(freq []int) []uint8 {
	n := len(freq)
	if n == 1 {
		return []uint8{1}
	}
	nodes := make([]bzHuffNode, 0, 2*n)
	h := bzHuffHeap{nodes: &nodes}
	for sym, fq := range freq {
		nodes = append(nodes, bzHuffNode{freq: fq, left: -1, right: -1, sym: sym})
		h.idx = append(h.idx, sym)
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(int)
		b := heap.Pop(&h).(int)
		nodes = append(nodes, bzHuffNode{freq: nodes[a].freq + nodes[b].freq, left: a, right: b, sym: -1})
		heap.Push(&h, len(nodes)-1)
	}
	root := h.idx[0]
	lengths := make([]uint8, n)
	var walk func(node, depth int)
	walk = func(node, depth int) {
		nd := nodes[node]
		if nd.left == -1 {
			if depth == 0 {
				depth = 1
			}
			lengths[nd.sym] = uint8(depth)
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// bzCanonicalCodes assigns canonical codes (as the decoder expects:
// ordered by length, then by symbol value).
func bzCanonicalCodes(lengths []uint8) []uint32 {
	type pair struct {
		sym int
		len uint8
	}
	pairs := make([]pair, len(lengths))
	for i, l := range lengths {
		pairs[i] = pair{i, l}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].len != pairs[b].len {
			return pairs[a].len < pairs[b].len
		}
		return pairs[a].sym < pairs[b].sym
	})
	codes := make([]uint32, len(lengths))
	var code uint32
	prevLen := pairs[0].len
	for _, p := range pairs {
		code <<= uint(p.len - prevLen)
		prevLen = p.len
		codes[p.sym] = code
		code++
	}
	return codes
}
