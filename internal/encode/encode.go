// Package encode implements every encoding the paper's leak-detection
// candidate set uses (§3.1 appendix): base16, base32, base32hex, base58,
// base64, rot13, and the three compression formats gz, deflate and bzip2.
//
// Encodings are registered in a uniform codec registry shared by the PII
// candidate-token generator and the tracker-behaviour simulator, so both
// sides of the pipeline produce byte-identical transforms. Codecs that are
// invertible also expose Decode, which the detector's decode-based
// strategy uses (DESIGN.md experiment A3).
//
// The standard library has no bzip2 compressor, so this package implements
// one from scratch (see bzip2.go); it is validated by round-tripping
// through the standard library's bzip2 decompressor.
package encode

import (
	"bytes"
	"compress/bzip2"
	"compress/flate"
	"compress/gzip"
	"encoding/base32"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// Codec is one registered, deterministic byte transform.
type Codec struct {
	// Name is the registry key, matching the paper's appendix naming.
	Name string
	// Encode transforms data. It never mutates its input.
	Encode func(data []byte) []byte
	// Decode inverts Encode, or is nil for codecs the detector cannot
	// invert generically.
	Decode func(data []byte) ([]byte, error)
}

var registry = map[string]Codec{}

func register(c Codec) {
	if _, dup := registry[c.Name]; dup {
		panic("encode: duplicate registration of " + c.Name)
	}
	registry[c.Name] = c
}

func init() {
	register(Codec{
		Name:   "base16",
		Encode: func(d []byte) []byte { return []byte(hex.EncodeToString(d)) },
		Decode: func(d []byte) ([]byte, error) { return hex.DecodeString(string(d)) },
	})
	register(Codec{
		Name:   "base32",
		Encode: func(d []byte) []byte { return []byte(base32.StdEncoding.EncodeToString(d)) },
		Decode: func(d []byte) ([]byte, error) { return base32.StdEncoding.DecodeString(string(d)) },
	})
	register(Codec{
		Name:   "base32hex",
		Encode: func(d []byte) []byte { return []byte(base32.HexEncoding.EncodeToString(d)) },
		Decode: func(d []byte) ([]byte, error) { return base32.HexEncoding.DecodeString(string(d)) },
	})
	register(Codec{
		Name:   "base58",
		Encode: func(d []byte) []byte { return []byte(Base58Encode(d)) },
		Decode: func(d []byte) ([]byte, error) { return Base58Decode(string(d)) },
	})
	register(Codec{
		Name:   "base64",
		Encode: func(d []byte) []byte { return []byte(base64.StdEncoding.EncodeToString(d)) },
		Decode: func(d []byte) ([]byte, error) { return base64.StdEncoding.DecodeString(string(d)) },
	})
	register(Codec{
		Name:   "base64url",
		Encode: func(d []byte) []byte { return []byte(base64.RawURLEncoding.EncodeToString(d)) },
		Decode: func(d []byte) ([]byte, error) { return base64.RawURLEncoding.DecodeString(string(d)) },
	})
	register(Codec{
		Name:   "rot13",
		Encode: rot13,
		Decode: func(d []byte) ([]byte, error) { return rot13(d), nil },
	})
	register(Codec{
		Name:   "deflate",
		Encode: deflateEncode,
		Decode: func(d []byte) ([]byte, error) {
			r := flate.NewReader(bytes.NewReader(d))
			defer r.Close()
			return io.ReadAll(r)
		},
	})
	register(Codec{
		Name:   "gz",
		Encode: gzipEncode,
		Decode: func(d []byte) ([]byte, error) {
			r, err := gzip.NewReader(bytes.NewReader(d))
			if err != nil {
				return nil, err
			}
			defer r.Close()
			return io.ReadAll(r)
		},
	})
	register(Codec{
		Name:   "bzip2",
		Encode: func(d []byte) []byte { return Bzip2Compress(d) },
		Decode: func(d []byte) ([]byte, error) {
			return io.ReadAll(bzip2.NewReader(bytes.NewReader(d)))
		},
	})
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, bool) {
	c, ok := registry[name]
	return c, ok
}

// Apply encodes data with the named codec. It returns an error for
// unknown names so callers can surface configuration typos.
func Apply(name string, data []byte) ([]byte, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("encode: unknown codec %q", name)
	}
	return c.Encode(data), nil
}

// Names returns all registered codec names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invertible returns the names of codecs that expose Decode, sorted.
func Invertible() []string {
	var names []string
	for n, c := range registry {
		if c.Decode != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func rot13(d []byte) []byte {
	out := make([]byte, len(d))
	for i, b := range d {
		switch {
		case b >= 'a' && b <= 'z':
			out[i] = 'a' + (b-'a'+13)%26
		case b >= 'A' && b <= 'Z':
			out[i] = 'A' + (b-'A'+13)%26
		default:
			out[i] = b
		}
	}
	return out
}

func deflateEncode(d []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		panic(err) // only fails on invalid level
	}
	w.Write(d) //nolint:errcheck // bytes.Buffer cannot fail
	w.Close()  //nolint:errcheck
	return buf.Bytes()
}

func gzipEncode(d []byte) []byte {
	var buf bytes.Buffer
	// Default header: zero MTIME, unknown OS — fully deterministic.
	w, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		panic(err)
	}
	w.Write(d) //nolint:errcheck
	w.Close()  //nolint:errcheck
	return buf.Bytes()
}
