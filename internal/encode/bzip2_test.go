package encode

import (
	"bytes"
	"compress/bzip2"
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// decompress runs the standard library's bzip2 decompressor, which is the
// authoritative oracle for our compressor's output.
func decompress(t *testing.T, data []byte) []byte {
	t.Helper()
	out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatalf("stdlib bzip2 rejected our stream: %v", err)
	}
	return out
}

func roundTrip(t *testing.T, in []byte) {
	t.Helper()
	got := decompress(t, Bzip2Compress(in))
	if !bytes.Equal(got, in) {
		t.Fatalf("round trip mismatch: in %d bytes, out %d bytes", len(in), len(got))
	}
}

func TestBzip2Empty(t *testing.T)     { roundTrip(t, nil) }
func TestBzip2OneByte(t *testing.T)   { roundTrip(t, []byte{'x'}) }
func TestBzip2ShortText(t *testing.T) { roundTrip(t, []byte("foo@mydom.com")) }

func TestBzip2RunLengths(t *testing.T) {
	// Exercise every RLE1 boundary: runs of 3, 4, 5, 258, 259, 260.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 255, 258, 259, 260, 1000} {
		t.Run("", func(t *testing.T) {
			roundTrip(t, bytes.Repeat([]byte{'z'}, n))
		})
	}
}

func TestBzip2MixedRuns(t *testing.T) {
	var in []byte
	for i := 0; i < 50; i++ {
		in = append(in, bytes.Repeat([]byte{byte('a' + i%7)}, i%9+1)...)
	}
	roundTrip(t, in)
}

func TestBzip2AllByteValues(t *testing.T) {
	in := make([]byte, 256)
	for i := range in {
		in[i] = byte(i)
	}
	roundTrip(t, in)
}

func TestBzip2Periodic(t *testing.T) {
	// Periodic inputs stress the cyclic-rotation BWT (equal rotations).
	roundTrip(t, bytes.Repeat([]byte("ab"), 64))
	roundTrip(t, bytes.Repeat([]byte("abc"), 100))
	roundTrip(t, bytes.Repeat([]byte("x"), 64))
}

func TestBzip2MultiBlock(t *testing.T) {
	// Larger than bzRawChunk: forces multiple blocks and the combined CRC.
	rng := rand.New(rand.NewSource(1))
	in := make([]byte, bzRawChunk*2+1234)
	for i := range in {
		in[i] = byte('a' + rng.Intn(4))
	}
	roundTrip(t, in)
}

func TestBzip2QuickRandom(t *testing.T) {
	property := func(data []byte) bool {
		out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(Bzip2Compress(data))))
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBzip2Compresses(t *testing.T) {
	// Sanity: highly redundant data should actually shrink.
	in := bytes.Repeat([]byte("the same sentence over and over. "), 100)
	out := Bzip2Compress(in)
	if len(out) >= len(in) {
		t.Errorf("no compression: %d -> %d bytes", len(in), len(out))
	}
}

func TestBWTKnownTransform(t *testing.T) {
	// The classic "banana" example: cyclic rotations sorted give last
	// column "nnbaaa" with the original row at index 3.
	last, ptr := bzBWT([]byte("banana"))
	if string(last) != "nnbaaa" {
		t.Errorf("BWT(banana) last column = %q, want %q", last, "nnbaaa")
	}
	if ptr != 3 {
		t.Errorf("BWT(banana) origPtr = %d, want 3", ptr)
	}
}

func TestBWTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60) + 1
		data := make([]byte, n)
		for i := range data {
			data[i] = byte('a' + rng.Intn(3)) // small alphabet → many ties
		}
		gotLast, gotPtr := bzBWT(data)
		wantLast, wantPtr := naiveBWT(data)
		if !bytes.Equal(gotLast, wantLast) {
			t.Fatalf("BWT(%q) = %q, want %q", data, gotLast, wantLast)
		}
		// With periodic inputs multiple rows can equal the original
		// string; any of them is a valid pointer. Check the rotation at
		// the returned pointer reconstructs the input.
		if gotPtr < 0 || gotPtr >= n {
			t.Fatalf("BWT(%q) origPtr out of range: %d (naive %d)", data, gotPtr, wantPtr)
		}
	}
}

// naiveBWT sorts all rotations explicitly.
func naiveBWT(data []byte) ([]byte, int) {
	n := len(data)
	rots := make([]string, n)
	doubled := string(data) + string(data)
	for i := 0; i < n; i++ {
		rots[i] = doubled[i : i+n]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rots[idx[a]] < rots[idx[b]] })
	last := make([]byte, n)
	ptr := -1
	for i, start := range idx {
		last[i] = data[(start+n-1)%n]
		if start == 0 && ptr == -1 {
			ptr = i
		}
	}
	return last, ptr
}

func TestRLE1Boundaries(t *testing.T) {
	cases := []struct {
		in, want []byte
	}{
		{[]byte{}, []byte{}},
		{[]byte("abc"), []byte("abc")},
		{[]byte("aaa"), []byte("aaa")},
		{[]byte("aaaa"), []byte{'a', 'a', 'a', 'a', 0}},
		{[]byte("aaaaa"), []byte{'a', 'a', 'a', 'a', 1}},
		{bytes.Repeat([]byte{'a'}, 259), []byte{'a', 'a', 'a', 'a', 255}},
		{bytes.Repeat([]byte{'a'}, 260), []byte{'a', 'a', 'a', 'a', 255, 'a'}},
	}
	for _, c := range cases {
		got := bzRLE1(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("bzRLE1(%d x %q...) = %v, want %v", len(c.in), "a", got, c.want)
		}
	}
}

func TestHuffmanLengthsValid(t *testing.T) {
	freq := make([]int, 50)
	for i := range freq {
		freq[i] = i*i + 1
	}
	lengths := bzHuffmanLengths(freq, bzMaxCodeLen)
	// Kraft sum must be exactly 1 for a complete code.
	var kraft float64
	for _, l := range lengths {
		if l == 0 || l > bzMaxCodeLen {
			t.Fatalf("invalid code length %d", l)
		}
		kraft += 1 / float64(uint64(1)<<l)
	}
	if kraft != 1.0 {
		t.Errorf("Kraft sum = %v, want 1.0", kraft)
	}
}

func TestHuffmanDepthLimiting(t *testing.T) {
	// Exponentially skewed frequencies would exceed the depth limit
	// without flattening.
	freq := make([]int, 40)
	v := 1
	for i := range freq {
		freq[i] = v
		if v < 1<<40 {
			v *= 2
		}
	}
	lengths := bzHuffmanLengths(freq, bzMaxCodeLen)
	for sym, l := range lengths {
		if l > bzMaxCodeLen {
			t.Errorf("symbol %d: length %d exceeds limit", sym, l)
		}
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	lengths := []uint8{2, 2, 3, 3, 3, 4, 4}
	codes := bzCanonicalCodes(lengths)
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			li, lj := uint(lengths[i]), uint(lengths[j])
			if li <= lj && codes[i] == codes[j]>>(lj-li) {
				t.Errorf("code %d (len %d) is a prefix of code %d (len %d)", i, li, j, lj)
			}
		}
	}
}

func TestBzCRCKnown(t *testing.T) {
	// bzip2's CRC is the bit-reversed variant of IEEE; the check value
	// for "123456789" is 0xFC891918.
	if got := bzCRC([]byte("123456789")); got != 0xFC891918 {
		t.Errorf("bzCRC = %#08x, want 0xFC891918", got)
	}
}

func BenchmarkBzip2Compress1K(b *testing.B) {
	in := bytes.Repeat([]byte("foo@mydom.com "), 74)[:1024]
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		Bzip2Compress(in)
	}
}
