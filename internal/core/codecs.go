package core

import "piileak/internal/encode"

// invertibleCodecs caches the decodable codec names for DecodeDetect.
var invertibleCodecs = encode.Invertible()

func lookupCodec(name string) (encode.Codec, bool) { return encode.Lookup(name) }
