package core

import (
	"fmt"
	"sort"

	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

// Accumulator builds the §4.2 aggregate indexes one leak at a time, so
// detection can stream with collection instead of buffering every site's
// traffic before analysis starts. Every index it maintains is a set (or
// a map of sets), which makes the accumulated state independent of the
// order leaks arrive in — the property that lets parallel streamed runs
// reproduce the batch numbers exactly.
//
// Analyze is now a thin wrapper: it feeds a fresh Accumulator and
// finalizes it. A streaming caller instead calls Add per leak and
// AddSites per crawled site as they complete, then Finalize once.
type Accumulator struct {
	totalSites int
	leaks      int

	senderReceivers map[string]map[string]bool
	receiverSenders map[string]map[string]bool
	leakyRequests   map[string]bool

	senderMethods   map[string]map[httpmodel.SurfaceKind]bool
	receiverMethods map[string]map[httpmodel.SurfaceKind]bool

	senderLabels   map[string]map[string]bool
	receiverLabels map[string]map[string]bool

	senderTypes   map[string]map[pii.Type]bool
	receiverTypes map[string]map[pii.Type]bool

	cloakedReceivers map[string]bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		senderReceivers:  map[string]map[string]bool{},
		receiverSenders:  map[string]map[string]bool{},
		leakyRequests:    map[string]bool{},
		senderMethods:    map[string]map[httpmodel.SurfaceKind]bool{},
		receiverMethods:  map[string]map[httpmodel.SurfaceKind]bool{},
		senderLabels:     map[string]map[string]bool{},
		receiverLabels:   map[string]map[string]bool{},
		senderTypes:      map[string]map[pii.Type]bool{},
		receiverTypes:    map[string]map[pii.Type]bool{},
		cloakedReceivers: map[string]bool{},
	}
}

// AddSites grows the crawled-site population (the headline's
// denominator) by n.
func (acc *Accumulator) AddSites(n int) { acc.totalSites += n }

// Leaks reports how many leaks have been accumulated.
func (acc *Accumulator) Leaks() int { return acc.leaks }

func mark[K comparable](m map[string]map[K]bool, entity string, k K) {
	s := m[entity]
	if s == nil {
		s = map[K]bool{}
		m[entity] = s
	}
	s[k] = true
}

// Add folds one detected leak into every aggregate index.
func (acc *Accumulator) Add(l *Leak) {
	acc.leaks++
	mark(acc.senderReceivers, l.Site, l.Receiver)
	mark(acc.receiverSenders, l.Receiver, l.Site)
	acc.leakyRequests[fmt.Sprintf("%s#%d", l.Site, l.Seq)] = true

	mark(acc.senderMethods, l.Site, l.Method)
	mark(acc.receiverMethods, l.Receiver, l.Method)

	lab := l.EncodingLabel()
	mark(acc.senderLabels, l.Site, lab)
	mark(acc.receiverLabels, l.Receiver, lab)

	mark(acc.senderTypes, l.Site, l.Token.Field.Type)
	mark(acc.receiverTypes, l.Receiver, l.Token.Field.Type)

	if l.Cloaked {
		acc.cloakedReceivers[l.Receiver] = true
	}
}

// Finalize materializes the Analysis view over the accumulated state.
// The leaks slice is carried for export (WriteLeaksJSON, downstream
// tooling); none of the Analysis methods rescan it. Finalize may be
// called again after further Adds — each call builds a fresh view over
// the same shared indexes.
func (acc *Accumulator) Finalize(leaks []Leak) *Analysis {
	a := &Analysis{
		Leaks:           leaks,
		TotalSites:      acc.totalSites,
		SenderReceivers: acc.senderReceivers,
		ReceiverSenders: acc.receiverSenders,
		LeakyRequests:   len(acc.leakyRequests),

		senderMethods:    acc.senderMethods,
		receiverMethods:  acc.receiverMethods,
		senderLabels:     acc.senderLabels,
		receiverLabels:   acc.receiverLabels,
		senderTypes:      acc.senderTypes,
		receiverTypes:    acc.receiverTypes,
		cloakedReceivers: acc.cloakedReceivers,
	}
	for s := range acc.senderReceivers {
		a.Senders = append(a.Senders, s)
	}
	for r := range acc.receiverSenders {
		a.Receivers = append(a.Receivers, r)
	}
	sort.Strings(a.Senders)
	sort.Strings(a.Receivers)
	return a
}

// SenderSet exposes the distinct sender domains accumulated so far —
// the §6 policy-audit population — without materializing an Analysis.
func (acc *Accumulator) SenderSet() map[string]bool {
	out := make(map[string]bool, len(acc.senderReceivers))
	for s := range acc.senderReceivers {
		out[s] = true
	}
	return out
}
