package core

import (
	"sort"
	"strings"

	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

// Analysis is the §4.2 aggregate view over detected leaks. It is built
// by an Accumulator (incrementally, leak by leak) and holds only the
// per-entity indexes the paper's tables need; its methods are pure views
// over those indexes and never rescan the Leaks slice.
type Analysis struct {
	// Leaks is the input, carried unmodified for export.
	Leaks []Leak
	// TotalSites is the crawled-site population (307), for the
	// headline leak rate.
	TotalSites int

	// Senders and Receivers are the distinct populations, sorted.
	Senders   []string
	Receivers []string

	// SenderReceivers maps sender -> receiver set.
	SenderReceivers map[string]map[string]bool
	// ReceiverSenders maps receiver -> sender set.
	ReceiverSenders map[string]map[string]bool

	// LeakyRequests is the number of distinct requests containing
	// leaked PII (the paper's 1,522).
	LeakyRequests int

	// Per-entity view indexes, maintained by the Accumulator.
	senderMethods    map[string]map[httpmodel.SurfaceKind]bool
	receiverMethods  map[string]map[httpmodel.SurfaceKind]bool
	senderLabels     map[string]map[string]bool
	receiverLabels   map[string]map[string]bool
	senderTypes      map[string]map[pii.Type]bool
	receiverTypes    map[string]map[pii.Type]bool
	cloakedReceivers map[string]bool
}

// Analyze builds the aggregate view in one batch pass: it feeds a fresh
// Accumulator and finalizes it. Streaming callers use the Accumulator
// directly instead.
func Analyze(leaks []Leak, totalSites int) *Analysis {
	acc := NewAccumulator()
	acc.AddSites(totalSites)
	for i := range leaks {
		acc.Add(&leaks[i])
	}
	return acc.Finalize(leaks)
}

// Headline carries the §4.2 opening statistics.
type Headline struct {
	TotalSites        int
	Senders           int
	Receivers         int
	LeakRate          float64 // senders / total sites
	LeakyRequests     int
	MeanReceivers     float64 // receivers per sender
	SendersAtLeast3   int
	SendersAtLeast3Pc float64
	MaxReceivers      int
	MaxReceiverSite   string
}

// Headline computes the study's headline numbers.
func (a *Analysis) Headline() Headline {
	h := Headline{
		TotalSites:    a.TotalSites,
		Senders:       len(a.Senders),
		Receivers:     len(a.Receivers),
		LeakyRequests: a.LeakyRequests,
	}
	if a.TotalSites > 0 {
		h.LeakRate = 100 * float64(h.Senders) / float64(a.TotalSites)
	}
	total := 0
	// Iterate the sorted sender list so ties at the maximum resolve
	// deterministically.
	for _, sender := range a.Senders {
		n := len(a.SenderReceivers[sender])
		total += n
		if n >= 3 {
			h.SendersAtLeast3++
		}
		if n > h.MaxReceivers {
			h.MaxReceivers = n
			h.MaxReceiverSite = sender
		}
	}
	if h.Senders > 0 {
		h.MeanReceivers = float64(total) / float64(h.Senders)
		h.SendersAtLeast3Pc = 100 * float64(h.SendersAtLeast3) / float64(h.Senders)
	}
	return h
}

// BreakdownRow is one row of a Table 1-style breakdown.
type BreakdownRow struct {
	Label     string
	Senders   int
	Receivers int
}

// pctRow renders counts against the sender/receiver populations.
func (a *Analysis) row(label string, senders, receivers map[string]bool) BreakdownRow {
	return BreakdownRow{Label: label, Senders: len(senders), Receivers: len(receivers)}
}

// ByMethod reproduces Table 1a: per-channel sender/receiver counts plus
// the multi-channel "combined" row. Rows overlap (a sender using two
// channels appears in both), exactly as in the paper.
func (a *Analysis) ByMethod() []BreakdownRow {
	var rows []BreakdownRow
	for _, m := range httpmodel.AllSurfaceKinds {
		s, r := map[string]bool{}, map[string]bool{}
		for sender, ms := range a.senderMethods {
			if ms[m] {
				s[sender] = true
			}
		}
		for recv, ms := range a.receiverMethods {
			if ms[m] {
				r[recv] = true
			}
		}
		rows = append(rows, a.row(methodLabel(m), s, r))
	}
	s, r := map[string]bool{}, map[string]bool{}
	for sender, ms := range a.senderMethods {
		if len(ms) >= 2 {
			s[sender] = true
		}
	}
	for recv, ms := range a.receiverMethods {
		if len(ms) >= 2 {
			r[recv] = true
		}
	}
	rows = append(rows, a.row("combined", s, r))
	return rows
}

func methodLabel(m httpmodel.SurfaceKind) string {
	switch m {
	case httpmodel.SurfaceReferer:
		return "referer header"
	case httpmodel.SurfaceURI:
		return "uri"
	case httpmodel.SurfaceBody:
		return "payload body"
	case httpmodel.SurfaceCookie:
		return "cookie"
	}
	return string(m)
}

// Table1bOrder is the paper's encoding-row ordering.
var Table1bOrder = []string{"plaintext", "base64", "md5", "sha1", "sha256", "sha256ofmd5"}

// ByEncoding reproduces Table 1b: sender/receiver counts per
// encoding/hash label, the long tail folded into "other", plus the
// multi-encoding "combined" row.
func (a *Analysis) ByEncoding() []BreakdownRow {
	known := map[string]bool{}
	for _, lab := range Table1bOrder {
		known[lab] = true
	}

	var rows []BreakdownRow
	for _, lab := range Table1bOrder {
		s, r := map[string]bool{}, map[string]bool{}
		for sender, ls := range a.senderLabels {
			if ls[lab] {
				s[sender] = true
			}
		}
		for recv, ls := range a.receiverLabels {
			if ls[lab] {
				r[recv] = true
			}
		}
		rows = append(rows, a.row(lab, s, r))
	}
	// Fold unexpected labels into "other" so nothing is silently lost.
	s, r := map[string]bool{}, map[string]bool{}
	for sender, ls := range a.senderLabels {
		for lab := range ls {
			if !known[lab] {
				s[sender] = true
			}
		}
	}
	for recv, ls := range a.receiverLabels {
		for lab := range ls {
			if !known[lab] {
				r[recv] = true
			}
		}
	}
	if len(s) > 0 || len(r) > 0 {
		rows = append(rows, a.row("other", s, r))
	}
	s, r = map[string]bool{}, map[string]bool{}
	for sender, ls := range a.senderLabels {
		if len(ls) >= 2 {
			s[sender] = true
		}
	}
	for recv, ls := range a.receiverLabels {
		if len(ls) >= 2 {
			r[recv] = true
		}
	}
	rows = append(rows, a.row("combined", s, r))
	return rows
}

// ByPIIType reproduces Table 1c: senders/receivers bucketed by the *set*
// of PII types they leak/receive.
func (a *Analysis) ByPIIType() []BreakdownRow {
	bucket := func(ts map[pii.Type]bool) string {
		var names []string
		for t := range ts {
			names = append(names, string(t))
		}
		sort.Strings(names)
		return strings.Join(names, ",")
	}
	senderBuckets := map[string]map[string]bool{}
	receiverBuckets := map[string]map[string]bool{}
	for sender, ts := range a.senderTypes {
		b := bucket(ts)
		if senderBuckets[b] == nil {
			senderBuckets[b] = map[string]bool{}
		}
		senderBuckets[b][sender] = true
	}
	for recv, ts := range a.receiverTypes {
		b := bucket(ts)
		if receiverBuckets[b] == nil {
			receiverBuckets[b] = map[string]bool{}
		}
		receiverBuckets[b][recv] = true
	}

	labels := map[string]bool{}
	for b := range senderBuckets {
		labels[b] = true
	}
	for b := range receiverBuckets {
		labels[b] = true
	}
	ordered := make([]string, 0, len(labels))
	for b := range labels {
		ordered = append(ordered, b)
	}
	// Email first, then by descending sender count for a stable,
	// paper-like ordering.
	sort.Slice(ordered, func(x, y int) bool {
		sx, sy := len(senderBuckets[ordered[x]]), len(senderBuckets[ordered[y]])
		if sx != sy {
			return sx > sy
		}
		return ordered[x] < ordered[y]
	})
	var rows []BreakdownRow
	for _, b := range ordered {
		rows = append(rows, a.row(b, senderBuckets[b], receiverBuckets[b]))
	}
	return rows
}

// ReceiverRank is one Figure 2 bar: a receiver and the share of senders
// leaking to it.
type ReceiverRank struct {
	Receiver  string
	Senders   int
	SenderPct float64
	Cloaked   bool // reached via CNAME cloaking (report alias)
}

// TopReceivers reproduces Figure 2: the top-n receiver domains by the
// number of distinct senders.
func (a *Analysis) TopReceivers(n int) []ReceiverRank {
	ranks := make([]ReceiverRank, 0, len(a.ReceiverSenders))
	for recv, senders := range a.ReceiverSenders {
		r := ReceiverRank{Receiver: recv, Senders: len(senders), Cloaked: a.cloakedReceivers[recv]}
		if len(a.Senders) > 0 {
			r.SenderPct = 100 * float64(r.Senders) / float64(len(a.Senders))
		}
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(x, y int) bool {
		if ranks[x].Senders != ranks[y].Senders {
			return ranks[x].Senders > ranks[y].Senders
		}
		return ranks[x].Receiver < ranks[y].Receiver
	})
	if n > 0 && len(ranks) > n {
		ranks = ranks[:n]
	}
	return ranks
}
