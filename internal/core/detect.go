// Package core implements the paper's primary contribution: PII-leakage
// detection in authentication-flow traffic (§4.1) and its aggregate
// analyses (§4.2) — leakage by channel, by encoding/hashing, by PII
// type, and the receiver popularity ranking of Figure 2.
//
// The detector is pure: it sees only captured HTTP records, classifies
// third parties with the public suffix list plus CNAME uncloaking, and
// matches the persona's candidate-token set (plaintext, encoded and
// hashed PII) on every leak surface of every third-party request.
package core

import (
	"sort"

	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/psl"
)

// Leak is one detected PII transfer to a third party.
type Leak struct {
	// Site is the first-party (sender) registrable domain.
	Site string `json:"site"`
	// Receiver is the third party's registrable domain, after CNAME
	// uncloaking.
	Receiver string `json:"receiver"`
	// Cloaked marks receivers reached through a first-party CNAME.
	Cloaked bool `json:"cloaked,omitempty"`
	// Method is the leak channel (referer, uri, payload, cookie).
	Method httpmodel.SurfaceKind `json:"method"`
	// Param is the parameter or cookie name carrying the token, when
	// the match occurred on a named surface ("" otherwise). It feeds
	// the §5.2 trackid mining.
	Param string `json:"param,omitempty"`
	// Token is the matched candidate token (value, PII field, chain).
	Token pii.Token `json:"token"`
	// RequestURL, Phase and Seq locate the leak in the crawl.
	RequestURL string          `json:"request_url"`
	Phase      httpmodel.Phase `json:"phase"`
	Seq        int             `json:"seq"`
}

// EncodingLabel returns the leak's Table 1b vocabulary label.
func (l *Leak) EncodingLabel() string { return pii.ChainLabel(l.Token.Chain) }

// Detector matches candidate tokens in third-party traffic.
type Detector struct {
	// Candidates is the persona's compiled token set.
	Candidates *pii.CandidateSet
	// PSL splits first- from third-party hosts.
	PSL *psl.List
	// CNAME uncloaks first-party subdomains; nil disables uncloaking.
	CNAME *dnssim.Classifier
}

// NewDetector wires a detector with the default suffix list.
func NewDetector(candidates *pii.CandidateSet, cname *dnssim.Classifier) *Detector {
	return &Detector{Candidates: candidates, PSL: psl.Default(), CNAME: cname}
}

// ReceiverOf classifies a request host against the visited site,
// returning the receiving third party ("" when first-party). It is the
// single receiver-classification implementation shared by the legacy
// Detector and the two-phase detect.Engine, so the two paths cannot
// drift.
func ReceiverOf(list *psl.List, cname *dnssim.Classifier, siteDomain, host string) (receiver string, cloaked bool) {
	if host == "" {
		return "", false
	}
	if list.IsThirdParty(siteDomain, host) {
		e, err := list.ETLDPlusOne(host)
		if err != nil {
			e = psl.Normalize(host)
		}
		return e, false
	}
	// Nominally first-party: check for CNAME cloaking.
	if cname != nil {
		if tracker, ok := cname.Uncloak(host); ok {
			return tracker, true
		}
	}
	return "", false
}

// receiverOf classifies a request host against the visited site.
func (d *Detector) receiverOf(siteDomain, host string) (receiver string, cloaked bool) {
	return ReceiverOf(d.PSL, d.CNAME, siteDomain, host)
}

// DetectRecord returns the leaks in one captured request. Matches are
// deduplicated per (method, token); named surfaces win the parameter
// attribution over whole-region surfaces.
func (d *Detector) DetectRecord(siteDomain string, rec *httpmodel.Record) []Leak {
	receiver, cloaked := d.receiverOf(siteDomain, rec.Request.Host())
	if receiver == "" {
		return nil
	}
	surfaces := httpmodel.Surfaces(&rec.Request)

	type key struct {
		method httpmodel.SurfaceKind
		value  string
	}
	found := map[key]*Leak{}
	var order []key

	scan := func(named bool) {
		for _, s := range surfaces {
			if (s.Name != "") != named {
				continue
			}
			for _, tok := range d.Candidates.FindIn(s.Data) {
				k := key{s.Kind, tok.Value}
				if l, ok := found[k]; ok {
					if l.Param == "" && s.Name != "" {
						l.Param = s.Name
					}
					continue
				}
				found[k] = &Leak{
					Site:       siteDomain,
					Receiver:   receiver,
					Cloaked:    cloaked,
					Method:     s.Kind,
					Param:      s.Name,
					Token:      tok,
					RequestURL: rec.Request.URL,
					Phase:      rec.Phase,
					Seq:        rec.Seq,
				}
				order = append(order, k)
			}
		}
	}
	scan(true)  // named surfaces first: they own parameter attribution
	scan(false) // whole-region surfaces catch the rest

	if len(order) == 0 {
		return nil
	}
	out := make([]Leak, 0, len(order))
	for _, k := range order {
		out = append(out, *found[k])
	}
	return out
}

// DetectSite scans all records of one site crawl.
func (d *Detector) DetectSite(siteDomain string, records []httpmodel.Record) []Leak {
	var out []Leak
	for i := range records {
		out = append(out, d.DetectRecord(siteDomain, &records[i])...)
	}
	return out
}

// DecodeDetect is the alternative detection strategy of ablation A3:
// instead of pre-computing encoded candidate tokens, it iteratively
// applies every invertible codec to each surface up to maxDepth times
// and scans the decoded bytes. It catches encoding-wrapped leaks with a
// much smaller candidate set, but misses encodings it cannot invert and
// tokens embedded mid-surface.
func (d *Detector) DecodeDetect(siteDomain string, rec *httpmodel.Record, maxDepth int) []Leak {
	receiver, cloaked := d.receiverOf(siteDomain, rec.Request.Host())
	if receiver == "" {
		return nil
	}
	var out []Leak
	seen := map[string]bool{}
	var scanData func(s httpmodel.Surface, data []byte, depth int)
	scanData = func(s httpmodel.Surface, data []byte, depth int) {
		for _, tok := range d.Candidates.FindIn(data) {
			k := string(s.Kind) + "|" + tok.Value
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, Leak{
				Site: siteDomain, Receiver: receiver, Cloaked: cloaked,
				Method: s.Kind, Param: s.Name, Token: tok,
				RequestURL: rec.Request.URL, Phase: rec.Phase, Seq: rec.Seq,
			})
		}
		if depth >= maxDepth {
			return
		}
		for _, name := range invertibleCodecs {
			c, _ := lookupCodec(name)
			dec, err := c.Decode(data)
			if err != nil || len(dec) == 0 {
				continue
			}
			scanData(s, dec, depth+1)
		}
	}
	for _, s := range httpmodel.Surfaces(&rec.Request) {
		scanData(s, s.Data, 0)
	}
	// Sort by (method, param, token): the token value alone ties when
	// the same token surfaces on two channels, leaving the order to
	// surface-iteration insertion order — (method, param) breaks the
	// tie deterministically for the A3 ablation output.
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Method != out[b].Method {
			return out[a].Method < out[b].Method
		}
		if out[a].Param != out[b].Param {
			return out[a].Param < out[b].Param
		}
		return out[a].Token.Value < out[b].Token.Value
	})
	return out
}
