package core

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

func testDetector(t *testing.T, zone *dnssim.Zone) *Detector {
	t.Helper()
	cs := pii.MustBuildCandidates(pii.Default(), pii.CandidateConfig{
		MaxDepth:   2,
		Transforms: []string{"md5", "sha1", "sha256", "base64"},
	})
	var cls *dnssim.Classifier
	if zone != nil {
		cls = dnssim.NewClassifier(zone)
	}
	return NewDetector(cs, cls)
}

func sha256Email(t *testing.T) string {
	t.Helper()
	return string(pii.MustApplyChain(pii.Default().Email, []string{"sha256"}))
}

func TestDetectRecordURI(t *testing.T) {
	d := testDetector(t, nil)
	rec := httpmodel.Record{
		Seq: 1, Phase: httpmodel.PhaseSignup,
		Request: httpmodel.Request{
			Method: "GET",
			URL:    "https://ct.pinterest.com/v3/collect?pd=" + sha256Email(t) + "&v=2",
		},
	}
	leaks := d.DetectRecord("shop.example.com", &rec)
	if len(leaks) != 1 {
		t.Fatalf("leaks = %d, want 1: %+v", len(leaks), leaks)
	}
	l := leaks[0]
	if l.Receiver != "pinterest.com" || l.Method != httpmodel.SurfaceURI {
		t.Errorf("leak = %+v", l)
	}
	if l.Param != "pd" {
		t.Errorf("param = %q, want pd", l.Param)
	}
	if l.EncodingLabel() != "sha256" {
		t.Errorf("encoding = %q", l.EncodingLabel())
	}
	if l.Token.Field.Type != pii.TypeEmail {
		t.Errorf("PII type = %q", l.Token.Field.Type)
	}
}

func TestDetectRecordFirstPartyIgnored(t *testing.T) {
	d := testDetector(t, nil)
	rec := httpmodel.Record{
		Request: httpmodel.Request{
			Method: "GET",
			URL:    "https://www.shop.example.com/signup?email=" + pii.Default().Email,
		},
	}
	if leaks := d.DetectRecord("shop.example.com", &rec); leaks != nil {
		t.Errorf("first-party request produced leaks: %+v", leaks)
	}
}

func TestDetectRecordReferer(t *testing.T) {
	d := testDetector(t, nil)
	rec := httpmodel.Record{
		Request: httpmodel.Request{
			Method: "GET",
			URL:    "https://ib.adnxs.com/seg?add=1",
			Headers: map[string]string{
				"Referer": "https://www.shop.example.com/signup?email=" + pii.Default().Email,
			},
		},
	}
	leaks := d.DetectRecord("shop.example.com", &rec)
	if len(leaks) != 1 || leaks[0].Method != httpmodel.SurfaceReferer {
		t.Fatalf("leaks = %+v", leaks)
	}
	if leaks[0].EncodingLabel() != "plaintext" {
		t.Errorf("encoding = %q", leaks[0].EncodingLabel())
	}
}

func TestDetectRecordPayloadJSON(t *testing.T) {
	d := testDetector(t, nil)
	b64 := pii.MustApplyChain(pii.Default().Email, []string{"base64"})
	rec := httpmodel.Record{
		Request: httpmodel.Request{
			Method:   "POST",
			URL:      "https://api.bluecore.com/events",
			Body:     []byte(`{"data":"` + string(b64) + `","event":"identify"}`),
			BodyType: "application/json",
		},
	}
	leaks := d.DetectRecord("shop.example.com", &rec)
	if len(leaks) != 1 || leaks[0].Method != httpmodel.SurfaceBody {
		t.Fatalf("leaks = %+v", leaks)
	}
	if leaks[0].Param != "data" {
		t.Errorf("param = %q, want data", leaks[0].Param)
	}
}

func TestDetectRecordCookie(t *testing.T) {
	zone := dnssim.NewZone()
	zone.AddCNAME("smetrics.shop.example.com", "shopexample.sc.omtrdc.net")
	d := testDetector(t, zone)
	rec := httpmodel.Record{
		Request: httpmodel.Request{
			Method:  "GET",
			URL:     "https://smetrics.shop.example.com/b/ss/pageview",
			Cookies: []httpmodel.Cookie{{Name: "s_ecid", Value: sha256Email(t), Domain: "smetrics.shop.example.com"}},
		},
	}
	leaks := d.DetectRecord("shop.example.com", &rec)
	if len(leaks) != 1 {
		t.Fatalf("leaks = %+v", leaks)
	}
	l := leaks[0]
	if !l.Cloaked || l.Receiver != "omtrdc.net" || l.Method != httpmodel.SurfaceCookie {
		t.Errorf("leak = %+v", l)
	}
	if l.Param != "s_ecid" {
		t.Errorf("param = %q", l.Param)
	}
}

func TestDetectRecordUncloakedFirstPartyCookieIgnored(t *testing.T) {
	d := testDetector(t, dnssim.NewZone())
	rec := httpmodel.Record{
		Request: httpmodel.Request{
			Method:  "GET",
			URL:     "https://account.shop.example.com/session",
			Cookies: []httpmodel.Cookie{{Name: "sid", Value: sha256Email(t), Domain: "shop.example.com"}},
		},
	}
	if leaks := d.DetectRecord("shop.example.com", &rec); leaks != nil {
		t.Errorf("non-cloaked first-party cookie flagged: %+v", leaks)
	}
}

func TestDetectDedupAcrossSurfaces(t *testing.T) {
	// The same token appears in the raw query, the decoded query, and
	// a named parameter: one leak, attributed to the parameter.
	d := testDetector(t, nil)
	rec := httpmodel.Record{
		Request: httpmodel.Request{
			Method: "GET",
			URL:    "https://t.tracker.net/c?em=" + sha256Email(t),
		},
	}
	leaks := d.DetectRecord("shop.example.com", &rec)
	if len(leaks) != 1 {
		t.Fatalf("leaks = %d, want 1 (deduplicated)", len(leaks))
	}
	if leaks[0].Param != "em" {
		t.Errorf("param = %q, want em (named surface wins)", leaks[0].Param)
	}
}

func TestDecodeDetectFindsBase64(t *testing.T) {
	// A detector whose candidate set has NO base64 tokens still finds
	// the leak by decoding the surface.
	cs := pii.MustBuildCandidates(pii.Default(), pii.CandidateConfig{
		MaxDepth:   1,
		Transforms: []string{"sha256"},
	})
	d := NewDetector(cs, nil)
	b64 := pii.MustApplyChain(pii.Default().Email, []string{"base64"})
	rec := httpmodel.Record{
		Request: httpmodel.Request{
			Method: "GET",
			URL:    "https://static.klaviyo.com/onsite/identify?data=" + string(b64),
		},
	}
	if got := d.DetectRecord("shop.example.com", &rec); got != nil {
		t.Fatalf("candidate-set detection unexpectedly matched: %+v", got)
	}
	leaks := d.DecodeDetect("shop.example.com", &rec, 2)
	if len(leaks) == 0 {
		t.Fatal("decode-based detection missed the base64 leak")
	}
	if leaks[0].Token.Label() != "plaintext" {
		t.Errorf("decoded token label = %q", leaks[0].Token.Label())
	}
}

func TestAnalyzeAggregates(t *testing.T) {
	leaks := []Leak{
		{Site: "a.com", Receiver: "fb.com", Method: httpmodel.SurfaceURI, Seq: 1,
			Token: pii.Token{Field: pii.Field{Type: pii.TypeEmail}, Chain: []string{"sha256"}}},
		{Site: "a.com", Receiver: "cr.com", Method: httpmodel.SurfaceURI, Seq: 2,
			Token: pii.Token{Field: pii.Field{Type: pii.TypeEmail}, Chain: []string{"md5"}}},
		{Site: "a.com", Receiver: "pn.com", Method: httpmodel.SurfaceBody, Seq: 3,
			Token: pii.Token{Field: pii.Field{Type: pii.TypeName}}},
		{Site: "b.com", Receiver: "fb.com", Method: httpmodel.SurfaceURI, Seq: 1,
			Token: pii.Token{Field: pii.Field{Type: pii.TypeEmail}, Chain: []string{"sha256"}}},
	}
	a := Analyze(leaks, 10)
	h := a.Headline()
	if h.Senders != 2 || h.Receivers != 3 {
		t.Errorf("headline = %+v", h)
	}
	if h.LeakRate != 20 {
		t.Errorf("leak rate = %v", h.LeakRate)
	}
	if h.LeakyRequests != 4 {
		t.Errorf("leaky requests = %d", h.LeakyRequests)
	}
	if h.MaxReceivers != 3 || h.MaxReceiverSite != "a.com" {
		t.Errorf("max = %d @ %s", h.MaxReceivers, h.MaxReceiverSite)
	}
	if h.SendersAtLeast3 != 1 {
		t.Errorf("≥3 = %d", h.SendersAtLeast3)
	}

	rows := a.ByMethod()
	byLabel := map[string]BreakdownRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	if byLabel["uri"].Senders != 2 || byLabel["payload body"].Senders != 1 {
		t.Errorf("method rows = %+v", byLabel)
	}
	if byLabel["combined"].Senders != 1 { // a.com uses uri+payload
		t.Errorf("combined senders = %d", byLabel["combined"].Senders)
	}

	enc := a.ByEncoding()
	encLabel := map[string]BreakdownRow{}
	for _, r := range enc {
		encLabel[r.Label] = r
	}
	if encLabel["sha256"].Senders != 2 || encLabel["md5"].Senders != 1 || encLabel["plaintext"].Senders != 1 {
		t.Errorf("encoding rows = %+v", encLabel)
	}
	if encLabel["combined"].Senders != 1 {
		t.Errorf("combined encodings = %d", encLabel["combined"].Senders)
	}

	types := a.ByPIIType()
	if types[0].Label != "email" || types[0].Senders != 1 {
		t.Errorf("pii rows = %+v", types)
	}

	top := a.TopReceivers(2)
	if len(top) != 2 || top[0].Receiver != "fb.com" || top[0].Senders != 2 {
		t.Errorf("top receivers = %+v", top)
	}
	if top[0].SenderPct != 100 {
		t.Errorf("fb pct = %v", top[0].SenderPct)
	}
}

// TestEndToEndRecoversGroundTruth is the package's key property: the
// detection pipeline, run over simulated traffic only, must recover the
// ecosystem's calibrated leak graph.
func TestEndToEndRecoversGroundTruth(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(21))
	ds := crawler.Crawl(eco, browser.Firefox88())

	cs := pii.MustBuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	det := NewDetector(cs, dnssim.NewClassifier(eco.Zone))

	var leaks []Leak
	for _, c := range ds.Successes() {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}
	a := Analyze(leaks, len(ds.Successes()))

	// Every configured sender is detected; nothing else is.
	wantSenders := map[string]bool{}
	for _, s := range eco.SenderSites {
		wantSenders[s.Domain] = true
	}
	for _, s := range a.Senders {
		if !wantSenders[s] {
			t.Errorf("false-positive sender %s", s)
		}
	}
	if len(a.Senders) != len(eco.SenderSites) {
		t.Errorf("senders detected = %d, want %d", len(a.Senders), len(eco.SenderSites))
	}

	// Every edge's receiver is recovered.
	wantPairs := map[string]bool{}
	for _, ed := range eco.Edges {
		wantPairs[eco.SenderSites[ed.Sender].Domain+"->"+eco.Providers[ed.Provider].Domain] = true
	}
	gotPairs := map[string]bool{}
	for _, l := range leaks {
		gotPairs[l.Site+"->"+l.Receiver] = true
	}
	for p := range wantPairs {
		if !gotPairs[p] {
			t.Errorf("edge not recovered: %s", p)
		}
	}

	// No benign receiver is implicated.
	for _, l := range leaks {
		if strings.Contains(l.Receiver, "jscdn-static") || strings.Contains(l.Receiver, "webfonts-host") {
			t.Errorf("benign CDN implicated: %+v", l)
		}
	}

	// The cloaked Adobe receiver is found as omtrdc.net via CNAME.
	foundCloaked := false
	for _, l := range leaks {
		if l.Cloaked && l.Receiver == "omtrdc.net" {
			foundCloaked = true
		}
	}
	if !foundCloaked {
		t.Error("cloaked Adobe leaks not recovered")
	}

	// Referer leaks from the GET-form senders are recovered.
	refSenders := map[string]bool{}
	for _, l := range leaks {
		if l.Method == httpmodel.SurfaceReferer {
			refSenders[l.Site] = true
		}
	}
	if len(refSenders) != 3 {
		t.Errorf("referer senders = %d, want 3", len(refSenders))
	}
}

func BenchmarkDetectSite(b *testing.B) {
	eco := webgen.MustGenerate(webgen.SmallConfig(21))
	ds := crawler.Crawl(eco, browser.Firefox88())
	cs := pii.MustBuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	det := NewDetector(cs, dnssim.NewClassifier(eco.Zone))
	succ := ds.Successes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := succ[i%len(succ)]
		det.DetectSite(c.Domain, c.Records)
	}
}

// TestAnalysisInvariants checks structural properties of the aggregates
// over a real end-to-end leak set.
func TestAnalysisInvariants(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(47))
	ds := crawler.Crawl(eco, browser.Firefox88())
	cs := pii.MustBuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	det := NewDetector(cs, dnssim.NewClassifier(eco.Zone))
	var leaks []Leak
	for _, c := range ds.Successes() {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}
	a := Analyze(leaks, len(ds.Successes()))
	total := len(a.Senders)

	// PII-type buckets partition the senders exactly.
	sum := 0
	for _, r := range a.ByPIIType() {
		sum += r.Senders
	}
	if sum != total {
		t.Errorf("PII buckets sum to %d, want %d", sum, total)
	}

	// No per-method count can exceed the population; the combined row
	// is bounded by the smallest pair.
	for _, r := range a.ByMethod() {
		if r.Senders > total || r.Receivers > len(a.Receivers) {
			t.Errorf("method row %q exceeds population: %+v", r.Label, r)
		}
	}

	// TopReceivers is sorted descending and percentage-consistent.
	top := a.TopReceivers(0)
	for i := 1; i < len(top); i++ {
		if top[i].Senders > top[i-1].Senders {
			t.Fatalf("TopReceivers not sorted at %d", i)
		}
	}
	for _, r := range top {
		want := 100 * float64(r.Senders) / float64(total)
		if diff := r.SenderPct - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s pct = %v, want %v", r.Receiver, r.SenderPct, want)
		}
	}

	// Headline totals agree with the raw aggregates.
	h := a.Headline()
	if h.Senders != total || h.Receivers != len(a.Receivers) {
		t.Errorf("headline inconsistent: %+v", h)
	}
}

func TestDecodeDetectStableOrder(t *testing.T) {
	// A record leaking the same persona on several surfaces: the output
	// must be sorted by (method, param, token) and identical on every
	// call — the A3 ablation diffs this list, so insertion order (which
	// depends on surface iteration) must never show through.
	d := testDetector(t, nil)
	p := pii.Default()
	rec := httpmodel.Record{
		Seq: 3, Phase: httpmodel.PhaseSignup,
		Request: httpmodel.Request{
			Method: "GET",
			URL:    "https://t.tracker.net/c?em=" + p.Email + "&ph=" + p.Phone,
			Headers: map[string]string{
				"Referer": "https://www.shop.example.com/signup?email=" + p.Email,
			},
		},
	}
	leaks := d.DecodeDetect("shop.example.com", &rec, 2)
	if len(leaks) < 3 {
		t.Fatalf("leaks = %d, want >= 3 (two query params + referer): %+v", len(leaks), leaks)
	}
	if !sort.SliceIsSorted(leaks, func(a, b int) bool {
		if leaks[a].Method != leaks[b].Method {
			return leaks[a].Method < leaks[b].Method
		}
		if leaks[a].Param != leaks[b].Param {
			return leaks[a].Param < leaks[b].Param
		}
		return leaks[a].Token.Value < leaks[b].Token.Value
	}) {
		t.Errorf("DecodeDetect output not sorted by (method, param, token): %+v", leaks)
	}
	for i := 0; i < 10; i++ {
		again := d.DecodeDetect("shop.example.com", &rec, 2)
		if !reflect.DeepEqual(leaks, again) {
			t.Fatalf("DecodeDetect unstable on call %d", i)
		}
	}
}

func TestAccumulatorMatchesAnalyze(t *testing.T) {
	// Folding leaks one at a time in a scrambled order must finalize to
	// exactly the batch Analyze over the same list.
	leaks := []Leak{
		{Site: "a.com", Receiver: "fb.com", Method: httpmodel.SurfaceURI, Seq: 1},
		{Site: "b.com", Receiver: "fb.com", Method: httpmodel.SurfaceBody, Seq: 2},
		{Site: "a.com", Receiver: "crit.eo", Method: httpmodel.SurfaceReferer, Seq: 3, Cloaked: true},
		{Site: "c.com", Receiver: "adnxs.com", Method: httpmodel.SurfaceCookie, Seq: 1},
	}
	acc := NewAccumulator()
	for _, i := range []int{2, 0, 3, 1} {
		acc.Add(&leaks[i])
	}
	acc.AddSites(7)
	got := acc.Finalize(leaks)
	want := Analyze(leaks, 7)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("accumulator diverges from Analyze:\n%+v\n%+v", got, want)
	}
	senders := acc.SenderSet()
	if len(senders) != 3 || !senders["a.com"] || !senders["b.com"] || !senders["c.com"] {
		t.Errorf("SenderSet = %v", senders)
	}
}
