package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/obs"
	"piileak/internal/pipeline"
	"piileak/internal/resilience"
	"piileak/internal/webgen"
)

// WorkerFailpoint, when non-nil, is invoked before every in-process
// worker attempt with the shard index and the 1-based attempt number;
// a non-nil return simulates that attempt dying. The supervisor tests
// use it to script shard deaths at precise points (fail shard 2 twice,
// then let it through). Test-only; leave nil in production code.
var WorkerFailpoint func(shard, attempt int) error

// Options configures a supervised sharded run.
type Options struct {
	// Shards is K, the number of independent failure domains.
	Shards int
	// Dir is the shard working directory: plan.json, per-shard
	// checkpoints and results, and report.json all live here.
	Dir string
	// Workers/DetectWorkers/Buffer are each shard worker's pipeline
	// knobs.
	Workers, DetectWorkers, Buffer int
	// Crawl carries the base crawl options handed to every worker —
	// faults, transport policy, site timeout. Sites, checkpoint and
	// shard fields are owned by the runtime and overwritten per worker.
	Crawl crawler.Options
	// QuarantineDir, when set, collects crash bundles shard-unique under
	// one shared directory; QuarantineMax caps each worker's persisted
	// bundle files (oldest evicted first, 0 = unbounded).
	QuarantineDir string
	QuarantineMax int
	// MaxRestarts caps how many times a dead or stalled shard is
	// restarted before it is declared missing; < 0 means never restart,
	// 0 selects the default (2).
	MaxRestarts int
	// Restart is the backoff policy between restarts of the same shard
	// (seeded, deterministic); zero value takes resilience defaults.
	Restart resilience.Policy
	// Clock times the restart backoffs and the stall watchdog's polls.
	// nil selects the wall clock; tests inject a VirtualClock so
	// supervision is instant and deterministic.
	Clock resilience.Clock
	// Obs observes the supervised run: per-shard attempt/restart/stall
	// counters, completion and merge counts, and shard/merge spans. It
	// is also handed to in-process workers, whose pipeline telemetry
	// accumulates into the same registry.
	Obs *obs.Run
	// Fresh clears each shard's previous checkpoint and result before
	// running. The default resumes: verified results are reused without
	// re-crawling, checkpoints continue where they stopped.
	Fresh bool
	// Command, when set, selects subprocess mode: each worker attempt
	// runs Command(shard) — typically piicrawl re-execed with
	// -shard i/K — instead of an in-process pipeline, and is judged by
	// its exit status plus the result file it leaves behind. cliflags
	// builds the re-exec argv; the supervisor stays CLI-agnostic.
	Command func(shard int) *exec.Cmd
	// StallTimeout arms the subprocess watchdog: a worker whose
	// checkpoint file stops growing for this long is killed and counted
	// as a stall (then restarted like any death). <= 0 disables the
	// watchdog. In-process workers rely on the crawl's own SiteTimeout
	// watchdog instead.
	StallTimeout time.Duration
}

// Validate rejects contradictory supervisor settings.
func (o Options) Validate() error {
	if o.Shards < 1 {
		return fmt.Errorf("shard: Shards must be >= 1, got %d", o.Shards)
	}
	if o.Dir == "" {
		return fmt.Errorf("shard: supervisor needs a working Dir")
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("shard: negative StallTimeout %v", o.StallTimeout)
	}
	if o.StallTimeout > 0 && o.Command == nil {
		return fmt.Errorf("shard: StallTimeout set without Command — in-process workers use the crawl SiteTimeout watchdog")
	}
	return nil
}

// maxRestarts resolves the restart budget.
func (o Options) maxRestarts() int {
	if o.MaxRestarts < 0 {
		return 0
	}
	if o.MaxRestarts == 0 {
		return 2
	}
	return o.MaxRestarts
}

// shardOutcome is one shard's supervision summary.
type shardOutcome struct {
	shard    int
	result   *Result // verified result; nil when the shard is missing
	attempts int
	restarts int
	stalls   int
	err      error // terminal error when result == nil
	// stderrTail holds the last failed subprocess attempt's trailing
	// stderr lines for the missing-shard report.
	stderrTail []string
}

// Supervise runs a complete sharded study: plan, run every shard under
// restart supervision, then verify and merge. Shards run concurrently,
// each as an independently-checkpointed worker; a worker that dies (or,
// in subprocess mode, stalls) is restarted up to MaxRestarts times with
// seeded backoff, resuming from its own checkpoint so completed sites
// are never recrawled. A shard that exhausts its budget degrades the
// run instead of failing it: the merge folds the survivors and the
// report lists the lost shard with its exact site population.
//
// The returned error is reserved for the run being unusable — bad
// options, a poisoned plan, corrupt (not absent) shard results, or
// cancellation. Missing shards are data (Report.Partial), not errors.
func Supervise(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, det pipeline.Detector, opts Options) (*pipeline.Result, *Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	clock := opts.Clock
	if clock == nil {
		clock = resilience.RealClock{}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("shard: create dir: %w", err)
	}

	plan, err := preparePlan(eco, opts)
	if err != nil {
		return nil, nil, err
	}

	o := opts.Obs
	outcomes := make([]shardOutcome, opts.Shards)
	var wg sync.WaitGroup
	for s := 0; s < opts.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			outcomes[s] = superviseShard(ctx, eco, profile, det, opts, clock, s)
		}(s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	var results []*Result
	for i := range outcomes {
		out := &outcomes[i]
		if out.result != nil {
			results = append(results, out.result)
			o.Count(obs.MetricShardsCompleted, 1)
			o.Count(obs.MetricShardDigests, 1)
		} else {
			o.Count(obs.MetricShardsMissing, 1)
		}
	}

	sp := o.StartSpan(obs.StageMerge, "merge", 0)
	res, report, err := Merge(eco, profile, plan, results)
	if err != nil {
		return nil, nil, err
	}
	sp.SetN(report.MergedSites)
	sp.End()
	o.Count(obs.MetricShardMergedSites, int64(report.MergedSites))

	// Fold the supervision history into the merge's report: attempt
	// counts per shard, and the terminal error on each missing one.
	report.Attempts = map[int]int{}
	for i := range outcomes {
		out := &outcomes[i]
		report.Attempts[out.shard] = out.attempts
		if out.restarts > 0 {
			if report.Restarts == nil {
				report.Restarts = map[int]int{}
			}
			report.Restarts[out.shard] = out.restarts
		}
		if out.stalls > 0 {
			if report.Stalls == nil {
				report.Stalls = map[int]int{}
			}
			report.Stalls[out.shard] = out.stalls
		}
	}
	for i := range report.Missing {
		m := &report.Missing[i]
		m.Attempts = outcomes[m.Shard].attempts
		if e := outcomes[m.Shard].err; e != nil {
			m.Error = e.Error()
		}
		m.StderrTail = outcomes[m.Shard].stderrTail
	}
	if err := WriteReport(opts.Dir, report); err != nil {
		return nil, nil, err
	}
	return res, report, nil
}

// preparePlan writes (or validates) the plan manifest and clears stale
// shard state under Fresh.
func preparePlan(eco *webgen.Ecosystem, opts Options) (*Plan, error) {
	plan, err := NewPlan(eco, opts.Shards)
	if err != nil {
		return nil, err
	}
	path := PlanPath(opts.Dir)
	if existing, err := ReadPlan(path); err == nil && !opts.Fresh {
		// A resumed run must be resuming THIS study: same partition,
		// same seeds, same universe.
		if err := existing.Verify(eco); err != nil {
			return nil, fmt.Errorf("shard: %s does not match this study: %w", path, err)
		}
		if existing.Shards != opts.Shards {
			return nil, fmt.Errorf("shard: %s plans %d shards, run wants %d — use a fresh dir or matching -shards", path, existing.Shards, opts.Shards)
		}
		return existing, nil
	}
	if opts.Fresh {
		for s := 0; s < opts.Shards; s++ {
			os.Remove(CheckpointPath(opts.Dir, s, opts.Shards))
			os.Remove(ResultPath(opts.Dir, s, opts.Shards))
		}
	}
	if err := WritePlan(opts.Dir, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// superviseShard runs one shard's attempt/restart loop to completion or
// budget exhaustion.
func superviseShard(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, det pipeline.Detector, opts Options, clock resilience.Clock, s int) shardOutcome {
	out := shardOutcome{shard: s}
	o := opts.Obs
	kind := strconv.Itoa(s)
	restart := opts.Restart.WithDefaults()
	budget := opts.maxRestarts()
	resultPath := ResultPath(opts.Dir, s, opts.Shards)

	// A verified result from a previous (or concurrent-resumed) run is
	// already done — reuse it instead of recrawling. Fresh mode removed
	// it in preparePlan.
	if r, err := ReadResult(resultPath); err == nil && r.Manifest.EcoSeed == eco.Config.Seed {
		out.result = r
		return out
	}

	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		out.attempts = attempt
		o.CountKind(obs.MetricShardRuns, kind, 1)
		sp := o.StartSpan(obs.StageShard, fmt.Sprintf("shard-%d-of-%d", s, opts.Shards), s)

		stallsBefore := out.stalls
		err := runAttempt(ctx, eco, profile, det, opts, clock, s, attempt, &out)
		if out.stalls > stallsBefore {
			o.CountKind(obs.MetricShardStalls, kind, int64(out.stalls-stallsBefore))
		}
		if err == nil {
			// Trust nothing the worker said — only the result file it
			// left, digest-verified.
			r, verr := ReadResult(resultPath)
			if verr == nil {
				sp.SetN(len(r.Records))
				sp.End()
				out.result = r
				out.err = nil
				return out
			}
			err = verr
		}
		sp.End()
		out.err = err
		if ctx.Err() != nil {
			return out
		}
		if attempt > budget {
			return out
		}
		out.restarts++
		o.CountKind(obs.MetricShardRestarts, kind, 1)
		d := restart.Backoff(eco.Config.Seed, "shard-"+kind, attempt)
		if serr := resilience.SleepContext(ctx, clock, d); serr != nil {
			out.err = serr
			return out
		}
	}
}

// runAttempt executes one worker attempt, in-process or subprocess.
func runAttempt(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, det pipeline.Detector, opts Options, clock resilience.Clock, s, attempt int, out *shardOutcome) error {
	if fp := WorkerFailpoint; fp != nil {
		if err := fp(s, attempt); err != nil {
			return err
		}
	}
	if opts.Command != nil {
		return runSubprocess(ctx, opts.Command(s), CheckpointPath(opts.Dir, s, opts.Shards), opts.StallTimeout, clock, out)
	}
	crawlOpts := opts.Crawl
	crawlOpts.Obs = opts.Obs
	_, err := RunWorker(ctx, eco, profile, det, WorkerConfig{
		Shard:         s,
		Shards:        opts.Shards,
		Dir:           opts.Dir,
		Workers:       opts.Workers,
		DetectWorkers: opts.DetectWorkers,
		Buffer:        opts.Buffer,
		Options:       crawlOpts,
		QuarantineDir: opts.QuarantineDir,
		QuarantineMax: opts.QuarantineMax,
	})
	return err
}

// runSubprocess runs one re-execed worker attempt under the
// checkpoint-growth stall watchdog. The watchdog needs no wall-time
// reads: it sleeps on the injected clock and compares checkpoint sizes
// between polls, so a worker that stops appending for a full
// StallTimeout window is killed and the attempt reported as a stall.
func runSubprocess(ctx context.Context, cmd *exec.Cmd, ckptPath string, stall time.Duration, clock resilience.Clock, out *shardOutcome) error {
	if cmd == nil {
		return fmt.Errorf("shard: subprocess mode produced no command")
	}
	// Tee the worker's stderr through a line tail so a terminal failure
	// reports the process's last words, not just its exit status. The
	// tail from the final failed attempt lands in report.json's
	// missing-shard entry.
	tail := newTailWriter(cmd.Stderr, stderrTailLines)
	cmd.Stderr = tail
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("shard: start worker: %w", err)
	}
	done := make(chan error, 1)
	// The wait pump exits when the worker does, and every path below
	// either reaps the worker or kills it first.
	//lint:allow goroleak wait pump exits when the worker process is reaped or killed
	go func() { done <- cmd.Wait() }()

	var stallCh <-chan struct{}
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	if stall > 0 {
		ch := make(chan struct{})
		stallCh = ch
		interval := stall / 4
		if interval <= 0 {
			interval = stall
		}
		go func() {
			lastSize := int64(-1)
			idle := time.Duration(0)
			for {
				if resilience.SleepContext(watchCtx, clock, interval) != nil {
					return
				}
				size := int64(0)
				if fi, err := os.Stat(ckptPath); err == nil {
					size = fi.Size()
				}
				if size != lastSize {
					lastSize = size
					idle = 0
					continue
				}
				idle += interval
				if idle >= stall {
					close(ch)
					return
				}
			}
		}()
	}

	select {
	case err := <-done:
		if err != nil {
			out.stderrTail = tail.Tail()
			return fmt.Errorf("shard: worker exited: %w", err)
		}
		return nil
	case <-stallCh:
		out.stalls++
		cmd.Process.Kill()
		<-done
		out.stderrTail = tail.Tail()
		return fmt.Errorf("shard: worker stalled (checkpoint idle for %v); killed", stall)
	case <-ctx.Done():
		cmd.Process.Kill()
		<-done
		return ctx.Err()
	}
}

// WriteReport persists the merge report atomically as indented JSON.
func WriteReport(dir string, r *Report) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return fmt.Errorf("shard: marshal report: %w", err)
	}
	return atomicWrite(ReportPath(dir), append(data, '\n'))
}

// ReadReport loads a merge report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("shard: parse report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("shard: report schema %d, want %d", r.Schema, ReportSchema)
	}
	return &r, nil
}
