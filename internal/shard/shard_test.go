package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"reflect"
	"sync"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/pii"
	"piileak/internal/pipeline"
	"piileak/internal/webgen"
)

// The package fixture: one faulty small ecosystem, its detector, and
// the unsharded streamed reference run every merge test compares
// against. Built once — the reference crawl is the expensive part.
const fixtureSeed = 53

var (
	fixtureOnce sync.Once
	fixtureEco  *webgen.Ecosystem
	fixtureDet  *core.Detector
	fixtureRef  *pipeline.Result
)

func fixture(t testing.TB) (*webgen.Ecosystem, browser.Profile, *core.Detector, *pipeline.Result) {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := webgen.SmallConfig(fixtureSeed)
		cfg.Faults = &faultsim.Config{Rate: 0.3}
		fixtureEco = webgen.MustGenerate(cfg)
		cs, err := pii.BuildCandidates(fixtureEco.Persona, pii.CandidateConfig{MaxDepth: 2})
		if err != nil {
			panic(err)
		}
		fixtureDet = core.NewDetector(cs, dnssim.NewClassifier(fixtureEco.Zone))
		ref, err := pipeline.Run(context.Background(), fixtureEco, browser.Firefox88(), fixtureDet, pipeline.Options{})
		if err != nil {
			panic(err)
		}
		fixtureRef = ref
	})
	return fixtureEco, browser.Firefox88(), fixtureDet, fixtureRef
}

func leaksJSON(t testing.TB, leaks []core.Leak) []byte {
	t.Helper()
	data, err := json.MarshalIndent(leaks, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func datasetJSON(t testing.TB, res *pipeline.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Dataset.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runShards crawls every shard of a K-way split into dir and returns
// the plan.
func runShards(t testing.TB, dir string, shards int) *Plan {
	t.Helper()
	eco, profile, det, _ := fixture(t)
	for s := 0; s < shards; s++ {
		if _, err := RunWorker(context.Background(), eco, profile, det, WorkerConfig{
			Shard: s, Shards: shards, Dir: dir,
		}); err != nil {
			t.Fatalf("shard %d/%d: %v", s, shards, err)
		}
	}
	plan, err := NewPlan(eco, shards)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// assertMatchesReference pins the headline invariant: a merged result's
// leak bytes, analysis, tracking census and (thin) dataset equal the
// unsharded streamed run's.
func assertMatchesReference(t *testing.T, res *pipeline.Result) {
	t.Helper()
	_, _, _, ref := fixture(t)
	if got, want := leaksJSON(t, res.Leaks), leaksJSON(t, ref.Leaks); !bytes.Equal(got, want) {
		t.Errorf("merged leak JSON diverges from unsharded run (%d vs %d bytes)", len(got), len(want))
	}
	if got, want := res.Analysis.Headline(), ref.Analysis.Headline(); got != want {
		t.Errorf("merged headline diverges:\n%+v\n%+v", got, want)
	}
	if !reflect.DeepEqual(res.Analysis.ByMethod(), ref.Analysis.ByMethod()) {
		t.Error("merged Table 1a diverges")
	}
	if !reflect.DeepEqual(res.Analysis.ByEncoding(), ref.Analysis.ByEncoding()) {
		t.Error("merged Table 1b diverges")
	}
	if !reflect.DeepEqual(res.Tracking.Classification(), ref.Tracking.Classification()) {
		t.Error("merged Table 2 classification diverges")
	}
	if !reflect.DeepEqual(res.Senders, ref.Senders) {
		t.Error("merged sender set diverges")
	}
	if got, want := datasetJSON(t, res), datasetJSON(t, ref); !bytes.Equal(got, want) {
		t.Errorf("merged dataset diverges (%d vs %d bytes)", len(got), len(want))
	}
	if res.TotalRecords != ref.TotalRecords {
		t.Errorf("merged TotalRecords = %d, unsharded %d", res.TotalRecords, ref.TotalRecords)
	}
}

// TestPlanDeterministicInterleaved: the planner's contract — stable
// bytes, rank-interleaved assignment, sizes within one, full coverage,
// and a clean round trip through disk.
func TestPlanDeterministicInterleaved(t *testing.T) {
	eco, _, _, _ := fixture(t)
	for _, k := range []int{1, 2, 3, 4, 8} {
		a, err := NewPlan(eco, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewPlan(eco, k)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := a.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("K=%d: two plans over the same ecosystem marshal differently", k)
		}
		if err := a.Verify(eco); err != nil {
			t.Errorf("K=%d: fresh plan fails Verify: %v", k, err)
		}
		if a.Universe != len(eco.Sites) {
			t.Errorf("K=%d: plan universe %d, ecosystem has %d sites", k, a.Universe, len(eco.Sites))
		}
		min, max := len(eco.Sites), 0
		total := 0
		for s := 0; s < k; s++ {
			ix := a.Indexes(s)
			if n := len(ix); n != a.Size(s) {
				t.Fatalf("K=%d shard %d: %d indexes, Size says %d", k, s, n, a.Size(s))
			}
			if n := len(ix); n < min {
				min = n
			} else if n > max {
				max = n
			}
			for j, i := range ix {
				if i != s+j*k {
					t.Fatalf("K=%d shard %d: index %d at position %d, want %d", k, s, i, j, s+j*k)
				}
			}
			total += len(ix)
		}
		if total != a.Universe {
			t.Errorf("K=%d: shards cover %d of %d sites", k, total, a.Universe)
		}
		if max == 0 {
			max = min
		}
		if max-min > 1 {
			t.Errorf("K=%d: shard sizes span [%d, %d], want within 1", k, min, max)
		}

		dir := t.TempDir()
		if err := WritePlan(dir, a); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadPlan(PlanPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Verify(eco); err != nil {
			t.Errorf("K=%d: round-tripped plan fails Verify: %v", k, err)
		}
		if !reflect.DeepEqual(a, rt) {
			t.Errorf("K=%d: plan changed through the disk round trip", k)
		}
	}
	if _, err := NewPlan(eco, 0); err == nil {
		t.Error("NewPlan accepted 0 shards")
	}
}

// TestPlanVerifyRejectsForeign: a plan from another study — different
// seed, edited domains, wrong universe — must fail verification, and
// structurally-broken plan bytes must fail the read-time parse.
func TestPlanVerifyRejectsForeign(t *testing.T) {
	eco, _, _, _ := fixture(t)
	other := webgen.MustGenerate(webgen.SmallConfig(fixtureSeed + 1))
	plan, err := NewPlan(eco, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(other); err == nil {
		t.Error("plan verified against a different ecosystem")
	}

	edited, err := NewPlan(eco, 3)
	if err != nil {
		t.Fatal(err)
	}
	edited.Interleave = "round-robin"
	if err := edited.Verify(eco); err == nil {
		t.Error("plan with an unknown interleave rule verified")
	}

	shrunk, err := NewPlan(eco, 3)
	if err != nil {
		t.Fatal(err)
	}
	shrunk.Universe--
	if err := shrunk.Verify(eco); err == nil {
		t.Error("plan with a wrong universe verified")
	}

	legacy, err := NewPlan(eco, 3)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Schema = 1
	if err := legacy.Verify(eco); err == nil {
		t.Error("legacy schema-1 plan verified")
	} else if !bytes.Contains([]byte(err.Error()), []byte("legacy")) {
		t.Errorf("legacy schema-1 plan rejected without the legacy hint: %v", err)
	}

	good, err := plan.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string][]byte{
		"torn tail":        good[:len(good)/2],
		"empty":            nil,
		"not json":         []byte("plan?\n"),
		"wrong schema":     bytes.Replace(good, []byte(`"schema": 2`), []byte(`"schema": 9`), 1),
		"legacy schema":    bytes.Replace(good, []byte(`"schema": 2`), []byte(`"schema": 1`), 1),
		"zero shards":      bytes.Replace(good, []byte(`"shards": 3`), []byte(`"shards": 0`), 1),
		"wrong interleave": bytes.Replace(good, []byte("rank-mod-shards"), []byte("round-robin"), 1),
	} {
		if p, err := parsePlan(corrupt); err == nil || p != nil {
			t.Errorf("%s: parsePlan returned (%v, %v), want (nil, error)", name, p, err)
		}
	}
}

// TestResultRejectsTampering: the merge trusts a result file only after
// the digest and the structural invariants hold; every class of
// corruption must be rejected with the file intact on disk.
func TestResultRejectsTampering(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	path, err := RunWorker(context.Background(), eco, profile, det, WorkerConfig{
		Shard: 0, Shards: 2, Dir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := ReadResult(path)
	if err != nil {
		t.Fatalf("fresh worker result fails verification: %v", err)
	}
	if good.Manifest.Shard != 0 || good.Manifest.Shards != 2 || good.Manifest.Universe != len(eco.Sites) {
		t.Fatalf("manifest coordinates %d/%d universe %d look wrong", good.Manifest.Shard, good.Manifest.Shards, good.Manifest.Universe)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	head, body, _ := bytes.Cut(raw, []byte("\n"))

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-2] ^= 0x20 // inside the last site line
	truncated := raw[:len(raw)-10]
	headless := body

	var m Manifest
	if err := json.Unmarshal(head, &m); err != nil {
		t.Fatal(err)
	}
	m.Sites++ // digest still matches the body; the count does not
	editedHead, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	overcounted := append(append(editedHead, '\n'), body...)

	for name, data := range map[string][]byte{
		"flipped body byte": flipped,
		"truncated tail":    truncated,
		"missing manifest":  headless,
		"edited site count": overcounted,
	} {
		if res, err := parseResult("tampered", data); err == nil || res != nil {
			t.Errorf("%s: parseResult returned (%v, %v), want (nil, error)", name, res, err)
		}
	}

	// A writer can also lie structurally with a valid digest: records out
	// of order, or filed under the wrong shard. WriteResult recomputes
	// the digest, so only the structural checks can catch these.
	if len(good.Records) >= 2 {
		swapped := append([]SiteRecord(nil), good.Records...)
		swapped[0], swapped[1] = swapped[1], swapped[0]
		p := ResultPath(dir, 0, 2) + ".swapped"
		if err := WriteResult(p, good.Manifest, swapped); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadResult(p); err == nil {
			t.Error("out-of-order records passed verification")
		}
	}
	wrongShard := good.Manifest
	wrongShard.Shard = 1
	p := ResultPath(dir, 1, 2) + ".stolen"
	if err := WriteResult(p, wrongShard, good.Records); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResult(p); err == nil {
		t.Error("shard 0's records passed verification as shard 1")
	}
}

// TestMergeMatchesUnsharded is the tentpole invariant at the package
// level: for several K, workers run independently and the verified
// merge reproduces the unsharded streamed run byte for byte.
func TestMergeMatchesUnsharded(t *testing.T) {
	eco, profile, _, _ := fixture(t)
	for _, k := range []int{1, 2, 3} {
		dir := t.TempDir()
		plan := runShards(t, dir, k)
		res, report, err := MergeDir(eco, profile, plan, dir)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if report.Partial || len(report.Missing) != 0 {
			t.Fatalf("K=%d: full merge reported partial: %+v", k, report)
		}
		if len(report.Completed) != k {
			t.Fatalf("K=%d: completed shards %v", k, report.Completed)
		}
		if report.MergedSites != len(eco.Sites) {
			t.Errorf("K=%d: merged %d sites of %d", k, report.MergedSites, len(eco.Sites))
		}
		if report.Leaks != len(res.Leaks) {
			t.Errorf("K=%d: report counts %d leaks, result holds %d", k, report.Leaks, len(res.Leaks))
		}
		assertMatchesReference(t, res)
	}
}

// TestMergeOrderIndependent: results are keyed by their manifests, so
// feeding them to Merge in any order produces identical output.
func TestMergeOrderIndependent(t *testing.T) {
	eco, profile, _, _ := fixture(t)
	dir := t.TempDir()
	plan := runShards(t, dir, 3)
	var results []*Result
	for s := 0; s < 3; s++ {
		r, err := ReadResult(ResultPath(dir, s, 3))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	orders := [][]*Result{
		{results[0], results[1], results[2]},
		{results[2], results[1], results[0]},
		{results[1], results[2], results[0]},
	}
	var want []byte
	for i, order := range orders {
		res, report, err := Merge(eco, profile, plan, order)
		if err != nil {
			t.Fatal(err)
		}
		if report.Partial {
			t.Fatalf("order %d: partial", i)
		}
		got := leaksJSON(t, res.Leaks)
		if i == 0 {
			want = got
			assertMatchesReference(t, res)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("order %d: merged leaks depend on input order", i)
		}
	}
}

// TestMergeMissingShardDegrades: a shard with no result file degrades
// the merge into a partial dataset plus a machine-readable account of
// exactly which sites are gone — never an error, never silence.
func TestMergeMissingShardDegrades(t *testing.T) {
	eco, profile, _, _ := fixture(t)
	dir := t.TempDir()
	plan := runShards(t, dir, 3)
	lost := 1
	if err := os.Remove(ResultPath(dir, lost, 3)); err != nil {
		t.Fatal(err)
	}
	res, report, err := MergeDir(eco, profile, plan, dir)
	if err != nil {
		t.Fatalf("merge with a missing shard errored: %v", err)
	}
	if !report.Partial {
		t.Error("report not marked partial")
	}
	if len(report.Missing) != 1 || report.Missing[0].Shard != lost {
		t.Fatalf("Missing = %+v, want shard %d", report.Missing, lost)
	}
	if !reflect.DeepEqual(report.Missing[0].Sites, plan.Domains(eco, lost)) {
		t.Error("missing-shard site list does not match the plan's derived domains")
	}
	wantSites := len(eco.Sites) - plan.Size(lost)
	if report.MergedSites != wantSites {
		t.Errorf("merged %d sites, want %d", report.MergedSites, wantSites)
	}
	gone := map[string]bool{}
	for _, d := range plan.Domains(eco, lost) {
		gone[d] = true
	}
	for _, l := range res.Leaks {
		if gone[l.Site] {
			t.Fatalf("leak from lost shard's site %s survived the merge", l.Site)
		}
	}
	for i := range res.Dataset.Crawls {
		if gone[res.Dataset.Crawls[i].Domain] {
			t.Fatalf("crawl of lost shard's site %s survived the merge", res.Dataset.Crawls[i].Domain)
		}
	}
}

// TestMergeRejectsMismatchedResults: corrupt-but-present inputs are
// errors, never silently folded or dropped — duplicate shards, foreign
// seeds, wrong splits, and records whose domains contradict the
// ecosystem.
func TestMergeRejectsMismatchedResults(t *testing.T) {
	eco, profile, _, _ := fixture(t)
	dir := t.TempDir()
	plan := runShards(t, dir, 2)
	r0, err := ReadResult(ResultPath(dir, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ReadResult(ResultPath(dir, 1, 2))
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := Merge(eco, profile, plan, []*Result{r0, r1, r0}); err == nil {
		t.Error("duplicate shard result merged")
	}

	foreign := *r0
	foreign.Manifest.EcoSeed++
	if _, _, err := Merge(eco, profile, plan, []*Result{&foreign, r1}); err == nil {
		t.Error("result with a foreign eco seed merged")
	}

	split := *r0
	split.Manifest.Shards = 4
	if _, _, err := Merge(eco, profile, plan, []*Result{&split, r1}); err == nil {
		t.Error("result from a different split merged")
	}

	liar := *r0
	liar.Records = append([]SiteRecord(nil), r0.Records...)
	liar.Records[0].Crawl.Domain = "impostor.example"
	if _, _, err := Merge(eco, profile, plan, []*Result{&liar, r1}); err == nil {
		t.Error("record with a contradicting domain merged")
	}

	// A corrupt file on disk is an error for MergeDir too — corruption
	// must never be reinterpreted as "missing".
	path := ResultPath(dir, 0, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeDir(eco, profile, plan, dir); err == nil {
		t.Error("MergeDir silently skipped a corrupt result file")
	}
}
