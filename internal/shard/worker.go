package shard

import (
	"context"
	"fmt"
	"os"

	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/pipeline"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// WorkerConfig scopes one shard worker's run.
type WorkerConfig struct {
	// Shard/Shards are the worker's coordinates: it crawls global site
	// indexes congruent to Shard mod Shards, in rank order.
	Shard, Shards int
	// Dir is the shard directory holding the worker's checkpoint and
	// result file.
	Dir string
	// Workers/DetectWorkers/Buffer are the per-shard pipeline knobs,
	// passed through to pipeline.Options.
	Workers, DetectWorkers, Buffer int
	// Options carries the remaining crawl knobs — faults, policy, site
	// timeout, observer. Source, Sites, CheckpointPath, Resume,
	// Shard/Shards and Quarantine are owned by the worker and
	// overwritten.
	Options crawler.Options
	// QuarantineDir, when set, collects crash bundles under shard-unique
	// paths so K workers can share the directory. QuarantineMax caps the
	// bundle files this worker keeps on disk (oldest evicted first, 0 =
	// unbounded).
	QuarantineDir string
	QuarantineMax int
	// Checkpoint overrides the shard's derived checkpoint path; "" uses
	// CheckpointPath(Dir, Shard, Shards). The header's shard label is
	// stamped either way, so a foreign checkpoint is refused, not
	// silently mixed in.
	Checkpoint string
}

// interleaveSource is one shard's lazy view of the universe: local
// index j maps to global index shard + j*shards. It materializes
// nothing — each At defers to the underlying source — so a worker over
// a lazy universe derives only the sites the crawl actually reaches,
// never the whole universe.
type interleaveSource struct {
	src           site.Source
	shard, shards int
}

func (s interleaveSource) Len() int {
	n := s.src.Len()
	if s.shard >= n {
		return 0
	}
	return (n - s.shard + s.shards - 1) / s.shards
}

func (s interleaveSource) At(j int) *site.Site {
	return s.src.At(s.shard + j*s.shards)
}

// RunWorker executes one shard end to end: crawl + detect + accumulate
// over the shard's interleaved site slice, checkpointed so a restart
// resumes instead of recrawling, finishing by atomically writing the
// shard's digest-bearing result file. It returns the result path.
//
// The shard's population is a lazy interleaved view of the ecosystem's
// universe — sites materialize one at a time as the crawl reaches
// them, so the worker's peak site memory is proportional to its shard,
// not the universe.
//
// Workers always run streamed (records released after detection): the
// sharded study's contract covers leak bytes and table numbers, and
// holding K shards' full captures would defeat the pipeline's memory
// bound. Resume is unconditional — a missing checkpoint is a fresh
// start, and a supervisor restart picks up exactly where the dead
// attempt's checkpoint left off. The supervisor, not the worker, owns
// clearing stale state for non-resume runs.
func RunWorker(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, det pipeline.Detector, cfg WorkerConfig) (string, error) {
	if cfg.Shards < 1 || cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return "", fmt.Errorf("shard: worker coordinates %d/%d are invalid", cfg.Shard, cfg.Shards)
	}
	if cfg.Dir == "" {
		return "", fmt.Errorf("shard: worker needs a shard directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("shard: create dir: %w", err)
	}
	universe := eco.Universe()
	src := interleaveSource{src: universe, shard: cfg.Shard, shards: cfg.Shards}
	if src.Len() == 0 {
		return "", fmt.Errorf("shard: shard %d of %d is empty (universe %d)", cfg.Shard, cfg.Shards, universe.Len())
	}

	opts := pipeline.Options{
		DetectWorkers: cfg.DetectWorkers,
		Buffer:        cfg.Buffer,
	}
	opts.Options = cfg.Options
	opts.Workers = cfg.Workers
	opts.Shard, opts.Shards = cfg.Shard, cfg.Shards
	opts.Source = src
	opts.Sites = nil
	opts.CheckpointPath = cfg.Checkpoint
	if opts.CheckpointPath == "" {
		opts.CheckpointPath = CheckpointPath(cfg.Dir, cfg.Shard, cfg.Shards)
	}
	opts.Resume = true
	opts.KeepRecords = false

	// Collect per-site outputs — the sink sees them in local site order,
	// and local position j maps back to global index Shard + j*Shards.
	recs := make([]SiteRecord, 0, src.Len())
	opts.Sink = func(out pipeline.SiteOut) {
		recs = append(recs, SiteRecord{
			Index:   cfg.Shard + out.Result.Index*cfg.Shards,
			Crawl:   out.Result.Crawl,
			Mail:    out.Result.Mail,
			Blocked: out.Result.Blocked,
			Records: out.Records,
			Leaks:   out.Leaks,
			Reqs:    out.Requests,
		})
	}

	if cfg.QuarantineDir != "" {
		q, err := crawler.NewQuarantineShard(cfg.QuarantineDir, cfg.Shard, cfg.Shards)
		if err != nil {
			return "", err
		}
		q.SetLimit(cfg.QuarantineMax)
		opts.Quarantine = q
	}

	if _, err := pipeline.Run(ctx, eco, profile, det, opts); err != nil {
		return "", err
	}

	m := Manifest{
		EcoSeed:  eco.Config.Seed,
		Browser:  profile.Name + " " + profile.Version,
		Shards:   cfg.Shards,
		Shard:    cfg.Shard,
		Universe: universe.Len(),
	}
	if inj := cfg.Options.Faults; inj != nil {
		m.FaultSeed = inj.Seed()
	} else if eco.Faults != nil {
		m.FaultSeed = eco.Faults.Seed()
	}
	path := ResultPath(cfg.Dir, cfg.Shard, cfg.Shards)
	if err := WriteResult(path, m, recs); err != nil {
		return "", err
	}
	return path, nil
}
