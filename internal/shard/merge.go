package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/httpmodel"
	"piileak/internal/pipeline"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// ReportSchema versions the merge report layout.
const ReportSchema = 1

// Report is the sharded run's machine-readable outcome: which shards
// merged, which were lost and what sites went with them, and how hard
// the supervisor had to fight. It is written as report.json next to the
// shard results, so a degraded run's gaps are auditable data, not a log
// line.
type Report struct {
	Schema int `json:"schema"`
	Shards int `json:"shards"`
	// Completed lists the shard indexes that produced a verified result,
	// ascending.
	Completed []int `json:"completed"`
	// Missing lists the shards that did not, with the sites each one
	// took down. Empty on a full merge.
	Missing []MissingShard `json:"missing,omitempty"`
	// Partial is true when any shard is missing: the merged tables cover
	// only the completed shards' sites.
	Partial bool `json:"partial"`
	// MergedSites counts the site records folded into the result.
	MergedSites int `json:"merged_sites"`
	// Leaks counts the merged leak records.
	Leaks int `json:"leaks"`
	// Attempts sums worker attempts per shard (supervised runs).
	Attempts map[int]int `json:"attempts,omitempty"`
	// Restarts sums supervisor restarts per shard (supervised runs).
	Restarts map[int]int `json:"restarts,omitempty"`
	// Stalls counts watchdog kills per shard (supervised subprocess
	// runs).
	Stalls map[int]int `json:"stalls,omitempty"`
}

// MissingShard records one shard that exhausted its retry budget: its
// coordinates, the terminal error, and the exact site population the
// merged tables are missing because of it.
type MissingShard struct {
	Shard    int      `json:"shard"`
	Attempts int      `json:"attempts,omitempty"`
	Error    string   `json:"error,omitempty"`
	Sites    []string `json:"sites"`
	// StderrTail is the last ~20 stderr lines of the final failed
	// attempt's re-execed worker — the dying words a bare exit status
	// loses. In-process workers have no separate stderr, so it is only
	// populated in subprocess mode.
	StderrTail []string `json:"stderr_tail,omitempty"`
}

// ReportPath is the merge report's location under a shard directory.
func ReportPath(dir string) string { return filepath.Join(dir, "report.json") }

// Merge folds verified shard results back into one study result. The
// input order is irrelevant — results are keyed by their manifest's
// shard index — and the fold is the same algebra the unsharded pipeline
// runs: per-site records re-interleaved into global site order, leaks
// concatenated in that order, and every aggregate (analysis, tracking
// index, sender set, request index, dataset) rebuilt from the ordered
// stream. With all shards present the merged leak slice and every
// table are byte-identical to the unsharded run's.
//
// Each result's manifest is cross-checked against the plan (seeds,
// shard count, universe) before a single record is folded; ReadResult
// has already verified the content digest. Shards absent from results
// degrade the merge instead of failing it: their sites are simply not
// folded, and the report lists them under Missing with Partial set.
func Merge(eco *webgen.Ecosystem, profile browser.Profile, plan *Plan, results []*Result) (*pipeline.Result, *Report, error) {
	if err := plan.Verify(eco); err != nil {
		return nil, nil, err
	}
	byShard := make(map[int]*Result, len(results))
	for _, r := range results {
		if r == nil {
			continue
		}
		m := r.Manifest
		if m.Shards != plan.Shards {
			return nil, nil, fmt.Errorf("shard: result for shard %d is %d-way, plan is %d-way", m.Shard, m.Shards, plan.Shards)
		}
		if m.EcoSeed != plan.EcoSeed || m.FaultSeed != plan.FaultSeed {
			return nil, nil, fmt.Errorf("shard: result for shard %d has seeds (%d, %d), plan has (%d, %d)", m.Shard, m.EcoSeed, m.FaultSeed, plan.EcoSeed, plan.FaultSeed)
		}
		if m.Universe != plan.Universe {
			return nil, nil, fmt.Errorf("shard: result for shard %d covers universe %d, plan has %d", m.Shard, m.Universe, plan.Universe)
		}
		if _, dup := byShard[m.Shard]; dup {
			return nil, nil, fmt.Errorf("shard: two results claim shard %d", m.Shard)
		}
		byShard[m.Shard] = r
	}

	// Re-interleave: every record lands in its global site-index slot.
	// ReadResult guaranteed each record's index is congruent to its
	// shard, so two results can never fight over a slot; the domain
	// check below catches a result whose indexes are self-consistent but
	// belong to a different ecosystem layout.
	slots := make([]*SiteRecord, plan.Universe)
	report := &Report{Schema: ReportSchema, Shards: plan.Shards}
	universe := eco.Universe()
	for s := 0; s < plan.Shards; s++ {
		r, ok := byShard[s]
		if !ok {
			report.Missing = append(report.Missing, MissingShard{
				Shard: s,
				Sites: plan.Domains(eco, s),
			})
			continue
		}
		for i := range r.Records {
			rec := &r.Records[i]
			if want := universe.At(rec.Index).Domain; rec.Crawl.Domain != want {
				return nil, nil, fmt.Errorf("shard %d: record %d is %s, ecosystem index %d is %s", s, i, rec.Crawl.Domain, rec.Index, want)
			}
			slots[rec.Index] = rec
		}
		report.Completed = append(report.Completed, s)
	}
	sort.Ints(report.Completed)
	report.Partial = len(report.Missing) > 0

	// The fold: the unsharded pipeline's accumulate stage replayed over
	// the globally-ordered record stream.
	acc := core.NewAccumulator()
	trk := tracking.NewIndex()
	reqIx := httpmodel.NewRequestIndex()
	ds := crawler.DatasetShell(eco, profile)
	var leaks []core.Leak
	stats := pipeline.Stats{}
	totalRecords := 0
	for i, rec := range slots {
		if rec == nil {
			continue
		}
		ds.Merge(crawler.SiteResult{Index: i, Crawl: rec.Crawl, Mail: rec.Mail, Blocked: rec.Blocked})
		for j := range rec.Leaks {
			l := &rec.Leaks[j]
			acc.Add(l)
			trk.Add(l)
		}
		if rec.Reqs != nil {
			reqIx.AddReduced(rec.Crawl.Domain, rec.Reqs)
		}
		if rec.Crawl.Outcome == crawler.OutcomeSuccess {
			acc.AddSites(1)
			stats.Successes++
		}
		if rec.Records > 0 {
			stats.Released++
		}
		leaks = append(leaks, rec.Leaks...)
		totalRecords += rec.Records
		stats.Sites++
	}
	report.MergedSites = stats.Sites
	report.Leaks = len(leaks)
	stats.Leaks = len(leaks)

	res := &pipeline.Result{
		Leaks:        leaks,
		Analysis:     acc.Finalize(leaks),
		Tracking:     trk,
		Senders:      acc.SenderSet(),
		Requests:     reqIx,
		Dataset:      ds,
		TotalRecords: totalRecords,
		Stats:        stats,
	}
	return res, report, nil
}

// MergeDir reads every completed shard's result file under dir per the
// plan and merges them. Missing or unreadable-but-absent files degrade
// into the report; a file that exists but fails verification (digest
// mismatch, torn tail, wrong run) is an error — corruption must never
// be silently dropped as "missing".
func MergeDir(eco *webgen.Ecosystem, profile browser.Profile, plan *Plan, dir string) (*pipeline.Result, *Report, error) {
	var results []*Result
	for s := 0; s < plan.Shards; s++ {
		path := ResultPath(dir, s, plan.Shards)
		if _, err := os.Stat(path); err != nil {
			continue
		}
		r, err := ReadResult(path)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, r)
	}
	return Merge(eco, profile, plan, results)
}
