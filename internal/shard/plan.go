// Package shard is the sharded study runtime: a planner that
// deterministically partitions the ranked site list into K independent
// failure domains, a supervisor that runs each shard as an
// independently-checkpointed worker (in-process or re-execed) and
// restarts the ones that die or stall, and a verified merge that folds
// the per-shard outputs back into one study result.
//
// The design leans on two properties the rest of the repo already
// guarantees: fault injection is a pure function of (seed, host,
// attempt) with no cross-site state, and every accumulated aggregate is
// a set. Together they mean a site's crawl and detection output is
// byte-identical whether it ran in shard 3 of 8 or in an unsharded
// run — so merging per-site records back in global site order
// reproduces the unsharded study's leak bytes and tables exactly, for
// any K, with or without mid-run shard deaths.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"piileak/internal/site"
	"piileak/internal/webgen"
)

// PlanSchema versions the plan manifest layout. Schema 2 dropped the
// materialized per-shard assignment lists in favour of the interleave
// rule and universe size they were derived from, so plan.json is
// O(shards) instead of O(sites) — a few hundred bytes at any scale,
// including a million-site lazy universe.
const PlanSchema = 2

// planInterleave names the only partition rule: global site index i
// lands in shard i%K at position i/K. Storing the rule instead of its
// expansion is what keeps the plan O(shards); the string is pinned at
// parse and verify time so a plan written under some future rule is
// rejected instead of silently re-derived under this one.
const planInterleave = "rank-mod-shards"

// Plan is the byte-stable partition manifest: the coordinates every
// worker and the merge agree on. Two calls to NewPlan with the same
// ecosystem and K marshal to identical bytes. The plan deliberately
// stores no site data — each shard's population is re-derived from
// (EcoSeed, Universe, Interleave) on demand via the lazy universe.
type Plan struct {
	Schema    int    `json:"schema"`
	EcoSeed   uint64 `json:"eco_seed"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Shards is K; Universe is the full ranked site count, including
	// any lazily generated tail.
	Shards   int `json:"shards"`
	Universe int `json:"universe"`
	// Interleave names the index-to-shard rule; only
	// "rank-mod-shards" exists.
	Interleave string `json:"interleave"`
}

// NewPlan partitions the ecosystem's ranked universe into shards
// rank-interleaved: global index i lands in shard i%K at position i/K,
// so every shard spans the full rank distribution (head-heavy sites
// are spread evenly, not concentrated in shard 0) and shard sizes
// differ by at most one.
func NewPlan(eco *webgen.Ecosystem, shards int) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: plan needs at least 1 shard, got %d", shards)
	}
	n := eco.Universe().Len()
	if n == 0 {
		return nil, fmt.Errorf("shard: ecosystem has no sites to partition")
	}
	p := &Plan{
		Schema:     PlanSchema,
		EcoSeed:    eco.Config.Seed,
		Shards:     shards,
		Universe:   n,
		Interleave: planInterleave,
	}
	if eco.Faults != nil {
		p.FaultSeed = eco.Faults.Seed()
	}
	return p, nil
}

// Size is the number of sites shard covers under the interleave:
// ceil((Universe - shard) / Shards), never negative.
func (p *Plan) Size(shard int) int {
	if shard < 0 || shard >= p.Shards || shard >= p.Universe {
		return 0
	}
	return (p.Universe - shard + p.Shards - 1) / p.Shards
}

// Indexes expands one shard's global site indexes in ascending (rank)
// order. The list is derived from the interleave rule on demand — the
// plan itself never stores it.
func (p *Plan) Indexes(shard int) []int {
	n := p.Size(shard)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := shard; i < p.Universe; i += p.Shards {
		out = append(out, i)
	}
	return out
}

// Sites materializes one shard's site population in rank order — the
// slice a caller crawls when it wants the whole shard in memory. It
// walks the ecosystem's lazy universe, so the cost is the shard's
// size, never the universe's.
func (p *Plan) Sites(eco *webgen.Ecosystem, shard int) ([]*site.Site, error) {
	if shard < 0 || shard >= p.Shards {
		return nil, fmt.Errorf("shard: plan has no shard %d (shards=%d)", shard, p.Shards)
	}
	u := eco.Universe()
	if u.Len() != p.Universe {
		return nil, fmt.Errorf("shard: plan universe %d, ecosystem has %d sites", p.Universe, u.Len())
	}
	out := make([]*site.Site, 0, p.Size(shard))
	for i := shard; i < p.Universe; i += p.Shards {
		out = append(out, u.At(i))
	}
	return out, nil
}

// Domains derives the domain list one shard covers, in rank order —
// the merge report uses it to name the exact sites a lost shard took
// down.
func (p *Plan) Domains(eco *webgen.Ecosystem, shard int) []string {
	u := eco.Universe()
	var domains []string
	for i := shard; i >= 0 && i < p.Universe && i < u.Len(); i += p.Shards {
		domains = append(domains, u.At(i).Domain)
	}
	return domains
}

// Verify checks the plan against an ecosystem: schema, run identity,
// universe size and interleave rule. A plan from a different seed — or
// a hand-edited one — fails here instead of producing a silently wrong
// merge. A legacy schema-1 plan (materialized assignment lists) gets a
// distinct error: its layout predates the lazy universe, so the remedy
// is re-planning in a fresh directory, never a silent upgrade.
func (p *Plan) Verify(eco *webgen.Ecosystem) error {
	if p.Schema == 1 {
		return fmt.Errorf("shard: legacy materialized-assignment plan (schema 1); re-plan the study in a fresh directory")
	}
	if p.Schema != PlanSchema {
		return fmt.Errorf("shard: plan schema %d, want %d", p.Schema, PlanSchema)
	}
	if p.EcoSeed != eco.Config.Seed {
		return fmt.Errorf("shard: plan eco seed %d, ecosystem has %d", p.EcoSeed, eco.Config.Seed)
	}
	var faultSeed uint64
	if eco.Faults != nil {
		faultSeed = eco.Faults.Seed()
	}
	if p.FaultSeed != faultSeed {
		return fmt.Errorf("shard: plan fault seed %d, ecosystem has %d", p.FaultSeed, faultSeed)
	}
	if n := eco.Universe().Len(); p.Universe != n {
		return fmt.Errorf("shard: plan universe %d, ecosystem has %d sites", p.Universe, n)
	}
	if p.Shards < 1 {
		return fmt.Errorf("shard: plan has %d shards", p.Shards)
	}
	if p.Interleave != planInterleave {
		return fmt.Errorf("shard: plan interleave %q, this binary speaks %q", p.Interleave, planInterleave)
	}
	return nil
}

// Marshal renders the plan as indented JSON. Struct field order makes
// the bytes stable: same ecosystem and K, same bytes.
func (p *Plan) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return nil, fmt.Errorf("shard: marshal plan: %w", err)
	}
	return append(data, '\n'), nil
}

// PlanPath is the plan manifest's location under a shard directory.
func PlanPath(dir string) string { return filepath.Join(dir, "plan.json") }

// WritePlan persists the plan atomically (temp + rename), so a reader
// never observes a torn manifest.
func WritePlan(dir string, p *Plan) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return atomicWrite(PlanPath(dir), data)
}

// ReadPlan loads and structurally validates a plan manifest. Exactly
// one of the results is nil.
func ReadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read plan: %w", err)
	}
	return parsePlan(data)
}

// parsePlan decodes plan bytes and checks internal consistency — the
// part of Verify that needs no ecosystem, so corrupt or truncated
// manifests are rejected at read time. This is the fuzz surface: any
// byte string must produce a coherent plan or a clean error.
func parsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("shard: parse plan: %w", err)
	}
	if p.Schema == 1 {
		return nil, fmt.Errorf("shard: legacy materialized-assignment plan (schema 1); re-plan the study in a fresh directory")
	}
	if p.Schema != PlanSchema {
		return nil, fmt.Errorf("shard: plan schema %d, want %d", p.Schema, PlanSchema)
	}
	if p.Shards < 1 {
		return nil, fmt.Errorf("shard: plan has %d shards", p.Shards)
	}
	if p.Universe < 1 {
		return nil, fmt.Errorf("shard: plan universe %d", p.Universe)
	}
	if p.Interleave != planInterleave {
		return nil, fmt.Errorf("shard: plan interleave %q, this binary speaks %q", p.Interleave, planInterleave)
	}
	return &p, nil
}

// atomicWrite writes data whole under a temp name and renames it into
// place: readers see the old file or the new one, never a prefix.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	return nil
}
