// Package shard is the sharded study runtime: a planner that
// deterministically partitions the ranked site list into K independent
// failure domains, a supervisor that runs each shard as an
// independently-checkpointed worker (in-process or re-execed) and
// restarts the ones that die or stall, and a verified merge that folds
// the per-shard outputs back into one study result.
//
// The design leans on two properties the rest of the repo already
// guarantees: fault injection is a pure function of (seed, host,
// attempt) with no cross-site state, and every accumulated aggregate is
// a set. Together they mean a site's crawl and detection output is
// byte-identical whether it ran in shard 3 of 8 or in an unsharded
// run — so merging per-site records back in global site order
// reproduces the unsharded study's leak bytes and tables exactly, for
// any K, with or without mid-run shard deaths.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"piileak/internal/site"
	"piileak/internal/webgen"
)

// PlanSchema versions the plan manifest layout.
const PlanSchema = 1

// Plan is the byte-stable partition manifest: which global site index
// landed in which shard, plus the run identity that makes a stale plan
// detectable. Two calls to NewPlan with the same ecosystem and K
// marshal to identical bytes.
type Plan struct {
	Schema    int    `json:"schema"`
	EcoSeed   uint64 `json:"eco_seed"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Shards is K; Universe is the full ranked site count.
	Shards   int `json:"shards"`
	Universe int `json:"universe"`
	// Assignments holds one entry per shard, in shard order.
	Assignments []Assignment `json:"assignments"`
}

// Assignment is one shard's slice of the universe: global site indexes
// in ascending (rank) order, with the domains alongside so a plan can
// be audited — and verified against an ecosystem — without re-deriving
// the partition.
type Assignment struct {
	Shard   int      `json:"shard"`
	Indexes []int    `json:"indexes"`
	Domains []string `json:"domains"`
}

// NewPlan partitions the ecosystem's ranked site list into shards
// rank-interleaved: global index i lands in shard i%K at position i/K,
// so every shard spans the full rank distribution (head-heavy sites
// are spread evenly, not concentrated in shard 0) and shard sizes
// differ by at most one.
func NewPlan(eco *webgen.Ecosystem, shards int) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: plan needs at least 1 shard, got %d", shards)
	}
	if len(eco.Sites) == 0 {
		return nil, fmt.Errorf("shard: ecosystem has no sites to partition")
	}
	p := &Plan{
		Schema:   PlanSchema,
		EcoSeed:  eco.Config.Seed,
		Shards:   shards,
		Universe: len(eco.Sites),
	}
	if eco.Faults != nil {
		p.FaultSeed = eco.Faults.Seed()
	}
	p.Assignments = make([]Assignment, shards)
	for s := 0; s < shards; s++ {
		p.Assignments[s].Shard = s
	}
	for i, st := range eco.Sites {
		a := &p.Assignments[i%shards]
		a.Indexes = append(a.Indexes, i)
		a.Domains = append(a.Domains, st.Domain)
	}
	return p, nil
}

// Sites resolves one shard's assignment back to the ecosystem's site
// pointers, in rank order — the slice a shard worker crawls.
func (p *Plan) Sites(eco *webgen.Ecosystem, shard int) ([]*site.Site, error) {
	if shard < 0 || shard >= len(p.Assignments) {
		return nil, fmt.Errorf("shard: plan has no shard %d (shards=%d)", shard, p.Shards)
	}
	a := p.Assignments[shard]
	out := make([]*site.Site, len(a.Indexes))
	for j, i := range a.Indexes {
		if i < 0 || i >= len(eco.Sites) {
			return nil, fmt.Errorf("shard: plan index %d out of the ecosystem's %d sites", i, len(eco.Sites))
		}
		out[j] = eco.Sites[i]
	}
	return out, nil
}

// Verify checks the plan against an ecosystem: run identity, universe
// size, and that every assignment holds exactly the interleaved
// indexes with matching domains. A plan from a different seed — or a
// hand-edited one — fails here instead of producing a silently wrong
// merge.
func (p *Plan) Verify(eco *webgen.Ecosystem) error {
	if p.Schema != PlanSchema {
		return fmt.Errorf("shard: plan schema %d, want %d", p.Schema, PlanSchema)
	}
	if p.EcoSeed != eco.Config.Seed {
		return fmt.Errorf("shard: plan eco seed %d, ecosystem has %d", p.EcoSeed, eco.Config.Seed)
	}
	var faultSeed uint64
	if eco.Faults != nil {
		faultSeed = eco.Faults.Seed()
	}
	if p.FaultSeed != faultSeed {
		return fmt.Errorf("shard: plan fault seed %d, ecosystem has %d", p.FaultSeed, faultSeed)
	}
	if p.Universe != len(eco.Sites) {
		return fmt.Errorf("shard: plan universe %d, ecosystem has %d sites", p.Universe, len(eco.Sites))
	}
	if p.Shards < 1 || len(p.Assignments) != p.Shards {
		return fmt.Errorf("shard: plan has %d assignments for %d shards", len(p.Assignments), p.Shards)
	}
	seen := 0
	for s, a := range p.Assignments {
		if a.Shard != s {
			return fmt.Errorf("shard: assignment %d labeled shard %d", s, a.Shard)
		}
		if len(a.Domains) != len(a.Indexes) {
			return fmt.Errorf("shard %d: %d domains for %d indexes", s, len(a.Domains), len(a.Indexes))
		}
		for j, i := range a.Indexes {
			if i < 0 || i >= len(eco.Sites) {
				return fmt.Errorf("shard %d: index %d out of range", s, i)
			}
			if i%p.Shards != s || i/p.Shards != j {
				return fmt.Errorf("shard %d: index %d at position %d breaks the interleave", s, i, j)
			}
			if eco.Sites[i].Domain != a.Domains[j] {
				return fmt.Errorf("shard %d: index %d is %s in the plan but %s in the ecosystem", s, i, a.Domains[j], eco.Sites[i].Domain)
			}
			seen++
		}
	}
	if seen != p.Universe {
		return fmt.Errorf("shard: plan assigns %d sites of %d", seen, p.Universe)
	}
	return nil
}

// Marshal renders the plan as indented JSON. Struct field order and
// in-order assignment slices make the bytes stable: same ecosystem and
// K, same bytes.
func (p *Plan) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return nil, fmt.Errorf("shard: marshal plan: %w", err)
	}
	return append(data, '\n'), nil
}

// PlanPath is the plan manifest's location under a shard directory.
func PlanPath(dir string) string { return filepath.Join(dir, "plan.json") }

// WritePlan persists the plan atomically (temp + rename), so a reader
// never observes a torn manifest.
func WritePlan(dir string, p *Plan) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return atomicWrite(PlanPath(dir), data)
}

// ReadPlan loads and structurally validates a plan manifest. Exactly
// one of the results is nil.
func ReadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read plan: %w", err)
	}
	return parsePlan(data)
}

// parsePlan decodes plan bytes and checks internal consistency — the
// part of Verify that needs no ecosystem, so corrupt or truncated
// manifests are rejected at read time.
func parsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("shard: parse plan: %w", err)
	}
	if p.Schema != PlanSchema {
		return nil, fmt.Errorf("shard: plan schema %d, want %d", p.Schema, PlanSchema)
	}
	if p.Shards < 1 || len(p.Assignments) != p.Shards {
		return nil, fmt.Errorf("shard: plan has %d assignments for %d shards", len(p.Assignments), p.Shards)
	}
	seen := 0
	for s, a := range p.Assignments {
		if a.Shard != s {
			return nil, fmt.Errorf("shard: assignment %d labeled shard %d", s, a.Shard)
		}
		if len(a.Domains) != len(a.Indexes) {
			return nil, fmt.Errorf("shard %d: %d domains for %d indexes", s, len(a.Domains), len(a.Indexes))
		}
		for j, i := range a.Indexes {
			if i < 0 || i >= p.Universe || i%p.Shards != s || i/p.Shards != j {
				return nil, fmt.Errorf("shard %d: index %d at position %d breaks the interleave", s, i, j)
			}
			seen++
		}
	}
	if seen != p.Universe {
		return nil, fmt.Errorf("shard: plan assigns %d sites of %d", seen, p.Universe)
	}
	return &p, nil
}

// atomicWrite writes data whole under a temp name and renames it into
// place: readers see the old file or the new one, never a prefix.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	return nil
}
