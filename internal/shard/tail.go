package shard

import (
	"io"
	"strings"
	"sync"
)

// stderrTailLines is how many trailing stderr lines a re-execed
// worker's tailWriter retains for the missing-shard report.
const stderrTailLines = 20

// tailWriter tees writes through to dst (when non-nil) while retaining
// the last few complete lines, so a terminally-failed worker's report
// entry carries its dying words instead of only an exit status. Safe
// for the concurrent writes an exec pipe performs.
type tailWriter struct {
	mu      sync.Mutex
	dst     io.Writer
	max     int
	lines   []string
	partial strings.Builder
}

// newTailWriter wraps dst (nil = capture only) keeping max lines.
func newTailWriter(dst io.Writer, max int) *tailWriter {
	if max < 1 {
		max = 1
	}
	return &tailWriter{dst: dst, max: max}
}

// Write implements io.Writer. The pass-through write happens first so a
// capture bug can never eat worker output; line accounting errors are
// impossible (the ring just rolls).
func (t *tailWriter) Write(p []byte) (int, error) {
	n, err := len(p), error(nil)
	if t.dst != nil {
		n, err = t.dst.Write(p)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range p {
		if b == '\n' {
			t.lines = append(t.lines, t.partial.String())
			t.partial.Reset()
			if len(t.lines) > t.max {
				t.lines = t.lines[1:]
			}
			continue
		}
		t.partial.WriteByte(b)
	}
	return n, err
}

// Tail returns the retained lines, including a trailing unterminated
// line (a crash rarely ends in a newline).
func (t *tailWriter) Tail() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]string(nil), t.lines...)
	if t.partial.Len() > 0 {
		out = append(out, t.partial.String())
		if len(out) > t.max {
			out = out[1:]
		}
	}
	return out
}
