package shard

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"piileak/internal/crawler"
)

// fuzzResultBytes builds a small, fully-valid shard result file in
// memory — the fuzz corpus' honest seed, which the mutator then tears,
// truncates and corrupts.
func fuzzResultBytes(f *testing.F) []byte {
	f.Helper()
	recs := []SiteRecord{
		{Index: 0, Crawl: crawler.SiteCrawl{Domain: "a.example", Outcome: crawler.OutcomeSuccess}, Records: 3},
		{Index: 2, Crawl: crawler.SiteCrawl{Domain: "c.example", Outcome: crawler.OutcomeUnreachable}},
		{Index: 4, Crawl: crawler.SiteCrawl{Domain: "e.example", Outcome: crawler.OutcomeSuccess}, Records: 1},
	}
	m := Manifest{EcoSeed: 7, Browser: "Firefox 88.0", Shards: 2, Shard: 0, Universe: 5}
	path := filepath.Join(f.TempDir(), "seed.jsonl")
	if err := WriteResult(path, m, recs); err != nil {
		f.Fatal(err)
	}
	r, err := ReadResult(path)
	if err != nil {
		f.Fatalf("seed corpus does not verify: %v", err)
	}
	if len(r.Records) != len(recs) {
		f.Fatalf("seed corpus lost records: %d of %d", len(r.Records), len(recs))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzParseResult hardens the shard result reader: whatever bytes a
// crashed or malicious worker leaves behind, parseResult returns
// exactly one of (result, error) and never a partially-validated
// Result. Valid outputs must satisfy every manifest invariant.
func FuzzParseResult(f *testing.F) {
	good := fuzzResultBytes(f)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))
	f.Add(good[:len(good)/2])                   // torn tail mid-record
	f.Add(good[:bytes.IndexByte(good, '\n')/2]) // torn manifest line
	f.Add(bytes.Replace(good, []byte(`"digest":"`), []byte(`"digest":"00`), 1))
	if i := bytes.LastIndexByte(good[:len(good)-1], '\n'); i > 0 {
		f.Add(good[:i+1]) // last site line dropped, digest stale
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := parseResult("fuzz", data)
		if (res == nil) == (err == nil) {
			t.Fatalf("parseResult: res=%v err=%v — exactly one must be nil", res, err)
		}
		if res == nil {
			return
		}
		m := res.Manifest
		if m.Schema != ResultSchema || m.Shards < 1 || m.Shard < 0 || m.Shard >= m.Shards {
			t.Fatalf("accepted result with invalid manifest %+v", m)
		}
		if len(res.Records) != m.Sites {
			t.Fatalf("accepted %d records against manifest count %d", len(res.Records), m.Sites)
		}
		prev := -1
		for _, r := range res.Records {
			if r.Index <= prev || r.Index >= m.Universe || r.Index%m.Shards != m.Shard {
				t.Fatalf("accepted record index %d (prev %d, universe %d, shard %d/%d)",
					r.Index, prev, m.Universe, m.Shard, m.Shards)
			}
			prev = r.Index
		}
	})
}

// FuzzParsePlan hardens the plan reader the same way: arbitrary bytes
// yield exactly one of (plan, error), and any accepted plan is a
// structurally coherent schema-2 manifest — legacy schema-1 plans with
// materialized assignment lists must be rejected, never upgraded.
func FuzzParsePlan(f *testing.F) {
	p := &Plan{Schema: PlanSchema, EcoSeed: 7, Shards: 2, Universe: 5, Interleave: "rank-mod-shards"}
	good, err := p.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	if _, err := parsePlan(good); err != nil {
		f.Fatalf("seed corpus does not parse: %v", err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add(good[:len(good)/2]) // torn tail
	// A legacy schema-1 plan, complete with its materialized
	// assignments — must be a clean rejection.
	f.Add([]byte(`{"schema":1,"eco_seed":7,"shards":2,"universe":5,"assignments":[{"shard":0,"indexes":[0,2,4],"domains":["a.example","c.example","e.example"]},{"shard":1,"indexes":[1,3],"domains":["b.example","d.example"]}]}`))
	f.Add(bytes.Replace(good, []byte(`"shards": 2`), []byte(`"shards": 0`), 1))
	f.Add(bytes.Replace(good, []byte(`"universe": 5`), []byte(`"universe": 0`), 1))
	f.Add(bytes.Replace(good, []byte("rank-mod-shards"), []byte("round-robin"), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := parsePlan(data)
		if (p == nil) == (err == nil) {
			t.Fatalf("parsePlan: p=%v err=%v — exactly one must be nil", p, err)
		}
		if p == nil {
			return
		}
		if p.Schema != PlanSchema || p.Shards < 1 || p.Universe < 1 {
			t.Fatalf("accepted plan with invalid shape %+v", p)
		}
		if p.Interleave != planInterleave {
			t.Fatalf("accepted plan with interleave %q", p.Interleave)
		}
		total := 0
		for s := 0; s < p.Shards; s++ {
			ix := p.Indexes(s)
			if len(ix) != p.Size(s) {
				t.Fatalf("shard %d: %d indexes, Size says %d", s, len(ix), p.Size(s))
			}
			for j, i := range ix {
				if i != s+j*p.Shards || i >= p.Universe {
					t.Fatalf("broken interleave: shard %d pos %d index %d", s, j, i)
				}
			}
			total += len(ix)
		}
		if total != p.Universe {
			t.Fatalf("plan covers %d of %d sites", total, p.Universe)
		}
	})
}
