package shard

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"reflect"
	"testing"
	"time"

	"piileak/internal/crawler"
	"piileak/internal/obs"
	"piileak/internal/resilience"
)

// superviseOpts is the baseline test configuration: fresh directory,
// virtual clock (backoffs cost no wall time), observer attached.
func superviseOpts(dir string, shards int) Options {
	return Options{
		Shards: shards,
		Dir:    dir,
		Clock:  resilience.NewVirtualClock(),
		Obs:    obs.NewRun(nil),
		Fresh:  true,
	}
}

// withFailpoint installs a WorkerFailpoint for one test and restores
// the nil default afterwards.
func withFailpoint(t *testing.T, fp func(shard, attempt int) error) {
	t.Helper()
	WorkerFailpoint = fp
	t.Cleanup(func() { WorkerFailpoint = nil })
}

// TestSuperviseHealsDeadShards: a shard whose first attempts die is
// restarted with backoff and resumes from its checkpoint; the healed
// run's output is byte-identical to the unsharded one and the report
// records exactly how hard supervision fought.
func TestSuperviseHealsDeadShards(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	opts := superviseOpts(dir, 3)
	withFailpoint(t, func(shard, attempt int) error {
		if shard == 1 && attempt <= 2 {
			return fmt.Errorf("scripted death of shard %d attempt %d", shard, attempt)
		}
		return nil
	})

	res, report, err := Supervise(context.Background(), eco, profile, det, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial || len(report.Missing) != 0 {
		t.Fatalf("healed run reported partial: %+v", report)
	}
	if got := report.Attempts[1]; got != 3 {
		t.Errorf("shard 1 attempts = %d, want 3", got)
	}
	if got := report.Restarts[1]; got != 2 {
		t.Errorf("shard 1 restarts = %d, want 2", got)
	}
	for _, s := range []int{0, 2} {
		if got := report.Attempts[s]; got != 1 {
			t.Errorf("shard %d attempts = %d, want 1", s, got)
		}
		if _, ok := report.Restarts[s]; ok {
			t.Errorf("shard %d recorded restarts without dying", s)
		}
	}
	assertMatchesReference(t, res)

	// The report is also on disk, round-trippable, and identical.
	onDisk, err := ReadReport(ReportPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDisk, report) {
		t.Errorf("report.json diverges from the returned report:\n%+v\n%+v", onDisk, report)
	}

	// Supervision telemetry lands in the observer's manifest.
	m := opts.Obs.Manifest()
	if m.Sharding == nil {
		t.Fatal("observer manifest has no sharding section")
	}
	if m.Sharding.Completed != 3 || m.Sharding.Missing != 0 {
		t.Errorf("sharding manifest completed/missing = %d/%d, want 3/0", m.Sharding.Completed, m.Sharding.Missing)
	}
	if m.Sharding.Restarts != 2 {
		t.Errorf("sharding manifest restarts = %d, want 2", m.Sharding.Restarts)
	}
	if m.Sharding.MergedSites != int64(report.MergedSites) {
		t.Errorf("sharding manifest merged sites = %d, report says %d", m.Sharding.MergedSites, report.MergedSites)
	}
}

// TestSuperviseExhaustedShardGoesMissing: a shard that dies on every
// attempt exhausts its budget and degrades the run — the merge holds
// the survivors and the report names the lost shard, its attempt count,
// terminal error, and site population.
func TestSuperviseExhaustedShardGoesMissing(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	opts := superviseOpts(dir, 2)
	opts.MaxRestarts = 1
	withFailpoint(t, func(shard, attempt int) error {
		if shard == 1 {
			return errors.New("shard 1 is cursed")
		}
		return nil
	})

	res, report, err := Supervise(context.Background(), eco, profile, det, opts)
	if err != nil {
		t.Fatalf("exhaustion must degrade, not fail: %v", err)
	}
	if !report.Partial {
		t.Fatal("report not marked partial")
	}
	if len(report.Missing) != 1 || report.Missing[0].Shard != 1 {
		t.Fatalf("Missing = %+v, want shard 1", report.Missing)
	}
	m := report.Missing[0]
	if m.Attempts != 2 {
		t.Errorf("missing shard attempts = %d, want 2 (budget 1 restart)", m.Attempts)
	}
	if m.Error == "" {
		t.Error("missing shard carries no terminal error")
	}
	plan, err := ReadPlan(PlanPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Sites, plan.Domains(eco, 1)) {
		t.Error("missing shard's site list does not match the plan")
	}
	if report.MergedSites != plan.Size(0) {
		t.Errorf("merged %d sites, want shard 0's %d", report.MergedSites, plan.Size(0))
	}
	if len(res.Leaks) != report.Leaks {
		t.Errorf("result holds %d leaks, report says %d", len(res.Leaks), report.Leaks)
	}
	if ob := opts.Obs.Manifest().Sharding; ob == nil || ob.Missing != 1 || ob.Completed != 1 {
		t.Errorf("sharding manifest = %+v, want 1 completed / 1 missing", ob)
	}
}

// TestSuperviseResumesMidRunKill: a shard killed mid-run leaves a
// partial checkpoint; a resumed supervision continues from it and the
// final merge is still byte-identical to the unsharded run.
func TestSuperviseResumesMidRunKill(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	const shards = 3

	// Simulate the dead attempt: crawl the first half of shard 1's slice
	// into its checkpoint, exactly as a worker killed mid-run leaves it.
	plan, err := NewPlan(eco, shards)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := plan.Sites(eco, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crawler.CrawlOpts(context.Background(), eco, profile, crawler.Options{
		Sites:          sites[:len(sites)/2],
		CheckpointPath: CheckpointPath(dir, 1, shards),
		Shard:          1,
		Shards:         shards,
	}); err != nil {
		t.Fatal(err)
	}

	opts := superviseOpts(dir, shards)
	opts.Fresh = false // resume, do not clear the partial checkpoint
	res, report, err := Supervise(context.Background(), eco, profile, det, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial {
		t.Fatalf("resumed run partial: %+v", report)
	}
	assertMatchesReference(t, res)
}

// TestSuperviseReusesVerifiedResults: resuming a finished run re-runs
// nothing — every shard's verified result is reused, so a failpoint
// that would kill any new attempt never fires. Fresh mode clears that
// state and runs into it.
func TestSuperviseReusesVerifiedResults(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	first := superviseOpts(dir, 2)
	if _, report, err := Supervise(context.Background(), eco, profile, det, first); err != nil {
		t.Fatal(err)
	} else if report.Partial {
		t.Fatalf("setup run partial: %+v", report)
	}

	calls := 0
	withFailpoint(t, func(shard, attempt int) error {
		calls++
		return errors.New("no new attempts allowed")
	})

	resumed := superviseOpts(dir, 2)
	resumed.Fresh = false
	res, report, err := Supervise(context.Background(), eco, profile, det, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial {
		t.Fatalf("resume of a complete run partial: %+v", report)
	}
	if calls != 0 {
		t.Errorf("resume ran %d worker attempts over verified results, want 0", calls)
	}
	if got := report.Attempts[0] + report.Attempts[1]; got != 0 {
		t.Errorf("resume recorded %d attempts, want 0", got)
	}
	assertMatchesReference(t, res)

	fresh := superviseOpts(dir, 2)
	_, report, err = Supervise(context.Background(), eco, profile, det, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("fresh mode reused results instead of re-running")
	}
	if !report.Partial || len(report.Missing) != 2 {
		t.Errorf("fresh run under an always-kill failpoint = %+v, want both shards missing", report)
	}
}

// TestSuperviseRefusesForeignDir: a shard directory planned for a
// different study or split cannot be resumed into.
func TestSuperviseRefusesForeignDir(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	setup := superviseOpts(dir, 2)
	if _, _, err := Supervise(context.Background(), eco, profile, det, setup); err != nil {
		t.Fatal(err)
	}

	wrongK := superviseOpts(dir, 3)
	wrongK.Fresh = false
	if _, _, err := Supervise(context.Background(), eco, profile, det, wrongK); err == nil {
		t.Error("resumed a 2-way directory as a 3-way run")
	}

	other, err := NewPlan(eco, 2)
	if err != nil {
		t.Fatal(err)
	}
	other.EcoSeed++
	if err := WritePlan(dir, other); err != nil {
		t.Fatal(err)
	}
	foreign := superviseOpts(dir, 2)
	foreign.Fresh = false
	if _, _, err := Supervise(context.Background(), eco, profile, det, foreign); err == nil {
		t.Error("resumed a directory planned for a different study")
	}
}

// TestSuperviseOptionsValidate pins the contradictory-settings gate.
func TestSuperviseOptionsValidate(t *testing.T) {
	valid := Options{Shards: 2, Dir: "x"}
	if err := valid.Validate(); err != nil {
		t.Fatalf("minimal options rejected: %v", err)
	}
	for name, o := range map[string]Options{
		"zero shards": {Dir: "x"},
		"no dir":      {Shards: 2},
		"negative stall": {Shards: 2, Dir: "x", StallTimeout: -time.Second,
			Command: func(int) *exec.Cmd { return nil }},
		"stall without command": {Shards: 2, Dir: "x", StallTimeout: time.Second},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSuperviseCancellation: a cancelled context is a hard error — the
// run is unusable, not partial.
func TestSuperviseCancellation(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Supervise(ctx, eco, profile, det, superviseOpts(t.TempDir(), 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled supervision returned %v, want context.Canceled", err)
	}
}

// TestSuperviseStallWatchdog: in subprocess mode, a worker whose
// checkpoint stops growing is killed as a stall and restarted; with a
// restart budget of zero it ends up missing, with the stall on record.
// The watchdog polls on the injected virtual clock, so a generous
// timeout still fires instantly in wall time.
func TestSuperviseStallWatchdog(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	opts := superviseOpts(dir, 2)
	opts.MaxRestarts = -1 // never restart: one stalled attempt per shard
	opts.StallTimeout = 10 * time.Second
	opts.Command = func(shard int) *exec.Cmd {
		// A worker that runs forever and never touches its checkpoint.
		return exec.Command("sleep", "300")
	}

	_, report, err := Supervise(context.Background(), eco, profile, det, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Partial || len(report.Missing) != 2 {
		t.Fatalf("stalled run = %+v, want both shards missing", report)
	}
	for s := 0; s < 2; s++ {
		if got := report.Stalls[s]; got != 1 {
			t.Errorf("shard %d stalls = %d, want 1", s, got)
		}
		if report.Missing[s].Error == "" {
			t.Errorf("shard %d missing without a terminal error", s)
		}
	}
	if ob := opts.Obs.Manifest().Sharding; ob == nil || ob.Stalls != 2 {
		t.Errorf("sharding manifest = %+v, want 2 stalls", ob)
	}
}

// TestSuperviseMissingShardCarriesStderrTail: a re-execed worker that
// dies terminally leaves its last stderr lines in the report's
// missing-shard entry — the dying words an exit status alone loses.
func TestSuperviseMissingShardCarriesStderrTail(t *testing.T) {
	eco, profile, det, _ := fixture(t)
	dir := t.TempDir()
	opts := superviseOpts(dir, 2)
	opts.MaxRestarts = -1 // one attempt per shard: that attempt's tail is final
	opts.Command = func(shard int) *exec.Cmd {
		script := fmt.Sprintf("echo boot shard %d >&2; echo 'panic: synthetic crash' >&2; exit 3", shard)
		return exec.Command("sh", "-c", script)
	}

	_, report, err := Supervise(context.Background(), eco, profile, det, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Partial || len(report.Missing) != 2 {
		t.Fatalf("crashed run = %+v, want both shards missing", report)
	}
	for _, m := range report.Missing {
		want := []string{fmt.Sprintf("boot shard %d", m.Shard), "panic: synthetic crash"}
		if !reflect.DeepEqual(m.StderrTail, want) {
			t.Errorf("shard %d stderr tail = %q, want %q", m.Shard, m.StderrTail, want)
		}
	}

	// The tail survives the on-disk report round trip.
	onDisk, err := ReadReport(ReportPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDisk.Missing, report.Missing) {
		t.Errorf("persisted missing entries diverge:\n%+v\n%+v", onDisk.Missing, report.Missing)
	}
}

// TestReportRoundTrip: the report survives disk verbatim and a wrong
// schema is refused.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := &Report{
		Schema:      ReportSchema,
		Shards:      4,
		Completed:   []int{0, 2, 3},
		Missing:     []MissingShard{{Shard: 1, Attempts: 3, Error: "cursed", Sites: []string{"a.example"}}},
		Partial:     true,
		MergedSites: 33,
		Leaks:       7,
		Attempts:    map[int]int{0: 1, 1: 3, 2: 1, 3: 2},
		Restarts:    map[int]int{1: 2, 3: 1},
		Stalls:      map[int]int{3: 1},
	}
	if err := WriteReport(dir, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(ReportPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("report changed through the round trip:\n%+v\n%+v", got, r)
	}
	r.Schema = 9
	if err := WriteReport(dir, r); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(ReportPath(dir)); err == nil {
		t.Error("wrong-schema report accepted")
	}
}
