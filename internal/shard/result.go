package shard

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/httpmodel"
	"piileak/internal/mailbox"
)

// ResultSchema versions the shard result file layout.
const ResultSchema = 1

// SiteRecord is one site's complete pipeline output in serialized
// form: everything the merge needs to reconstruct the unsharded study's
// per-site state. Index is the site's GLOBAL index in the ranked list,
// not its position within the shard — the merge re-interleaves records
// by it.
type SiteRecord struct {
	Index   int                        `json:"index"`
	Crawl   crawler.SiteCrawl          `json:"crawl"`
	Mail    []mailbox.Message          `json:"mail,omitempty"`
	Blocked map[string]int             `json:"blocked,omitempty"`
	Records int                        `json:"records,omitempty"`
	Leaks   []core.Leak                `json:"leaks,omitempty"`
	Reqs    []httpmodel.IndexedRequest `json:"requests,omitempty"`
}

// Manifest is a shard result file's header line: the run identity that
// ties the file to its plan, the shard coordinates, summary counts, and
// the content digest the merge verifies before trusting a single byte
// of the site lines.
type Manifest struct {
	Schema    int    `json:"schema"`
	EcoSeed   uint64 `json:"eco_seed"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	Browser   string `json:"browser"`
	Shards    int    `json:"shards"`
	Shard     int    `json:"shard"`
	Universe  int    `json:"universe"`
	// Sites/Leaks/Records summarize the site lines below.
	Sites   int `json:"sites"`
	Leaks   int `json:"leaks"`
	Records int `json:"records"`
	// Digest is the hex SHA-256 of the site lines exactly as written
	// (every byte after the header line).
	Digest string `json:"digest"`
}

// Result is one shard's loaded output: the verified manifest plus the
// site records in ascending global-index order.
type Result struct {
	Manifest Manifest
	Records  []SiteRecord
}

// ResultPath is shard s-of-K's result file under a shard directory.
func ResultPath(dir string, shard, shards int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.jsonl", shard, shards))
}

// CheckpointPath is shard s-of-K's crawl checkpoint under a shard
// directory.
func CheckpointPath(dir string, shard, shards int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%d-of-%d", shard, shards))
}

// WriteResult serializes a shard's output: one manifest header line
// whose digest covers the site lines, then one JSON line per site.
// The whole file is written atomically (temp + rename), so a killed
// worker leaves either its previous complete result or none — never a
// torn one the merge could half-trust.
func WriteResult(path string, m Manifest, recs []SiteRecord) error {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("shard: encode site record: %w", err)
		}
	}
	m.Schema = ResultSchema
	m.Sites = len(recs)
	m.Leaks = 0
	m.Records = 0
	for i := range recs {
		m.Leaks += len(recs[i].Leaks)
		m.Records += recs[i].Records
	}
	sum := sha256.Sum256(body.Bytes())
	m.Digest = hex.EncodeToString(sum[:])

	var out bytes.Buffer
	hdr := json.NewEncoder(&out)
	if err := hdr.Encode(&m); err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	out.Write(body.Bytes())
	return atomicWrite(path, out.Bytes())
}

// ReadResult loads one shard result file, verifying the digest and the
// structural invariants before returning anything: the manifest parses,
// the digest over the site lines matches, the record count matches, the
// global indexes are strictly ascending and all map to this shard under
// the manifest's interleave. Exactly one of the results is nil — a
// corrupt, truncated or tampered file yields an error, never a partial
// Result.
func ReadResult(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read result: %w", err)
	}
	return parseResult(path, data)
}

// parseResult is ReadResult on bytes — the fuzz target.
func parseResult(path string, data []byte) (*Result, error) {
	head, body, found := bytes.Cut(data, []byte("\n"))
	if !found {
		return nil, fmt.Errorf("shard: result %s: no manifest line", path)
	}
	var m Manifest
	if err := json.Unmarshal(head, &m); err != nil {
		return nil, fmt.Errorf("shard: result %s: manifest: %w", path, err)
	}
	if m.Schema != ResultSchema {
		return nil, fmt.Errorf("shard: result %s: schema %d, want %d", path, m.Schema, ResultSchema)
	}
	if m.Shards < 1 || m.Shard < 0 || m.Shard >= m.Shards {
		return nil, fmt.Errorf("shard: result %s: shard %d of %d is not a valid coordinate", path, m.Shard, m.Shards)
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != m.Digest {
		return nil, fmt.Errorf("shard: result %s: content digest %s does not match manifest %s — refusing to merge", path, got, m.Digest)
	}

	recs := make([]SiteRecord, 0, m.Sites)
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		var r SiteRecord
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("shard: result %s: site record %d: %w", path, len(recs), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != m.Sites {
		return nil, fmt.Errorf("shard: result %s: %d site records, manifest says %d", path, len(recs), m.Sites)
	}
	leaks, records := 0, 0
	prev := -1
	for i := range recs {
		r := &recs[i]
		if r.Index < 0 || r.Index >= m.Universe {
			return nil, fmt.Errorf("shard: result %s: site index %d outside universe %d", path, r.Index, m.Universe)
		}
		if r.Index%m.Shards != m.Shard {
			return nil, fmt.Errorf("shard: result %s: site index %d belongs to shard %d, not %d", path, r.Index, r.Index%m.Shards, m.Shard)
		}
		if r.Index <= prev {
			return nil, fmt.Errorf("shard: result %s: site index %d out of order after %d", path, r.Index, prev)
		}
		prev = r.Index
		leaks += len(r.Leaks)
		records += r.Records
	}
	if leaks != m.Leaks {
		return nil, fmt.Errorf("shard: result %s: %d leaks, manifest says %d", path, leaks, m.Leaks)
	}
	if records != m.Records {
		return nil, fmt.Errorf("shard: result %s: %d records, manifest says %d", path, records, m.Records)
	}
	return &Result{Manifest: m, Records: recs}, nil
}
