package shard

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

func TestTailWriterKeepsLastLines(t *testing.T) {
	var dst bytes.Buffer
	w := newTailWriter(&dst, 3)
	for i := 1; i <= 5; i++ {
		fmt.Fprintf(w, "line %d\n", i)
	}
	if got, want := w.Tail(), []string{"line 3", "line 4", "line 5"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Tail() = %v, want %v", got, want)
	}
	// Pass-through is verbatim: capture never eats output.
	if dst.String() != "line 1\nline 2\nline 3\nline 4\nline 5\n" {
		t.Errorf("pass-through = %q", dst.String())
	}
}

func TestTailWriterKeepsUnterminatedPartial(t *testing.T) {
	w := newTailWriter(nil, 2)
	w.Write([]byte("ok line\npanic: blew "))
	w.Write([]byte("up mid-write"))
	if got, want := w.Tail(), []string{"ok line", "panic: blew up mid-write"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Tail() = %v, want %v", got, want)
	}
	// The partial counts against the cap: a long dying line still fits.
	w2 := newTailWriter(nil, 1)
	w2.Write([]byte("first\nsecond\ntrailing partial"))
	if got, want := w2.Tail(), []string{"trailing partial"}; !reflect.DeepEqual(got, want) {
		t.Errorf("capped Tail() = %v, want %v", got, want)
	}
}

func TestTailWriterSplitAcrossWrites(t *testing.T) {
	w := newTailWriter(nil, 4)
	for _, chunk := range []string{"ab", "c\nde", "f\n"} {
		w.Write([]byte(chunk))
	}
	if got, want := w.Tail(), []string{"abc", "def"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Tail() = %v, want %v", got, want)
	}
}
