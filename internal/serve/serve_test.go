package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"piileak"
	"piileak/internal/cliflags"
	"piileak/internal/resilience"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"small", Spec{Seed: 7, Small: true}, true},
		{"full knobs", Spec{Browser: "brave", Workers: 4, DetectWorkers: 2, Faults: 0.1, Retries: 3, SiteTimeout: "30s", Only: []string{"a.example"}}, true},
		{"faults over 1", Spec{Faults: 1.5}, false},
		{"negative workers", Spec{Workers: -1}, false},
		{"negative retries", Spec{Retries: -2}, false},
		{"unknown browser", Spec{Browser: "netscape"}, false},
		{"bad timeout", Spec{SiteTimeout: "soon"}, false},
		{"negative timeout", Spec{SiteTimeout: "-5s"}, false},
		{"empty only entry", Spec{Only: []string{"a.example", " "}}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Submit(Spec{Seed: uint64(i + 1), Small: true}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.MarkRunning("j1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MarkDone("j1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MarkRunning("j2"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MarkFailed("j2", "boom"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.TornRecords() != 0 || re.Recovered() != 0 {
		t.Fatalf("clean reopen reported torn=%d recovered=%d", re.TornRecords(), re.Recovered())
	}
	jobs := re.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(jobs))
	}
	wantStates := map[string]State{"j1": StateDone, "j2": StateFailed, "j3": StateQueued}
	for _, j := range jobs {
		if j.State != wantStates[j.ID] {
			t.Errorf("%s: state %s, want %s", j.ID, j.State, wantStates[j.ID])
		}
	}
	if j, _ := re.Get("j2"); j.Error != "boom" || j.Attempts != 1 {
		t.Errorf("j2 = %+v, want error boom, attempts 1", j)
	}
	if q := re.Queued(); len(q) != 1 || q[0].ID != "j3" {
		t.Errorf("Queued() = %v, want [j3]", q)
	}
	// A new submission continues the sequence instead of reusing IDs.
	j4, err := re.Submit(Spec{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID != "j4" {
		t.Errorf("post-reopen submit got ID %s, want j4", j4.ID)
	}
}

func TestStoreRecoversRunning(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(Spec{Small: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MarkRunning("j1"); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the process dying with the WAL mid-flight.
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", re.Recovered())
	}
	j, ok := re.Get("j1")
	if !ok || j.State != StateQueued || j.Resumes != 1 || j.Attempts != 1 {
		t.Fatalf("recovered job = %+v, want queued with resumes=1 attempts=1", j)
	}
}

func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(Spec{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill -9 mid-append: a torn, undecodable trailing line.
	f, err := os.OpenFile(StorePath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"state","id":"j1","state":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.TornRecords() != 1 {
		t.Fatalf("TornRecords() = %d, want 1", re.TornRecords())
	}
	if j, _ := re.Get("j1"); j.State != StateQueued {
		t.Fatalf("job after torn tail = %s, want queued (the torn transition must not apply)", j.State)
	}
	re.Close()

	// The open-time compaction rewrote the file; a further reopen is clean.
	again, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.TornRecords() != 0 {
		t.Fatalf("compacted store still reports %d torn records", again.TornRecords())
	}
}

func TestEventLogReplayAndOverflow(t *testing.T) {
	l := NewEventLog()
	for i := 0; i < 5; i++ {
		l.Publish("progress", map[string]int{"i": i})
	}
	replay, live, cancel := l.Subscribe(2)
	if len(replay) != 3 || replay[0].ID != 3 || replay[2].ID != 5 {
		t.Fatalf("Subscribe(2) replayed %v, want IDs 3..5", replay)
	}
	l.Publish("progress", map[string]int{"i": 5})
	select {
	case ev := <-live:
		if ev.ID != 6 {
			t.Fatalf("live event ID %d, want 6", ev.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("live event never arrived")
	}
	cancel()

	// A subscriber that never drains is disconnected, not buffered
	// without bound: its channel closes once the 64-slot buffer fills.
	_, slow, slowCancel := l.Subscribe(l.LastID())
	defer slowCancel()
	for i := 0; i < 70; i++ {
		l.Publish("progress", map[string]int{"i": i})
	}
	deadline := time.After(time.Second)
	closed := false
	for !closed {
		select {
		case _, open := <-slow:
			if !open {
				closed = true
			}
		case <-deadline:
			t.Fatal("overflowing subscriber was never disconnected")
		}
	}

	// The ring bounds replay: after eventRingCap more events only the
	// newest eventRingCap are retained.
	for i := 0; i < eventRingCap; i++ {
		l.Publish("progress", map[string]int{"i": i})
	}
	replay, _, cancel2 := l.Subscribe(0)
	cancel2()
	if len(replay) != eventRingCap {
		t.Fatalf("ring replayed %d events, want %d", len(replay), eventRingCap)
	}
	if last := replay[len(replay)-1].ID; last != l.LastID() {
		t.Fatalf("replay ends at ID %d, want %d", last, l.LastID())
	}

	l.Close()
	replayAfterClose, liveAfterClose, _ := l.Subscribe(0)
	if len(replayAfterClose) != eventRingCap {
		t.Fatalf("replay after close lost events: %d", len(replayAfterClose))
	}
	if _, open := <-liveAfterClose; open {
		t.Fatal("live channel open after Close")
	}
}

// postSpec submits a spec JSON through the handler surface.
func postSpec(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestAdmissionControl(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Slots: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	// Workers are deliberately not started: submissions stay queued, so
	// the admission bound is exercised without racing a study.
	for i := 0; i < 2; i++ {
		if w := postSpec(t, h, `{"seed":7,"small":true}`); w.Code != http.StatusCreated {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	w := postSpec(t, h, `{"seed":7,"small":true}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive whole-seconds hint", ra)
	}

	if w := postSpec(t, h, `{"seed":7,"faults":2}`); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d, want 400", w.Code)
	}
	if w := postSpec(t, h, `{"seed":7,"surprise":true}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", w.Code)
	}

	srv.Drain()
	w = postSpec(t, h, `{"seed":7}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	if w := postSpec(t, h, `{"seed":7,"small":true}`); w.Code != http.StatusCreated {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	req := httptest.NewRequest("POST", "/v1/jobs/j1/cancel", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", w.Code, w.Body.String())
	}
	var view JobView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.State != StateCancelled {
		t.Fatalf("cancelled job state = %s", view.State)
	}
	// Cancelling a terminal job conflicts.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/jobs/j1/cancel", nil))
	if w.Code != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", w.Code)
	}
	// Unknown jobs 404.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/j99", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", w.Code)
	}
	// Results for a non-done job conflict rather than 404.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/j1/leaks", nil))
	if w.Code != http.StatusConflict {
		t.Fatalf("leaks of cancelled job: %d, want 409", w.Code)
	}
}

func TestWatchdogFailsOverBudgetJob(t *testing.T) {
	srv, err := New(Config{
		Dir:        t.TempDir(),
		Slots:      1,
		JobTimeout: time.Millisecond,
		Clock:      resilience.NewVirtualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	if _, err := srv.Submit(Spec{Seed: 7, Small: true}); err != nil {
		t.Fatal(err)
	}
	// The virtual clock makes the watchdog fire instantly, so the job
	// must land failed with the budget in its error.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := srv.Store().Get("j1")
		if j != nil && j.State.Terminal() {
			if j.State != StateFailed || !strings.Contains(j.Error, "watchdog") {
				t.Fatalf("job = %s (%q), want watchdog failure", j.State, j.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never went terminal")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Drain()
	srv.Wait()
	srv.Close()
}

// runDirect executes spec through the library exactly as runJob does and
// returns the leak bytes and rendered tables — the byte-identity oracle.
func runDirect(t *testing.T, spec Spec) (leaks []byte, tables map[string]string) {
	t.Helper()
	study, err := piileak.NewStudy(spec.StudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	profile, err := cliflags.ResolveBrowser("firefox", study.Eco)
	if err != nil {
		t.Fatal(err)
	}
	study.Config.Browser = profile
	if err := study.Run(context.Background(), piileak.WithStream()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteLeaksJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tables = map[string]string{}
	for n, render := range map[string]func() (string, error){
		"1": study.Table1, "2": study.Table2, "4": study.Table4,
	} {
		text, err := render()
		if err != nil {
			t.Fatal(err)
		}
		tables[n] = text
	}
	return buf.Bytes(), tables
}

// TestServeEndToEndByteIdentity pins the tentpole contract across the
// API boundary in-process: a job submitted over HTTP yields leak bytes
// and tables byte-identical to the same spec run directly through the
// library, with the SSE stream replayable from any Last-Event-ID.
func TestServeEndToEndByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small study")
	}
	spec := Spec{Seed: 7, Small: true}
	wantLeaks, wantTables := runDirect(t, spec)

	srv, err := New(Config{Dir: t.TempDir(), Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || view.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, view)
	}

	// Follow the JSONL progress stream to completion; it must carry
	// progress ticks and end with the terminal "done" event.
	events := streamEvents(t, ts.URL+"/v1/jobs/"+view.ID+"/events?format=jsonl")
	if len(events) == 0 || events[len(events)-1].Kind != "done" {
		t.Fatalf("stream ended without a done event (%d events)", len(events))
	}
	sawProgress := false
	for i, ev := range events {
		if ev.ID != int64(i+1) {
			t.Fatalf("event %d has ID %d, want contiguous IDs from 1", i, ev.ID)
		}
		if ev.Kind == "progress" {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatal("stream carried no progress events")
	}

	// Reconnect with Last-Event-ID mid-stream: replay resumes exactly
	// after the acknowledged event.
	mid := events[len(events)/2].ID
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+view.ID+"/events?format=jsonl", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(mid))
	replayed := streamEventsReq(t, req)
	if len(replayed) != len(events)-int(mid) {
		t.Fatalf("Last-Event-ID=%d replayed %d events, want %d", mid, len(replayed), len(events)-int(mid))
	}
	if replayed[0].ID != mid+1 {
		t.Fatalf("replay starts at ID %d, want %d", replayed[0].ID, mid+1)
	}

	// The SSE default format frames the same events.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/jobs/"+view.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(events[len(events)-1].ID-1))
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sse, err := readAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sse, "event: done\n") || !strings.Contains(sse, "id: ") {
		t.Fatalf("SSE framing missing id/event lines:\n%s", sse)
	}

	get := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if got := get("/v1/jobs/" + view.ID + "/leaks"); !bytes.Equal(got, wantLeaks) {
		t.Errorf("served leaks differ from the direct run (%d vs %d bytes)", len(got), len(wantLeaks))
	}
	for n, want := range wantTables {
		if got := string(get("/v1/jobs/" + view.ID + "/tables/" + n)); got != want {
			t.Errorf("served table %s differs from the direct render", n)
		}
	}
	var metrics struct {
		EngineCache map[string]uint64 `json:"engine_cache"`
	}
	if err := json.Unmarshal(get("/metrics"), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.EngineCache == nil {
		t.Error("/metrics misses engine_cache")
	}
	if len(get("/v1/jobs/"+view.ID+"/metrics")) == 0 {
		t.Error("job metrics empty")
	}

	srv.Drain()
	srv.Wait()
	srv.Close()
}

// TestServeDrainRequeuesAndResumes pins the graceful-drain contract
// in-process: draining mid-study re-queues the job durably, and a new
// server over the same state directory completes it to byte-identical
// results.
func TestServeDrainRequeuesAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small study")
	}
	spec := Spec{Seed: 7, Small: true}
	wantLeaks, _ := runDirect(t, spec)
	dir := t.TempDir()

	srv, err := New(Config{Dir: dir, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	if _, err := srv.Submit(spec); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to own the job, then drain mid-study. The
	// study may finish first on a fast machine; both arms below hold.
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if j, _ := srv.Store().Get("j1"); j != nil && j.State != StateQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	srv.Drain()
	srv.Wait()
	j, _ := srv.Store().Get("j1")
	switch j.State {
	case StateQueued:
		if j.Resumes != 1 {
			t.Fatalf("drained job resumes = %d, want 1", j.Resumes)
		}
	case StateDone:
		t.Log("study completed before the drain; resume covers the full checkpoint")
	default:
		t.Fatalf("post-drain state = %s, want queued or done", j.State)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same state: the queued job re-enqueues and its
	// next attempt resumes from the checkpoint.
	srv2, err := New(Config{Dir: dir, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start(ctx)
	for deadline := time.Now().Add(60 * time.Second); ; {
		j, _ := srv2.Store().Get("j1")
		if j != nil && j.State.Terminal() {
			if j.State != StateDone {
				t.Fatalf("resumed job ended %s (%s)", j.State, j.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := os.ReadFile(filepath.Join(srv2.Store().JobDir("j1"), FileLeaks))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantLeaks) {
		t.Errorf("resumed leaks differ from the direct run (%d vs %d bytes)", len(got), len(wantLeaks))
	}
	srv2.Drain()
	srv2.Wait()
	srv2.Close()
}

// streamEvents reads a JSONL event stream to EOF.
func streamEvents(t *testing.T, url string) []Event {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return streamEventsReq(t, req)
}

func streamEventsReq(t *testing.T, req *http.Request) []Event {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", req.URL, resp.StatusCode)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func readAll(r interface{ Read([]byte) (int, error) }) (string, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.String(), err
}
