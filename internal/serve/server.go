package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"piileak/internal/obs"
	"piileak/internal/resilience"
)

// Config shapes a Server. Zero fields take the documented defaults.
type Config struct {
	// Dir is the state directory: the job WAL plus one working
	// directory per job (checkpoint, results).
	Dir string
	// Slots is the number of concurrent study slots (default 2). Each
	// running job owns one slot; everything else waits in the queue.
	Slots int
	// QueueDepth bounds the admitted-but-not-running backlog (default
	// 16). Submissions beyond it are refused with 429 + Retry-After —
	// the server sheds load instead of growing an unbounded queue.
	QueueDepth int
	// JobTimeout is the per-job watchdog budget on the server's clock
	// (0 = none). A job over budget is cancelled and marked failed; its
	// checkpoint stays valid for manual resubmission diagnosis.
	JobTimeout time.Duration
	// RetryAfter is the Retry-After hint served before any job has
	// completed (default 5s); after that the hint tracks an EWMA of
	// observed job durations scaled by the backlog.
	RetryAfter time.Duration
	// Clock injects time for the watchdog and the Retry-After estimate
	// (default the wall clock).
	Clock resilience.Clock
}

// ErrDraining refuses submissions while the server drains.
var ErrDraining = errors.New("serve: draining: not admitting jobs")

// SaturatedError refuses a submission because the queue is full; the
// embedded hint becomes the 429 response's Retry-After.
type SaturatedError struct {
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: queue full, retry after %v", e.RetryAfter)
}

// running is the in-memory handle on an executing job: the cancel that
// stops it between sites, plus the flags that disambiguate why the run
// context died (user cancel vs watchdog vs drain).
type running struct {
	cancel     context.CancelFunc
	userCancel bool
	timedOut   bool
}

// Server is the study service: a durable job store, a bounded worker
// pool, and the admission/drain state machine around them. Create with
// New, start workers with Start, wire the HTTP surface with Handler.
type Server struct {
	cfg   Config
	store *Store
	clock resilience.Clock
	// run is the server's own telemetry (admission and lifecycle
	// counters); per-job observers are separate and export per job.
	run *obs.Run

	stopWorkers context.CancelFunc
	wg          sync.WaitGroup

	mu       sync.Mutex
	queue    []string // queued job IDs, FIFO
	wake     chan struct{}
	draining bool
	running  map[string]*running
	events   map[string]*EventLog
	ewma     *resilience.EWMA
	started  bool
}

// New opens the job store under cfg.Dir and builds the server. Crash
// recovery happens here: the WAL replays, interrupted jobs re-enter the
// queue, and the recovery counters land in the server's metrics.
func New(cfg Config) (*Server, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.RealClock{}
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		clock:   cfg.Clock,
		run:     obs.NewRun(nil),
		wake:    make(chan struct{}, cfg.Slots),
		running: map[string]*running{},
		events:  map[string]*EventLog{},
		ewma:    resilience.NewEWMA(0.3),
	}
	s.run.Count(obs.MetricServeRecovered, int64(store.Recovered()))
	s.run.Count(obs.MetricServeTorn, int64(store.TornRecords()))
	return s, nil
}

// Start re-enqueues every queued job from the recovered store (they
// were admitted before the restart, so the queue-depth cap does not
// apply) and spawns the worker pool under ctx. Cancelling ctx stops the
// workers; Drain is the graceful path.
func (s *Server) Start(ctx context.Context) {
	wctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		cancel()
		return
	}
	s.started = true
	s.stopWorkers = cancel
	for _, j := range s.store.Queued() {
		s.queue = append(s.queue, j.ID)
	}
	s.mu.Unlock()
	for i := 0; i < s.cfg.Slots; i++ {
		s.wg.Add(1)
		go s.worker(wctx)
	}
}

// Submit admits one job: validated spec, durable WAL line, queue slot.
// It fails with ErrDraining during drain and *SaturatedError when the
// backlog is full.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		s.run.CountKind(obs.MetricServeRejected, "invalid", 1)
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.run.CountKind(obs.MetricServeRejected, "draining", 1)
		return nil, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		ra := s.retryAfterLocked()
		s.mu.Unlock()
		s.run.CountKind(obs.MetricServeRejected, "saturated", 1)
		return nil, &SaturatedError{RetryAfter: ra}
	}
	job, err := s.store.Submit(spec)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.queue = append(s.queue, job.ID)
	s.mu.Unlock()
	s.run.Count(obs.MetricServeSubmitted, 1)
	s.wakeOne()
	return job, nil
}

// RetryAfter returns the current load-shedding hint.
func (s *Server) RetryAfter() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked()
}

// retryAfterLocked estimates when a queue slot frees: the job-duration
// EWMA scaled by how deep the backlog is relative to the slot count,
// floored at one second. Before any completion it falls back to the
// configured hint.
func (s *Server) retryAfterLocked() time.Duration {
	est, ok := s.ewma.Value()
	if !ok || est <= 0 {
		return s.cfg.RetryAfter
	}
	wait := time.Duration(float64(est) * float64(len(s.queue)+1) / float64(s.cfg.Slots))
	if wait < time.Second {
		wait = time.Second
	}
	return wait
}

// Cancel ends a job. Queued jobs leave the queue and go terminal
// directly; running jobs are cancelled between sites and the worker
// records the terminal state. Cancelling a terminal job is an error.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	job, ok := s.store.Get(id)
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: no job %s", id)
	}
	if job.State.Terminal() {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: job %s is already %s", id, job.State)
	}
	if r, isRunning := s.running[id]; isRunning {
		r.userCancel = true
		r.cancel()
		s.mu.Unlock()
		// The worker observes the cancel between sites and marks the
		// terminal state; report the job as-is (still running here).
		return job, nil
	}
	for i, qid := range s.queue {
		if qid == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	job, err := s.store.MarkCancelled(id)
	if err != nil {
		return nil, err
	}
	s.run.CountKind(obs.MetricServeFinished, string(StateCancelled), 1)
	lg := s.log(id)
	lg.Publish("done", job.View())
	lg.Close()
	return job, nil
}

// Drain is the graceful-shutdown entry: stop admitting, cancel every
// running job (each checkpoints and re-queues durably), and stop the
// workers. After Wait returns, every non-terminal job is back in the
// WAL as queued with a valid checkpoint — a restarted server picks all
// of it up.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	var cancels []context.CancelFunc
	for _, r := range s.running {
		cancels = append(cancels, r.cancel) //lint:allow maporder cancellation is commutative; order cannot matter
	}
	stop := s.stopWorkers
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	if stop != nil {
		stop()
	}
}

// Wait blocks until every worker has exited (after Drain or ctx
// cancellation).
func (s *Server) Wait() { s.wg.Wait() }

// Close releases the job store. Call after Wait.
func (s *Server) Close() error { return s.store.Close() }

// Store exposes the job table to handlers and tests.
func (s *Server) Store() *Store { return s.store }

// Obs is the server's own metrics run (admission/lifecycle counters).
func (s *Server) Obs() *obs.Run { return s.run }

// Draining reports whether drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// log returns (creating on first use) a job's event log.
func (s *Server) log(id string) *EventLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg, ok := s.events[id]
	if !ok {
		lg = NewEventLog()
		s.events[id] = lg
	}
	return lg
}

// wakeOne nudges an idle worker; a full wake buffer means every worker
// already has a pending wakeup.
func (s *Server) wakeOne() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// worker pulls queued jobs until the pool context ends. Workers
// re-check the queue after every job, so dropped wake tokens never
// strand work.
func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		id, ok := s.next(ctx)
		if !ok {
			return
		}
		s.execute(ctx, id)
	}
}

// next blocks until a job is available or the pool stops.
func (s *Server) next(ctx context.Context) (string, bool) {
	for {
		s.mu.Lock()
		if !s.draining && len(s.queue) > 0 {
			id := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			return id, true
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return "", false
		case <-s.wake:
		}
	}
}

// execute owns one job attempt end to end: durable running mark,
// watchdog, the study itself, and the terminal (or requeue) transition.
func (s *Server) execute(ctx context.Context, id string) {
	job, err := s.store.MarkRunning(id)
	if err != nil {
		s.logf("job %s: %v", id, err)
		return
	}
	lg := s.log(id)
	lg.Publish("state", job.View())

	start := s.clock.Now()
	jctx, cancel := context.WithCancel(ctx)
	r := &running{cancel: cancel}
	s.mu.Lock()
	s.running[id] = r
	s.mu.Unlock()
	if budget := s.cfg.JobTimeout; budget > 0 {
		// The watchdog dies with jctx: execute always cancels on the way
		// out, so the goroutine cannot outlive the attempt.
		go func() {
			if resilience.SleepContext(jctx, s.clock, budget) == nil {
				s.mu.Lock()
				r.timedOut = true
				s.mu.Unlock()
				s.run.Count(obs.MetricServeWatchdog, 1)
				cancel()
			}
		}()
	}

	runErr := s.runJob(jctx, job, lg)
	cancel()
	s.mu.Lock()
	delete(s.running, id)
	userCancel, timedOut := r.userCancel, r.timedOut
	s.mu.Unlock()

	switch {
	case runErr == nil:
		s.ewma.Record(s.clock.Now().Sub(start))
		job, err = s.store.MarkDone(id)
		s.run.CountKind(obs.MetricServeFinished, string(StateDone), 1)
	case errors.Is(runErr, context.Canceled) && userCancel:
		job, err = s.store.MarkCancelled(id)
		s.run.CountKind(obs.MetricServeFinished, string(StateCancelled), 1)
	case errors.Is(runErr, context.Canceled) && timedOut:
		job, err = s.store.MarkFailed(id, fmt.Sprintf("watchdog: job exceeded the %v budget", s.cfg.JobTimeout))
		s.run.CountKind(obs.MetricServeFinished, string(StateFailed), 1)
	case errors.Is(runErr, context.Canceled):
		// Drain (or pool shutdown): the checkpoint is a valid prefix, so
		// the job goes durably back to queued and the event stream stays
		// open for the resumed attempt.
		job, err = s.store.Requeue(id)
		s.run.Count(obs.MetricServeRequeued, 1)
		if err != nil {
			s.logf("job %s: requeue: %v", id, err)
			return
		}
		lg.Publish("state", job.View())
		return
	default:
		job, err = s.store.MarkFailed(id, runErr.Error())
		s.run.CountKind(obs.MetricServeFinished, string(StateFailed), 1)
	}
	if err != nil {
		s.logf("job %s: record terminal state: %v", id, err)
		return
	}
	lg.Publish("done", job.View())
	lg.Close()
}

// logf reports server-side conditions on stderr. Messages carry job IDs
// and infrastructure errors, never persona PII.
func (s *Server) logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "piiserve: "+format+"\n", args...)
}
