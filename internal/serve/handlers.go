package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"piileak/internal/detect"
)

// maxSpecBytes bounds a submission body; specs are small JSON
// documents, and an unbounded read is an admission-control hole.
const maxSpecBytes = 1 << 20

// Handler wires the service API:
//
//	POST /v1/jobs                submit a Spec; 201, 400, 429 (+Retry-After), 503
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           one job's status
//	POST /v1/jobs/{id}/cancel    cancel a queued or running job
//	GET  /v1/jobs/{id}/events    SSE progress stream (Last-Event-ID resume;
//	                             ?format=jsonl for JSON lines)
//	GET  /v1/jobs/{id}/leaks     the leak dataset (piicrawl-identical bytes)
//	GET  /v1/jobs/{id}/tables/{n} table n ∈ {1,2,4} as text
//	GET  /v1/jobs/{id}/metrics   the job's deterministic metrics JSON
//	GET  /healthz                liveness + drain state
//	GET  /metrics                server counters + engine build cache stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/leaks", s.handleLeaks)
	mux.HandleFunc("GET /v1/jobs/{id}/tables/{n}", s.handleTable)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON renders one API response document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// apiError is the JSON error body every failure path returns. Error
// text names specs, states and infrastructure failures — handlers never
// echo persona PII (piilint's piilog analyzer watches these sinks).
func apiError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		apiError(w, http.StatusBadRequest, "bad spec: "+err.Error())
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		var sat *SaturatedError
		switch {
		case errors.As(err, &sat):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(sat.RetryAfter)))
			apiError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			apiError(w, http.StatusServiceUnavailable, err.Error())
		default:
			apiError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, job.View())
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1 — zero would invite an immediate retry storm).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, views)
}

// jobFor resolves the path's job or writes the 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.store.Get(id)
	if !ok {
		apiError(w, http.StatusNotFound, "no job "+id)
		return nil, false
	}
	return job, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	job, err := s.Cancel(job.ID)
	if err != nil {
		apiError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// resultFile serves one finished job's result file; earlier states are
// a 409 so a polling client can distinguish "not done yet" from "gone".
func (s *Server) resultFile(w http.ResponseWriter, r *http.Request, name, contentType string) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if job.State != StateDone {
		apiError(w, http.StatusConflict, fmt.Sprintf("job %s is %s, results exist only for done jobs", job.ID, job.State))
		return
	}
	data, err := os.ReadFile(filepath.Join(s.store.JobDir(job.ID), name))
	if err != nil {
		apiError(w, http.StatusInternalServerError, "result file: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(data) //nolint:errcheck // client disconnects are not server errors
}

func (s *Server) handleLeaks(w http.ResponseWriter, r *http.Request) {
	s.resultFile(w, r, FileLeaks, "application/json")
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	s.resultFile(w, r, FileMetrics, "application/json")
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	switch r.PathValue("n") {
	case "1":
		s.resultFile(w, r, FileTable1, "text/plain; charset=utf-8")
	case "2":
		s.resultFile(w, r, FileTable2, "text/plain; charset=utf-8")
	case "4":
		s.resultFile(w, r, FileTable4, "text/plain; charset=utf-8")
	default:
		apiError(w, http.StatusNotFound, "tables 1, 2 and 4 are served; see the paper")
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": s.Draining(),
	})
}

// handleMetrics exports the server's own counters plus the process-wide
// engine build cache's hit/miss counts — the multi-tenant sharing
// signal: two jobs with the same persona/config show one miss and one
// hit here.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := detect.CacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"engine_cache": map[string]uint64{"hits": hits, "misses": misses},
		"server":       s.run.Snapshot(),
	})
}

// handleEvents streams a job's progress. SSE by default; ?format=jsonl
// switches to one Event JSON document per line. Replay starts after the
// Last-Event-ID header (or ?after=N); the stream ends when the job
// reaches a terminal state in this process, the client disconnects, or
// the subscriber falls too far behind (reconnect with Last-Event-ID to
// resume — crash-only applies to streams too).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"

	flusher, canFlush := w.(http.Flusher)
	if jsonl {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	}
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := s.log(job.ID).Subscribe(after)
	defer cancel()
	emit := func(ev Event) bool {
		var err error
		if jsonl {
			var line []byte
			line, err = json.Marshal(ev)
			if err == nil {
				_, err = w.Write(append(line, '\n'))
			}
		} else {
			_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Kind, ev.Data)
		}
		if err != nil {
			return false
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-live:
			if !open {
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}
