package serve

import (
	"encoding/json"
	"sync"
)

// EventLog is a job's in-memory progress history: a bounded ring of
// sequenced events that late subscribers replay from any point. It is
// the live half of the progress surface — the WAL persists state, not
// telemetry, so the log is rebuilt empty on restart and a resumed job's
// stream starts over from its resume point. Subscribers that cannot
// keep up are disconnected rather than buffered without bound (they
// reconnect with Last-Event-ID and replay what the ring still holds),
// keeping the server's memory bounded no matter how slow a client is.

// eventRingCap bounds how many events a job retains for replay. A
// -small study emits a few hundred progress events, so the default ring
// holds a complete history; larger studies degrade to "replay the
// recent window", which SSE reconnection semantics tolerate.
const eventRingCap = 1024

// Event is one sequenced progress record. IDs start at 1 and increase
// by 1 per event within a job's lifetime in this process.
type Event struct {
	// ID is the per-job sequence number (the SSE id: field).
	ID int64 `json:"id"`
	// Kind names the payload shape: "state" (JobView), "progress"
	// (pipeline stage progress), or "done" (terminal JobView).
	Kind string `json:"kind"`
	// Data is the marshaled payload.
	Data json.RawMessage `json:"data"`
}

// subscriber is one attached stream: a buffered delivery channel plus
// the overflow flag that records a forced disconnect.
type subscriber struct {
	ch      chan Event
	dropped bool
}

// EventLog is safe for concurrent publish/subscribe.
type EventLog struct {
	mu     sync.Mutex
	ring   []Event // at most eventRingCap, oldest first
	nextID int64
	subs   map[*subscriber]struct{}
	closed bool
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog {
	return &EventLog{nextID: 1, subs: map[*subscriber]struct{}{}}
}

// Publish appends one event, assigning its ID, and fans it out. A
// subscriber whose buffer is full is disconnected (its channel closed)
// instead of blocking the publisher — the client reconnects with
// Last-Event-ID. Publishing to a closed log is a no-op.
func (l *EventLog) Publish(kind string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are our own structs; a marshal failure is a
		// programming error, and dropping the event beats wedging the
		// run loop.
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev := Event{ID: l.nextID, Kind: kind, Data: data}
	l.nextID++
	l.ring = append(l.ring, ev)
	if len(l.ring) > eventRingCap {
		l.ring = l.ring[len(l.ring)-eventRingCap:]
	}
	for sub := range l.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped = true
			close(sub.ch)
			delete(l.subs, sub)
		}
	}
}

// Subscribe returns the retained events after afterID (the client's
// Last-Event-ID; 0 replays everything the ring holds) and a live
// channel for subsequent events. The channel is closed when the log
// closes or the subscriber falls too far behind; cancel detaches it.
func (l *EventLog) Subscribe(afterID int64) (replay []Event, live <-chan Event, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.ring {
		if ev.ID > afterID {
			replay = append(replay, ev)
		}
	}
	sub := &subscriber{ch: make(chan Event, 64)}
	if l.closed {
		close(sub.ch)
		return replay, sub.ch, func() {}
	}
	l.subs[sub] = struct{}{}
	cancel = func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[sub]; ok {
			delete(l.subs, sub)
			close(sub.ch)
		}
	}
	return replay, sub.ch, cancel
}

// Close ends the stream: live channels close, replay keeps working.
// Idempotent.
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for sub := range l.subs {
		close(sub.ch)
		delete(l.subs, sub)
	}
}

// LastID returns the most recently assigned event ID (0 if none).
func (l *EventLog) LastID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID - 1
}
