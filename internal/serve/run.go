package serve

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"piileak"
	"piileak/internal/cliflags"
	"piileak/internal/crawler"
	"piileak/internal/obs"
	"piileak/internal/resilience"
)

// Result file names under a job's working directory. leaks.json carries
// exactly the bytes `piicrawl -stream` would write for the same spec
// (same encoder, same indent); the table files carry the paper's text
// tables as the Study renders them.
const (
	FileCheckpoint = "checkpoint.jsonl"
	FileLeaks      = "leaks.json"
	FileTable1     = "table1.txt"
	FileTable2     = "table2.txt"
	FileTable4     = "table4.txt"
	FileMetrics    = "metrics.json"
)

// Progress is the SSE "progress" payload: one pipeline tick.
type Progress struct {
	Stage   string `json:"stage"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Site    string `json:"site,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Leaks   int    `json:"leaks,omitempty"`
}

// Resume is the SSE "resume" payload: what the job's checkpoint
// contributed to this attempt.
type Resume struct {
	Completed   int `json:"completed"`
	TornRecords int `json:"torn_records"`
}

// runJob executes one study attempt for job and, on success, writes the
// job's result files. Every attempt runs checkpointed with resume on:
// a fresh job simply finds no checkpoint, and a recovered or drained
// job continues from the sites its previous attempt completed — the
// crawl checkpoint's torn-tail tolerance makes the two cases one code
// path with byte-identical output.
func (s *Server) runJob(ctx context.Context, job *Job, lg *EventLog) error {
	spec := job.Spec
	study, err := piileak.NewStudy(spec.StudyConfig())
	if err != nil {
		return err
	}
	browserName := spec.Browser
	if browserName == "" {
		browserName = "firefox"
	}
	profile, err := cliflags.ResolveBrowser(browserName, study.Eco)
	if err != nil {
		return err
	}
	study.Config.Browser = profile

	jobDir := s.store.JobDir(job.ID)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}

	// Per-job observer: deterministic metrics for the job's
	// metrics.json, independent of the server's own counters.
	jobRun := obs.NewRun(nil)
	opts := []piileak.RunOption{
		piileak.WithStream(),
		piileak.WithCheckpoint(filepath.Join(jobDir, FileCheckpoint)),
		piileak.WithResume(func(rs crawler.ResumeSummary) {
			lg.Publish("resume", Resume{Completed: rs.Completed, TornRecords: rs.TornRecords})
		}),
		piileak.WithObserver(jobRun),
		piileak.WithProgress(func(ev piileak.Event) {
			lg.Publish("progress", Progress{
				Stage: ev.Stage, Done: ev.Done, Total: ev.Total,
				Site: ev.Site, Outcome: ev.Outcome, Leaks: ev.Leaks,
			})
		}),
	}
	if spec.Workers > 0 || spec.DetectWorkers > 0 {
		detect := spec.DetectWorkers
		if detect <= 0 {
			detect = spec.Workers
		}
		opts = append(opts, piileak.WithWorkers(spec.Workers, detect))
	}
	if d, err := spec.siteTimeout(); err == nil && d > 0 {
		opts = append(opts, piileak.WithSiteTimeout(d))
	}
	if spec.Retries > 0 {
		opts = append(opts, piileak.WithRetryPolicy(resilience.Policy{MaxAttempts: spec.Retries}))
	}
	if len(spec.Only) > 0 {
		sites, err := cliflags.SelectSites(study.Eco, strings.Join(spec.Only, ","))
		if err != nil {
			return err
		}
		opts = append(opts, piileak.WithSites(sites))
	}

	if err := study.Run(ctx, opts...); err != nil {
		return err
	}
	return s.writeResults(jobDir, study, jobRun)
}

// writeResults persists the finished study's outputs atomically: each
// file lands whole via temp + rename, so a crash between run completion
// and the WAL's done mark leaves either no file or a complete one —
// and the resumed attempt rewrites them all from the same byte-stable
// renderers.
func (s *Server) writeResults(jobDir string, study *piileak.Study, jobRun *obs.Run) error {
	if err := writeFileAtomic(filepath.Join(jobDir, FileLeaks), study.WriteLeaksJSON); err != nil {
		return err
	}
	tables := []struct {
		name   string
		render func() (string, error)
	}{
		{FileTable1, study.Table1},
		{FileTable2, study.Table2},
		{FileTable4, study.Table4},
	}
	for _, t := range tables {
		text, err := t.render()
		if err != nil {
			return err
		}
		if err := writeFileAtomic(filepath.Join(jobDir, t.name), func(w io.Writer) error {
			_, err := io.WriteString(w, text)
			return err
		}); err != nil {
			return err
		}
	}
	return writeFileAtomic(filepath.Join(jobDir, FileMetrics), jobRun.WriteMetrics)
}

// writeFileAtomic streams write into path via a temp file + rename.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: write %s: %w", path, err)
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fail(err)
	}
	return nil
}
