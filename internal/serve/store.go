package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The job store is an append-only JSONL write-ahead log with the same
// crash posture as the crawl checkpoint format (internal/crawler): one
// header line pinning the store version, then one self-contained event
// line per durable transition, each written whole and fsynced before
// the transition is observable. A kill -9 loses at most the line in
// flight; on reopen the torn tail is dropped and counted, the surviving
// prefix is compacted (one line per job carrying its folded state) and
// rewritten atomically via temp + rename, and interrupted jobs are
// recovered: running means "a worker owned this when the process died",
// so the job re-enters the queue and its next attempt resumes from the
// per-job checkpoint.

// storeVersion pins the WAL layout.
const storeVersion = 1

// storeHeader is the WAL's first line.
type storeHeader struct {
	Version int `json:"version"`
}

// walEvent is one durable transition. Op "job" carries a full job
// snapshot (submissions and compacted lines); op "state" is an
// incremental transition for an existing job.
type walEvent struct {
	Op       string `json:"op"` // "job" or "state"
	ID       string `json:"id"`
	Seq      int    `json:"seq,omitempty"`
	Spec     *Spec  `json:"spec,omitempty"`
	State    State  `json:"state,omitempty"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Resumes  int    `json:"resumes,omitempty"`
}

// Store is the durable job table. All durable mutations go through it
// so the WAL line is on disk before the in-memory transition is
// visible to any reader.
type Store struct {
	mu        sync.Mutex
	dir       string
	path      string
	f         *os.File
	jobs      map[string]*Job
	order     []string // job IDs in submit (Seq) order
	nextSeq   int
	torn      int
	recovered int
	closed    bool
}

// StorePath is the WAL's location under a state directory.
func StorePath(dir string) string { return filepath.Join(dir, "jobs.jsonl") }

// OpenStore opens (creating if needed) the job store under dir. An
// existing WAL is replayed — torn trailing lines dropped and counted,
// running jobs recovered to queued with their resume counter bumped —
// then compacted and rewritten atomically before the append handle
// opens.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: store %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		path:    StorePath(dir),
		jobs:    map[string]*Job{},
		nextSeq: 1,
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	if err := s.compact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	s.f = f
	return s, nil
}

// load replays an existing WAL into the job table. A missing file is an
// empty store; the first undecodable line ends the readable prefix and
// everything after it counts as torn.
func (s *Store) load() error {
	data, err := os.ReadFile(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 || len(bytes.TrimSpace(lines[0])) == 0 {
		return nil // empty file: fresh store
	}
	var hdr storeHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return fmt.Errorf("serve: store %s: malformed header: %w", s.path, err)
	}
	if hdr.Version != storeVersion {
		return fmt.Errorf("serve: store %s: version %d, want %d", s.path, hdr.Version, storeVersion)
	}
	rest := lines[1:]
	for li, line := range rest {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev walEvent
		if err := json.Unmarshal(line, &ev); err != nil || !s.apply(&ev) {
			// Crash-torn tail: the prefix is good, everything from here
			// is dropped and counted, like the checkpoint loader.
			for _, dropped := range rest[li:] {
				if len(bytes.TrimSpace(dropped)) > 0 {
					s.torn++
				}
			}
			break
		}
	}
	// Recovery: a job recorded running was owned by a worker when the
	// process died. Its checkpoint (if any) is a valid prefix, so it
	// re-enters the queue and the next attempt resumes.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State == StateRunning {
			j.State = StateQueued
			j.Resumes++
			s.recovered++
		}
	}
	return nil
}

// apply folds one replayed event into the table; false means the event
// is unusable (the torn-tail signal).
func (s *Store) apply(ev *walEvent) bool {
	switch ev.Op {
	case "job":
		if ev.ID == "" || ev.Spec == nil || ev.Seq <= 0 {
			return false
		}
		j, exists := s.jobs[ev.ID]
		if !exists {
			j = &Job{ID: ev.ID, Seq: ev.Seq, Spec: *ev.Spec}
			s.jobs[ev.ID] = j
			s.order = append(s.order, ev.ID)
		}
		j.State = ev.State
		if j.State == "" {
			j.State = StateQueued
		}
		j.Error = ev.Error
		j.Attempts = ev.Attempts
		j.Resumes = ev.Resumes
		if ev.Seq >= s.nextSeq {
			s.nextSeq = ev.Seq + 1
		}
		return true
	case "state":
		j, ok := s.jobs[ev.ID]
		if !ok || ev.State == "" {
			return false
		}
		j.State = ev.State
		j.Error = ev.Error
		j.Attempts = ev.Attempts
		j.Resumes = ev.Resumes
		return true
	default:
		return false
	}
}

// compact rewrites the WAL as header + one folded "job" line per job,
// atomically (temp + rename) — the same open-time rewrite the crawl
// checkpoint performs, which also truncates any torn tail.
func (s *Store) compact() error {
	tmp, err := os.CreateTemp(s.dir, filepath.Base(s.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	w := bufio.NewWriter(tmp)
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	writeLine := func(v any) error {
		line, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = w.Write(append(line, '\n'))
		return err
	}
	if err := writeLine(storeHeader{Version: storeVersion}); err != nil {
		return fail(err)
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if err := writeLine(walEvent{
			Op: "job", ID: j.ID, Seq: j.Seq, Spec: &j.Spec,
			State: j.State, Error: j.Error, Attempts: j.Attempts, Resumes: j.Resumes,
		}); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fail(err)
	}
	return nil
}

// append writes one event line whole and fsyncs it. Must be called with
// the lock held; the in-memory transition must happen only after this
// returns nil.
func (s *Store) append(ev walEvent) error {
	if s.closed {
		return fmt.Errorf("serve: store %s is closed", s.path)
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	return nil
}

// Submit admits one validated spec as a new queued job.
func (s *Store) Submit(spec Spec) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	j := &Job{
		ID:    fmt.Sprintf("j%d", seq),
		Seq:   seq,
		Spec:  spec,
		State: StateQueued,
	}
	if err := s.append(walEvent{Op: "job", ID: j.ID, Seq: j.Seq, Spec: &j.Spec, State: j.State}); err != nil {
		return nil, err
	}
	s.nextSeq = seq + 1
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	cp := *j
	return &cp, nil
}

// transition records one durable state change and returns a snapshot.
func (s *Store) transition(id string, mutate func(*Job)) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: no job %s", id)
	}
	next := *j // stage the mutation so a failed append changes nothing
	mutate(&next)
	if err := s.append(walEvent{
		Op: "state", ID: next.ID,
		State: next.State, Error: next.Error, Attempts: next.Attempts, Resumes: next.Resumes,
	}); err != nil {
		return nil, err
	}
	j.State, j.Error, j.Attempts, j.Resumes = next.State, next.Error, next.Attempts, next.Resumes
	return &next, nil
}

// MarkRunning records a worker taking the job.
func (s *Store) MarkRunning(id string) (*Job, error) {
	return s.transition(id, func(j *Job) { j.State = StateRunning; j.Attempts++ })
}

// MarkDone records successful completion.
func (s *Store) MarkDone(id string) (*Job, error) {
	return s.transition(id, func(j *Job) { j.State = StateDone; j.Error = "" })
}

// MarkFailed records terminal failure with its reason.
func (s *Store) MarkFailed(id, reason string) (*Job, error) {
	return s.transition(id, func(j *Job) { j.State = StateFailed; j.Error = reason })
}

// MarkCancelled records a user cancellation.
func (s *Store) MarkCancelled(id string) (*Job, error) {
	return s.transition(id, func(j *Job) { j.State = StateCancelled })
}

// Requeue records a drain interruption: the job goes back to queued
// with its checkpoint intact, to resume on the next attempt.
func (s *Store) Requeue(id string) (*Job, error) {
	return s.transition(id, func(j *Job) { j.State = StateQueued; j.Resumes++ })
}

// Get returns a snapshot of a job by ID. Accessors copy so callers
// read a consistent view without holding the store lock while workers
// transition the live entry.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	cp := *j
	return &cp, true
}

// Jobs lists a snapshot of every job in submit order.
func (s *Store) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		cp := *s.jobs[id]
		out = append(out, &cp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Queued lists the queued jobs in submit order — the recovery enqueue
// set on restart.
func (s *Store) Queued() []*Job {
	var out []*Job
	for _, j := range s.Jobs() {
		if j.State == StateQueued {
			out = append(out, j)
		}
	}
	return out
}

// TornRecords reports how many WAL lines the load dropped as a
// crash-torn tail; Recovered how many running jobs were re-queued.
func (s *Store) TornRecords() int { return s.torn }

// Recovered reports how many interrupted (running-at-crash) jobs the
// open re-queued.
func (s *Store) Recovered() int { return s.recovered }

// Dir returns the store's state directory.
func (s *Store) Dir() string { return s.dir }

// JobDir is the per-job working directory (checkpoint, results).
func (s *Store) JobDir(id string) string {
	return filepath.Join(s.dir, "jobs", id)
}

// Close releases the WAL handle; idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("serve: store %s: %w", s.path, err)
	}
	return nil
}
