// Package serve is the study as a long-running, multi-tenant service:
// an HTTP API wrapping Study.Run(ctx, ...RunOption) behind a durable
// job queue. The design is crash-only end to end — the server inherits
// every guarantee the runtime already has (per-job checkpoints,
// torn-tail-tolerant resume, watchdogs) and adds the server-side ones
// it needs:
//
//   - a durable JSONL-backed job store (an append-only WAL with the
//     same torn-tail tolerance as the crawl checkpoint format): kill -9
//     the server mid-study, restart it, and queued jobs re-enqueue while
//     running jobs resume from their per-job checkpoint to byte-identical
//     results;
//   - a bounded worker pool with admission control: a fixed number of
//     concurrent study slots and a bounded queue, with saturated
//     submissions refused as 429 + Retry-After instead of accepted into
//     an unbounded backlog that OOMs the process;
//   - graceful drain: the first SIGTERM stops admission, cancels
//     in-flight jobs between sites (their checkpoints stay valid
//     prefixes), re-queues them durably and exits 0 with everything
//     resumable — the same contract piicrawl's signal handler keeps;
//   - multi-tenant sharing of immutable detection state: two jobs with
//     the same persona and candidate config compile one automaton,
//     through the process-wide engine build cache (internal/detect).
//
// Progress streams as SSE (or JSONL) with Last-Event-ID resume, fed by
// the pipeline's progress events and the internal/obs span/metrics
// layer. Results — the leak dataset and the paper's Tables 1, 2 and 4 —
// are byte-identical to the same spec run via piicrawl -stream.
package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"piileak"
	"piileak/internal/faultsim"
)

// State is a job's lifecycle position. The durable transitions are
//
//	queued → running → done | failed | cancelled
//	running → queued            (drain, crash recovery)
//
// done, failed and cancelled are terminal; a running job found in the
// WAL on restart was interrupted by a crash and re-enters the queue
// with its checkpoint intact.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is one study submission: the same study-shaping surface the
// piicrawl flags expose, as a JSON document. The zero value of each
// field selects the CLI default, so {"seed":7,"small":true} is a
// complete spec.
type Spec struct {
	// Seed is the ecosystem seed (0 selects the paper's 2021).
	Seed uint64 `json:"seed"`
	// Small selects the scaled-down ecosystem.
	Small bool `json:"small,omitempty"`
	// Browser names the collection profile (firefox, chrome, opera,
	// safari, firefox-etp, brave); empty means firefox.
	Browser string `json:"browser,omitempty"`
	// Workers/DetectWorkers parallelize the two pipeline stages.
	Workers       int `json:"workers,omitempty"`
	DetectWorkers int `json:"detect_workers,omitempty"`
	// Faults opts the run into deterministic fault injection at this
	// host fraction; FaultSeed overrides the injection seed; Retries
	// caps fetch attempts under faults.
	Faults    float64 `json:"faults,omitempty"`
	FaultSeed uint64  `json:"fault_seed,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	// SiteTimeout is the per-site watchdog budget as a Go duration
	// string ("30s"); empty disables the watchdog.
	SiteTimeout string `json:"site_timeout,omitempty"`
	// Only restricts the run to a site subset (domains).
	Only []string `json:"only,omitempty"`
	// UniverseSize extends the study to that many total sites with a
	// lazily generated ranked tail (0 = study core only); it must not
	// be smaller than the study core.
	UniverseSize int `json:"universe_size,omitempty"`
}

// knownBrowsers is the accepted -browser vocabulary, mirrored from the
// CLI flag surface.
var knownBrowsers = map[string]bool{
	"": true, "firefox": true, "chrome": true, "opera": true,
	"safari": true, "firefox-etp": true, "brave": true,
}

// Validate rejects contradictory or out-of-range specs before any
// ecosystem generation happens — the admission path must stay cheap.
func (sp *Spec) Validate() error {
	if sp.Faults < 0 || sp.Faults > 1 {
		return fmt.Errorf("faults %v out of range [0, 1]", sp.Faults)
	}
	if sp.Workers < 0 || sp.DetectWorkers < 0 {
		return fmt.Errorf("negative worker counts")
	}
	if sp.Retries < 0 {
		return fmt.Errorf("negative retries")
	}
	if !knownBrowsers[sp.Browser] {
		names := make([]string, 0, len(knownBrowsers)-1)
		for n := range knownBrowsers {
			if n != "" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		return fmt.Errorf("unknown browser %q (want one of %s)", sp.Browser, strings.Join(names, ", "))
	}
	if _, err := sp.siteTimeout(); err != nil {
		return err
	}
	for _, d := range sp.Only {
		if strings.TrimSpace(d) == "" {
			return fmt.Errorf("only: empty site domain")
		}
	}
	if sp.UniverseSize < 0 {
		return fmt.Errorf("universe_size %d is negative", sp.UniverseSize)
	}
	if sp.UniverseSize > 0 {
		if core := sp.StudyConfig().Ecosystem.ShoppingSites; sp.UniverseSize < core {
			return fmt.Errorf("universe_size %d is smaller than the %d-site study core", sp.UniverseSize, core)
		}
		if len(sp.Only) > 0 {
			return fmt.Errorf("universe_size and only are contradictory: only selects from the study core")
		}
	}
	return nil
}

// siteTimeout parses the per-site watchdog budget.
func (sp *Spec) siteTimeout() (time.Duration, error) {
	if sp.SiteTimeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(sp.SiteTimeout)
	if err != nil {
		return 0, fmt.Errorf("site_timeout: %v", err)
	}
	if d < 0 {
		return 0, fmt.Errorf("site_timeout %v is negative", d)
	}
	return d, nil
}

// StudyConfig builds the piileak configuration the spec describes,
// exactly as the piicrawl flag surface would.
func (sp *Spec) StudyConfig() piileak.Config {
	seed := sp.Seed
	if seed == 0 {
		seed = 2021
	}
	cfg := piileak.DefaultConfig()
	if sp.Small {
		cfg = piileak.SmallConfig(seed)
	}
	cfg.Ecosystem.Seed = seed
	cfg.Ecosystem.UniverseSize = sp.UniverseSize
	cfg.Workers = sp.Workers
	if sp.Faults > 0 {
		cfg.Ecosystem.Faults = &faultsim.Config{Seed: sp.FaultSeed, Rate: sp.Faults}
	}
	return cfg
}

// Job is one submitted study: the durable fields the WAL persists plus
// the in-memory runtime state the server attaches while it owns the
// job. Durable fields are only mutated through the Store so every
// transition hits the WAL before it is observable.
type Job struct {
	// ID is the store-assigned identifier (j1, j2, ... in submit order).
	ID string `json:"id"`
	// Seq is the submit sequence number backing the ID; queue order is
	// ascending Seq.
	Seq int `json:"seq"`
	// Spec is the submitted study description.
	Spec Spec `json:"spec"`
	// State is the durable lifecycle position.
	State State `json:"state"`
	// Error carries the terminal failure reason (failed jobs).
	Error string `json:"error,omitempty"`
	// Attempts counts run starts, including resumed ones.
	Attempts int `json:"attempts,omitempty"`
	// Resumes counts crash/drain recoveries: how many times the job
	// went running → queued with its checkpoint intact.
	Resumes int `json:"resumes,omitempty"`
}

// JobView is the API's status rendering of a job.
type JobView struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Resumes  int    `json:"resumes,omitempty"`
	Spec     Spec   `json:"spec"`
}

// View renders the job for the status API.
func (j *Job) View() JobView {
	return JobView{
		ID:       j.ID,
		State:    j.State,
		Error:    j.Error,
		Attempts: j.Attempts,
		Resumes:  j.Resumes,
		Spec:     j.Spec,
	}
}
