package detect

import (
	"encoding/json"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

// legacyFor builds the reference single-phase detector sharing the
// engine's candidate set and classifier, so any output divergence is the
// scan path's fault, not a compile difference.
func legacyFor(e *Engine) *core.Detector {
	return core.NewDetector(e.Candidates(), e.CNAME())
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkRecord asserts the scanner and the legacy detector agree byte-
// for-byte on one record, and returns the leaks.
func checkRecord(t *testing.T, sc *Scanner, site string, rec *httpmodel.Record) []core.Leak {
	t.Helper()
	want := legacyFor(sc.Engine()).DetectRecord(site, rec)
	got := sc.DetectRecord(site, rec)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("scanner diverges from legacy on %s %s:\nlegacy:  %s\nscanner: %s",
			site, rec.Request.URL, mustJSON(t, want), mustJSON(t, got))
	}
	return got
}

// TestScannerMatchesLegacyOnCrawls is the package-level differential:
// across several ecosystem seeds, the two-phase scanner's output over a
// full crawl must be byte-identical to the legacy detector's, site by
// site — serial, pooled (Engine.DetectSite) and concurrent-channel.
func TestScannerMatchesLegacyOnCrawls(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		eco, err := webgen.Generate(webgen.SmallConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		cname := dnssim.NewClassifier(eco.Zone)
		eng, err := NewEngine(eco.Persona, cname, Config{})
		if err != nil {
			t.Fatal(err)
		}
		conc, err := NewEngine(eco.Persona, cname, Config{ConcurrentChannels: true})
		if err != nil {
			t.Fatal(err)
		}
		legacy := legacyFor(eng)
		ds := crawler.Crawl(eco, browser.Firefox88())

		sc := eng.NewScanner()
		csc := conc.NewScanner()
		total := 0
		for _, c := range ds.Successes() {
			want := legacy.DetectSite(c.Domain, c.Records)
			total += len(want)
			if got := sc.DetectSite(c.Domain, c.Records); !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d, site %s: serial scanner diverges:\nlegacy:  %s\nscanner: %s",
					seed, c.Domain, mustJSON(t, want), mustJSON(t, got))
			}
			if got := eng.DetectSite(c.Domain, c.Records); !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d, site %s: pooled engine diverges", seed, c.Domain)
			}
			if got := csc.DetectSite(c.Domain, c.Records); !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d, site %s: concurrent-channel scanner diverges:\nlegacy:  %s\nscanner: %s",
					seed, c.Domain, mustJSON(t, want), mustJSON(t, got))
			}
		}
		if total == 0 {
			t.Fatalf("seed %d: crawl produced no leaks; differential is vacuous", seed)
		}
	}
}

// TestDecodeDetectMatchesLegacy pins the A3 migration: the scanner's
// DecodeDetect output is byte-identical to the legacy implementation.
func TestDecodeDetectMatchesLegacy(t *testing.T) {
	eco, err := webgen.Generate(webgen.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(eco.Persona, dnssim.NewClassifier(eco.Zone), Config{
		Candidates: pii.CandidateConfig{
			MaxDepth:   1,
			Transforms: []string{"md5", "sha1", "sha256", "sha512", "sha3_256", "ripemd_160"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy := legacyFor(eng)
	sc := eng.NewScanner()
	ds := crawler.Crawl(eco, browser.Firefox88())
	compared := 0
	for _, c := range ds.Successes() {
		for i := range c.Records {
			want := legacy.DecodeDetect(c.Domain, &c.Records[i], 2)
			got := sc.DecodeDetect(c.Domain, &c.Records[i], 2)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("site %s record %d: DecodeDetect diverges:\nlegacy:  %s\nscanner: %s",
					c.Domain, i, mustJSON(t, want), mustJSON(t, got))
			}
			compared += len(got)
		}
	}
	if compared == 0 {
		t.Fatal("DecodeDetect found nothing; differential is vacuous")
	}
}

// edgeEngine compiles a full default engine for the hand-built edge-case
// records, with a CNAME zone for the cloaking cases.
func edgeEngine(t *testing.T) *Engine {
	t.Helper()
	zone := dnssim.NewZone()
	zone.AddCNAME("smetrics.shop.example.com", "shopexample.sc.omtrdc.net")
	eng, err := NewEngine(pii.Default(), dnssim.NewClassifier(zone), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPrefilterEdgeCases drives the records that stress the fast path's
// superset argument: tokens hidden behind percent-encoding on every
// channel, '+' in paths, escaped JSON, malformed query pairs. Each must
// match the legacy detector exactly — and the leaky ones must actually
// leak, so a prefilter false negative cannot hide.
func TestPrefilterEdgeCases(t *testing.T) {
	eng := edgeEngine(t)
	sc := eng.NewScanner()
	email := pii.Default().Email
	enc := url.QueryEscape(email)
	site := "shop.example.com"

	cases := []struct {
		name string
		rec  httpmodel.Record
		leak bool // must produce at least one leak (guards vacuous passes)
	}{
		{"query-encoded", httpmodel.Record{Request: httpmodel.Request{
			URL: "https://t.adnxs.com/c?e=" + enc + "&v=2",
		}}, true},
		{"path-encoded", httpmodel.Record{Request: httpmodel.Request{
			URL: "https://t.adnxs.com/u/" + strings.Replace(email, "@", "%40", 1) + "/pix",
		}}, true},
		{"referer-encoded", httpmodel.Record{Request: httpmodel.Request{
			URL:     "https://t.adnxs.com/seg?add=1",
			Headers: map[string]string{"Referer": "https://www.shop.example.com/s?e=" + enc},
		}}, true},
		{"cookie-encoded", httpmodel.Record{Request: httpmodel.Request{
			URL:     "https://t.adnxs.com/sync",
			Cookies: []httpmodel.Cookie{{Name: "uid", Value: enc, Domain: "adnxs.com"}},
		}}, true},
		{"form-encoded", httpmodel.Record{Request: httpmodel.Request{
			URL:      "https://t.adnxs.com/collect",
			Body:     []byte("e=" + enc + "&v=2"),
			BodyType: "application/x-www-form-urlencoded",
		}}, true},
		{"json-escaped", httpmodel.Record{Request: httpmodel.Request{
			URL:      "https://t.adnxs.com/events",
			Body:     []byte(`{"email":"` + strings.Replace(email, "@", `\u0040`, 1) + `"}`),
			BodyType: "application/json",
		}}, true},
		{"json-clean", httpmodel.Record{Request: httpmodel.Request{
			URL:      "https://t.adnxs.com/events",
			Body:     []byte(`{"event":"pageview","n":3}`),
			BodyType: "application/json",
		}}, false},
		{"malformed-query-pair", httpmodel.Record{Request: httpmodel.Request{
			// The %zz pair kills the whole-query decode; u.Query() still
			// yields the e pair, so the leak must survive.
			URL: "https://t.adnxs.com/c?bad=%zz&e=" + enc,
		}}, true},
		{"malformed-path", httpmodel.Record{Request: httpmodel.Request{
			// url.Parse rejects the path escape, so Host() is empty and
			// the whole record is receiver-less — even the referer is
			// skipped. The authority substring matches earlier t.adnxs.com
			// records, so this also proves the receiver memo self-keys
			// unparseable URLs instead of serving the cached receiver.
			URL:     "https://t.adnxs.com/p%zz/x",
			Headers: map[string]string{"Referer": "https://www.shop.example.com/s?e=" + email},
		}}, false},
		{"clean", httpmodel.Record{Request: httpmodel.Request{
			URL:     "https://t.adnxs.com/ping?v=2&cb=123456",
			Cookies: []httpmodel.Cookie{{Name: "uid", Value: "a1b2c3d4e5", Domain: "adnxs.com"}},
		}}, false},
		{"first-party", httpmodel.Record{Request: httpmodel.Request{
			URL: "https://www.shop.example.com/account?e=" + enc,
		}}, false},
		{"cname-cloaked", httpmodel.Record{Request: httpmodel.Request{
			URL: "https://smetrics.shop.example.com/b/ss?mid=" + enc,
		}}, true},
		{"unparseable-url", httpmodel.Record{Request: httpmodel.Request{
			URL: "://bad url\x7f?e=" + enc,
		}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leaks := checkRecord(t, sc, site, &tc.rec)
			if tc.leak && len(leaks) == 0 {
				t.Errorf("expected a leak, got none")
			}
			if !tc.leak && len(leaks) != 0 {
				t.Errorf("expected no leaks, got %s", mustJSON(t, leaks))
			}
		})
	}
}

// TestPrefilterPlusInPath pins the subtlest fast-path case: a token
// containing a literal '+' percent-encoded into a URL path. Only a
// path-mode decode (where '+' stays literal) reconstructs it; a
// query-mode decode of the path would corrupt '+' to space and the
// prefilter would clear a record the legacy detector flags.
func TestPrefilterPlusInPath(t *testing.T) {
	eng := edgeEngine(t)
	var tok string
	for _, cand := range eng.Candidates().Tokens() {
		if strings.Contains(cand.Value, "+") && pathSafe(cand.Value) {
			tok = cand.Value
			break
		}
	}
	if tok == "" {
		t.Skip("no '+'-bearing path-safe candidate token in the default persona")
	}
	// Percent-encode one character so the raw URL scan cannot see the
	// token, leaving the '+' literal so only path-mode decoding works.
	mangled := "%" + hexByte(tok[0]) + tok[1:]
	rec := httpmodel.Record{Request: httpmodel.Request{
		URL: "https://t.adnxs.com/p/" + mangled + "/x",
	}}
	sc := eng.NewScanner()
	leaks := checkRecord(t, sc, "shop.example.com", &rec)
	if len(leaks) == 0 {
		t.Fatalf("token %q in path not detected", tok)
	}
}

func hexByte(b byte) string {
	const hexdig = "0123456789ABCDEF"
	return string([]byte{hexdig[b>>4], hexdig[b&0xf]})
}

// pathSafe reports whether the token can sit verbatim in a URL path
// segment: printable ASCII with no URL delimiters or escapes, so
// url.Parse keeps it intact.
func pathSafe(v string) bool {
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c >= 0x7f || c == '/' || c == '?' || c == '#' || c == '%' {
			return false
		}
	}
	return true
}

// TestReceiverMemoAcrossSites: the host→receiver memo is keyed per site
// (classification depends on the visited site), so the same endpoint
// must be reclassified when the scanner moves to another site — and when
// it returns to the first.
func TestReceiverMemoAcrossSites(t *testing.T) {
	eng := edgeEngine(t)
	sc := eng.NewScanner()
	email := pii.Default().Email
	rec := func() httpmodel.Record {
		return httpmodel.Record{Request: httpmodel.Request{
			URL: "https://www.shop.example.com/collect?e=" + url.QueryEscape(email),
		}}
	}
	// Under shop.example.com the host is first-party: no leak.
	r1 := rec()
	if leaks := checkRecord(t, sc, "shop.example.com", &r1); len(leaks) != 0 {
		t.Fatalf("first-party leaked: %s", mustJSON(t, leaks))
	}
	// Under another site the same host is a third party: leak.
	r2 := rec()
	if leaks := checkRecord(t, sc, "other.example.org", &r2); len(leaks) == 0 {
		t.Fatal("third-party request not detected after site switch")
	}
	// And back: the memo from the second site must not linger.
	r3 := rec()
	if leaks := checkRecord(t, sc, "shop.example.com", &r3); len(leaks) != 0 {
		t.Fatalf("stale memo after returning to first site: %s", mustJSON(t, leaks))
	}
}

// TestEngineBuildCache pins the shared-compile contract: a second engine
// for the same (persona, config) reuses the first's candidate set
// without another BuildCandidates call, config defaulting normalizes
// into one cache slot, and DisableCache forces a private compile.
func TestEngineBuildCache(t *testing.T) {
	p := pii.Default()
	e1, err := NewEngine(p, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	builds := pii.CandidateBuilds()
	// Same config, explicit defaults, and a second zero config must all
	// share e1's compile.
	for _, cfg := range []Config{
		{},
		{Candidates: pii.CandidateConfig{MaxDepth: 2}},
		{Candidates: pii.CandidateConfig{MaxDepth: 2, MinTokenLen: 8}},
		{ConcurrentChannels: true},
	} {
		e, err := NewEngine(p, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !e.FromCache() {
			t.Errorf("config %+v: engine not served from cache", cfg)
		}
		if e.Candidates() != e1.Candidates() {
			t.Errorf("config %+v: cache returned a different candidate set", cfg)
		}
	}
	if got := pii.CandidateBuilds(); got != builds {
		t.Errorf("cache hits still compiled: %d builds, want %d", got, builds)
	}
	// A different config compiles fresh.
	e2, err := NewEngine(p, nil, Config{Candidates: pii.CandidateConfig{MaxDepth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Candidates() == e1.Candidates() {
		t.Error("distinct configs share a candidate set")
	}
	// DisableCache bypasses entirely.
	before := pii.CandidateBuilds()
	e3, err := NewEngine(p, nil, Config{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if e3.FromCache() {
		t.Error("DisableCache engine claims a cache hit")
	}
	if pii.CandidateBuilds() != before+1 {
		t.Error("DisableCache did not compile")
	}
}

// TestChannelFilter: a filtered engine probes only the configured
// channels — the cookie channel here is compiled empty, so a cookie
// leak disappears while the uri leak survives.
func TestChannelFilter(t *testing.T) {
	eng, err := NewEngine(pii.Default(), nil, Config{
		ChannelFilter: func(_ pii.Token, k httpmodel.SurfaceKind) bool {
			return k != httpmodel.SurfaceCookie
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.ChannelTokens(httpmodel.SurfaceCookie); n != 0 {
		t.Fatalf("cookie channel holds %d tokens, want 0", n)
	}
	if n := eng.ChannelTokens(httpmodel.SurfaceURI); n != eng.Candidates().Size() {
		t.Fatalf("uri channel holds %d tokens, want the full %d", n, eng.Candidates().Size())
	}
	email := pii.Default().Email
	rec := httpmodel.Record{Request: httpmodel.Request{
		URL:     "https://t.adnxs.com/c?e=" + url.QueryEscape(email),
		Cookies: []httpmodel.Cookie{{Name: "uid", Value: email, Domain: "adnxs.com"}},
	}}
	leaks := eng.NewScanner().DetectRecord("shop.example.com", &rec)
	for _, l := range leaks {
		if l.Method == httpmodel.SurfaceCookie {
			t.Errorf("filtered cookie channel still reported: %s", mustJSON(t, l))
		}
	}
	found := false
	for _, l := range leaks {
		found = found || l.Method == httpmodel.SurfaceURI
	}
	if !found {
		t.Error("uri leak lost under a cookie-only filter")
	}
}

// TestScannerNoLeakPathAllocsZero is the allocation budget: after
// warm-up, scanning a clean record allocates nothing, while the legacy
// detector pays Surfaces + conversions on every record. The ≥10×
// reduction claim follows from zero vs legacy's double digits.
func TestScannerNoLeakPathAllocsZero(t *testing.T) {
	eng := edgeEngine(t)
	sc := eng.NewScanner()
	legacy := legacyFor(eng)
	rec := httpmodel.Record{Request: httpmodel.Request{
		URL:     "https://t.adnxs.com/ping?v=2&cb=123456&sess=zZ9yY8xX7",
		Headers: map[string]string{"Referer": "https://www.shop.example.com/cart"},
		Cookies: []httpmodel.Cookie{
			{Name: "uid", Value: "a1b2c3d4e5f6", Domain: "adnxs.com"},
			{Name: "sess", Value: "deadbeef00", Domain: "adnxs.com"},
		},
		Body:     []byte("v=2&cb=654321"),
		BodyType: "application/x-www-form-urlencoded",
	}}
	site := "shop.example.com"
	if leaks := checkRecord(t, sc, site, &rec); len(leaks) != 0 {
		t.Fatalf("fixture record unexpectedly leaks: %s", mustJSON(t, leaks))
	}

	scannerAllocs := testing.AllocsPerRun(200, func() {
		sc.DetectRecord(site, &rec)
	})
	legacyAllocs := testing.AllocsPerRun(200, func() {
		legacy.DetectRecord(site, &rec)
	})
	if scannerAllocs != 0 {
		t.Errorf("scanner no-leak path allocates %.1f allocs/op, want 0", scannerAllocs)
	}
	if legacyAllocs < 10 {
		t.Logf("legacy no-leak path allocates only %.1f allocs/op; fixture lost its bite", legacyAllocs)
	}
	if legacyAllocs < 10*(scannerAllocs+1) {
		t.Errorf("allocation reduction below 10x: scanner %.1f vs legacy %.1f", scannerAllocs, legacyAllocs)
	}
}

// TestUnescapeIntoMatchesStdlib pins the scratch decoder against
// net/url's QueryUnescape/PathUnescape on both outcomes.
func TestUnescapeIntoMatchesStdlib(t *testing.T) {
	cases := []string{
		"", "plain", "a+b", "a%20b", "a%2Bb", "%40", "100%", "%", "%z", "%zz",
		"%4", "a%ZZb", "trailing%2", "%2F%3f%23", "mixed+%41+text",
		"jos\u00e9%C3%A9", "%00", "a%0ab",
	}
	for _, s := range cases {
		wantQ, errQ := url.QueryUnescape(s)
		got, ok := unescapeInto(nil, s, true)
		if ok != (errQ == nil) {
			t.Errorf("query %q: ok=%v, stdlib err=%v", s, ok, errQ)
		} else if ok && string(got) != wantQ {
			t.Errorf("query %q: got %q, want %q", s, got, wantQ)
		}
		wantP, errP := url.PathUnescape(s)
		got, ok = unescapeInto(nil, s, false)
		if ok != (errP == nil) {
			t.Errorf("path %q: ok=%v, stdlib err=%v", s, ok, errP)
		} else if ok && string(got) != wantP {
			t.Errorf("path %q: got %q, want %q", s, got, wantP)
		}
	}
}

// TestAuthorityKey pins the memo key derivation against url.Parse's
// authority delimiting.
func TestAuthorityKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"https://a.b/c?d=1#e", "a.b"},
		{"https://a.b:8443/c", "a.b:8443"},
		{"https://u@a.b/c", "u@a.b"},
		{"https://a.b", "a.b"},
		{"https://a.b?x=1", "a.b"},
		{"https://a.b#f", "a.b"},
		{"/relative/path", "/relative/path"},
		{"mailto:a@b", "mailto:a@b"},
		{"a?b://c", "a?b://c"},     // invalid scheme: self-keyed
		{"a b://c/d", "a b://c/d"}, // invalid scheme: self-keyed
		// Escapes outside the query and control bytes decide parse
		// success, so those URLs are self-keyed; query escapes are not
		// validated by url.Parse, so they still share the authority key.
		{"https://a.b/p%zz/x", "https://a.b/p%zz/x"},
		{"https://a.b/u%40h/x", "https://a.b/u%40h/x"},
		{"https://a.b/c#f%zz", "https://a.b/c#f%zz"},
		{"https://a.b/c\x7f", "https://a.b/c\x7f"},
		{"https://a.b/c?e=%40", "a.b"},
	}
	for _, tc := range cases {
		if got := authorityKey(tc.in); got != tc.want {
			t.Errorf("authorityKey(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestFloatRenderable pins the compile-time JSON-number shape check that
// keeps the default persona's tokens (postal codes, phone numbers, birth
// dates) on the fast path.
func TestFloatRenderable(t *testing.T) {
	yes := []string{"0", "12345678", "-1", "1.5", "1.5e+07", "1e-05", "-1.7976931348623157e+308"}
	no := []string{"", "101-8430", "1988-05-21", "+81355550123", "1.5e", "1.", ".5", "1e+", "abc", "1-2", "e7",
		"12345678901234567890123456789"}
	for _, s := range yes {
		if !floatRenderable(s) {
			t.Errorf("floatRenderable(%q) = false, want true", s)
		}
	}
	for _, s := range no {
		if floatRenderable(s) {
			t.Errorf("floatRenderable(%q) = true, want false", s)
		}
	}
}

// TestEngineConcurrentUse drives one shared Engine from many goroutines
// through the pooled DetectSite — the -race CI lane's target.
func TestEngineConcurrentUse(t *testing.T) {
	eng := edgeEngine(t)
	email := pii.Default().Email
	rec := httpmodel.Record{Request: httpmodel.Request{
		URL: "https://t.adnxs.com/c?e=" + url.QueryEscape(email),
	}}
	want := eng.DetectSite("shop.example.com", []httpmodel.Record{rec})
	done := make(chan []core.Leak, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var last []core.Leak
			for i := 0; i < 50; i++ {
				last = eng.DetectSite("shop.example.com", []httpmodel.Record{rec})
			}
			done <- last
		}()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; !reflect.DeepEqual(want, got) {
			t.Errorf("concurrent DetectSite diverged:\nwant %s\ngot  %s", mustJSON(t, want), mustJSON(t, got))
		}
	}
}
