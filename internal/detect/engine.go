// Package detect is the two-phase PII-leak detection engine.
//
// Phase 1 — Engine — compiles everything scan-invariant once: the
// persona's candidate-token automaton (§3.1), optional channel-specific
// token sub-automata, the public suffix list and the CNAME-uncloaking
// classifier, plus the compile-time facts the scan fast path relies on
// (whether any token could hide behind a JSON re-rendering). Engines
// are immutable and safe for concurrent use; a process-wide build cache
// keyed by (persona, CandidateConfig) means ablations, the browser
// countermeasure evaluation and concurrent tenants of one process all
// share a single compile.
//
// Phase 2 — Scanner — is the per-worker mutable half: pooled match and
// surface scratch reused across records, a Contains fast path that
// dismisses clean records without allocating, and per-site host →
// receiver memoization. Scanners come from Engine.NewScanner (one per
// detect worker) or transparently from a sync.Pool via Engine's own
// pipeline.Detector implementation.
//
// The split mirrors core.Detector's semantics exactly: for every input,
// Scanner output is byte-identical to the legacy single-phase detector
// (pinned by the cross-seed differential tests in the repo root).
package detect

import (
	"fmt"
	"strings"
	"sync"

	"piileak/internal/ahocorasick"
	"piileak/internal/core"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/psl"
)

// Config parameterizes an Engine compile.
type Config struct {
	// Candidates is the §3.1 candidate-set configuration; the zero
	// value selects the study defaults (depth 2, min length 8).
	Candidates pii.CandidateConfig
	// ChannelFilter, when non-nil, restricts which tokens each leak
	// channel probes: a token is compiled into channel k's sub-automaton
	// only if ChannelFilter(token, k) returns true. Tokens filtered out
	// of a channel are never reported there — this deliberately changes
	// detection semantics, so the default (nil) probes every token on
	// every channel and is byte-identical to the legacy detector.
	// Filtered engines bypass the shared build cache's sub-automata
	// (the candidate set itself is still cached).
	ChannelFilter func(pii.Token, httpmodel.SurfaceKind) bool
	// ConcurrentChannels scans the four leak channels of a leaky record
	// concurrently (one goroutine per channel with independent scratch).
	// Output is byte-identical to the serial scan; the win is latency on
	// large captures, not throughput, so it defaults to off.
	ConcurrentChannels bool
	// DisableCache compiles a private candidate set instead of
	// consulting the shared (persona, config) build cache. Tests use it
	// to measure cold builds.
	DisableCache bool
}

// channelAutomaton is one channel's compiled token set: either a view
// of the engine's full candidate set (the default) or a filtered
// sub-automaton with its own token table.
type channelAutomaton struct {
	full   *pii.CandidateSet
	sub    *ahocorasick.Matcher
	tokens []pii.Token
}

func (a *channelAutomaton) findInto(data []byte, sc *pii.Scratch, dst []int) []int {
	if a.full != nil {
		return a.full.FindInto(data, sc, dst)
	}
	return a.sub.FindUniqueInto(data, sc, dst)
}

func (a *channelAutomaton) tokenAt(i int) pii.Token {
	if a.full != nil {
		return a.full.TokenAt(i)
	}
	return a.tokens[i]
}

func (a *channelAutomaton) contains(data []byte) bool {
	if a.full != nil {
		return a.full.Contains(data)
	}
	return a.sub.Contains(data)
}

func (a *channelAutomaton) containsString(s string) bool {
	if a.full != nil {
		return a.full.ContainsString(s)
	}
	return a.sub.ContainsString(s)
}

func (a *channelAutomaton) size() int {
	if a.full != nil {
		return a.full.Size()
	}
	return len(a.tokens)
}

// channel indexes for the per-channel automata and scratch arrays.
const (
	chReferer = iota
	chURI
	chCookie
	chBody
	numChannels
)

func kindIndex(k httpmodel.SurfaceKind) int {
	switch k {
	case httpmodel.SurfaceReferer:
		return chReferer
	case httpmodel.SurfaceURI:
		return chURI
	case httpmodel.SurfaceCookie:
		return chCookie
	default:
		return chBody
	}
}

// Engine is the immutable, concurrency-safe compile of everything
// detection needs that does not change between scans. Build one per
// (persona, config) — or let NewEngine's shared cache do it for you —
// and share it across every detect worker, shard and tenant.
type Engine struct {
	cands *pii.CandidateSet
	list  *psl.List
	cname *dnssim.Classifier

	channels [numChannels]channelAutomaton
	// jsonLeafSafe records that no candidate token could match a
	// re-rendered JSON number or bool leaf without also appearing in
	// the raw body bytes; with it (plus a per-record backslash check)
	// a raw-body automaton miss conclusively clears a JSON payload.
	jsonLeafSafe bool
	concurrent   bool
	fromCache    bool

	pool sync.Pool
}

// NewEngine compiles (or fetches from the shared build cache) the
// detection engine for a persona. cname enables CNAME uncloaking; nil
// disables it, exactly as with core.NewDetector.
func NewEngine(p pii.Persona, cname *dnssim.Classifier, cfg Config) (*Engine, error) {
	var (
		cs  *pii.CandidateSet
		hit bool
		err error
	)
	if cfg.DisableCache {
		cs, err = pii.BuildCandidates(p, cfg.Candidates)
	} else {
		cs, hit, err = cachedCandidates(p, cfg.Candidates)
	}
	if err != nil {
		return nil, fmt.Errorf("detect: %w", err)
	}
	e := &Engine{
		cands:        cs,
		list:         psl.Default(),
		cname:        cname,
		jsonLeafSafe: jsonLeafSafe(cs),
		concurrent:   cfg.ConcurrentChannels,
		fromCache:    hit,
	}
	e.buildChannels(cfg.ChannelFilter)
	e.pool.New = func() any { return e.NewScanner() }
	return e, nil
}

// MustNewEngine panics on configuration errors.
func MustNewEngine(p pii.Persona, cname *dnssim.Classifier, cfg Config) *Engine {
	e, err := NewEngine(p, cname, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// buildChannels compiles the per-channel token sub-automata. Without a
// filter every channel aliases the full candidate set — no duplicated
// automaton memory and byte-identical semantics.
func (e *Engine) buildChannels(filter func(pii.Token, httpmodel.SurfaceKind) bool) {
	kinds := [numChannels]httpmodel.SurfaceKind{
		chReferer: httpmodel.SurfaceReferer,
		chURI:     httpmodel.SurfaceURI,
		chCookie:  httpmodel.SurfaceCookie,
		chBody:    httpmodel.SurfaceBody,
	}
	for ci := range e.channels {
		if filter == nil {
			e.channels[ci] = channelAutomaton{full: e.cands}
			continue
		}
		var toks []pii.Token
		var vals []string
		for _, t := range e.cands.Tokens() {
			if filter(t, kinds[ci]) {
				toks = append(toks, t)
				vals = append(vals, t.Value)
			}
		}
		e.channels[ci] = channelAutomaton{sub: ahocorasick.NewStrings(vals), tokens: toks}
	}
}

func (e *Engine) channelFor(k httpmodel.SurfaceKind) *channelAutomaton {
	return &e.channels[kindIndex(k)]
}

// Candidates returns the engine's compiled candidate set.
func (e *Engine) Candidates() *pii.CandidateSet { return e.cands }

// CNAME returns the engine's CNAME-uncloaking classifier (nil when
// uncloaking is disabled).
func (e *Engine) CNAME() *dnssim.Classifier { return e.cname }

// PSL returns the engine's public suffix list.
func (e *Engine) PSL() *psl.List { return e.list }

// FromCache reports whether the engine's candidate set came out of the
// shared build cache rather than a fresh compile.
func (e *Engine) FromCache() bool { return e.fromCache }

// ChannelTokens returns how many tokens channel k probes — the full
// candidate count unless a ChannelFilter restricted it.
func (e *Engine) ChannelTokens(k httpmodel.SurfaceKind) int {
	return e.channelFor(k).size()
}

// DetectSite scans all records of one site crawl. It is safe for
// concurrent use: each call borrows a pooled Scanner. Workers that scan
// many sites should hold their own Scanner (NewScanner) instead and
// skip the pool round-trip.
func (e *Engine) DetectSite(siteDomain string, records []httpmodel.Record) []core.Leak {
	s := e.pool.Get().(*Scanner)
	defer e.pool.Put(s)
	return s.DetectSite(siteDomain, records)
}

// jsonLeafSafe reports that no candidate token could be produced by the
// JSON body-param re-rendering (float64 %v formatting of number leaves,
// "true"/"false" bools) without its bytes also being present verbatim
// in the raw payload. When true, a raw-body miss plus an absence of
// escape characters conclusively clears a JSON body on the fast path.
func jsonLeafSafe(cs *pii.CandidateSet) bool {
	for _, t := range cs.Tokens() {
		if floatRenderable(t.Value) ||
			strings.Contains("true", t.Value) || strings.Contains("false", t.Value) {
			return false
		}
	}
	return true
}

// floatRenderable reports whether s could be the %v rendering of a
// float64: [-]digits[.digits][e[+-]digits], at most 24 bytes.
func floatRenderable(s string) bool {
	if len(s) == 0 || len(s) > 24 {
		return false
	}
	i := 0
	digits := func() bool {
		n := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
			n++
		}
		return n > 0
	}
	if s[i] == '-' {
		i++
	}
	if !digits() {
		return false
	}
	if i < len(s) && s[i] == '.' {
		i++
		if !digits() {
			return false
		}
	}
	if i < len(s) && s[i] == 'e' {
		i++
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		if !digits() {
			return false
		}
	}
	return i == len(s)
}
