package detect

import (
	"sort"
	"strings"
	"sync"

	"piileak/internal/core"
	"piileak/internal/encode"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

// Scanner is the mutable per-worker half of the two-phase detector: all
// scratch state a scan needs — match buffers, surface buffers,
// percent-decoding buffers, the host→receiver memo — lives here and is
// reused across records, so the steady-state no-leak path allocates
// nothing. A Scanner is NOT safe for concurrent use; create one per
// detect worker with Engine.NewScanner (the Engine itself stays shared).
type Scanner struct {
	eng *Engine

	// scratch is the automaton dedup state for the serial scan path.
	scratch pii.Scratch
	// idxBuf receives match indices per surface.
	idxBuf []int
	// surfBuf is the reusable surface slice for SurfacesInto.
	surfBuf []httpmodel.Surface
	// dec is the percent-decoding scratch for the prefilter.
	dec []byte

	// curSite and hostRecv memoize receiver classification per site:
	// crawls hit the same third-party endpoints dozens of times per
	// page, and receiverOf costs a url.Parse plus two PSL walks.
	// Classification depends on the visited site, so the memo clears on
	// site change.
	curSite  string
	hostRecv map[string]recvEntry

	// chScratch and chIdx are per-channel scan state for the optional
	// concurrent-channel mode (one slot per goroutine).
	chScratch [numChannels]pii.Scratch
	chIdx     [numChannels][]int
}

type recvEntry struct {
	receiver string
	cloaked  bool
}

// NewScanner returns a fresh scanner bound to the engine. Intended use
// is one Scanner per detect worker, scanning records serially.
func (e *Engine) NewScanner() *Scanner {
	return &Scanner{eng: e, hostRecv: make(map[string]recvEntry)}
}

// Engine returns the immutable engine this scanner scans with.
func (s *Scanner) Engine() *Engine { return s.eng }

// DetectSite scans all records of one site crawl. Output is
// byte-identical to core.Detector.DetectSite on the same inputs.
func (s *Scanner) DetectSite(siteDomain string, records []httpmodel.Record) []core.Leak {
	var out []core.Leak
	for i := range records {
		out = append(out, s.DetectRecord(siteDomain, &records[i])...)
	}
	return out
}

// DetectRecord returns the leaks in one captured request, byte-identical
// to core.Detector.DetectRecord: matches dedup per (method, token) and
// named surfaces own the parameter attribution.
func (s *Scanner) DetectRecord(siteDomain string, rec *httpmodel.Record) []core.Leak {
	s.beginSite(siteDomain)
	receiver, cloaked := s.receiverFor(&rec.Request)
	if receiver == "" {
		return nil
	}
	if !s.mightLeak(&rec.Request) {
		// The prefilter proved no surface can match: every surface the
		// legacy detector would scan is a substring of a raw or
		// scratch-decoded region checked above.
		return nil
	}
	return s.scanRecord(siteDomain, receiver, cloaked, rec)
}

func (s *Scanner) beginSite(siteDomain string) {
	if siteDomain == s.curSite {
		return
	}
	s.curSite = siteDomain
	clear(s.hostRecv)
}

// receiverFor memoizes receiver classification by the URL's authority
// substring: every URL sharing an authority parses to the same host, so
// one url.Parse + PSL walk serves all requests to that endpoint within
// a site. URLs whose authority cannot be delimited syntactically fall
// back to the full URL as key (always sound, never shared).
func (s *Scanner) receiverFor(r *httpmodel.Request) (string, bool) {
	k := authorityKey(r.URL)
	if e, ok := s.hostRecv[k]; ok {
		return e.receiver, e.cloaked
	}
	recv, cloaked := core.ReceiverOf(s.eng.list, s.eng.cname, s.curSite, r.Host())
	s.hostRecv[k] = recvEntry{receiver: recv, cloaked: cloaked}
	return recv, cloaked
}

// authorityKey extracts the authority component the way url.Parse
// delimits it: fragment cut at the first '#', query at the first '?',
// authority after "://" up to the next '/'. The scheme must be valid for
// "://" to act as the authority marker; otherwise the whole URL is the
// key, which memoizes that exact URL only.
//
// The key must never equate two URLs whose Host() differs. Host() is ""
// whenever url.Parse fails, and parse success can hinge on parts outside
// the authority: an invalid escape in the path, userinfo, or fragment
// (query escapes are not validated at parse time), or a control byte
// anywhere. So any URL with '%' outside its query or a control byte is
// self-keyed — same string, same Host(), always sound — at the cost of a
// memo miss for that record.
func authorityKey(rawurl string) string {
	s := rawurl
	if i := strings.IndexByte(s, '#'); i >= 0 {
		if strings.IndexByte(s[i+1:], '%') >= 0 {
			return rawurl
		}
		s = s[:i]
	}
	if i := strings.IndexByte(s, '?'); i >= 0 {
		s = s[:i]
	}
	if strings.IndexByte(s, '%') >= 0 || hasCTL(rawurl) {
		return rawurl
	}
	i := strings.Index(s, "://")
	if i < 0 || !validScheme(s[:i]) {
		return rawurl
	}
	rest := s[i+3:]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		return rest[:j]
	}
	return rest
}

// hasCTL reports whether s contains a byte url.Parse rejects outright
// (ASCII control characters, including DEL).
func hasCTL(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < ' ' || s[i] == 0x7f {
			return true
		}
	}
	return false
}

// validScheme mirrors net/url's scheme grammar: ALPHA *(ALPHA / DIGIT /
// "+" / "-" / ".").
func validScheme(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z':
		case '0' <= c && c <= '9' || c == '+' || c == '-' || c == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// mightLeak is the zero-allocation prefilter: it probes each channel's
// automaton over raw regions and scratch-decoded variants that together
// form a provable superset of every surface the full scan would build.
// false is conclusive (the record is clean); true falls through to the
// full scan.
//
// Superset argument, per channel:
//
//   - referer: surfaces are the raw header and its query-unescaped form
//     (absent when unescape fails) — both checked directly.
//   - uri: the raw URL covers the raw query and the path's encoded
//     bytes; the query-mode decode of the query substring covers the
//     decoded-query surface and every named parameter value (percent
//     decoding is byte-local, so a decoded pair value is a substring of
//     the decoded whole); the path-mode decode of the pre-query prefix
//     covers u.Path ('+' stays literal there). A failed whole-query
//     decode is NOT conclusive — individual pairs may still decode — so
//     it forces the slow path; a failed prefix decode implies url.Parse
//     fails and the legacy scan builds no uri surfaces at all.
//   - cookie: raw value plus its query-unescaped form, as legacy.
//   - payload: the raw body; for form bodies a query-mode decode of the
//     whole body covers every pair value (decode failure → slow path:
//     ParseQuery drops only the failing pairs); for JSON bodies a raw
//     miss is conclusive only when the engine's tokens cannot be
//     produced by number/bool re-rendering (jsonLeafSafe) and the body
//     contains no escape sequences — otherwise slow path.
func (s *Scanner) mightLeak(r *httpmodel.Request) bool {
	e := s.eng

	if ref := r.Referer(); ref != "" {
		a := e.channelFor(httpmodel.SurfaceReferer)
		if a.containsString(ref) {
			return true
		}
		if dec, ok := unescapeInto(s.dec[:0], ref, true); ok {
			s.dec = dec[:0]
			if a.contains(dec) {
				return true
			}
		}
	}

	if u := r.URL; u != "" {
		a := e.channelFor(httpmodel.SurfaceURI)
		if a.containsString(u) {
			return true
		}
		prefix, query := splitURL(u)
		if query != "" {
			dec, ok := unescapeInto(s.dec[:0], query, true)
			if !ok {
				return true // pairs may still decode individually
			}
			s.dec = dec[:0]
			if a.contains(dec) {
				return true
			}
		}
		if strings.IndexByte(prefix, '%') >= 0 {
			if dec, ok := unescapeInto(s.dec[:0], prefix, false); ok {
				s.dec = dec[:0]
				if a.contains(dec) {
					return true
				}
			}
			// Decode failure: url.Parse rejects the URL, so the legacy
			// scan has no uri surfaces either — conclusive.
		}
	}

	if len(r.Cookies) > 0 {
		a := e.channelFor(httpmodel.SurfaceCookie)
		for i := range r.Cookies {
			v := r.Cookies[i].Value
			if a.containsString(v) {
				return true
			}
			if strings.IndexByte(v, '%') >= 0 || strings.IndexByte(v, '+') >= 0 {
				if dec, ok := unescapeInto(s.dec[:0], v, true); ok {
					s.dec = dec[:0]
					if a.contains(dec) {
						return true
					}
				}
			}
		}
	}

	if len(r.Body) > 0 {
		a := e.channelFor(httpmodel.SurfaceBody)
		if a.contains(r.Body) {
			return true
		}
		switch {
		case strings.HasPrefix(r.BodyType, "application/x-www-form-urlencoded"):
			dec, ok := unescapeInto(s.dec[:0], r.Body, true)
			if !ok {
				return true // ParseQuery drops only the failing pairs
			}
			s.dec = dec[:0]
			if a.contains(dec) {
				return true
			}
		case strings.HasPrefix(r.BodyType, "application/json"):
			if !e.jsonLeafSafe || indexByte(r.Body, '\\') >= 0 {
				return true
			}
		}
	}
	return false
}

// scanRecord is the full scan, reached only for records the prefilter
// could not clear. It reproduces core.Detector.DetectRecord exactly;
// allocations here (the dedup map, the leak slice) are per-leaky-record,
// off the steady-state path.
func (s *Scanner) scanRecord(siteDomain, receiver string, cloaked bool, rec *httpmodel.Record) []core.Leak {
	s.surfBuf = httpmodel.SurfacesInto(&rec.Request, s.surfBuf[:0])
	surfaces := s.surfBuf
	if s.eng.concurrent {
		return s.scanChannels(siteDomain, receiver, cloaked, rec, surfaces)
	}

	type key struct {
		method httpmodel.SurfaceKind
		value  string
	}
	found := map[key]*core.Leak{}
	var order []key

	scan := func(named bool) {
		for i := range surfaces {
			sf := &surfaces[i]
			if (sf.Name != "") != named {
				continue
			}
			a := s.eng.channelFor(sf.Kind)
			s.idxBuf = a.findInto(sf.Data, &s.scratch, s.idxBuf[:0])
			for _, idx := range s.idxBuf {
				tok := a.tokenAt(idx)
				k := key{sf.Kind, tok.Value}
				if l, ok := found[k]; ok {
					if l.Param == "" && sf.Name != "" {
						l.Param = sf.Name
					}
					continue
				}
				found[k] = &core.Leak{
					Site:       siteDomain,
					Receiver:   receiver,
					Cloaked:    cloaked,
					Method:     sf.Kind,
					Param:      sf.Name,
					Token:      tok,
					RequestURL: rec.Request.URL,
					Phase:      rec.Phase,
					Seq:        rec.Seq,
				}
				order = append(order, k)
			}
		}
	}
	scan(true)  // named surfaces first: they own parameter attribution
	scan(false) // whole-region surfaces catch the rest

	if len(order) == 0 {
		return nil
	}
	out := make([]core.Leak, 0, len(order))
	for _, k := range order {
		out = append(out, *found[k])
	}
	return out
}

// scanChannels is the concurrent-channel scan: one goroutine per leak
// channel, each with private scratch and dedup state (the dedup key
// includes the channel, so channels are independent). Reassembly follows
// the surface-construction order — named uri, cookie, payload segments,
// then whole referer, uri, payload segments — which is exactly the order
// the serial named-then-whole scan emits, so output is byte-identical.
func (s *Scanner) scanChannels(siteDomain, receiver string, cloaked bool, rec *httpmodel.Record, surfaces []httpmodel.Surface) []core.Leak {
	var res [numChannels]channelLeaks
	var wg sync.WaitGroup
	for ci := 0; ci < numChannels; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res[ci] = scanOneChannel(s.eng, ci, siteDomain, receiver, cloaked, rec, surfaces, &s.chScratch[ci], &s.chIdx[ci])
		}(ci)
	}
	wg.Wait()

	n := 0
	for ci := range res {
		n += len(res[ci].named) + len(res[ci].whole)
	}
	if n == 0 {
		return nil
	}
	out := make([]core.Leak, 0, n)
	for _, ci := range [...]int{chURI, chCookie, chBody} {
		out = append(out, res[ci].named...)
	}
	for _, ci := range [...]int{chReferer, chURI, chBody} {
		out = append(out, res[ci].whole...)
	}
	return out
}

type channelLeaks struct {
	named []core.Leak
	whole []core.Leak
}

var channelKinds = [numChannels]httpmodel.SurfaceKind{
	chReferer: httpmodel.SurfaceReferer,
	chURI:     httpmodel.SurfaceURI,
	chCookie:  httpmodel.SurfaceCookie,
	chBody:    httpmodel.SurfaceBody,
}

func scanOneChannel(e *Engine, ci int, siteDomain, receiver string, cloaked bool, rec *httpmodel.Record, surfaces []httpmodel.Surface, sc *pii.Scratch, idxBuf *[]int) channelLeaks {
	kind := channelKinds[ci]
	a := &e.channels[ci]
	found := map[string]*core.Leak{}
	var namedOrder, wholeOrder []string

	scan := func(named bool, order []string) []string {
		for i := range surfaces {
			sf := &surfaces[i]
			if sf.Kind != kind || (sf.Name != "") != named {
				continue
			}
			*idxBuf = a.findInto(sf.Data, sc, (*idxBuf)[:0])
			for _, idx := range *idxBuf {
				tok := a.tokenAt(idx)
				if l, ok := found[tok.Value]; ok {
					if l.Param == "" && sf.Name != "" {
						l.Param = sf.Name
					}
					continue
				}
				found[tok.Value] = &core.Leak{
					Site:       siteDomain,
					Receiver:   receiver,
					Cloaked:    cloaked,
					Method:     sf.Kind,
					Param:      sf.Name,
					Token:      tok,
					RequestURL: rec.Request.URL,
					Phase:      rec.Phase,
					Seq:        rec.Seq,
				}
				order = append(order, tok.Value)
			}
		}
		return order
	}
	namedOrder = scan(true, nil)
	wholeOrder = scan(false, nil)

	var out channelLeaks
	for _, v := range namedOrder {
		out.named = append(out.named, *found[v])
	}
	for _, v := range wholeOrder {
		out.whole = append(out.whole, *found[v])
	}
	return out
}

// DecodeDetect is the A3 ablation's decode-and-scan strategy on the
// two-phase engine, byte-identical to core.Detector.DecodeDetect.
func (s *Scanner) DecodeDetect(siteDomain string, rec *httpmodel.Record, maxDepth int) []core.Leak {
	s.beginSite(siteDomain)
	receiver, cloaked := s.receiverFor(&rec.Request)
	if receiver == "" {
		return nil
	}
	var out []core.Leak
	seen := map[string]bool{}
	var scanData func(sf httpmodel.Surface, data []byte, depth int)
	scanData = func(sf httpmodel.Surface, data []byte, depth int) {
		for _, tok := range s.eng.cands.FindIn(data) {
			k := string(sf.Kind) + "|" + tok.Value
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, core.Leak{
				Site: siteDomain, Receiver: receiver, Cloaked: cloaked,
				Method: sf.Kind, Param: sf.Name, Token: tok,
				RequestURL: rec.Request.URL, Phase: rec.Phase, Seq: rec.Seq,
			})
		}
		if depth >= maxDepth {
			return
		}
		for _, name := range invertibleCodecs {
			c, _ := encode.Lookup(name)
			dec, err := c.Decode(data)
			if err != nil || len(dec) == 0 {
				continue
			}
			scanData(sf, dec, depth+1)
		}
	}
	s.surfBuf = httpmodel.SurfacesInto(&rec.Request, s.surfBuf[:0])
	for _, sf := range s.surfBuf {
		scanData(sf, sf.Data, 0)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Method != out[b].Method {
			return out[a].Method < out[b].Method
		}
		if out[a].Param != out[b].Param {
			return out[a].Param < out[b].Param
		}
		return out[a].Token.Value < out[b].Token.Value
	})
	return out
}

var invertibleCodecs = encode.Invertible()

// splitURL cuts a raw URL the way url.Parse delimits it: fragment at the
// first '#', then query at the first '?' of what remains.
func splitURL(u string) (prefix, query string) {
	if i := strings.IndexByte(u, '#'); i >= 0 {
		u = u[:i]
	}
	if j := strings.IndexByte(u, '?'); j >= 0 {
		return u[:j], u[j+1:]
	}
	return u, ""
}

// unescapeInto percent-decodes s into dst, mirroring url.QueryUnescape
// (plusToSpace) / url.PathUnescape (!plusToSpace) semantics exactly:
// a '%' not followed by two hex digits fails, everything else passes
// through. It allocates only when dst's capacity is exceeded.
func unescapeInto[T text](dst []byte, s T, plusToSpace bool) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '%':
			if i+2 >= len(s) || !ishex(s[i+1]) || !ishex(s[i+2]) {
				return dst, false
			}
			dst = append(dst, unhex(s[i+1])<<4|unhex(s[i+2]))
			i += 2
		case c == '+' && plusToSpace:
			dst = append(dst, ' ')
		default:
			dst = append(dst, c)
		}
	}
	return dst, true
}

type text interface{ ~string | ~[]byte }

func indexByte[T text](s T, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func ishex(c byte) bool {
	switch {
	case '0' <= c && c <= '9', 'a' <= c && c <= 'f', 'A' <= c && c <= 'F':
		return true
	}
	return false
}

func unhex(c byte) byte {
	switch {
	case '0' <= c && c <= '9':
		return c - '0'
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10
	}
	return c - 'A' + 10
}
