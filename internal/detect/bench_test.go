package detect

import (
	"net/url"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

// The detect benchmarks compare the legacy single-phase detector against
// the two-phase engine on the workloads that dominate a study: the
// per-record scan (BenchmarkScan — clean records are the overwhelming
// majority, so the no-leak path is the one that matters) and the
// per-site batch (BenchmarkDetectSite, over a real crawled ecosystem).
// `make bench` records them in BENCH_detect.json.

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	zone := dnssim.NewZone()
	eng, err := NewEngine(pii.Default(), dnssim.NewClassifier(zone), Config{})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// benchRecords returns a clean third-party record (the steady state) and
// a leaky one (percent-encoded email in the query).
func benchRecords() (clean, leaky httpmodel.Record) {
	clean = httpmodel.Record{Request: httpmodel.Request{
		URL:     "https://t.adnxs.com/ping?v=2&cb=123456&sess=zZ9yY8xX7",
		Headers: map[string]string{"Referer": "https://www.shop.example.com/cart"},
		Cookies: []httpmodel.Cookie{
			{Name: "uid", Value: "a1b2c3d4e5f6", Domain: "adnxs.com"},
			{Name: "sess", Value: "deadbeef00", Domain: "adnxs.com"},
		},
		Body:     []byte("v=2&cb=654321"),
		BodyType: "application/x-www-form-urlencoded",
	}}
	leaky = httpmodel.Record{Request: httpmodel.Request{
		URL: "https://t.adnxs.com/c?e=" + url.QueryEscape(pii.Default().Email) + "&v=2",
	}}
	return clean, leaky
}

func BenchmarkScan(b *testing.B) {
	eng := benchEngine(b)
	legacy := core.NewDetector(eng.Candidates(), eng.CNAME())
	clean, leaky := benchRecords()
	site := "shop.example.com"

	run := func(name string, rec *httpmodel.Record) {
		b.Run("legacy/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				legacy.DetectRecord(site, rec)
			}
		})
		b.Run("scanner/"+name, func(b *testing.B) {
			sc := eng.NewScanner()
			sc.DetectRecord(site, rec) // warm the receiver memo
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.DetectRecord(site, rec)
			}
		})
	}
	run("clean", &clean)
	run("leaky", &leaky)
}

func BenchmarkDetectSite(b *testing.B) {
	eco, err := webgen.Generate(webgen.SmallConfig(37))
	if err != nil {
		b.Fatal(err)
	}
	cname := dnssim.NewClassifier(eco.Zone)
	eng := MustNewEngine(eco.Persona, cname, Config{})
	conc := MustNewEngine(eco.Persona, cname, Config{ConcurrentChannels: true})
	legacy := core.NewDetector(eng.Candidates(), cname)
	succ := crawler.Crawl(eco, browser.Firefox88()).Successes()
	if len(succ) == 0 {
		b.Fatal("no successful crawls")
	}

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := succ[i%len(succ)]
			legacy.DetectSite(c.Domain, c.Records)
		}
	})
	b.Run("scanner", func(b *testing.B) {
		sc := eng.NewScanner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := succ[i%len(succ)]
			sc.DetectSite(c.Domain, c.Records)
		}
	})
	b.Run("engine-pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := succ[i%len(succ)]
			eng.DetectSite(c.Domain, c.Records)
		}
	})
	b.Run("concurrent-channels", func(b *testing.B) {
		sc := conc.NewScanner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := succ[i%len(succ)]
			sc.DetectSite(c.Domain, c.Records)
		}
	})
}
