package detect

import (
	"sync"

	"piileak/internal/pii"
)

// The shared candidate-set build cache. Compiling a candidate set is the
// expensive half of an Engine (§3.1 explodes a persona into tens of
// thousands of tokens and an automaton over them); everything else in an
// Engine is cheap glue. The cache is keyed by the persona value plus the
// canonical CandidateConfig fingerprint, so ablations, the browser
// countermeasure matrix and repeated Study constructions in one process
// all share a single compile per distinct configuration.
//
// Entries are per-key once-guarded: concurrent first builders of the
// same key block on one compile instead of racing duplicates.

type cacheKey struct {
	persona pii.Persona
	cfg     string
}

type cacheEntry struct {
	once sync.Once
	cs   *pii.CandidateSet
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*cacheEntry{}

	cacheHits   uint64
	cacheMisses uint64
)

// cachedCandidates returns the compiled candidate set for (persona,
// cfg), building it at most once per process. hit reports whether the
// compile was already present (or in flight) when the call arrived.
func cachedCandidates(p pii.Persona, cfg pii.CandidateConfig) (cs *pii.CandidateSet, hit bool, err error) {
	k := cacheKey{persona: p, cfg: cfg.Key()}
	cacheMu.Lock()
	e, ok := cache[k]
	if !ok {
		e = &cacheEntry{}
		cache[k] = e
		cacheMisses++
	} else {
		cacheHits++
	}
	cacheMu.Unlock()
	e.once.Do(func() {
		e.cs, e.err = pii.BuildCandidates(p, cfg)
	})
	if e.err != nil {
		return nil, false, e.err
	}
	return e.cs, ok, nil
}

// CacheStats reports the build cache's lifetime hit/miss counters.
func CacheStats() (hits, misses uint64) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return cacheHits, cacheMisses
}

// CachedCandidates exposes the shared build cache to callers that need
// a bare candidate set (ablations measuring candidate-set shape) rather
// than a full Engine, so they too compile each configuration at most
// once per process.
func CachedCandidates(p pii.Persona, cfg pii.CandidateConfig) (*pii.CandidateSet, error) {
	cs, _, err := cachedCandidates(p, cfg)
	return cs, err
}
