package ctxflow_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ".", ctxflow.Analyzer, "a")
}
