// Package ctxflow enforces the crash-only runtime's context
// discipline (DESIGN.md §9): cancellation must reach every blocking
// call, so library code may not mint detached contexts, and a function
// that holds a ctx must hand it to every callee capable of taking one.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"piileak/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbids context.Background/TODO outside package main and, in " +
		"functions that hold a ctx, flags time.Sleep and calls to " +
		"functions whose Context-taking variant (XContext) is ignored; " +
		"the crash-only shutdown depends on cancellation reaching every " +
		"blocking call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		nilGuarded := collectNilGuards(pass, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, hasCtxParam(pass, fd.Type), isMain, fd.Name.Name, nilGuarded)
		}
	}
	return nil
}

// collectNilGuards marks context.Background/TODO calls inside the
// nil-default idiom — `if ctx == nil { ctx = context.Background() }` —
// which keeps a ctx-optional entry point honest rather than detaching
// from a caller who did supply one.
func collectNilGuards(pass *analysis.Pass, f *ast.File) map[*ast.CallExpr]bool {
	guarded := map[*ast.CallExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		var checked ast.Expr
		switch {
		case isNilIdent(cond.Y):
			checked = cond.X
		case isNilIdent(cond.X):
			checked = cond.Y
		default:
			return true
		}
		if !isCtxType(pass.TypesInfo.TypeOf(checked)) {
			return true
		}
		for _, stmt := range ifs.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, rhs := range as.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok &&
					analysis.IsPkgCall(pass.TypesInfo, call, "context", "Background", "TODO") {
					guarded[call] = true
				}
			}
		}
		return true
	})
	return guarded
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkFunc walks one function body. hasCtx reports whether a
// context.Context is in scope (own parameter or captured from an
// enclosing function); nested literals inherit it. self is the
// enclosing declared function's name, so XContext implementing itself
// in terms of X is not told to call XContext.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, hasCtx, isMain bool, self string, nilGuarded map[*ast.CallExpr]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Body, hasCtx || hasCtxParam(pass, n.Type), isMain, self, nilGuarded)
			return false
		case *ast.CallExpr:
			checkCall(pass, n, hasCtx, isMain, self, nilGuarded)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, hasCtx, isMain bool, self string, nilGuarded map[*ast.CallExpr]bool) {
	info := pass.TypesInfo
	if analysis.IsPkgCall(info, call, "context", "Background", "TODO") {
		if !isMain && !nilGuarded[call] {
			fn := analysis.Callee(info, call)
			pass.Reportf(call.Pos(),
				"context.%s creates a detached context in a library package; accept and thread the "+
					"caller's ctx so cancellation reaches every blocking call (crash-only shutdown, DESIGN.md §9)",
				fn.Name())
		}
		return
	}
	if !hasCtx {
		return
	}
	if analysis.IsPkgCall(info, call, "time", "Sleep") {
		pass.Reportf(call.Pos(),
			"time.Sleep ignores the caller's ctx; use resilience.SleepContext with the injected clock "+
				"so shutdown cancels the wait")
		return
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if variant := ctxVariant(fn); variant != nil && variant.Name() != self {
		pass.Reportf(call.Pos(),
			"%s has a context-capable variant %s; the caller holds a ctx and must pass it so "+
				"cancellation propagates", fn.Name(), variant.Name())
	}
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// sigHasCtx reports whether any parameter of sig is a context.Context.
func sigHasCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxVariant finds fn's context-taking sibling: for a package-level
// function F without a ctx param, a function FContext in the same
// package that takes one; for a method, a method on the same receiver
// type. Returns nil when fn already takes a ctx or no variant exists.
func ctxVariant(fn *types.Func) *types.Func {
	if fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sigHasCtx(sig) {
		return nil
	}
	name := fn.Name() + "Context"
	if sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() != name {
				continue
			}
			if ms, ok := m.Type().(*types.Signature); ok && sigHasCtx(ms) {
				return m
			}
		}
		return nil
	}
	v, ok := fn.Pkg().Scope().Lookup(name).(*types.Func)
	if !ok {
		return nil
	}
	if vs, ok := v.Type().(*types.Signature); ok && sigHasCtx(vs) {
		return v
	}
	return nil
}
