// Package a exercises ctxflow: detached contexts, ignored Context
// variants, blocking sleeps, and suppression.
package a

import (
	"context"
	"time"
)

var sink any

func detached() {
	sink = context.Background() // want `context\.Background creates a detached context`
	sink = context.TODO()       // want `context\.TODO creates a detached context`
}

func allowed() {
	sink = context.Background() //lint:allow ctxflow fixture: suppression must hide this finding
}

func sleepy(ctx context.Context) {
	time.Sleep(time.Second) // want `time\.Sleep ignores the caller's ctx`
	_ = ctx
}

func sleepWithoutCtx() {
	// No ctx in scope: the sleep is detrand/latency business, not
	// ctxflow's.
	time.Sleep(time.Millisecond)
}

func capturedCtx(ctx context.Context) {
	f := func() {
		time.Sleep(time.Second) // want `time\.Sleep ignores the caller's ctx`
	}
	f()
	_ = ctx
}

func do()                           { sink = 1 }
func doContext(ctx context.Context) { sink = ctx }

func caller(ctx context.Context) {
	do() // want `do has a context-capable variant doContext`
	doContext(ctx)
}

func callerWithoutCtx() {
	do() // no ctx in hand: nothing to thread
}

type client struct{}

func (client) Fetch()                           {}
func (client) FetchContext(ctx context.Context) {}

func method(ctx context.Context, c client) {
	c.Fetch() // want `Fetch has a context-capable variant FetchContext`
	c.FetchContext(ctx)
}

func vetted(ctx context.Context) {
	do() //lint:allow ctxflow fixture: suppression must hide this finding
	_ = ctx
}

// nilGuard is the ctx-optional entry point idiom: defaulting a nil ctx
// keeps callers honest without detaching from one they did supply.
func nilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	if nil == ctx {
		ctx = context.TODO()
	}
	sink = ctx
}

func nilGuardWrongVar(ctx context.Context) {
	if sink == nil {
		// The guard must test the ctx itself; this detaches.
		ctx = context.Background() // want `context\.Background creates a detached context`
	}
	sink = ctx
}

// waitContext implements itself in terms of wait: the variant rule
// must not tell the Context variant to call itself.
func wait() { sink = 2 }

func waitContext(ctx context.Context) {
	wait()
	_ = ctx
}
