// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface this repo needs: Analyzer,
// Pass, Diagnostic, a package loader built on `go list -export`, an
// allowlist (`//lint:allow`) layer, and a deterministic runner.
//
// Why not the real module? The repo is intentionally stdlib-only, and
// the invariants piilint protects (byte-identical study output across
// serial/parallel/streamed/resumed runs, no persona PII in logs) are
// repo-specific anyway. The API mirrors go/analysis closely enough that
// migrating an analyzer to the upstream framework is mechanical: swap
// the import, keep the Run function.
//
// See README.md in this directory for the analyzer catalog and the
// allowlist policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph help text: what the analyzer flags
	// and which invariant that protects.
	Doc string

	// FactTypes declares the Fact types this analyzer exports, as
	// zero-value pointers (e.g. []analysis.Fact{(*WallClockFact)(nil)}
	// is wrong — use &WallClockFact{}). Declaring them lets
	// analysistest decode exported facts for `// want fact:`
	// assertions and documents the analyzer's interprocedural
	// surface in -list output.
	FactTypes []Fact

	// Run applies the analyzer to one package. It reports findings
	// through pass.Report / pass.Reportf, exchanges interprocedural
	// knowledge through pass.ExportObjectFact / pass.ImportObjectFact,
	// and returns an error only for internal failures (not findings).
	Run func(pass *Pass) error
}

// A Pass is the input to an Analyzer.Run: one type-checked package, a
// sink for diagnostics, and the fact environment — the dependencies'
// exported facts (read) and this package's fact set (write).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	report  func(Diagnostic)
	facts   *FactSet   // this package's exports (all analyzers share one set)
	deps    FactReader // dependencies' fact sets by import path
	allowed func(name string, pos token.Pos) bool
}

// Allowed reports whether a //lint:allow directive for this analyzer
// covers pos. Analyzers that derive facts from source lines (detrand's
// wall-clock taint) consult it so a vetted exception does not smear
// into every transitive caller — unless the analyzer decides severance
// is severance regardless (ctxflow).
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allowed == nil {
		return false
	}
	return p.allowed(p.Analyzer.Name, pos)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
