// Package lockdiscipline enforces ERASER-style mutex hygiene: lock
// state must never be copied (a copied sync.Mutex silently splits the
// critical section), and every Lock must be dominated by an Unlock —
// a defer, or an explicit release on every return path. The concurrent
// scanner and the sharded supervisor make both mistakes cheap to write
// and expensive to debug.
package lockdiscipline

import (
	"fmt"
	"go/ast"
	"go/types"

	"piileak/internal/analysis"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "flags sync.Mutex/RWMutex value copies (parameters, receivers, " +
		"assignments, range values) and Lock/RLock calls not released on " +
		"every path (no defer and a return escapes while holding)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignatureCopies(pass, fd)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssignCopies(pass, n)
			case *ast.RangeStmt:
				checkRangeCopies(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockPaths(pass, n.Body)
				}
			case *ast.FuncLit:
				checkLockPaths(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// ---- lock copies ----

// lockDesc describes how t carries lock state by value: "sync.Mutex"
// itself, or "T (contains sync.Mutex)" for a struct/array holding one.
// It returns "" when t copies no lock state (pointers are fine).
func lockDesc(t types.Type) string {
	name := containedLock(t, 0)
	if name == "" {
		return ""
	}
	if named, ok := t.(*types.Named); ok && !isLockType(t) {
		return named.Obj().Name() + " (contains " + name + ")"
	}
	if !isLockType(t) {
		return "a value containing " + name
	}
	return name
}

// containedLock returns the name of the first sync lock reachable from
// t without following a pointer, or "".
func containedLock(t types.Type, depth int) string {
	if depth > 10 {
		return ""
	}
	if isLockType(t) {
		named := t.(*types.Named)
		return "sync." + named.Obj().Name()
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := containedLock(u.Field(i).Type(), depth+1); name != "" {
				return name
			}
		}
	case *types.Array:
		return containedLock(u.Elem(), depth+1)
	}
	return ""
}

// isLockType reports whether t is sync.Mutex, sync.RWMutex, or
// sync.Once (whose done-state copies just as wrongly).
func isLockType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond":
		return true
	}
	return false
}

// checkSignatureCopies flags value parameters and receivers whose type
// carries lock state.
func checkSignatureCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(field *ast.Field, kind string) {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			return
		}
		if _, ok := t.(*types.Pointer); ok {
			return
		}
		if desc := lockDesc(t); desc != "" {
			pass.Reportf(field.Pos(),
				"%s passed by value as a %s copies its lock state; use a pointer", desc, kind)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			report(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			report(field, "parameter")
		}
	}
}

// checkAssignCopies flags assignments that copy a lock-carrying value
// read from an existing variable (composite literals and call results
// are fresh values, not copies of a live lock).
func checkAssignCopies(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if len(as.Lhs) == len(as.Rhs) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue // a blank-identifier discard copies nothing
			}
		}
		if !isReadForm(rhs) {
			continue
		}
		t := pass.TypesInfo.TypeOf(rhs)
		if t == nil {
			continue
		}
		if desc := lockDesc(t); desc != "" {
			pass.Reportf(rhs.Pos(),
				"assignment copies %s; lock state must not be duplicated — use a pointer", desc)
		}
	}
}

// checkRangeCopies flags range clauses whose value variable copies a
// lock-carrying element each iteration.
func checkRangeCopies(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := pass.TypesInfo.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if desc := lockDesc(t); desc != "" {
		pass.Reportf(rng.Value.Pos(),
			"range value copies %s each iteration; iterate by index or store pointers", desc)
	}
}

// isReadForm reports whether e reads an existing value (as opposed to
// constructing a fresh one).
func isReadForm(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// ---- lock/unlock paths ----

// lockInfo tracks one outstanding Lock call.
type lockInfo struct {
	pos      ast.Node // the Lock call, where findings anchor
	call     string   // rendered "mu.Lock" form for the message
	release  string   // the matching release method name
	reported bool
}

// checkLockPaths scans one function body (nested literals are scanned
// separately) and reports Lock calls that a return path escapes while
// holding, or that are never released at all.
func checkLockPaths(pass *analysis.Pass, body *ast.BlockStmt) {
	held := scanStmts(pass, body.List, map[string]*lockInfo{})
	for _, li := range held {
		if !li.reported {
			li.reported = true
			pass.Reportf(li.pos.Pos(),
				"%s() is never released in this function; add defer %s()", li.call, li.release)
		}
	}
}

// lockEvent classifies a statement-level call on a sync lock.
func lockEvent(pass *analysis.Pass, call *ast.CallExpr) (key, method, recv string, ok bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", "", false
	}
	recv = exprKey(sel.X)
	kind := "w" // write-lock family
	if fn.Name() == "RLock" || fn.Name() == "RUnlock" {
		kind = "r"
	}
	return recv + "/" + kind, fn.Name(), recv, true
}

// scanStmts walks one statement list, tracking outstanding locks.
// Branch bodies are scanned with a shallow copy of the held map
// (lockInfo values shared, so one Lock reports at most once); the
// union of outstanding locks survives the branch — conservative in
// both directions the discipline cares about.
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]*lockInfo) map[string]*lockInfo {
	for _, stmt := range stmts {
		held = scanStmt(pass, stmt, held)
	}
	return held
}

func scanStmt(pass *analysis.Pass, stmt ast.Stmt, held map[string]*lockInfo) map[string]*lockInfo {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return held
		}
		key, method, recv, ok := lockEvent(pass, call)
		if !ok {
			return held
		}
		switch method {
		case "Lock", "RLock":
			release := "Unlock"
			if method == "RLock" {
				release = "RUnlock"
			}
			held[key] = &lockInfo{
				pos:     call,
				call:    recv + "." + method,
				release: recv + "." + release,
			}
		case "Unlock", "RUnlock":
			delete(held, key)
		}
	case *ast.DeferStmt:
		if key, method, _, ok := lockEvent(pass, s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			delete(held, key)
		}
	case *ast.ReturnStmt:
		for _, li := range held {
			if !li.reported {
				li.reported = true
				pos := pass.Fset.Position(s.Pos())
				pass.Reportf(li.pos.Pos(),
					"%s() is not released on every path: the return at line %d escapes while holding it; "+
						"add defer %s()", li.call, pos.Line, li.release)
			}
		}
	case *ast.BlockStmt:
		return scanStmts(pass, s.List, held)
	case *ast.LabeledStmt:
		return scanStmt(pass, s.Stmt, held)
	case *ast.IfStmt:
		branch := scanStmts(pass, s.Body.List, copyHeld(held))
		held = union(held, branch)
		if s.Else != nil {
			els := scanStmt(pass, s.Else, copyHeld(held))
			held = union(held, els)
		}
	case *ast.ForStmt:
		held = union(held, scanStmts(pass, s.Body.List, copyHeld(held)))
	case *ast.RangeStmt:
		held = union(held, scanStmts(pass, s.Body.List, copyHeld(held)))
	case *ast.SwitchStmt:
		held = scanCases(pass, s.Body, held)
	case *ast.TypeSwitchStmt:
		held = scanCases(pass, s.Body, held)
	case *ast.SelectStmt:
		held = scanCases(pass, s.Body, held)
	}
	return held
}

// scanCases scans each clause of a switch/select body against a copy
// of the held set and unions the residues.
func scanCases(pass *analysis.Pass, body *ast.BlockStmt, held map[string]*lockInfo) map[string]*lockInfo {
	out := held
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		out = union(out, scanStmts(pass, stmts, copyHeld(held)))
	}
	return out
}

func copyHeld(held map[string]*lockInfo) map[string]*lockInfo {
	out := make(map[string]*lockInfo, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func union(a, b map[string]*lockInfo) map[string]*lockInfo {
	for k, v := range b {
		if _, ok := a[k]; !ok {
			a[k] = v
		}
	}
	return a
}

// exprKey renders a lock receiver expression to a stable string so
// "s.mu" in two statements names the same lock. Unrecognized forms get
// a position-unique key, which can only under-match (never conflate
// two different locks).
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprKey(e.X)
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return fmt.Sprintf("expr@%d", e.Pos())
}
