// Package a exercises lockdiscipline: lock-state copies and
// Lock/Unlock path discipline.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

var sink int

// ---- copies ----

func copyParam(mu sync.Mutex) { // want `sync\.Mutex passed by value as a parameter copies its lock state; use a pointer`
	_ = mu
}

func (c counter) copyRecv() { // want `counter \(contains sync\.Mutex\) passed by value as a receiver copies its lock state; use a pointer`
	sink = c.n
}

func (c *counter) ptrRecv() { // a pointer receiver copies nothing
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func copyStructParam(c counter) { // want `counter \(contains sync\.Mutex\) passed by value as a parameter copies its lock state; use a pointer`
	sink = c.n
}

func copyAssign(src counter) { // want `counter \(contains sync\.Mutex\) passed by value as a parameter copies its lock state; use a pointer`
	dup := src // want `assignment copies counter \(contains sync\.Mutex\); lock state must not be duplicated — use a pointer`
	sink = dup.n
}

func freshValue() {
	var c counter // zero value and composite literals are fresh, not copies
	d := counter{}
	sink = c.n + d.n
}

func copyRange(cs []counter) {
	for _, c := range cs { // want `range value copies counter \(contains sync\.Mutex\) each iteration; iterate by index or store pointers`
		sink = c.n
	}
}

func indexRange(cs []counter) {
	for i := range cs {
		sink = cs[i].n
	}
}

func vettedCopy(mu sync.Mutex) { //lint:allow lockdiscipline fixture: suppression must hide this finding
	_ = mu
}

// ---- lock/unlock paths ----

func good(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func balanced(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func leaky(c *counter) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is never released in this function; add defer c\.mu\.Unlock\(\)`
	c.n++
}

func returnWhileHeld(c *counter) int {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path: the return at line \d+ escapes while holding it; add defer c\.mu\.Unlock\(\)`
	if c.n > 0 {
		return c.n
	}
	c.mu.Unlock()
	return 0
}

func branchBalanced(c *counter) int {
	c.mu.Lock()
	if c.n > 0 {
		c.mu.Unlock()
		return c.n
	}
	c.n = 1
	c.mu.Unlock()
	return 0
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int
}

func readBalanced(t *table, key string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[key]
}

func readLeaky(t *table, key string) int {
	t.mu.RLock() // want `t\.mu\.RLock\(\) is not released on every path: the return at line \d+ escapes while holding it; add defer t\.mu\.RUnlock\(\)`
	return t.rows[key]
}

func mismatchedKinds(t *table) {
	t.mu.RLock()  // want `t\.mu\.RLock\(\) is never released in this function; add defer t\.mu\.RUnlock\(\)`
	t.mu.Unlock() // releases the write lock, not the read lock
}

func litScanned(c *counter) {
	f := func() {
		c.mu.Lock() // want `c\.mu\.Lock\(\) is never released in this function; add defer c\.mu\.Unlock\(\)`
		c.n++
	}
	f()
}

func vettedHold(c *counter) {
	c.mu.Lock() //lint:allow lockdiscipline fixture: handed off to the caller deliberately
	c.n++
}
