package lockdiscipline_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, ".", lockdiscipline.Analyzer, "a")
}
