package suite_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"piileak/internal/analysis"
	"piileak/internal/analysis/suite"
)

// TestRepoIsLintClean is the acceptance gate: the shipped tree must
// carry zero findings, with every deliberate exception annotated. A
// failure here prints the same file:line diagnostics `make lint` does.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every package in the module")
	}
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestParallelMatchesSequential pins the parallel driver's contract at
// repo scale: 8-worker output over the whole module is byte-identical
// to the sequential runner's — the sorted-findings total order, not
// scheduling luck, decides what the user sees.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every package in the module twice")
	}
	root := moduleRoot(t)
	g, err := analysis.LoadGraph(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		d := &analysis.Driver{Workers: workers}
		findings, _, err := d.Run(g, suite.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, f := range findings {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	sequential := render(1)
	if parallel := render(8); parallel != sequential {
		t.Fatalf("8-worker output diverged from sequential:\nseq:\n%s\npar:\n%s", sequential, parallel)
	}
}

// TestPiilintBinary builds cmd/piilint and checks both verdicts: exit 0
// over this repo, and a file:line detrand diagnostic with exit 1 over a
// scratch module seeded with a time.Now call.
func TestPiilintBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the piilint binary")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "piilint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/piilint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building piilint: %v\n%s", err, out)
	}

	clean := exec.Command(bin, "./...")
	clean.Dir = root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("piilint over the repo should exit clean, got %v:\n%s", err, out)
	}

	seeded := t.TempDir()
	writeFile(t, filepath.Join(seeded, "go.mod"), "module seed\n\ngo 1.22\n")
	writeFile(t, filepath.Join(seeded, "seed.go"), `package seed

import "time"

// Stamp is the canonical determinism bug piilint exists to catch.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	dirty := exec.Command(bin, "./...")
	dirty.Dir = seeded
	out, err := dirty.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("piilint over the seeded module: want exit 1, got %v:\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "seed.go:6") || !strings.Contains(text, "detrand") {
		t.Fatalf("diagnostic should name seed.go:6 and detrand:\n%s", text)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := analysis.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
