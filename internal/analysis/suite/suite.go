// Package suite registers the piilint analyzer set in its canonical
// order. cmd/piilint, the self-check test, and the lint benchmark all
// consume this one list so they can never disagree about what "the
// suite" is.
package suite

import (
	"piileak/internal/analysis"
	"piileak/internal/analysis/closecheck"
	"piileak/internal/analysis/ctxflow"
	"piileak/internal/analysis/detrand"
	"piileak/internal/analysis/goroleak"
	"piileak/internal/analysis/lockdiscipline"
	"piileak/internal/analysis/maporder"
	"piileak/internal/analysis/obskey"
	"piileak/internal/analysis/piilog"
)

// Analyzers returns the full piilint suite, ordered by name.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		ctxflow.Analyzer,
		detrand.Analyzer,
		goroleak.Analyzer,
		lockdiscipline.Analyzer,
		maporder.Analyzer,
		obskey.Analyzer,
		piilog.Analyzer,
	}
}
