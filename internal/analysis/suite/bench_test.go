package suite_test

import (
	"path/filepath"
	"testing"

	"piileak/internal/analysis"
	"piileak/internal/analysis/suite"
)

// BenchmarkPiilint times the full lint pass — go list, parsing,
// type-checking against export data, and all eight analyzers — over
// every package in the module, across the driver's operating points:
// sequential vs parallel workers, and cold vs warm cache. `make bench`
// records every arm in BENCH_lint.json so analyzer and scheduler cost
// ride the same perf trajectory as the pipeline benchmarks.
func BenchmarkPiilint(b *testing.B) {
	root, err := analysis.ModuleRoot()
	if err != nil {
		b.Fatal(err)
	}

	runDriver := func(b *testing.B, workers int, cache *analysis.Cache) {
		b.Helper()
		var packages int
		for i := 0; i < b.N; i++ {
			g, err := analysis.LoadGraph(root, "./...")
			if err != nil {
				b.Fatal(err)
			}
			d := &analysis.Driver{Workers: workers, Cache: cache}
			findings, _, err := d.Run(g, suite.Analyzers())
			if err != nil {
				b.Fatal(err)
			}
			if len(findings) != 0 {
				b.Fatalf("repo not lint-clean: %v", findings[0])
			}
			packages = len(g.Packages)
		}
		b.ReportMetric(float64(packages), "packages")
	}

	b.Run("sequential", func(b *testing.B) { runDriver(b, 1, nil) })
	b.Run("workers4", func(b *testing.B) { runDriver(b, 4, nil) })
	b.Run("workers8", func(b *testing.B) { runDriver(b, 8, nil) })
	b.Run("cold-cache", func(b *testing.B) {
		// A fresh cache directory per iteration: every package misses,
		// so the arm measures analysis plus cache writes.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := &analysis.Cache{Dir: filepath.Join(b.TempDir(), "lintcache")}
			b.StartTimer()
			g, err := analysis.LoadGraph(root, "./...")
			if err != nil {
				b.Fatal(err)
			}
			d := &analysis.Driver{Workers: 8, Cache: cache}
			if _, _, err := d.Run(g, suite.Analyzers()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		cache := &analysis.Cache{Dir: filepath.Join(b.TempDir(), "lintcache")}
		g, err := analysis.LoadGraph(root, "./...")
		if err != nil {
			b.Fatal(err)
		}
		d := &analysis.Driver{Workers: 8, Cache: cache}
		if _, _, err := d.Run(g, suite.Analyzers()); err != nil {
			b.Fatal(err) // seed the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := analysis.LoadGraph(root, "./...")
			if err != nil {
				b.Fatal(err)
			}
			findings, stats, err := d.Run(g, suite.Analyzers())
			if err != nil {
				b.Fatal(err)
			}
			if len(findings) != 0 || len(stats.Analyzed) != 0 {
				b.Fatalf("warm run should be fully cached and clean: %d findings, %d analyzed",
					len(findings), len(stats.Analyzed))
			}
		}
	})
}
