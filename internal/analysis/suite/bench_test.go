package suite_test

import (
	"testing"

	"piileak/internal/analysis"
	"piileak/internal/analysis/suite"
)

// BenchmarkPiilint times the full lint pass — go list, parsing,
// type-checking against export data, and all four analyzers — over
// every package in the module. `make bench` records it in
// BENCH_lint.json so analyzer cost rides the same perf trajectory as
// the pipeline benchmarks.
func BenchmarkPiilint(b *testing.B) {
	root, err := analysis.ModuleRoot()
	if err != nil {
		b.Fatal(err)
	}
	var packages int
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.Load(root, "./...")
		if err != nil {
			b.Fatal(err)
		}
		findings, err := analysis.Run(pkgs, suite.Analyzers())
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("repo not lint-clean: %v", findings[0])
		}
		packages = len(pkgs)
	}
	b.ReportMetric(float64(packages), "packages")
}
