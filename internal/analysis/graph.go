package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A GraphPackage is one analyzable node of the package DAG: metadata
// only — parsing and type-checking happen lazily (and in parallel) in
// the driver, and not at all on a warm cache hit.
type GraphPackage struct {
	PkgPath string
	Dir     string
	GoFiles []string // absolute paths, go list order
	Imports []string // in-module imports (edges into the DAG), sorted
}

// A Graph is the loaded package DAG plus the export-data index shared
// by every node's type-check. Export files are written by the go tool
// and read-only here, so concurrent type-checks share the map safely.
type Graph struct {
	Packages []*GraphPackage // sorted by import path
	exports  map[string]string
	index    map[string]*GraphPackage
}

// Package returns the node for an import path, or nil.
func (g *Graph) Package(path string) *GraphPackage { return g.index[path] }

// LoadGraph resolves patterns (e.g. "./...") with the go tool and
// returns the in-module package DAG: one node per matched package,
// edges along in-module imports, export data recorded for the full
// dependency closure. dir is the go tool's working directory; "" means
// the current directory.
//
// Only non-test GoFiles are analyzed: test files deliberately exercise
// nondeterminism (fault injection, timing) and are not part of the
// shipped pipeline the analyzers guard.
func LoadGraph(dir string, patterns ...string) (*Graph, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	g := &Graph{exports: map[string]string{}, index: map[string]*GraphPackage{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			g.exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		abs := make([]string, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			abs = append(abs, joinIfRelative(p.Dir, name))
		}
		node := &GraphPackage{PkgPath: p.ImportPath, Dir: p.Dir, GoFiles: abs, Imports: p.Imports}
		g.Packages = append(g.Packages, node)
		g.index[p.ImportPath] = node
	}
	sort.Slice(g.Packages, func(i, j int) bool { return g.Packages[i].PkgPath < g.Packages[j].PkgPath })

	// Restrict edges to in-module targets and sort them: the DAG the
	// scheduler walks, in one canonical shape.
	for _, node := range g.Packages {
		var in []string
		for _, imp := range node.Imports {
			if _, ok := g.index[imp]; ok && imp != node.PkgPath {
				in = append(in, imp)
			}
		}
		sort.Strings(in)
		node.Imports = in
	}
	return g, nil
}

// load parses and type-checks one node against export data, with its
// own FileSet — nodes share no mutable state, which is what lets the
// driver analyze independent packages concurrently.
func (g *Graph) load(node *GraphPackage) (*Package, error) {
	fset := token.NewFileSet()
	imp := ExportImporter(fset, g.exports)
	return checkPackage(fset, imp, node.PkgPath, node.Dir, node.GoFiles)
}

// ContentHash digests the node's source bytes (file names and
// contents, in order) — the package-local ingredient of its cache key.
func (node *GraphPackage) ContentHash() (string, error) {
	h := sha256.New()
	for _, path := range node.GoFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("analysis: hashing %s: %w", node.PkgPath, err)
		}
		fmt.Fprintf(h, "%s\x00%x\n", path, sha256.Sum256(data))
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func joinIfRelative(dir, name string) string {
	if filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(dir, name)
}
