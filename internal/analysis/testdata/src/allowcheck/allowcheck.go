// Package allowcheck exercises the framework's directive hygiene: an
// allow comment without a reason suppresses nothing and is itself
// reported.
package allowcheck

import "fmt"

func ok() {
	//lint:allow detrand
	fmt.Println("the directive above is malformed: no reason given")
}

func fine() {
	//lint:allow detrand fully formed directive parses silently
	fmt.Println("well-formed")
}
