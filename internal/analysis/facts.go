package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a serializable datum an analyzer attaches to a package-level
// object (function, method, var, const, type) so downstream packages can
// reason interprocedurally: "this function transitively reads the wall
// clock", "this function forwards parameter 0 to a log sink". Facts are
// gob-encoded at export time — even within one process — so the in-memory
// driver, the on-disk cache and the go vet unitchecker (vetx files) all
// exchange exactly the same representation.
//
// Fact types must be pointers to structs and should implement String();
// analysistest matches `// want fact:"..."` patterns against that
// rendering at the definition site.
type Fact interface {
	AFact() // marker method; dedicated to the fact namespace
}

// An ObjectFact is one (object, fact) pair, surfaced for tests and
// debugging (AllObjectFacts).
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// factKey addresses one fact: the exporting analyzer, the object's
// stable path within its package, and the fact's concrete type (one
// analyzer may attach several fact types to the same object).
type factKey struct {
	Analyzer string
	Object   string
	Type     string
}

// A FactSet is the complete fact output of one package: every fact
// every analyzer exported, keyed by (analyzer, object path, fact type),
// values gob-encoded. FactSets are immutable once the package's
// analysis completes, so concurrent readers need no locking.
type FactSet struct {
	PkgPath string
	m       map[factKey][]byte
}

// NewFactSet returns an empty fact set for the package.
func NewFactSet(pkgPath string) *FactSet {
	return &FactSet{PkgPath: pkgPath, m: map[factKey][]byte{}}
}

// factRecord is the serialized form of one fact, used by Encode/Decode
// (cache entries and vetx files).
type factRecord struct {
	Analyzer string
	Object   string
	Type     string
	Data     []byte
}

// records returns the set's contents sorted by key — the canonical
// order every serialization and hash uses.
func (fs *FactSet) records() []factRecord {
	recs := make([]factRecord, 0, len(fs.m))
	for k, v := range fs.m {
		recs = append(recs, factRecord{Analyzer: k.Analyzer, Object: k.Object, Type: k.Type, Data: v})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return recs
}

// Len reports the number of facts in the set.
func (fs *FactSet) Len() int { return len(fs.m) }

// Hash returns a content digest of the set: identical facts yield an
// identical hash regardless of export order, so it is a sound cache-key
// ingredient for dependent packages.
func (fs *FactSet) Hash() [32]byte {
	h := sha256.New()
	for _, r := range fs.records() {
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00%x\n", r.Analyzer, r.Object, r.Type, r.Data)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Encode serializes the set (deterministically) for a cache entry or a
// vetx file.
func (fs *FactSet) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fs.records()); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts for %s: %w", fs.PkgPath, err)
	}
	return buf.Bytes(), nil
}

// DecodeFactSet reconstructs a fact set serialized by Encode.
func DecodeFactSet(pkgPath string, data []byte) (*FactSet, error) {
	var recs []factRecord
	if len(data) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
			return nil, fmt.Errorf("analysis: decoding facts for %s: %w", pkgPath, err)
		}
	}
	fs := NewFactSet(pkgPath)
	for _, r := range recs {
		fs.m[factKey{Analyzer: r.Analyzer, Object: r.Object, Type: r.Type}] = r.Data
	}
	return fs, nil
}

// A FactReader resolves the fact sets of a package's dependencies by
// import path. A nil map is a valid empty reader.
type FactReader map[string]*FactSet

// lookup fetches one fact's encoded bytes.
func (fr FactReader) lookup(pkgPath string, k factKey) ([]byte, bool) {
	fs := fr[pkgPath]
	if fs == nil {
		return nil, false
	}
	b, ok := fs.m[k]
	return b, ok
}

// ObjectKey returns the stable intra-package path used to address obj
// in fact sets: "Name" for package-level objects, "Recv.Name" for
// methods (pointer receivers are stripped — Go forbids a T/*T method
// name collision). It returns "" for objects facts cannot address
// (locals, parameters, struct fields, interface methods).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "" // method on an unnamed or interface type
			}
			return named.Obj().Name() + "." + fn.Name()
		}
		// Identity against the package scope (rather than checking
		// fn.Scope) keeps the key stable for functions imported from gc
		// export data, which carry no scope.
		if obj.Pkg().Scope().Lookup(fn.Name()) == obj {
			return fn.Name()
		}
		return "" // function literal or local func
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	return ""
}

// encodeFact gob-encodes one fact value (a pointer to struct).
func encodeFact(fact Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeFact gob-decodes bytes into ptr (a pointer to struct).
func decodeFact(data []byte, ptr Fact) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(ptr)
}

// factType names a fact's concrete type for keying, e.g.
// "*detrand.WallClockFact".
func factType(fact Fact) string { return fmt.Sprintf("%T", fact) }

// NewFactOfType allocates a fresh zero value of the same concrete type
// as prototype (which must be a pointer to struct). analysistest uses
// it to decode exported facts for `// want fact:` matching.
func NewFactOfType(prototype Fact) Fact {
	return reflect.New(reflect.TypeOf(prototype).Elem()).Interface().(Fact)
}

// ExportObjectFact attaches fact to obj, which must be declared in the
// package under analysis and addressable by ObjectKey. Facts on
// unaddressable objects are programmer errors and panic loudly —
// analyzers only export on top-level declarations.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact on foreign object %v", p.Analyzer.Name, obj))
	}
	key := ObjectKey(obj)
	if key == "" {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact on unaddressable object %v", p.Analyzer.Name, obj))
	}
	data, err := encodeFact(fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: %s: fact %T is not gob-serializable: %v", p.Analyzer.Name, fact, err))
	}
	p.facts.m[factKey{Analyzer: p.Analyzer.Name, Object: key, Type: factType(fact)}] = data
}

// ImportObjectFact copies the fact of ptr's type attached to obj by
// this same analyzer into ptr, reporting whether one exists. It reads
// the current package's own exports (so fixpoint passes can observe
// what they just exported) and the fact sets of all dependencies.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	k := factKey{Analyzer: p.Analyzer.Name, Object: key, Type: factType(ptr)}
	var data []byte
	var ok bool
	if obj.Pkg() == p.Pkg {
		data, ok = p.facts.m[k]
	} else {
		data, ok = p.deps.lookup(obj.Pkg().Path(), k)
	}
	if !ok {
		return false
	}
	if err := decodeFact(data, ptr); err != nil {
		panic(fmt.Sprintf("analysis: %s: decoding fact %T for %s: %v", p.Analyzer.Name, ptr, key, err))
	}
	return true
}

// AllObjectFacts lists every fact this analyzer exported on the current
// package, decoded, sorted by object key then type. Primarily for tests.
func (p *Pass) AllObjectFacts() []ObjectFact {
	return DecodeObjectFacts(p.Pkg, p.facts, p.Analyzer)
}

// DecodeObjectFacts decodes every fact analyzer a exported on pkg's
// objects from fs, sorted by object key then fact type — the form
// analysistest's `// want fact:` matching consumes. Facts whose type
// is not declared in a.FactTypes are skipped.
func DecodeObjectFacts(pkg *types.Package, fs *FactSet, a *Analyzer) []ObjectFact {
	type rec struct {
		key  factKey
		data []byte
	}
	var recs []rec
	for k, v := range fs.m {
		if k.Analyzer == a.Name {
			recs = append(recs, rec{k, v})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key.Object != recs[j].key.Object {
			return recs[i].key.Object < recs[j].key.Object
		}
		return recs[i].key.Type < recs[j].key.Type
	})
	var out []ObjectFact
	for _, r := range recs {
		obj := lookupByKey(pkg, r.key.Object)
		if obj == nil {
			continue
		}
		var proto Fact
		for _, ft := range a.FactTypes {
			if factType(ft) == r.key.Type {
				proto = ft
				break
			}
		}
		if proto == nil {
			continue
		}
		fact := NewFactOfType(proto)
		if err := decodeFact(r.data, fact); err != nil {
			continue
		}
		out = append(out, ObjectFact{Object: obj, Fact: fact})
	}
	return out
}

// lookupByKey resolves an ObjectKey back to the object it names.
func lookupByKey(pkg *types.Package, key string) types.Object {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			recv := pkg.Scope().Lookup(key[:i])
			tn, ok := recv.(*types.TypeName)
			if !ok {
				return nil
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return nil
			}
			for m := 0; m < named.NumMethods(); m++ {
				if named.Method(m).Name() == key[i+1:] {
					return named.Method(m)
				}
			}
			return nil
		}
	}
	return pkg.Scope().Lookup(key)
}
