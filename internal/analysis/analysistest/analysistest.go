// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source as
// comments — the same convention as golang.org/x/tools's analysistest:
//
//	m[k] = v // want `regexp` `another regexp`
//
// Each regexp must match a distinct diagnostic reported on that line,
// and every diagnostic must be claimed by some want. //lint:allow
// directives are honored, so suppression is testable too.
//
// Exported facts are testable at the definition site with the fact
// form, matched against the fact's String() rendering:
//
//	func Stamp() int64 { // want fact:`wallclock\(via time\.Now\)`
//
// Diagnostic and fact patterns may be mixed in one want comment; every
// exported fact must be claimed by a fact want, mirroring diagnostics.
//
// Testdata layout follows the upstream convention:
//
//	<analyzer>/testdata/src/<pkg>/*.go
//
// Packages may import the standard library and this repo's own
// packages (resolved through `go list -export` from the module root).
// RunDeps loads several testdata packages in dependency order, later
// ones importing earlier ones by package name, so cross-package fact
// propagation is testable too.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"piileak/internal/analysis"
)

// want is one expectation: a regexp that must match a diagnostic (or,
// when fact is set, an exported fact) at file:line.
type want struct {
	file string
	line int
	fact bool
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads testdata/src/<pkg> beneath dir, applies the analyzer, and
// reports any mismatch between expectations and diagnostics on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunDeps(t, dir, a, pkg)
}

// RunDeps loads several testdata packages in order — dependencies
// first; later packages may import earlier ones by package name — and
// applies the analyzer to each with facts flowing along the chain.
// Diagnostics and fact expectations are checked in every package.
func RunDeps(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	dirs := make([]string, len(pkgs))
	for i, pkg := range pkgs {
		dirs[i] = filepath.Join(dir, "testdata", "src", pkg)
	}
	loaded, err := analysis.LoadDirs(dirs...)
	if err != nil {
		t.Fatalf("loading %s: %v", strings.Join(dirs, ", "), err)
	}

	var wants []*want
	for _, p := range loaded {
		w, err := collectWants(p)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, w...)
	}
	if len(wants) == 0 {
		// Belt and braces: a testdata corpus with zero expectations is
		// far more likely a harness bug than a deliberate all-negative
		// corpus — negative cases live beside positive ones.
		t.Fatalf("testdata packages %v have no want expectations", pkgs)
	}

	results, err := analysis.RunPackages(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	for i, res := range results {
		for _, f := range res.Findings {
			if !claim(wants, false, f.Pos.Filename, f.Pos.Line, f.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Message)
			}
		}
		p := loaded[i]
		for _, of := range analysis.DecodeObjectFacts(p.Types, res.Facts, a) {
			pos := p.Fset.Position(of.Object.Pos())
			rendered := fmt.Sprint(of.Fact)
			if !claim(wants, true, pos.Filename, pos.Line, rendered) {
				t.Errorf("%s:%d: unexpected fact on %s: %s", pos.Filename, pos.Line, of.Object.Name(), rendered)
			}
		}
	}
	for _, w := range wants {
		if !w.hit {
			kind := "diagnostic"
			if w.fact {
				kind = "fact"
			}
			t.Errorf("%s:%d: no %s matching %q", w.file, w.line, kind, w.raw)
		}
	}
}

// claim marks the first unhit want of the right kind matching this
// diagnostic or fact rendering.
func claim(wants []*want, fact bool, file string, line int, text string) bool {
	for _, w := range wants {
		if !w.hit && w.fact == fact && w.file == file && w.line == line && w.re.MatchString(text) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans every comment for want expectations.
func collectWants(p *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range p.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				patterns, err := splitPatterns(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat.re)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat.re, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, fact: pat.fact, re: re, raw: pat.re})
				}
			}
		}
	}
	return wants, nil
}

// pattern is one parsed want item: a diagnostic regexp, or a fact
// regexp when prefixed with "fact:".
type pattern struct {
	fact bool
	re   string
}

// splitPatterns parses a sequence of Go-quoted or backquoted strings,
// each optionally prefixed with "fact:".
func splitPatterns(s string) ([]pattern, error) {
	var out []pattern
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		var p pattern
		if rest, ok := strings.CutPrefix(s, "fact:"); ok {
			p.fact = true
			s = rest
		}
		if s == "" {
			return nil, fmt.Errorf("fact: prefix needs a quoted pattern")
		}
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern: %q", s)
		}
		lit := s[:end+2]
		pat, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", lit, err)
		}
		p.re = pat
		out = append(out, p)
		s = s[end+2:]
	}
	return out, nil
}
