// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source as
// comments — the same convention as golang.org/x/tools's analysistest:
//
//	m[k] = v // want `regexp` `another regexp`
//
// Each regexp must match a distinct diagnostic reported on that line,
// and every diagnostic must be claimed by some want. //lint:allow
// directives are honored, so suppression is testable too.
//
// Testdata layout follows the upstream convention:
//
//	<analyzer>/testdata/src/<pkg>/*.go
//
// Packages may import the standard library and this repo's own
// packages (resolved through `go list -export` from the module root).
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"piileak/internal/analysis"
)

// want is one expectation: a regexp that must match a diagnostic at
// file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads testdata/src/<pkg> beneath dir, applies the analyzer, and
// reports any mismatch between expectations and diagnostics on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	src := filepath.Join(dir, "testdata", "src", pkg)
	p, err := analysis.LoadDir(src)
	if err != nil {
		t.Fatalf("loading %s: %v", src, err)
	}

	wants, err := collectWants(p)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unhit want matching this finding.
func claim(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans every comment for want expectations.
func collectWants(p *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range p.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				patterns, err := splitPatterns(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	// Belt and braces: a testdata package with zero expectations is
	// far more likely a harness bug than a deliberate all-negative
	// corpus — negative cases live beside positive ones.
	if len(wants) == 0 {
		return nil, fmt.Errorf("testdata package %s has no want expectations", p.PkgPath)
	}
	return wants, nil
}

// splitPatterns parses a sequence of Go-quoted or backquoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern: %q", s)
		}
		lit := s[:end+2]
		pat, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", lit, err)
		}
		out = append(out, pat)
		s = s[end+2:]
	}
	return out, nil
}
