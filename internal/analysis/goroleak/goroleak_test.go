package goroleak_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, ".", goroleak.Analyzer, "a")
}

// TestCrossPackageFacts pins that WaitsForCancelFact travels: package
// "b" may launch a.Drain (fact-carrying) but not a.Spin.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.RunDeps(t, ".", goroleak.Analyzer, "a", "b")
}
