// Package goroleak enforces goroutine hygiene in library packages: a
// launched goroutine must have a cancellation (or join) path — a ctx
// it watches, a channel it receives on, a select, or a WaitGroup it
// signals — so the crash-only runtime (DESIGN.md §9, §11) can actually
// drain on shutdown. Goroutines that can outlive the study run skew
// the supervisor's restart accounting and leak under the torture
// harnesses.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"piileak/internal/analysis"
)

// Analyzer is the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "goroutines launched in library packages must have a " +
		"cancellation path: a ctx parameter, a channel receive or " +
		"select, or a sync.WaitGroup join. Exports WaitsForCancelFact " +
		"on functions that block cancellably, so launching them from " +
		"another package is provably safe",
	FactTypes: []analysis.Fact{&WaitsForCancelFact{}},
	Run:       run,
}

// A WaitsForCancelFact marks a function whose body has a cancellation
// or join path — it watches a ctx, receives on a channel, selects, or
// signals a WaitGroup — so `go pkg.F(...)` is safe from any package.
type WaitsForCancelFact struct{}

// AFact marks WaitsForCancelFact as a fact type.
func (*WaitsForCancelFact) AFact() {}

func (*WaitsForCancelFact) String() string { return "waitsForCancel" }

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Package main's goroutines die with the process; the library
		// rule is about goroutines outliving a Study.Run call.
		return nil
	}
	marked := exportCancelFacts(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, g, marked)
			return true
		})
	}
	return nil
}

// exportCancelFacts runs the intra-package fixpoint: a package-level
// function earns WaitsForCancelFact when its body has a cancellation
// marker (see hasCancelPath), possibly through a call to another
// marked function.
func exportCancelFacts(pass *analysis.Pass) map[*types.Func]bool {
	type decl struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || analysis.ObjectKey(fn) == "" {
				continue
			}
			decls = append(decls, decl{fn: fn, body: fd.Body})
		}
	}
	marked := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if marked[d.fn] {
				continue
			}
			if hasCancelPath(pass, d.body, marked) {
				marked[d.fn] = true
				pass.ExportObjectFact(d.fn, &WaitsForCancelFact{})
				changed = true
			}
		}
	}
	return marked
}

// checkGo verifies one go statement has a cancellation path: the
// launched literal's body has a marker, or the named callee takes a
// ctx, carries WaitsForCancelFact, or is a marked local function.
func checkGo(pass *analysis.Pass, g *ast.GoStmt, marked map[*types.Func]bool) {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if hasCancelPath(pass, lit.Body, marked) {
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine has no cancellation path (no ctx, channel receive, select, or WaitGroup); "+
				"it can outlive the study run — thread a ctx or done channel")
		return
	}
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
		if cancellableCallee(pass, fn, marked) {
			return
		}
	}
	// A ctx or channel handed to the goroutine as an argument is a
	// cancellation path for the launcher's purposes even when the
	// callee is a function value we cannot resolve.
	for _, arg := range call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && isCtxType(t) {
			return
		}
	}
	pass.Reportf(g.Pos(),
		"goroutine has no cancellation path (callee takes no ctx and is not known to block cancellably); "+
			"it can outlive the study run — thread a ctx or done channel")
}

// cancellableCallee reports whether launching fn is safe: a ctx
// parameter, the local fixpoint mark, or an imported fact.
func cancellableCallee(pass *analysis.Pass, fn *types.Func, marked map[*types.Func]bool) bool {
	if sig, ok := fn.Type().(*types.Signature); ok && sigHasCtx(sig) {
		return true
	}
	if fn.Pkg() == pass.Pkg {
		return marked[fn]
	}
	var fact WaitsForCancelFact
	return pass.ImportObjectFact(fn, &fact)
}

// hasCancelPath scans a body (nested literals included — a goroutine
// that launches a cancellable helper is itself governed by that
// helper's discipline) for a cancellation marker: a channel receive,
// a select, ranging over a channel, any context.Context-typed
// expression, a sync.WaitGroup method call, or a call to a function
// already known to block cancellably.
func hasCancelPath(pass *analysis.Pass, body *ast.BlockStmt, marked map[*types.Func]bool) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := analysis.Callee(info, n); fn != nil {
				if isWaitGroupMethod(fn) {
					found = true
				} else if cancellableCallee(pass, fn, marked) {
					found = true
				}
			}
		case *ast.Ident:
			if t := info.TypeOf(n); t != nil && isCtxType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupMethod reports whether fn is (*sync.WaitGroup).Done or
// .Wait — the join half of the WaitGroup protocol.
func isWaitGroupMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	if fn.Name() != "Done" && fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// sigHasCtx reports whether any parameter of sig is a context.Context.
func sigHasCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
