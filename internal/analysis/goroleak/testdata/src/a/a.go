// Package a exercises goroleak: leaky launches, the accepted
// cancellation shapes, fact export, and suppression.
package a

import (
	"context"
	"sync"
)

var sink any

func fire(work func()) {
	go work() // want `goroutine has no cancellation path`
}

func spinLit() {
	go func() { // want `goroutine has no cancellation path`
		for {
			sink = 1
		}
	}()
}

func withCtx(ctx context.Context) { // want fact:`waitsForCancel`
	go func() {
		<-ctx.Done()
	}()
}

func withDone(done chan struct{}) { // want fact:`waitsForCancel`
	go func() {
		select {
		case <-done:
		}
	}()
}

func withWG(wg *sync.WaitGroup) { // want fact:`waitsForCancel`
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink = 2
	}()
}

func withChanRange(ch chan int) { // want fact:`waitsForCancel`
	go func() {
		for v := range ch {
			sink = v
		}
	}()
}

// Worker blocks on its ctx: launching it from anywhere is safe by
// signature alone.
func Worker(ctx context.Context) { // want fact:`waitsForCancel`
	<-ctx.Done()
}

func launchWorker(ctx context.Context) { // want fact:`waitsForCancel`
	go Worker(ctx)
}

// Drain has no ctx parameter but provably blocks on a channel: the
// exported fact is what lets other packages launch it.
func Drain(ch chan int) int { // want fact:`waitsForCancel`
	return <-ch
}

func launchDrain(ch chan int) { // want fact:`waitsForCancel`
	go Drain(ch)
}

// Spin never yields: launching it is the bug class.
func Spin() {
	for {
		sink = 3
	}
}

func launchSpin() {
	go Spin() // want `goroutine has no cancellation path`
}

func vetted() {
	go Spin() //lint:allow goroleak fixture: suppression must hide this finding
}
