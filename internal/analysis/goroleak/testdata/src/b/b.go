// Package b exercises goroleak's cross-package facts: a.Drain has no
// ctx parameter, so only the imported WaitsForCancelFact proves the
// launch safe; a.Spin has no fact and stays a finding.
package b

import "a"

func launchImportedDrain(ch chan int) { // want fact:`waitsForCancel`
	go a.Drain(ch)
}

func launchImportedSpin() {
	go a.Spin() // want `goroutine has no cancellation path`
}
