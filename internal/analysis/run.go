package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one resolved diagnostic: position materialized, allow
// directives already applied.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A PackageResult is the complete analysis output of one package: the
// surviving findings (sorted), the number of diagnostics an allow
// directive suppressed, and the exported fact set.
type PackageResult struct {
	PkgPath    string
	Findings   []Finding
	Suppressed int
	Facts      *FactSet
}

// AnalyzePackage applies every analyzer to one package, with deps
// supplying the fact sets of the package's dependencies. Findings are
// filtered through the //lint:allow index and sorted.
func AnalyzePackage(pkg *Package, analyzers []*Analyzer, deps FactReader) (*PackageResult, error) {
	res := &PackageResult{PkgPath: pkg.PkgPath, Facts: NewFactSet(pkg.PkgPath)}
	idx := buildAllowIndex(pkg.Fset, pkg.Syntax)
	for _, d := range idx.malformed {
		res.Findings = append(res.Findings, Finding{
			Analyzer: "allow",
			Pos:      pkg.Fset.Position(d.pos),
			Message:  "lint:allow directive needs an analyzer name and a reason: //lint:allow <analyzer> <why this is safe>",
		})
	}
	allowed := func(name string, pos token.Pos) bool {
		return idx.suppressed(name, pkg.Fset.Position(pos))
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.TypesInfo,
			facts:     res.Facts,
			deps:      deps,
			allowed:   allowed,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if idx.suppressed(a.Name, pos) {
				res.Suppressed++
				return
			}
			res.Findings = append(res.Findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	SortFindings(res.Findings)
	return res, nil
}

// Run applies every analyzer to every package in slice order — facts
// flow forward, so callers pass dependencies before dependents (the
// parallel Driver schedules the real package DAG; this entry serves
// analysistest and other pre-loaded-package uses). Findings are
// filtered through the //lint:allow index and returned in deterministic
// order (file, line, column, analyzer, message) — the suite practices
// the ordering discipline it preaches.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	results, err := RunPackages(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, r := range results {
		findings = append(findings, r.Findings...)
	}
	SortFindings(findings)
	return findings, nil
}

// RunPackages is Run with per-package results (facts included) — the
// form analysistest needs for `// want fact:` assertions.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]*PackageResult, error) {
	deps := FactReader{}
	var results []*PackageResult
	for _, pkg := range pkgs {
		res, err := AnalyzePackage(pkg, analyzers, deps)
		if err != nil {
			return nil, err
		}
		deps[pkg.PkgPath] = res.Facts
		results = append(results, res)
	}
	return results, nil
}

// SortFindings orders findings by (file, line, column, analyzer,
// message) — the one total order every driver path (sequential,
// parallel, cached, vet unit) emits, which is what makes N-worker
// output byte-identical to sequential output.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
