package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one resolved diagnostic: position materialized, allow
// directives already applied.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package, filters findings through
// the //lint:allow index, and returns the survivors in deterministic
// order (file, line, column, analyzer, message) — the suite practices
// the ordering discipline it preaches.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		idx := buildAllowIndex(pkg.Fset, pkg.Syntax)
		for _, d := range idx.malformed {
			findings = append(findings, Finding{
				Analyzer: "allow",
				Pos:      pkg.Fset.Position(d.pos),
				Message:  "lint:allow directive needs an analyzer name and a reason: //lint:allow <analyzer> <why this is safe>",
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.TypesInfo,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if idx.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
