// Package piilog is a taint-lite pass that keeps the measurement tool
// from leaking its own persona's PII: values that look like (or are
// typed as) the §3.1 persona schema — email, phone, address, names —
// must not flow straight into log output or the standard streams.
// Redact first (pii.Redact); the study's leak *detection* is unaffected
// because detection never goes through a log sink.
package piilog

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"piileak/internal/analysis"
)

// Analyzer is the piilog pass.
var Analyzer = &analysis.Analyzer{
	Name: "piilog",
	Doc: "flags persona PII (pii.Persona/pii.Field values, or identifiers " +
		"named like email/phone/address/first_name/...) passed unredacted " +
		"to log.*, fmt.Print*, or os.Stderr/os.Stdout writes",
	Run: run,
}

// piiPkg is the package whose types carry the persona schema.
const piiPkg = "piileak/internal/pii"

// piiName matches identifiers and field names that, by convention,
// hold raw PII. Bare "name" is deliberately excluded (far too common
// for benign identifiers); the compound forms are matched instead.
var piiName = regexp.MustCompile(`(?i)^(e[-_]?mail(addr(ess)?)?|phone(num(ber)?|_number)?|addr(ess)?|ssn|dob|date_?of_?birth|birth_?date|(first|last|full|sur|given|family)[-_]?name)$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink, args := sinkArgs(pass, call)
			if sink == "" {
				return true
			}
			for _, arg := range args {
				checkArg(pass, sink, arg)
			}
			return true
		})
	}
	return nil
}

// sinkArgs classifies a call as a log sink and returns the payload
// arguments (format strings included — they are checked too, cheaply).
func sinkArgs(pass *analysis.Pass, call *ast.CallExpr) (string, []ast.Expr) {
	info := pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil
	}
	switch fn.Pkg().Path() {
	case "log":
		return "log." + fn.Name(), call.Args
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return "fmt." + fn.Name(), call.Args
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				if s := stdStream(info, call.Args[0]); s != "" {
					return "fmt." + fn.Name() + "(os." + s + ", …)", call.Args[1:]
				}
			}
		}
	}
	// Write/WriteString directly on os.Stderr / os.Stdout.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := stdStream(info, sel.X); s != "" && (fn.Name() == "Write" || fn.Name() == "WriteString") {
			return "os." + s, call.Args
		}
	}
	return "", nil
}

// stdStream reports "Stderr"/"Stdout" when expr resolves to that os
// package variable.
func stdStream(info *types.Info, expr ast.Expr) string {
	o := analysis.ObjectOf(info, expr)
	if o == nil || o.Pkg() == nil || o.Pkg().Path() != "os" {
		return ""
	}
	if o.Name() == "Stderr" || o.Name() == "Stdout" {
		return o.Name()
	}
	return ""
}

// checkArg walks one sink argument looking for raw PII, skipping
// subtrees already routed through a pii.Redact* helper and the safe
// pii.Field.Type selector (a type label, not a value).
func checkArg(pass *analysis.Pass, sink string, arg ast.Expr) {
	info := pass.TypesInfo
	ast.Inspect(arg, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == piiPkg && strings.HasPrefix(fn.Name(), "Redact") {
				return false // sanitized
			}
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if named(info.TypeOf(sel.X)) == "Field" && sel.Sel.Name == "Type" {
				return false // the PII *kind*, safe to print
			}
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if why := piiExpr(info, e); why != "" {
			pass.Reportf(e.Pos(),
				"%s flows into %s unredacted; persona PII must not reach logs — wrap it in pii.Redact",
				why, sink)
			return false
		}
		return true
	})
}

// piiExpr reports a non-empty description when e carries raw PII.
func piiExpr(info *types.Info, e ast.Expr) string {
	switch named(info.TypeOf(e)) {
	case "Persona":
		return "a pii.Persona value"
	case "Field":
		return "a pii.Field value"
	}
	switch e := e.(type) {
	case *ast.Ident:
		if piiName.MatchString(e.Name) {
			return "identifier " + e.Name
		}
	case *ast.SelectorExpr:
		switch named(info.TypeOf(e.X)) {
		case "Persona":
			return "persona field " + e.Sel.Name
		case "Field":
			if e.Sel.Name == "Value" {
				return "pii.Field.Value"
			}
			return ""
		}
		if piiName.MatchString(e.Sel.Name) {
			return "field " + e.Sel.Name
		}
	}
	return ""
}

// named reports the type name when t (or its pointee) is a named type
// declared in the pii package.
func named(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != piiPkg {
		return ""
	}
	return n.Obj().Name()
}
