// Package piilog is a taint-lite pass that keeps the measurement tool
// from leaking its own persona's PII: values that look like (or are
// typed as) the §3.1 persona schema — email, phone, address, names —
// must not flow straight into log output or the standard streams.
// Redact first (pii.Redact); the study's leak *detection* is unaffected
// because detection never goes through a log sink.
package piilog

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"
	"regexp"
	"sort"
	"strings"

	"piileak/internal/analysis"
)

// Analyzer is the piilog pass.
var Analyzer = &analysis.Analyzer{
	Name: "piilog",
	Doc: "flags persona PII (pii.Persona/pii.Field values, or identifiers " +
		"named like email/phone/address/first_name/...) passed unredacted " +
		"to log.*, fmt.Print*, os.Stderr/os.Stdout writes, http.Error, or " +
		"http.ResponseWriter writes (response bodies leave the process " +
		"like log lines do). Exports " +
		"ForwardsFact on wrapper functions that forward parameters to a " +
		"log sink, so call sites are checked interprocedurally",
	FactTypes: []analysis.Fact{&ForwardsFact{}},
	Run:       run,
}

// A ForwardsFact marks a function that passes one or more of its
// parameters, unredacted, into a log sink — directly or through
// another forwarder. Callers must treat the function as a sink for
// those argument positions. An allowed (//lint:allow) sink call severs
// the fact: a vetted exception does not smear into callers.
type ForwardsFact struct {
	Params []int  // forwarded parameter indices, sorted
	Sink   string // the root sink, e.g. "log.Println"
}

// AFact marks ForwardsFact as a fact type.
func (*ForwardsFact) AFact() {}

func (f *ForwardsFact) String() string {
	return fmt.Sprintf("forwards(params %v → %s)", f.Params, f.Sink)
}

// piiPkg is the package whose types carry the persona schema.
const piiPkg = "piileak/internal/pii"

// piiName matches identifiers and field names that, by convention,
// hold raw PII. Bare "name" is deliberately excluded (far too common
// for benign identifiers); the compound forms are matched instead.
var piiName = regexp.MustCompile(`(?i)^(e[-_]?mail(addr(ess)?)?|phone(num(ber)?|_number)?|addr(ess)?|ssn|dob|date_?of_?birth|birth_?date|(first|last|full|sur|given|family)[-_]?name)$`)

func run(pass *analysis.Pass) error {
	fwd := exportForwardFacts(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink, args := sinkArgs(pass, call)
			if sink == "" {
				checkForwardingCall(pass, call, fwd)
				return true
			}
			for _, arg := range args {
				checkArg(pass, sink, arg)
			}
			return true
		})
	}
	return nil
}

// exportForwardFacts runs the intra-package fixpoint: a package-level
// function earns (or grows) a ForwardsFact when a parameter of its
// reaches a log sink — or a forwarded position of another forwarder —
// at a non-allowed position. The returned map is the same-package view
// the report phase consults.
func exportForwardFacts(pass *analysis.Pass) map[*types.Func]*ForwardsFact {
	type decl struct {
		fn     *types.Func
		body   *ast.BlockStmt
		params map[types.Object]int
	}
	var decls []decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || analysis.ObjectKey(fn) == "" {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() == 0 {
				continue
			}
			params := map[types.Object]int{}
			for i := 0; i < sig.Params().Len(); i++ {
				params[sig.Params().At(i)] = i
			}
			decls = append(decls, decl{fn: fn, body: fd.Body, params: params})
		}
	}

	marked := map[*types.Func]*ForwardsFact{}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			have := map[int]bool{}
			sink := ""
			if got := marked[d.fn]; got != nil {
				for _, i := range got.Params {
					have[i] = true
				}
				sink = got.Sink
			}
			grew := false
			note := func(s string, args []ast.Expr) {
				for _, arg := range args {
					for _, i := range paramUses(pass, arg, d.params) {
						if !have[i] {
							have[i] = true
							grew = true
						}
						if sink == "" {
							sink = s
						}
					}
				}
			}
			ast.Inspect(d.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pass.Allowed(call.Pos()) {
					return true // vetted exception: severed
				}
				if s, args := sinkArgs(pass, call); s != "" {
					note(s, args)
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				if fact := forwarderFact(pass, fn, marked); fact != nil {
					for _, j := range fact.Params {
						note(fact.Sink, forwardedArgs(fn, call, j))
					}
				}
				return true
			})
			if grew {
				idxs := make([]int, 0, len(have))
				for i := range have {
					idxs = append(idxs, i)
				}
				sort.Ints(idxs)
				fact := &ForwardsFact{Params: idxs, Sink: sink}
				marked[d.fn] = fact
				pass.ExportObjectFact(d.fn, fact)
				changed = true
			}
		}
	}
	return marked
}

// forwarderFact returns fn's ForwardsFact, consulting the same-package
// fixpoint state for local functions and imported fact sets otherwise.
func forwarderFact(pass *analysis.Pass, fn *types.Func, marked map[*types.Func]*ForwardsFact) *ForwardsFact {
	if fn.Pkg() == pass.Pkg {
		return marked[fn]
	}
	var fact ForwardsFact
	if pass.ImportObjectFact(fn, &fact) {
		return &fact
	}
	return nil
}

// forwardedArgs maps a callee's forwarded parameter index to the call's
// argument expressions: one argument normally, the whole tail for the
// variadic parameter.
func forwardedArgs(fn *types.Func, call *ast.CallExpr, j int) []ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || j >= len(call.Args) {
		return nil
	}
	if sig.Variadic() && j == sig.Params().Len()-1 {
		return call.Args[j:]
	}
	return call.Args[j : j+1]
}

// paramUses lists the parameter indices (sorted) whose identifiers
// appear in e, skipping subtrees sanitized by pii.Redact* and the safe
// pii.Field.Type selector.
func paramUses(pass *analysis.Pass, e ast.Expr, params map[types.Object]int) []int {
	info := pass.TypesInfo
	seen := map[int]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == piiPkg && strings.HasPrefix(fn.Name(), "Redact") {
				return false
			}
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if named(info.TypeOf(sel.X)) == "Field" && sel.Sel.Name == "Type" {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil {
				if i, ok := params[o]; ok {
					seen[i] = true
				}
			}
		}
		return true
	})
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// checkForwardingCall treats a call to a fact-carrying wrapper as a
// sink for its forwarded argument positions.
func checkForwardingCall(pass *analysis.Pass, call *ast.CallExpr, fwd map[*types.Func]*ForwardsFact) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	fact := forwarderFact(pass, fn, fwd)
	if fact == nil {
		return
	}
	sink := funcLabel(pass, fn) + " (forwards to " + fact.Sink + ")"
	for _, j := range fact.Params {
		for _, arg := range forwardedArgs(fn, call, j) {
			checkArg(pass, sink, arg)
		}
	}
}

// funcLabel renders fn for diagnostics: "Name" or "Recv.Name" in the
// current package, "pkg.Name" elsewhere.
func funcLabel(pass *analysis.Pass, fn *types.Func) string {
	name := analysis.ObjectKey(fn)
	if name == "" {
		name = fn.Name()
	}
	if fn.Pkg() == pass.Pkg {
		return name
	}
	return path.Base(fn.Pkg().Path()) + "." + name
}

// sinkArgs classifies a call as a log sink and returns the payload
// arguments (format strings included — they are checked too, cheaply).
func sinkArgs(pass *analysis.Pass, call *ast.CallExpr) (string, []ast.Expr) {
	info := pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil
	}
	switch fn.Pkg().Path() {
	case "log":
		return "log." + fn.Name(), call.Args
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return "fmt." + fn.Name(), call.Args
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				if s := stdStream(info, call.Args[0]); s != "" {
					return "fmt." + fn.Name() + "(os." + s + ", …)", call.Args[1:]
				}
				if responseWriter(info, call.Args[0]) {
					return "fmt." + fn.Name() + "(http.ResponseWriter, …)", call.Args[1:]
				}
			}
		}
	case "net/http":
		// http.Error's message lands in the response body; only the
		// message argument is the payload (the writer and status are not).
		if fn.Name() == "Error" && len(call.Args) >= 2 {
			return "http.Error", call.Args[1:2]
		}
	case "io":
		if fn.Name() == "WriteString" && len(call.Args) > 0 && responseWriter(info, call.Args[0]) {
			return "io.WriteString(http.ResponseWriter, …)", call.Args[1:]
		}
	}
	// Write/WriteString directly on os.Stderr / os.Stdout, or on an
	// http.ResponseWriter (response bodies leave the process too).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn.Name() == "Write" || fn.Name() == "WriteString" {
			if s := stdStream(info, sel.X); s != "" {
				return "os." + s, call.Args
			}
			if responseWriter(info, sel.X) {
				return "http.ResponseWriter." + fn.Name(), call.Args
			}
		}
	}
	return "", nil
}

// responseWriter reports whether expr is statically typed as the
// net/http.ResponseWriter interface. Handlers hold the writer under
// that interface type, so the static check covers the real flows
// without chasing every concrete implementation.
func responseWriter(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == "ResponseWriter" && o.Pkg() != nil && o.Pkg().Path() == "net/http"
}

// stdStream reports "Stderr"/"Stdout" when expr resolves to that os
// package variable.
func stdStream(info *types.Info, expr ast.Expr) string {
	o := analysis.ObjectOf(info, expr)
	if o == nil || o.Pkg() == nil || o.Pkg().Path() != "os" {
		return ""
	}
	if o.Name() == "Stderr" || o.Name() == "Stdout" {
		return o.Name()
	}
	return ""
}

// checkArg walks one sink argument looking for raw PII, skipping
// subtrees already routed through a pii.Redact* helper and the safe
// pii.Field.Type selector (a type label, not a value).
func checkArg(pass *analysis.Pass, sink string, arg ast.Expr) {
	info := pass.TypesInfo
	ast.Inspect(arg, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == piiPkg && strings.HasPrefix(fn.Name(), "Redact") {
				return false // sanitized
			}
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if named(info.TypeOf(sel.X)) == "Field" && sel.Sel.Name == "Type" {
				return false // the PII *kind*, safe to print
			}
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if why := piiExpr(info, e); why != "" {
			pass.Reportf(e.Pos(),
				"%s flows into %s unredacted; persona PII must not reach logs — wrap it in pii.Redact",
				why, sink)
			return false
		}
		return true
	})
}

// piiExpr reports a non-empty description when e carries raw PII.
func piiExpr(info *types.Info, e ast.Expr) string {
	switch named(info.TypeOf(e)) {
	case "Persona":
		return "a pii.Persona value"
	case "Field":
		return "a pii.Field value"
	}
	switch e := e.(type) {
	case *ast.Ident:
		if piiName.MatchString(e.Name) {
			return "identifier " + e.Name
		}
	case *ast.SelectorExpr:
		switch named(info.TypeOf(e.X)) {
		case "Persona":
			return "persona field " + e.Sel.Name
		case "Field":
			if e.Sel.Name == "Value" {
				return "pii.Field.Value"
			}
			return ""
		}
		if piiName.MatchString(e.Sel.Name) {
			return "field " + e.Sel.Name
		}
	}
	return ""
}

// named reports the type name when t (or its pointee) is a named type
// declared in the pii package.
func named(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != piiPkg {
		return ""
	}
	return n.Obj().Name()
}
