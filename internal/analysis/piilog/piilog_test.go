package piilog_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/piilog"
)

func TestPIILog(t *testing.T) {
	analysistest.Run(t, ".", piilog.Analyzer, "a")
}
