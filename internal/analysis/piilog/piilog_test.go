package piilog_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/piilog"
)

func TestPIILog(t *testing.T) {
	analysistest.Run(t, ".", piilog.Analyzer, "a")
}

// TestCrossPackageForwarding pins the interprocedural rule end-to-end:
// "a" exports ForwardsFact on LogLine, and package "b" (which imports
// it) treats the wrapper as a sink.
func TestCrossPackageForwarding(t *testing.T) {
	analysistest.RunDeps(t, ".", piilog.Analyzer, "a", "b")
}
