// Package a exercises piilog: persona-typed values and PII-named
// identifiers reaching log sinks, redacted and non-sink negatives, and
// suppression.
package a

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"piileak/internal/pii"
)

func namedIdentifiers(email, phone string) { // want fact:`forwards\(params \[0 1\] → log\.Println\)`
	log.Println(email)           // want `identifier email flows into log\.Println`
	fmt.Printf("tel: %s", phone) // want `identifier phone flows into fmt\.Printf`
	os.Stderr.WriteString(phone) // want `identifier phone flows into os\.Stderr`
}

func personaTyped(p pii.Persona) { // want fact:`forwards\(params \[0\] → fmt\.Println\)`
	fmt.Println(p)                   // want `a pii\.Persona value flows into fmt\.Println`
	fmt.Printf("%s", p.City)         // want `persona field City flows into fmt\.Printf`
	fmt.Fprintln(os.Stderr, p.Email) // want `persona field Email flows into fmt\.Fprintln`
	log.Printf("dob=%s", p.DOB)      // want `persona field DOB flows into log\.Printf`
}

func fieldTyped(f pii.Field) { // want fact:`forwards\(params \[0\] → fmt\.Println\)`
	fmt.Println(f.Type)  // the PII kind is a safe label
	fmt.Println(f.Value) // want `pii\.Field\.Value flows into fmt\.Println`
}

func structFieldNames() {
	type account struct{ FirstName, Plan string }
	a := account{}
	log.Printf("%s on %s", a.FirstName, a.Plan) // want `field FirstName flows into log\.Printf`
}

func redacted(p pii.Persona, email string) {
	fmt.Println(pii.Redact(p.Email)) // routed through the redaction helper
	log.Println(pii.Redact(email))
}

func nonSinks(email string, w io.Writer) {
	fmt.Fprintf(w, "%s", email)  // an arbitrary writer is not a log sink
	_ = fmt.Sprintf("%s", email) // Sprint builds a value; flagged only if it later hits a sink
}

func httpSinks(w http.ResponseWriter, email string, p pii.Persona) { // want fact:`forwards\(params \[1 2\] → http\.Error\)`
	http.Error(w, email, http.StatusBadRequest)         // want `identifier email flows into http\.Error`
	http.Error(w, pii.Redact(email), http.StatusOK)     // redacted
	fmt.Fprintf(w, "user %s", p.Email)                  // want `persona field Email flows into fmt\.Fprintf\(http\.ResponseWriter, …\)`
	io.WriteString(w, p.Phone)                          // want `persona field Phone flows into io\.WriteString\(http\.ResponseWriter, …\)`
	w.Write([]byte(email))                              // want `identifier email flows into http\.ResponseWriter\.Write`
	fmt.Fprintf(w, "status %d", http.StatusOK)          // a constant is not PII
	http.Error(w, "bad request", http.StatusBadRequest) // literal message, fine
}

func suppressed(email string) {
	log.Println(email) //lint:allow piilog fixture: suppression must hide this finding (and sever the forwarder fact)
}

// LogLine is a wrapper: piilog learns it forwards its argument to a
// log sink, so call sites — here and in importing packages — are
// checked interprocedurally.
func LogLine(line string) { // want fact:`forwards\(params \[0\] → log\.Println\)`
	log.Println(line)
}

func viaWrapper(email string, p pii.Persona) { // want fact:`forwards\(params \[0 1\] → log\.Println\)`
	LogLine(email)   // want `identifier email flows into LogLine \(forwards to log\.Println\)`
	LogLine(p.Email) // want `persona field Email flows into LogLine \(forwards to log\.Println\)`
	LogLine(pii.Redact(p.Email))
	LogLine("static banner") // a constant is not PII
}

func logAll(prefix string, vals ...any) { // want fact:`forwards\(params \[0 1\] → log\.Println\)`
	log.Println(prefix)
	log.Println(vals...)
}

func viaVariadic(email string) { // want fact:`forwards\(params \[0\] → log\.Println\)`
	logAll("ctx", 1, email, 2) // want `identifier email flows into logAll \(forwards to log\.Println\)`
}
