// Package b exercises piilog's cross-package facts: log wrappers
// exported by the sibling testdata package "a" are sinks here too.
package b

import "a"

func report(email string) { // want fact:`forwards\(params \[0\] → log\.Println\)`
	a.LogLine(email) // want `identifier email flows into a\.LogLine \(forwards to log\.Println\)`
}

func banner() {
	a.LogLine("crawl finished") // a constant is not PII
}
