package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, parsed, type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string // absolute paths, in go list order
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loaders read.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// ModuleRoot reports the directory of the enclosing module, so callers
// (tests, benchmarks) can load "./..." from anywhere inside the repo.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("analysis: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// Load resolves patterns (e.g. "./...") with the go tool, type-checks
// every matched package against compiled export data, and returns the
// targets sorted by import path. dir is the working directory for the
// go tool; "" means the current directory.
//
// Only non-test GoFiles are analyzed: test files deliberately exercise
// nondeterminism (fault injection, timing) and are not part of the
// shipped pipeline the analyzers guard.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files that
// the go tool does not know about (an analysistest testdata package).
// Imports resolve through `go list -export` run from the enclosing
// module, so testdata may import both the standard library and this
// repo's own packages.
func LoadDir(dir string) (*Package, error) {
	pkgs, err := LoadDirs(dir)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// LoadDirs parses and type-checks several testdata directories in
// order. Later packages may import earlier ones by their package name
// (e.g. `import "a"` resolves to the already-checked testdata package
// a) — the shape cross-package fact tests need. All packages share one
// FileSet so positions stay comparable.
func LoadDirs(dirs ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	local := map[string]*types.Package{}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := loadDirInto(fset, local, dir)
		if err != nil {
			return nil, err
		}
		local[pkg.PkgPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// overrideImporter resolves import paths through already-type-checked
// testdata packages first, then falls back to gc export data.
type overrideImporter struct {
	local map[string]*types.Package
	base  types.Importer
}

func (o overrideImporter) Import(path string) (*types.Package, error) {
	if p, ok := o.local[path]; ok {
		return p, nil
	}
	return o.base.Import(path)
}

func loadDirInto(fset *token.FileSet, local map[string]*types.Package, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)

	var syntax []*ast.File
	imports := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		syntax = append(syntax, f)
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			if path != "" && local[path] == nil {
				imports[path] = true
			}
		}
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		root, err := ModuleRoot()
		if err != nil {
			return nil, err
		}
		args := append([]string{
			"list", "-export", "-deps",
			"-json=ImportPath,Export",
		}, paths...)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
				strings.Join(paths, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	pkgPath := syntax[0].Name.Name
	info := NewInfo()
	conf := types.Config{Importer: overrideImporter{local: local, base: ExportImporter(fset, exports)}}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	abs := make([]string, len(files))
	for i, name := range files {
		abs[i] = filepath.Join(dir, name)
	}
	return &Package{
		PkgPath: pkgPath, Dir: dir, GoFiles: abs,
		Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info,
	}, nil
}

// ExportImporter returns a gc-export-data importer whose lookup is a
// map from import path to export-data file (as produced by
// `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var syntax []*ast.File
	abs := make([]string, 0, len(goFiles))
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		syntax = append(syntax, f)
		abs = append(abs, path)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath, Dir: dir, GoFiles: abs,
		Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info,
	}, nil
}

// NewInfo allocates a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
