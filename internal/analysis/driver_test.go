package analysis_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"piileak/internal/analysis"
	"piileak/internal/analysis/detrand"
)

// scratchModule writes a three-package chain base <- core <- pipeline
// whose wall-clock taint crosses both edges via WallClockFact: base
// reads time.Now directly, and the other two (deterministic by base
// name) are flagged only because the fact propagates.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("base/base.go", `package base

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("core/core.go", `package core

import "scratch/base"

func Row() int64 { return base.Stamp() }
`)
	write("pipeline/pipeline.go", `package pipeline

import "scratch/core"

func Emit() int64 { return core.Row() }
`)
	return dir
}

func renderFindings(fs []analysis.Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func driverRun(t *testing.T, dir string, d *analysis.Driver) ([]string, *analysis.Stats) {
	t.Helper()
	g, err := analysis.LoadGraph(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, stats, err := d.Run(g, []*analysis.Analyzer{detrand.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return renderFindings(findings), stats
}

// TestDriverParallelMatchesSequential pins the driver's core guarantee:
// worker count never changes the output bytes. The fact chain forces a
// real scheduling dependency — analyzing core before base would miss
// the taint.
func TestDriverParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module with the go tool")
	}
	dir := scratchModule(t)
	sequential, _ := driverRun(t, dir, &analysis.Driver{Workers: 1})
	if len(sequential) != 3 {
		t.Fatalf("want 3 findings (one per package), got %d:\n%v", len(sequential), sequential)
	}
	for i := 0; i < 5; i++ {
		parallel, _ := driverRun(t, dir, &analysis.Driver{Workers: 8})
		if !reflect.DeepEqual(sequential, parallel) {
			t.Fatalf("run %d: 8-worker output diverged from sequential\nseq: %v\npar: %v", i, sequential, parallel)
		}
	}
}

// TestDriverCacheWarmAndInvalidation pins the cache contract: a warm
// run analyzes nothing, and mutating one package re-analyzes exactly
// that package and its dependents — with identical findings throughout.
func TestDriverCacheWarmAndInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module with the go tool")
	}
	dir := scratchModule(t)
	cache := &analysis.Cache{Dir: filepath.Join(t.TempDir(), "lintcache")}

	cold, stats := driverRun(t, dir, &analysis.Driver{Workers: 4, Cache: cache})
	if want := []string{"scratch/base", "scratch/core", "scratch/pipeline"}; !reflect.DeepEqual(stats.Analyzed, want) {
		t.Fatalf("cold run: Analyzed = %v, want %v", stats.Analyzed, want)
	}

	warm, stats := driverRun(t, dir, &analysis.Driver{Workers: 4, Cache: cache})
	if len(stats.Analyzed) != 0 || len(stats.Cached) != 3 {
		t.Fatalf("warm run: Analyzed = %v, Cached = %v, want everything cached", stats.Analyzed, stats.Cached)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm findings diverged:\ncold: %v\nwarm: %v", cold, warm)
	}

	// Touching core must invalidate core and its dependent pipeline,
	// but base stays served from cache; the findings do not move.
	corePath := filepath.Join(dir, "core", "core.go")
	src, err := os.ReadFile(corePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corePath, append(src, []byte("\n// touched\n")...), 0o666); err != nil {
		t.Fatal(err)
	}
	mutated, stats := driverRun(t, dir, &analysis.Driver{Workers: 4, Cache: cache})
	if want := []string{"scratch/core", "scratch/pipeline"}; !reflect.DeepEqual(stats.Analyzed, want) {
		t.Fatalf("after mutation: Analyzed = %v, want %v", stats.Analyzed, want)
	}
	if want := []string{"scratch/base"}; !reflect.DeepEqual(stats.Cached, want) {
		t.Fatalf("after mutation: Cached = %v, want %v", stats.Cached, want)
	}
	if !reflect.DeepEqual(cold, mutated) {
		t.Fatalf("mutation changed findings:\nbefore: %v\nafter:  %v", cold, mutated)
	}
}
