package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Stats reports what a driver run actually did — which packages were
// re-analyzed and which were served from the cache. The CI cache-
// poisoning guard asserts on these lists: mutate one file, and only
// that package and its dependents may appear in Analyzed.
type Stats struct {
	Analyzed   []string // package paths analyzed this run, sorted
	Cached     []string // package paths served from cache, sorted
	Suppressed int      // diagnostics silenced by //lint:allow directives
}

// A Driver schedules the package DAG across Workers goroutines,
// propagating facts along import edges in dependency order, with an
// optional content-keyed result cache. Output is byte-identical to the
// sequential runner: per-package results depend only on the package
// and its dependencies' facts (never on scheduling), and the merged
// findings are sorted by the one total order (SortFindings).
type Driver struct {
	// Workers bounds concurrent package analyses; <= 0 selects
	// GOMAXPROCS. Workers == 1 is the sequential driver.
	Workers int

	// Cache, when non-nil with a Dir, short-circuits packages whose
	// key (source + suite + deps) is unchanged.
	Cache *Cache
}

// driverNode is the scheduler's per-package state. depFacts/depKeys
// are per-node snapshots built under the scheduler lock at the moment
// the node becomes ready — workers then read only their own node's
// maps, so no map is ever read and written concurrently.
type driverNode struct {
	pkg        *GraphPackage
	waiting    int      // unfinished in-module deps
	dependents []string // packages importing this one
	result     *PackageResult
	key        string
	depFacts   FactReader
	depKeys    map[string]string
}

// Run analyzes every package in the graph and returns the merged,
// sorted findings plus run statistics.
func (d *Driver) Run(g *Graph, analyzers []*Analyzer) ([]Finding, *Stats, error) {
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	nodes := make(map[string]*driverNode, len(g.Packages))
	for _, pkg := range g.Packages {
		nodes[pkg.PkgPath] = &driverNode{pkg: pkg}
	}
	for _, pkg := range g.Packages {
		n := nodes[pkg.PkgPath]
		n.waiting = len(pkg.Imports)
		for _, imp := range pkg.Imports {
			nodes[imp].dependents = append(nodes[imp].dependents, pkg.PkgPath)
		}
	}

	fingerprint := Fingerprint(analyzers)

	// The scheduler: a sorted ready list feeds idle workers; a
	// completion updates dependents under the same lock, snapshotting
	// each newly-ready node's dependency facts and keys into that node
	// before it is queued — workers touch only their own node's maps.
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		ready   []string
		done    int
		firstEr error
		stats   Stats
	)
	for _, pkg := range g.Packages { // Packages is sorted, so ready starts sorted
		if nodes[pkg.PkgPath].waiting == 0 {
			ready = append(ready, pkg.PkgPath)
		}
	}

	analyzeOne := func(n *driverNode) (*PackageResult, string, bool, error) {
		// Dep facts/keys are complete: the scheduler only readies a
		// package after every dependency published.
		var key string
		if d.Cache != nil && d.Cache.Dir != "" {
			k, err := d.Cache.Key(fingerprint, n.pkg, n.depKeys, n.depFacts)
			if err != nil {
				return nil, "", false, err
			}
			key = k
			if hit, err := d.Cache.Get(key, n.pkg.PkgPath); err != nil {
				return nil, "", false, err
			} else if hit != nil {
				return hit, key, true, nil
			}
		}
		pkg, err := g.load(n.pkg)
		if err != nil {
			return nil, "", false, err
		}
		res, err := AnalyzePackage(pkg, analyzers, n.depFacts)
		if err != nil {
			return nil, "", false, err
		}
		if key != "" {
			if err := d.Cache.Put(key, res); err != nil {
				return nil, "", false, err
			}
		}
		return res, key, false, nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && done < len(g.Packages) && firstEr == nil {
					cond.Wait()
				}
				if firstEr != nil || done == len(g.Packages) {
					mu.Unlock()
					return
				}
				path := ready[0]
				ready = ready[1:]
				mu.Unlock()

				n := nodes[path]
				res, key, cached, err := analyzeOne(n)

				mu.Lock()
				if err != nil {
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					cond.Broadcast()
					return
				}
				n.result = res
				n.key = key
				if cached {
					stats.Cached = append(stats.Cached, path)
				} else {
					stats.Analyzed = append(stats.Analyzed, path)
				}
				stats.Suppressed += res.Suppressed
				done++
				for _, dep := range n.dependents {
					dn := nodes[dep]
					dn.waiting--
					if dn.waiting == 0 {
						dn.depFacts = make(FactReader, len(dn.pkg.Imports))
						dn.depKeys = make(map[string]string, len(dn.pkg.Imports))
						for _, imp := range dn.pkg.Imports {
							in := nodes[imp]
							dn.depFacts[imp] = in.result.Facts
							dn.depKeys[imp] = in.key
						}
						ready = insertSorted(ready, dep)
					}
				}
				mu.Unlock()
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, nil, firstEr
	}
	if done != len(g.Packages) {
		return nil, nil, fmt.Errorf("analysis: import cycle among %d unanalyzed packages", len(g.Packages)-done)
	}

	var findings []Finding
	for _, pkg := range g.Packages {
		findings = append(findings, nodes[pkg.PkgPath].result.Findings...)
	}
	SortFindings(findings)
	sort.Strings(stats.Analyzed)
	sort.Strings(stats.Cached)
	return findings, &stats, nil
}

// insertSorted inserts s into sorted slice xs, keeping it sorted — the
// ready queue stays deterministic so the 1-worker driver is exactly
// the sequential driver.
func insertSorted(xs []string, s string) []string {
	i := sort.SearchStrings(xs, s)
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = s
	return xs
}
