// Package a exercises closecheck: discarded deferred Close errors on
// writable types, read-only and error-checked negatives, and
// suppression.
package a

import (
	"compress/gzip"
	"os"
)

func createFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on \*os\.File discards its error`
	_, err = f.WriteString("x")
	return err
}

func gzipWriter(f *os.File) error {
	zw := gzip.NewWriter(f)
	defer zw.Close() // want `deferred Close on \*gzip\.Writer discards its error`
	_, err := zw.Write([]byte("x"))
	return err
}

func gzipReader(f *os.File) error {
	zr, err := gzip.NewReader(f)
	if err != nil {
		return err
	}
	defer zr.Close() // a *gzip.Reader buffers no writes; its Close error is inconsequential
	return nil
}

func errorCaptured(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = f.WriteString("x")
	return err
}

type flushless struct{}

func (flushless) Write(p []byte) (int, error) { return len(p), nil }
func (flushless) Close()                      {}

func closeReturnsNothing() {
	var w flushless
	defer w.Close() // Close has no error to discard
	_, _ = w.Write(nil)
}

func suppressed(f *os.File) {
	defer f.Close() //lint:allow closecheck fixture: read-only handle, close error carries no data loss
	_ = f
}
