package closecheck_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/closecheck"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, ".", closecheck.Analyzer, "a")
}
