// Package closecheck flags `defer x.Close()` when x can buffer writes
// (it satisfies io.Writer) and the Close error is discarded. For
// *os.File, *gzip.Writer, and friends, Close is where buffered bytes
// actually reach the OS — dropping its error silently truncates
// datasets, the exact bug class fixed by hand in crawler.WriteJSONFile.
package closecheck

import (
	"go/ast"
	"go/types"

	"piileak/internal/analysis"
)

// Analyzer is the closecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "flags deferred Close() calls whose error is discarded on types " +
		"that satisfy io.Writer; buffered output can be lost silently",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			def, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			call := def.Call
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() != 1 {
				return true // Close() with no error to lose
			}
			t := pass.TypesInfo.TypeOf(sel.X)
			if t == nil || !analysis.IsWriter(t) {
				return true // read-only closer; error is inconsequential
			}
			pass.Reportf(def.Pos(),
				"deferred Close on %s discards its error; for writable files this can lose buffered "+
					"bytes silently — capture it (e.g. into a named return) or //lint:allow closecheck <reason>",
				types.TypeString(t, func(p *types.Package) string { return p.Name() }))
			return true
		})
	}
	return nil
}
