// Package maporder flags range-over-map loops whose iteration order
// leaks into an ordered result: appending to a slice that outlives the
// loop with no subsequent sort, or writing into an io.Writer/builder
// declared outside the loop. Go randomizes map iteration per run, so
// either pattern makes output bytes differ between otherwise identical
// runs — the exact rot that breaks the repo's pinned study tables.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"piileak/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map-range loops that append to an escaping slice without " +
		"a later sort, or write to an escaping io.Writer/builder; map " +
		"order is randomized per run",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// sortCall is one call into sort or slices, with the objects its
// arguments mention.
type sortCall struct {
	pos  token.Pos
	objs map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorts := collectSorts(pass, body)
	walkShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !analysis.IsMap(pass.TypesInfo, rng.X) {
			return
		}
		checkRange(pass, rng, sorts)
	})
}

// collectSorts finds sort.*/slices.Sort* calls directly in this
// function (not in nested function literals).
func collectSorts(pass *analysis.Pass, body *ast.BlockStmt) []sortCall {
	var sorts []sortCall
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return
		}
		sc := sortCall{pos: call.Pos(), objs: map[types.Object]bool{}}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					if o := analysis.ObjectOf(pass.TypesInfo, e); o != nil {
						sc.objs[o] = true
					}
				}
				return true
			})
		}
		sorts = append(sorts, sc)
	})
	return sorts
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, sorts []sortCall) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// x = append(x, ...) where x is declared outside the loop.
		if bi, ok := info.Uses[calleeIdent(call)].(*types.Builtin); ok && bi.Name() == "append" {
			if len(call.Args) == 0 {
				return true
			}
			obj := analysis.ObjectOf(info, call.Args[0])
			if obj == nil || declaredWithin(obj, rng.Body) {
				return true
			}
			if sortedAfter(obj, rng.End(), sorts) {
				return true
			}
			pass.Reportf(call.Pos(),
				"appending to %s inside a map range with no later sort: its element order follows "+
					"randomized map iteration and differs between runs; sort it after the loop",
				obj.Name())
			return true
		}

		// w.Write*/fmt.Fprint*(w, ...) on a writer from outside the loop.
		if tgt := writeTarget(pass, call); tgt != nil && !declaredWithin(tgt, rng.Body) {
			pass.Reportf(call.Pos(),
				"writing to %s inside a map range emits in randomized map-iteration order; "+
					"collect the entries, sort, then write", tgt.Name())
		}
		return true
	})
}

// writeTarget resolves the writer a call emits into: the receiver of a
// Write/WriteString/WriteByte/WriteRune/Printf-style method on an
// io.Writer, or the first argument of fmt.Fprint*.
func writeTarget(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	info := pass.TypesInfo
	if analysis.IsPkgCall(info, call, "fmt", "Fprint", "Fprintf", "Fprintln") {
		if len(call.Args) == 0 {
			return nil
		}
		return analysis.ObjectOf(info, call.Args[0])
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return nil
	}
	t := info.TypeOf(sel.X)
	if t == nil || !analysis.IsWriter(t) {
		return nil
	}
	return analysis.ObjectOf(info, sel.X)
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// walkShallow visits every node in the function body except the bodies
// of nested function literals — those are checked as functions of their
// own, with their own sort-interposition scope.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// declaredWithin reports whether obj's declaration lies inside node —
// i.e. the value is loop-local, so per-iteration order cannot escape.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether any sort call after pos mentions obj.
func sortedAfter(obj types.Object, pos token.Pos, sorts []sortCall) bool {
	for _, sc := range sorts {
		if sc.pos > pos && sc.objs[obj] {
			return true
		}
	}
	return false
}
