// Package a exercises maporder: escaping appends with and without an
// interposed sort, escaping and loop-local writers, and suppression.
package a

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appending to out inside a map range with no later sort`
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out) // the interposed sort makes the loop above legal
	return out
}

func appendThenSlicesSort(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func appendLoopLocal(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		var tmp []string
		tmp = append(tmp, vs...) // loop-local slice: order dies with the iteration
		n += len(tmp)
	}
	return n
}

func writeBuilder(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `writing to b inside a map range`
	}
}

func writeStderr(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v) // want `writing to Stderr inside a map range`
	}
}

func writeLoopLocal(m map[string]int) []string {
	var lines []string
	for k := range m {
		var b strings.Builder
		b.WriteString(k) // loop-local builder: no cross-iteration order
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return lines
}

func countsAreCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // accumulating commutatively is fine
	}
	return total
}

func suppressed(m map[string][]int) []int {
	var all []int
	for _, vs := range m {
		all = append(all, vs...) //lint:allow maporder fixture: consumer is order-insensitive
	}
	return all
}

func sliceRangeIsFine(xs []string, out *strings.Builder) {
	for _, x := range xs {
		out.WriteString(x) // ranging a slice is ordered already
	}
}
