package maporder_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, ".", maporder.Analyzer, "a")
}
