package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method a call expression invokes,
// looking through parentheses. It returns nil for calls through
// function-typed variables, conversions, and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgCall reports whether call invokes a package-level function (or
// method) from pkgPath whose name is in names.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsWriter reports whether t (or *t) has a Write([]byte) (int, error)
// method — i.e. it satisfies io.Writer. The signature is matched
// structurally so the check needs no handle on the io package.
func IsWriter(t types.Type) bool {
	if hasWriteMethod(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		return hasWriteMethod(types.NewPointer(t))
	}
	return false
}

func hasWriteMethod(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Write" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		p, ok := sig.Params().At(0).Type().(*types.Slice)
		if !ok {
			continue
		}
		if b, ok := p.Elem().(*types.Basic); !ok || b.Kind() != types.Byte {
			continue
		}
		r0, ok := sig.Results().At(0).Type().(*types.Basic)
		if !ok || r0.Kind() != types.Int {
			continue
		}
		if named, ok := sig.Results().At(1).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

// IsMap reports whether the expression's type is a map.
func IsMap(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// ObjectOf resolves an identifier or the terminal selector of expr to
// its object, or nil.
func ObjectOf(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
