package obskey_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/obskey"
)

func TestRegistryKeys(t *testing.T) {
	analysistest.Run(t, ".", obskey.Analyzer, "a")
}
