// Package a exercises obskey: constant registry keys pass, computed
// keys are flagged, and the kind/site arguments stay free-form.
package a

import (
	"fmt"

	"piileak/internal/obs"
)

const localMetric = "local_metric_total"

func constantKeys(o *obs.Run, outcome string) {
	o.Count(obs.MetricCrawlSites, 1)                     // exported constant
	o.CountKind(obs.MetricCrawlOutcome, outcome, 1)      // dynamic kind is the supported shape
	o.GaugeSet(obs.MetricCaptureHighWater, 3)            //
	o.Observe(obs.HistSiteRecords, 12)                   //
	o.Count(localMetric, 1)                              // local constant
	o.Count("literal_total", 1)                          // literal
	o.Count("prefix_"+localMetric, 1)                    // constant-folded concatenation
	sp := o.StartSpan(obs.StageCrawl, "shop0.test", 0)   // Stage constant
	sp2 := o.StartSpan(obs.Stage("custom"), "s.test", 1) // constant conversion
	sp.End()
	sp2.End()
}

func computedKeys(o *obs.Run, site string) {
	name := "per_site_" + site
	o.Count(name, 1)                                  // want `obs\.Run\.Count metric name is not a compile-time constant`
	o.CountKind(fmt.Sprintf("m_%s", site), "kind", 1) // want `obs\.Run\.CountKind metric name is not a compile-time constant`
	o.GaugeSet(name, 2)                               // want `obs\.Run\.GaugeSet metric name is not a compile-time constant`
	o.GaugeMax(name, 2)                               // want `obs\.Run\.GaugeMax metric name is not a compile-time constant`
	o.Observe(name, 9)                                // want `obs\.Run\.Observe metric name is not a compile-time constant`
	sp := o.StartSpan(obs.Stage(site), site, 0)       // want `obs\.Run\.StartSpan stage is not a compile-time constant`
	sp.End()
}

func suppressed(o *obs.Run, site string) {
	o.Count("dyn_"+site, 1) //lint:allow obskey exercising the directive
}
