// Package obskey keeps the telemetry registry's key space closed: every
// metric or span name passed to an obs.Run instrument must be a
// compile-time constant. A name computed at runtime (concatenation,
// Sprintf, a variable) can differ between runs or smuggle per-site data
// into the registry's key set — which would make the exported metrics
// file's shape input-dependent and break the two-identical-runs →
// byte-identical-telemetry guarantee. Dynamic *dimensions* stay
// expressible through the instruments' kind/site arguments, which the
// exporter sorts; only the name itself is pinned.
package obskey

import (
	"go/ast"
	"go/types"

	"piileak/internal/analysis"
)

// Analyzer is the obskey pass.
var Analyzer = &analysis.Analyzer{
	Name: "obskey",
	Doc: "flags obs.Run instrument calls (Count, CountKind, GaugeSet, " +
		"GaugeMax, Observe, StartSpan) whose metric or stage name is not a " +
		"compile-time constant; dynamic names make the telemetry key space " +
		"input-dependent",
	Run: run,
}

// obsPkg is the import path whose Run methods form the instrument API.
const obsPkg = "piileak/internal/obs"

// instruments maps each checked method to the human name of its first
// argument.
var instruments = map[string]string{
	"Count":     "metric name",
	"CountKind": "metric name",
	"GaugeSet":  "metric name",
	"GaugeMax":  "metric name",
	"Observe":   "metric name",
	"StartSpan": "stage",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg {
		return
	}
	arg, ok := instruments[fn.Name()]
	if !ok || !isRunMethod(fn) || len(call.Args) == 0 {
		return
	}
	// A constant expression — an obs.Metric* / obs.Stage* constant, a
	// literal, or any constant-folded combination — has a Value in the
	// type checker's record. Anything without one is computed at runtime.
	if tv, found := pass.TypesInfo.Types[call.Args[0]]; found && tv.Value != nil {
		return
	}
	pass.Reportf(call.Args[0].Pos(),
		"obs.Run.%s %s is not a compile-time constant: dynamic registry keys make the "+
			"exported metrics' shape input-dependent; use an obs.Metric*/Stage* constant "+
			"and put the dynamic part in the kind or site argument",
		fn.Name(), arg)
}

// isRunMethod reports whether fn is a method on obs.Run (or *obs.Run).
func isRunMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Run"
}
