package analysis_test

import (
	"strings"
	"testing"

	"piileak/internal/analysis"
)

// TestMalformedAllowDirective: a //lint:allow with no reason is a
// finding, not a suppression — the allowlist policy is "every
// exception documents why".
func TestMalformedAllowDirective(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/src/allowcheck")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 malformed-directive finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "allow" || f.Pos.Line != 9 || !strings.Contains(f.Message, "needs an analyzer name and a reason") {
		t.Fatalf("unexpected finding: %+v", f)
	}
}

// TestFindingString pins the file:line:col rendering tools parse.
func TestFindingString(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/src/allowcheck")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := findings[0].String()
	if !strings.Contains(s, "allowcheck.go:9:") || !strings.Contains(s, ": allow: ") {
		t.Fatalf("unexpected rendering: %s", s)
	}
}
