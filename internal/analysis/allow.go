package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allowlist escape hatch. A comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the same line (trailing
// comment) or on the line immediately below (comment on its own line).
// The reason is mandatory: a directive without one does not suppress
// anything and is itself reported, so every exception in the tree
// documents why it is safe.

const allowPrefix = "lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int // line the comment sits on
}

// allowIndex answers "is this diagnostic suppressed?" for one package.
type allowIndex struct {
	// byLine maps file -> line -> analyzers allowed on that line.
	byLine map[string]map[int]map[string]bool
	// malformed holds directives with no reason, reported as findings.
	malformed []allowDirective
}

// buildAllowIndex scans every comment in the package.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				d := allowDirective{analyzer: name, reason: reason, pos: c.Pos(), line: pos.Line}
				if name == "" || reason == "" {
					idx.malformed = append(idx.malformed, d)
					continue
				}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx.byLine[pos.Filename] = lines
				}
				// A trailing comment covers its own line; a
				// standalone comment covers the next line.
				// Recording both is harmless for trailing
				// comments and keeps the rule simple.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					lines[ln][name] = true
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic from the named analyzer at
// position p is covered by an allow directive.
func (idx *allowIndex) suppressed(analyzer string, p token.Position) bool {
	lines := idx.byLine[p.Filename]
	if lines == nil {
		return false
	}
	return lines[p.Line][analyzer]
}
