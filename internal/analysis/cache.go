package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheSchema versions the on-disk entry layout; bump it whenever the
// entry struct or key derivation changes and every stale entry becomes
// an automatic miss.
const cacheSchema = "piilint-cache-v1"

// A Cache is a content-keyed store of per-package analysis results.
// The key folds in everything a package's findings and facts can
// depend on — its own source bytes, the analyzer suite, the Go
// toolchain, and (recursively, via dep keys) every in-module
// dependency's source and facts — so a hit is sound by construction
// and a changed package invalidates exactly itself and its dependents.
type Cache struct {
	Dir string
}

// cacheEntry is the stored result of one package analysis.
type cacheEntry struct {
	Schema     string
	Key        string
	PkgPath    string
	Findings   []Finding
	Suppressed int
	Facts      []byte // FactSet.Encode
}

// Fingerprint digests the analyzer suite: names, docs and fact types.
// Changing any analyzer's behavior should change its Doc (or the
// schema), which rotates every key.
func Fingerprint(analyzers []*Analyzer) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", cacheSchema, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "%s\x00%x\n", a.Name, sha256.Sum256([]byte(a.Doc)))
		for _, ft := range a.FactTypes {
			fmt.Fprintf(h, "fact %s\n", factType(ft))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Key derives a package's cache key from the suite fingerprint, the
// package's content hash, and its in-module dependencies' keys and
// fact hashes (sorted — the derivation is order-independent).
func (c *Cache) Key(fingerprint string, node *GraphPackage, depKeys map[string]string, depFacts FactReader) (string, error) {
	content, err := node.ContentHash()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\npkg %s\ndir %s\ncontent %s\n", fingerprint, node.PkgPath, node.Dir, content)
	deps := append([]string(nil), node.Imports...)
	sort.Strings(deps)
	for _, dep := range deps {
		facts := depFacts[dep]
		var fh [32]byte
		if facts != nil {
			fh = facts.Hash()
		}
		fmt.Fprintf(h, "dep %s key %s facts %x\n", dep, depKeys[dep], fh)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// path shards entries by key prefix to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key[:2], key[2:]+".gob")
}

// Get loads the entry for key, returning (nil, nil) on a miss. Corrupt
// or mismatched entries are treated as misses, never errors — a cache
// must only ever accelerate.
func (c *Cache) Get(key, pkgPath string) (*PackageResult, error) {
	if c == nil || c.Dir == "" {
		return nil, nil
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, nil
	}
	var e cacheEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, nil
	}
	if e.Schema != cacheSchema || e.Key != key || e.PkgPath != pkgPath {
		return nil, nil
	}
	facts, err := DecodeFactSet(pkgPath, e.Facts)
	if err != nil {
		return nil, nil
	}
	return &PackageResult{
		PkgPath:    pkgPath,
		Findings:   e.Findings,
		Suppressed: e.Suppressed,
		Facts:      facts,
	}, nil
}

// Put stores one package's result under key, atomically (write to a
// temp file, rename into place) so concurrent linters never observe a
// torn entry.
func (c *Cache) Put(key string, res *PackageResult) error {
	if c == nil || c.Dir == "" {
		return nil
	}
	facts, err := res.Facts.Encode()
	if err != nil {
		return err
	}
	e := cacheEntry{
		Schema:     cacheSchema,
		Key:        key,
		PkgPath:    res.PkgPath,
		Findings:   res.Findings,
		Suppressed: res.Suppressed,
		Facts:      facts,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		return fmt.Errorf("analysis: encoding cache entry for %s: %w", res.PkgPath, err)
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close() //lint:allow closecheck the write error is the one worth reporting
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
