// Package detrand flags nondeterminism sources — wall-clock reads,
// global or entropy-seeded RNGs, and map-ordered output — in the
// packages that must replay byte-identically (§4.2 Table 1, §5 Table 2,
// §7 Table 4 are pinned across serial/parallel/streamed/resumed runs).
package detrand

import (
	"go/ast"
	"go/types"
	"path"

	"piileak/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flags time.Now/time.Since, context.WithTimeout, math/rand " +
		"global-source functions, entropy-seeded rand.New, and map-range " +
		"output in deterministic packages; these break byte-identical " +
		"study reproduction. Exports WallClockFact on functions that " +
		"transitively read the wall clock, so deterministic packages " +
		"flag helper calls too",
	FactTypes: []analysis.Fact{&WallClockFact{}},
	Run:       run,
}

// A WallClockFact marks a function that transitively reads the wall
// clock: time.Now/Since or context.WithTimeout directly, or a call to
// a function already carrying the fact. An allowed (//lint:allow)
// read severs the taint — a vetted exception does not smear into
// every transitive caller.
type WallClockFact struct {
	Via string // the first wall-clock source found, e.g. "time.Now" or "a.Stamp"
}

// AFact marks WallClockFact as a fact type.
func (*WallClockFact) AFact() {}

func (f *WallClockFact) String() string { return "wallclock(via " + f.Via + ")" }

// DeterministicPackages lists the import paths whose output feeds the
// pinned study bytes: in these, iterating a map straight into fmt or an
// encoder is flagged even without an escaping collection (see also the
// maporder analyzer, which applies everywhere).
var DeterministicPackages = map[string]bool{
	"piileak/internal/core":     true,
	"piileak/internal/detect":   true,
	"piileak/internal/pipeline": true,
	"piileak/internal/tracking": true,
	"piileak/internal/crawler":  true,
	"piileak/internal/webgen":   true,
}

// randGlobals are the math/rand and math/rand/v2 top-level functions
// that draw from the package-level source, which Go seeds from OS
// entropy at startup.
var randGlobals = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "N": true, "Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

func run(pass *analysis.Pass) error {
	deterministic := DeterministicPackages[pass.PkgPath] ||
		DeterministicPackages["piileak/internal/"+path.Base(pass.PkgPath)]

	marked := exportWallClockFacts(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
				if deterministic {
					checkTaintedCall(pass, n, marked)
				}
			case *ast.RangeStmt:
				if deterministic {
					checkRangeOutput(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// exportWallClockFacts runs the intra-package fixpoint: a package-level
// function earns a WallClockFact when its body reads the wall clock at
// a non-allowed position, or calls (at a non-allowed position) a
// function already carrying the fact — same-package or imported. The
// returned map is the same-package view the report phase consults.
func exportWallClockFacts(pass *analysis.Pass) map[*types.Func]*WallClockFact {
	type decl struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || analysis.ObjectKey(fn) == "" {
				continue
			}
			decls = append(decls, decl{fn: fn, body: fd.Body})
		}
	}

	marked := map[*types.Func]*WallClockFact{}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if marked[d.fn] != nil {
				continue
			}
			via := wallClockVia(pass, d.body, marked)
			if via == "" {
				continue
			}
			fact := &WallClockFact{Via: via}
			marked[d.fn] = fact
			pass.ExportObjectFact(d.fn, fact)
			changed = true
		}
	}
	return marked
}

// wallClockVia scans one function body for the first wall-clock source
// — a direct read or a call to a tainted function — skipping allowed
// positions. It returns the source's label, or "".
func wallClockVia(pass *analysis.Pass, body *ast.BlockStmt, marked map[*types.Func]*WallClockFact) string {
	info := pass.TypesInfo
	via := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if via != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.Allowed(call.Pos()) {
			return true // vetted exception: severed, keep scanning siblings
		}
		fn := analysis.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case analysis.IsPkgCall(info, call, "time", "Now", "Since"):
			via = "time." + fn.Name()
		case analysis.IsPkgCall(info, call, "context", "WithTimeout"):
			via = "context.WithTimeout"
		default:
			if taintedCallee(pass, fn, marked) != nil {
				via = funcLabel(pass, fn)
			}
		}
		return via == ""
	})
	return via
}

// taintedCallee returns fn's WallClockFact, consulting the same-package
// fixpoint state for local functions and imported fact sets otherwise.
func taintedCallee(pass *analysis.Pass, fn *types.Func, marked map[*types.Func]*WallClockFact) *WallClockFact {
	if fn.Pkg() == pass.Pkg {
		return marked[fn]
	}
	var fact WallClockFact
	if pass.ImportObjectFact(fn, &fact) {
		return &fact
	}
	return nil
}

// checkTaintedCall reports (in deterministic packages) calls to
// functions that transitively read the wall clock — the interprocedural
// complement of checkCall's direct-read rule.
func checkTaintedCall(pass *analysis.Pass, call *ast.CallExpr, marked map[*types.Func]*WallClockFact) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time", "context", "math/rand", "math/rand/v2":
		return // direct-read checks own these
	}
	fact := taintedCallee(pass, fn, marked)
	if fact == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"%s transitively reads the wall clock (via %s), which breaks byte-identical reproduction; "+
			"thread a resilience.Clock through it instead", funcLabel(pass, fn), fact.Via)
}

// funcLabel renders fn for diagnostics: "Name" or "Recv.Name" in the
// current package, "pkg.Name" elsewhere.
func funcLabel(pass *analysis.Pass, fn *types.Func) string {
	name := analysis.ObjectKey(fn)
	if name == "" {
		name = fn.Name()
	}
	if fn.Pkg() == pass.Pkg {
		return name
	}
	return path.Base(fn.Pkg().Path()) + "." + name
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if analysis.IsPkgCall(info, call, "time", "Now", "Since") {
		fn := analysis.Callee(info, call)
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock, which breaks byte-identical reproduction across runs; "+
				"thread a resilience.Clock instead (or //lint:allow detrand <reason> for measurement-only timing)",
			fn.Name())
		return
	}

	if analysis.IsPkgCall(info, call, "context", "WithTimeout") {
		pass.Reportf(call.Pos(),
			"context.WithTimeout anchors its deadline to the wall clock, which breaks byte-identical "+
				"reproduction under a virtual clock; derive the deadline from the injected resilience.Clock "+
				"(context.WithDeadline(ctx, clock.Now().Add(d))) or //lint:allow detrand <reason> where wall "+
				"time is intended (CLI shutdown grace)")
		return
	}

	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	// Methods on an explicitly constructed *rand.Rand are fine — the
	// caller chose the seed. Only package-level functions draw from
	// the entropy-seeded global source.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	if randGlobals[fn.Name()] {
		pass.Reportf(call.Pos(),
			"rand.%s draws from the process-global source, seeded from OS entropy; "+
				"use rand.New with an explicit seed derived from the study config", fn.Name())
		return
	}
	if fn.Name() == "New" && nondeterministicSeed(pass, call) {
		pass.Reportf(call.Pos(),
			"rand.New seeded from the clock or OS entropy is not reproducible; "+
				"derive the seed from the study config")
	}
}

// nondeterministicSeed reports whether any argument of a rand.New call
// (transitively) reads time or crypto/rand entropy.
func nondeterministicSeed(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true // future-proofing: a sourceless constructor is unseeded
	}
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if analysis.IsPkgCall(pass.TypesInfo, n, "time", "Now", "Since") {
					found = true
				}
			case *ast.SelectorExpr:
				if o := pass.TypesInfo.Uses[n.Sel]; o != nil && o.Pkg() != nil && o.Pkg().Path() == "crypto/rand" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// outputFuncs are the fmt functions that emit directly.
var outputFuncs = []string{"Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln"}

// checkRangeOutput flags a direct print or encode inside a range over a
// map: each iteration emits immediately, so the bytes follow Go's
// randomized map order.
func checkRangeOutput(pass *analysis.Pass, rng *ast.RangeStmt) {
	if !analysis.IsMap(pass.TypesInfo, rng.X) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsPkgCall(pass.TypesInfo, call, "fmt", outputFuncs...) {
			pass.Reportf(call.Pos(),
				"output inside a map range: iteration order is randomized per run, so these bytes are not reproducible; "+
					"collect and sort keys first")
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Name() == "Encode" &&
			fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json" {
			pass.Reportf(call.Pos(),
				"json encode inside a map range: iteration order is randomized per run, so these bytes are not reproducible; "+
					"collect and sort keys first")
		}
		return true
	})
}
