// Package a exercises detrand's clock and RNG checks: positives,
// seeded negatives, and allowlist suppression.
package a

import (
	"context"
	mrand "math/rand"
	"math/rand/v2"
	"time"
)

var sink any

func wallClock() { // want fact:`wallclock\(via time\.Now\)`
	t := time.Now() // want `time\.Now reads the wall clock`
	sink = t
	d := time.Since(time.Unix(0, 0)) // want `time\.Since reads the wall clock`
	sink = d
}

// Stamp is the exported transitive source the cross-package fact test
// (testdata/src/pipeline) imports.
func Stamp() int64 { // want fact:`wallclock\(via time\.Now\)`
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func indirect() int64 { // want fact:`wallclock\(via Stamp\)`
	// package a is not deterministic, so the tainted call is fact-only:
	// the fact re-exports, but no diagnostic fires here.
	return Stamp()
}

func globalSource() {
	sink = rand.IntN(10)               // want `rand\.IntN draws from the process-global source`
	sink = rand.Float64()              // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	sink = mrand.Int()                 // want `rand\.Int draws from the process-global source`
}

func seededIsFine() {
	r := rand.New(rand.NewPCG(1, 2))
	sink = r.IntN(10) // methods on an explicitly seeded Rand are fine
	r1 := mrand.New(mrand.NewSource(42))
	sink = r1.Intn(5)
}

func clockSeeded() { // want fact:`wallclock\(via time\.Now\)`
	r := mrand.New(mrand.NewSource(time.Now().UnixNano())) // want `time\.Now reads the wall clock` `rand\.New seeded from the clock`
	sink = r.Intn(3)
}

func suppressed() {
	t := time.Now() //lint:allow detrand fixture: suppression must hide this finding
	sink = t
}

func wallDeadline(ctx context.Context, clock interface{ Now() time.Time }) { // want fact:`wallclock\(via context\.WithTimeout\)`
	c1, stop1 := context.WithTimeout(ctx, 3*time.Second) // want `context\.WithTimeout anchors its deadline to the wall clock`
	defer stop1()
	sink = c1
	// The sanctioned shape: deadline derived from the injected clock.
	c2, stop2 := context.WithDeadline(ctx, clock.Now().Add(3*time.Second))
	defer stop2()
	sink = c2
	// Wall-clock deadlines by another route are still the time.Now check's
	// business.
	c3, stop3 := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want `time\.Now reads the wall clock`
	defer stop3()
	sink = c3
}

func suppressedDeadline(ctx context.Context) {
	c, stop := context.WithTimeout(ctx, time.Second) //lint:allow detrand fixture: CLI shutdown grace uses wall time
	defer stop()
	sink = c
}

func timeArithmeticIsFine() {
	// Deriving instants without reading the clock is allowed.
	sink = time.Unix(0, 0).Add(3 * time.Second)
}
