// Package core exercises detrand's deterministic-package rule: direct
// output inside a map range is flagged here (the package base name
// matches a pinned-output package), while collect-sort-emit is not.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
)

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output inside a map range`
	}
}

func encode(m map[string]int, enc *json.Encoder) {
	for k := range m {
		_ = enc.Encode(k) // want `json encode inside a map range`
	}
}

func collectSortEmit(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // ranging a sorted slice is the blessed shape
	}
}
