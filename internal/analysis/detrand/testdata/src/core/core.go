// Package core exercises detrand's deterministic-package rule: direct
// output inside a map range is flagged here (the package base name
// matches a pinned-output package), while collect-sort-emit is not.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output inside a map range`
	}
}

func encode(m map[string]int, enc *json.Encoder) {
	for k := range m {
		_ = enc.Encode(k) // want `json encode inside a map range`
	}
}

// now and stampRow pin the interprocedural rule: in a deterministic
// package, calling a helper that transitively reads the wall clock is
// flagged at the call site, and the taint re-exports.
func now() int64 { // want fact:`wallclock\(via time\.Now\)`
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func stampRow() { // want fact:`wallclock\(via now\)`
	fmt.Println(now()) // want `now transitively reads the wall clock \(via time\.Now\)`
}

func vettedHelper() {
	// An allow on the tainted call severs the taint: no diagnostic, no
	// re-exported fact.
	fmt.Println(now()) //lint:allow detrand fixture: vetted transitive read stays fact-free
}

func collectSortEmit(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // ranging a sorted slice is the blessed shape
	}
}
