// Package pipeline exercises detrand's cross-package fact flow: the
// package base name marks it deterministic, and the sibling testdata
// package "a" exports wall-clock facts it must honor.
package pipeline

import "a"

var sink any

func emitRow() { // want fact:`wallclock\(via a\.Stamp\)`
	sink = a.Stamp() // want `a\.Stamp transitively reads the wall clock \(via time\.Now\)`
}

func vetted() {
	sink = a.Stamp() //lint:allow detrand fixture: vetted transitive read stays fact-free
}
