package detrand_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/detrand"
)

func TestClockAndRNG(t *testing.T) {
	analysistest.Run(t, ".", detrand.Analyzer, "a")
}

func TestDeterministicPackageOutput(t *testing.T) {
	analysistest.Run(t, ".", detrand.Analyzer, "core")
}
