package detrand_test

import (
	"testing"

	"piileak/internal/analysis/analysistest"
	"piileak/internal/analysis/detrand"
)

func TestClockAndRNG(t *testing.T) {
	analysistest.Run(t, ".", detrand.Analyzer, "a")
}

func TestDeterministicPackageOutput(t *testing.T) {
	analysistest.Run(t, ".", detrand.Analyzer, "core")
}

// TestTransitiveFacts pins the interprocedural rule end-to-end: "a"
// exports WallClockFact on Stamp, and the deterministic "pipeline"
// package (which imports it) flags the call site and re-exports.
func TestTransitiveFacts(t *testing.T) {
	analysistest.RunDeps(t, ".", detrand.Analyzer, "a", "pipeline")
}
