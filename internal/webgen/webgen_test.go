package webgen

import (
	"strings"
	"testing"

	"piileak/internal/blocklist"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/site"
)

func defaultEco(t *testing.T) *Ecosystem {
	t.Helper()
	eco, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eco
}

func TestCatalogExactlyOneHundredProviders(t *testing.T) {
	cat := Catalog()
	if len(cat) != 100 {
		t.Fatalf("catalog has %d providers, want 100", len(cat))
	}
	seen := map[string]bool{}
	for _, p := range cat {
		if seen[p.Domain] {
			t.Errorf("duplicate provider domain %s", p.Domain)
		}
		seen[p.Domain] = true
	}
}

func TestCatalogTable2Providers(t *testing.T) {
	// The 20 tracking providers of Table 2, with exact sender counts.
	want := map[string]int{
		"facebook.com": 74, "criteo.com": 37, "pinterest.com": 33,
		"snapchat.com": 20, "cquotient.com": 7, "bluecore.com": 5,
		"klaviyo.com": 4, "oracleinfinity.io": 4, "rlcdn.com": 4,
		"omtrdc.net": 7, "castle.io": 2, "custora.com": 2,
		"dotomi.com": 2, "inside-graph.com": 2, "krxd.net": 2,
		"pxf.io": 2, "taboola.com": 2, "thebrighttag.com": 2,
		"yahoo.com": 2, "zendesk.com": 2,
	}
	cat := Catalog()
	persistent := 0
	for i := range cat {
		p := &cat[i]
		if !p.Persistent {
			continue
		}
		persistent++
		if wantN, ok := want[p.Domain]; !ok {
			t.Errorf("unexpected persistent provider %s", p.Domain)
		} else if got := p.TotalSenders(); got != wantN {
			t.Errorf("%s: %d sender slots, want %d", p.Domain, got, wantN)
		}
	}
	if persistent != 20 {
		t.Errorf("persistent providers = %d, want 20", persistent)
	}
}

func TestCatalogBraveMissedEight(t *testing.T) {
	missed := map[string]bool{}
	for _, p := range Catalog() {
		if !p.BraveBlocked {
			missed[p.Domain] = true
		}
	}
	want := []string{
		"aliyun.com", "cartsync.io", "gravatar.com", "herokuapp.com",
		"intercom.io", "lmcdn.ru", "okta-emea.com", "zendesk.com",
	}
	if len(missed) != len(want) {
		t.Fatalf("Brave misses %d domains, want %d: %v", len(missed), len(want), missed)
	}
	for _, d := range want {
		if !missed[d] {
			t.Errorf("Brave-missed set lacks %s", d)
		}
	}
}

func TestCatalogBlocklistMisses(t *testing.T) {
	// §7.2: custora, taboola, zendesk escape the combined blocklists.
	for _, p := range Catalog() {
		if !p.Persistent {
			continue
		}
		miss := p.Domain == "custora.com" || p.Domain == "taboola.com" || p.Domain == "zendesk.com"
		covered := p.EasyPrivacy || p.EasyList
		if miss && covered {
			t.Errorf("%s should be missed by the lists", p.Domain)
		}
		if !miss && !covered {
			t.Errorf("%s should be covered by the lists", p.Domain)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(SmallConfig(5))
	b := MustGenerate(SmallConfig(5))
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i].Sender != b.Edges[i].Sender ||
			a.Edges[i].Provider != b.Edges[i].Provider ||
			a.Edges[i].Param != b.Edges[i].Param {
			t.Fatalf("edge %d differs", i)
		}
	}
	if a.SenderSites[0].Domain != b.SenderSites[0].Domain {
		t.Error("sender sites differ")
	}
}

func TestFunnelCounts(t *testing.T) {
	eco := defaultEco(t)
	if got := len(eco.Sites); got != 404 {
		t.Errorf("candidate sites = %d, want 404", got)
	}
	if got := len(eco.Crawlable); got != 307 {
		t.Errorf("crawlable sites = %d, want 307", got)
	}
	counts := map[site.Obstacle]int{}
	for _, s := range eco.Sites {
		counts[s.Obstacle]++
	}
	wantObstacles := map[site.Obstacle]int{
		site.ObstacleUnreachable: 22,
		site.ObstacleNoAuth:      19,
		site.ObstaclePhoneVerify: 47,
		site.ObstacleIDDocuments: 6,
		site.ObstacleRegionBlock: 3,
		site.ObstacleNone:        307,
	}
	for k, v := range wantObstacles {
		if counts[k] != v {
			t.Errorf("obstacle %q = %d, want %d", k, counts[k], v)
		}
	}

	confirm, bot := 0, 0
	for _, s := range eco.Crawlable {
		if s.EmailConfirm {
			confirm++
		}
		if s.BotDetection {
			bot++
		}
	}
	if confirm != 68 {
		t.Errorf("email-confirm sites = %d, want 68", confirm)
	}
	if bot != 43 {
		t.Errorf("bot-detection sites = %d, want 43", bot)
	}
}

func TestSenderPopulation(t *testing.T) {
	eco := defaultEco(t)
	if got := len(eco.SenderSites); got != 130 {
		t.Fatalf("senders = %d, want 130", got)
	}
	// First three senders have GET signup forms.
	for i := 0; i < 3; i++ {
		if !eco.SenderSites[i].SignupGET {
			t.Errorf("sender %d is not a GET-form site", i)
		}
	}
	for i := 3; i < len(eco.SenderSites); i++ {
		if eco.SenderSites[i].SignupGET {
			t.Errorf("sender %d unexpectedly has a GET form", i)
		}
	}
}

func TestEveryNonRefererSenderHasEdges(t *testing.T) {
	eco := defaultEco(t)
	edges := map[int]int{}
	for _, ed := range eco.Edges {
		edges[ed.Sender]++
	}
	for i := refererSenders; i < len(eco.SenderSites); i++ {
		if edges[i] == 0 {
			t.Errorf("sender %d has no edges", i)
		}
	}
	// Referer senders leak only via their GET form.
	for i := 0; i < refererSenders; i++ {
		if edges[i] != 0 {
			t.Errorf("referer sender %d has %d slot edges", i, edges[i])
		}
	}
}

func TestReceiverDistributionShape(t *testing.T) {
	eco := defaultEco(t)
	perSender := map[int]map[int]bool{}
	for _, ed := range eco.Edges {
		if perSender[ed.Sender] == nil {
			perSender[ed.Sender] = map[int]bool{}
		}
		perSender[ed.Sender][ed.Provider] = true
	}
	// Referer senders' receivers come from their ad tags.
	for i, set := range refererTagSets() {
		perSender[i] = map[int]bool{}
		for range set {
			perSender[i][len(perSender[i])] = true
		}
	}

	total, atLeast3, max := 0, 0, 0
	for _, provs := range perSender {
		n := len(provs)
		total += n
		if n >= 3 {
			atLeast3++
		}
		if n > max {
			max = n
		}
	}
	avg := float64(total) / float64(len(eco.SenderSites))
	// Paper: mean 2.97, 46.15% with >= 3, max 16.
	if avg < 2.5 || avg > 3.5 {
		t.Errorf("mean receivers/sender = %.2f, want ≈ 2.97", avg)
	}
	if pct := float64(atLeast3) / 1.30; pct < 30 || pct > 62 {
		t.Errorf("senders with ≥3 receivers = %.1f%%, want ≈ 46%%", pct)
	}
	if max < 12 || max > 20 {
		t.Errorf("max receivers = %d, want ≈ 16", max)
	}
}

func TestHeroSenderHasMaxReceivers(t *testing.T) {
	eco := defaultEco(t)
	perSender := map[int]map[int]bool{}
	for _, ed := range eco.Edges {
		if perSender[ed.Sender] == nil {
			perSender[ed.Sender] = map[int]bool{}
		}
		perSender[ed.Sender][ed.Provider] = true
	}
	heroN := len(perSender[heroSender])
	for s, provs := range perSender {
		if len(provs) > heroN {
			t.Errorf("sender %d has %d receivers, more than hero's %d", s, len(provs), heroN)
		}
	}
	if heroN < 12 {
		t.Errorf("hero has only %d receivers", heroN)
	}
}

func TestMethodMarginals(t *testing.T) {
	eco := defaultEco(t)
	methodSenders := map[httpmodel.SurfaceKind]map[int]bool{}
	for _, ed := range eco.Edges {
		if methodSenders[ed.Method] == nil {
			methodSenders[ed.Method] = map[int]bool{}
		}
		methodSenders[ed.Method][ed.Sender] = true
	}
	if got := len(methodSenders[httpmodel.SurfaceCookie]); got != 5 {
		t.Errorf("cookie senders = %d, want 5", got)
	}
	if got := len(methodSenders[httpmodel.SurfaceURI]); got < 105 || got > 127 {
		t.Errorf("URI senders = %d, want ≈ 118", got)
	}
	if got := len(methodSenders[httpmodel.SurfaceBody]); got < 25 || got > 55 {
		t.Errorf("payload senders = %d, want ≈ 43", got)
	}
}

func TestMultiPIICohorts(t *testing.T) {
	eco := defaultEco(t)
	nameSenders := map[int]bool{}
	userSenders := map[int]bool{}
	usernameOnly := map[int]bool{}
	for _, ed := range eco.Edges {
		hasName, hasUser, hasEmail := false, false, false
		for _, tpe := range ed.PII {
			switch tpe {
			case pii.TypeName:
				hasName = true
			case pii.TypeUsername:
				hasUser = true
			case pii.TypeEmail:
				hasEmail = true
			}
		}
		if hasName {
			nameSenders[ed.Sender] = true
		}
		if hasUser && hasEmail {
			userSenders[ed.Sender] = true
		}
		if hasUser && !hasEmail {
			usernameOnly[ed.Sender] = true
		}
	}
	if len(nameSenders) != 29 {
		t.Errorf("email+name senders = %d, want 29", len(nameSenders))
	}
	if len(userSenders) != 3 {
		t.Errorf("email+username senders = %d, want 3", len(userSenders))
	}
	if len(usernameOnly) != 1 {
		t.Errorf("username-only senders = %d, want 1", len(usernameOnly))
	}
}

func TestCloakedTagsHaveCNAMEs(t *testing.T) {
	eco := defaultEco(t)
	cloaked := 0
	for _, s := range eco.SenderSites {
		for _, tag := range s.Tags {
			if tag.Receiver != "omtrdc.net" {
				continue
			}
			cloaked++
			if !strings.HasPrefix(tag.Host, "smetrics.") || !strings.HasSuffix(tag.Host, s.Domain) {
				t.Errorf("cloaked tag host %q not a first-party subdomain of %s", tag.Host, s.Domain)
			}
			chain, err := eco.Zone.Resolve(tag.Host)
			if err != nil || len(chain) == 0 {
				t.Errorf("no CNAME for cloaked host %s", tag.Host)
			}
		}
	}
	if cloaked != 7 {
		t.Errorf("cloaked (adobe) sender tags = %d, want 7 (3 URI + 4 cookie)", cloaked)
	}
}

func TestBraveSurvivorsExactlyNine(t *testing.T) {
	eco := defaultEco(t)
	survivors := map[int]bool{}
	for _, ed := range eco.Edges {
		if !eco.Providers[ed.Provider].BraveBlocked {
			survivors[ed.Sender] = true
		}
	}
	if len(survivors) != 9 {
		t.Errorf("Brave-surviving senders = %d, want 9", len(survivors))
	}
}

func TestPolicyClassCounts(t *testing.T) {
	eco := defaultEco(t)
	counts := map[site.PolicyClass]int{}
	for _, s := range eco.SenderSites {
		counts[s.Policy]++
	}
	want := map[site.PolicyClass]int{
		site.PolicyNotSpecific:   102,
		site.PolicySpecific:      9,
		site.PolicyNoDescription: 15,
		site.PolicyExplicitlyNot: 4,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("policy %q = %d, want %d", k, counts[k], v)
		}
	}
}

func TestMailVolumes(t *testing.T) {
	eco := defaultEco(t)
	inbox, spam := 0, 0
	for _, s := range eco.Crawlable {
		inbox += s.MarketingMails
		spam += s.SpamMails
	}
	if inbox != 2172 {
		t.Errorf("inbox mails = %d, want 2172", inbox)
	}
	if spam != 141 {
		t.Errorf("spam mails = %d, want 141", spam)
	}
}

func TestGeneratedBlocklistsParse(t *testing.T) {
	eco := defaultEco(t)
	el, err := blocklist.ParseList("easylist", eco.EasyListText)
	if err != nil {
		t.Fatalf("EasyList: %v", err)
	}
	ep, err := blocklist.ParseList("easyprivacy", eco.EasyPrivacyText)
	if err != nil {
		t.Fatalf("EasyPrivacy: %v", err)
	}
	if len(el.Rules) < 5 {
		t.Errorf("EasyList has only %d rules", len(el.Rules))
	}
	if len(ep.Rules) < 50 {
		t.Errorf("EasyPrivacy has only %d rules", len(ep.Rules))
	}
	// EasyPrivacy must block facebook third-party traffic but not
	// custora/taboola/zendesk.
	e := blocklist.NewEngine(ep)
	if !e.ShouldBlock(blocklist.RequestInfo{
		URL: "https://www.facebook.com/en_US/fbevents.js", PageHost: "shop.example",
		Type: blocklist.TypeScript, ThirdParty: true,
	}) {
		t.Error("EasyPrivacy does not block facebook")
	}
	for _, miss := range []string{"c.custora.com", "cdn.taboola.com", "ekr.zendesk.com"} {
		if e.ShouldBlock(blocklist.RequestInfo{
			URL: "https://" + miss + "/x.js", PageHost: "shop.example",
			Type: blocklist.TypeScript, ThirdParty: true,
		}) {
			t.Errorf("EasyPrivacy unexpectedly blocks %s", miss)
		}
	}
	// The cloaked Adobe path rule works on first-party hosts.
	if !e.ShouldBlock(blocklist.RequestInfo{
		URL: "https://smetrics.shop.example/b/ss/s_code/collect?v_em=x", PageHost: "shop.example",
		Type: blocklist.TypeScript, ThirdParty: false,
	}) {
		t.Error("EasyPrivacy misses the cloaked Adobe path")
	}
}

func TestCaptchaSiteDesignated(t *testing.T) {
	eco := defaultEco(t)
	survivors := map[int]bool{}
	for _, ed := range eco.Edges {
		if !eco.Providers[ed.Provider].BraveBlocked {
			survivors[ed.Sender] = true
		}
	}
	n := 0
	for _, s := range eco.Crawlable {
		if !s.CaptchaBreaksUnderShields {
			continue
		}
		n++
		if !s.BotDetection {
			t.Error("captcha site lacks bot detection")
		}
		idx := eco.SenderIndex(s)
		if idx < 0 {
			t.Error("captcha site is not a sender (nykaa.com was one of the 130)")
		} else if survivors[idx] {
			t.Error("captcha site is a Brave survivor; §7.1 survivor count would drift")
		}
	}
	if n != 1 {
		t.Errorf("captcha-breaks sites = %d, want 1", n)
	}
}

func TestSmallConfigGenerates(t *testing.T) {
	eco := MustGenerate(SmallConfig(1))
	if len(eco.SenderSites) != 30 {
		t.Errorf("small senders = %d", len(eco.SenderSites))
	}
	if len(eco.Edges) == 0 {
		t.Error("small ecosystem has no edges")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.Senders = 999
	if _, err := Generate(bad); err == nil {
		t.Error("oversized sender count accepted")
	}
	bad2 := DefaultConfig()
	bad2.PolicySpecific = 100
	if _, err := Generate(bad2); err == nil {
		t.Error("mismatched policy classes accepted")
	}
}

func TestProviderHostsMatchDomains(t *testing.T) {
	for _, p := range Catalog() {
		if p.Cloaked {
			continue
		}
		if p.Host != p.Domain && !strings.HasSuffix(p.Host, "."+p.Domain) {
			t.Errorf("%s: tag host %q is not under the receiver domain", p.Domain, p.Host)
		}
	}
}

func TestFieldNamingSchemes(t *testing.T) {
	eco := defaultEco(t)
	counts := map[int]int{}
	for _, s := range eco.Sites {
		counts[s.FieldNaming]++
	}
	// Roughly one in ten sites uses the exotic scheme.
	if counts[3] < len(eco.Sites)/15 || counts[3] > len(eco.Sites)/6 {
		t.Errorf("exotic-naming sites = %d of %d", counts[3], len(eco.Sites))
	}
	// The GET-form senders always use plain names (their referer leak
	// must be readable).
	for i := 0; i < 3; i++ {
		if eco.SenderSites[i].FieldNaming != 0 {
			t.Errorf("GET sender %d uses scheme %d", i, eco.SenderSites[i].FieldNaming)
		}
	}
}
