package webgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/site"
	"piileak/internal/tranco"
)

// Config parameterizes ecosystem generation. The defaults reproduce the
// paper's population (§3.2).
type Config struct {
	Seed          uint64
	TopN          int // Tranco depth (10,000)
	ShoppingSites int // candidate shopping sites (404)

	// UniverseSize extends the site population past the study core to a
	// ranked long tail of background sites (Tranco-1M scale). The first
	// len(Sites) universe indexes are the study core exactly as
	// generated; the rest are derived lazily, one independent PCG
	// stream per rank, so nothing beyond the core is ever materialized
	// up front. 0 (the default) means the universe is the core alone —
	// byte-identical to the pre-universe behaviour. A non-zero value
	// smaller than the study core is a validation error.
	UniverseSize int

	// Funnel obstacles (§3.2).
	Unreachable  int // 22
	NoAuthFlow   int // 19
	PhoneVerify  int // 47
	IDDocuments  int // 6
	RegionBlock  int // 3
	EmailConfirm int // 68
	BotDetection int // 43

	Senders int // 130 leaky first parties

	// Multi-PII sender cohorts (Table 1c).
	EmailNameSenders     int // 29
	EmailUsernameSenders int // 3

	// Table 3 policy-class counts over the senders.
	PolicyNotSpecific   int // 102
	PolicySpecific      int // 9
	PolicyNoDescription int // 15
	PolicyExplicitNot   int // 4

	// §4.2.3 mailbox volumes.
	InboxMails int // 2172
	SpamMails  int // 141

	// Faults opts the substrate into deterministic fault injection:
	// site and third-party hosts become intermittently (or permanently)
	// faulty per the seeded faultsim profile, and the crawler's
	// resilience runtime has something to fight. nil — the default, and
	// the paper's calibration — keeps every host perfectly reliable.
	Faults *faultsim.Config
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Seed:          2021,
		TopN:          10000,
		ShoppingSites: 404,
		Unreachable:   22,
		NoAuthFlow:    19,
		PhoneVerify:   47,
		IDDocuments:   6,
		RegionBlock:   3,
		EmailConfirm:  68,
		BotDetection:  43,
		Senders:       130,

		EmailNameSenders:     29,
		EmailUsernameSenders: 3,

		PolicyNotSpecific:   102,
		PolicySpecific:      9,
		PolicyNoDescription: 15,
		PolicyExplicitNot:   4,

		InboxMails: 2172,
		SpamMails:  141,
	}
}

// SmallConfig returns a reduced ecosystem for fast tests and examples:
// the funnel, cohorts and mail volumes are scaled down but every
// mechanism (cloaking, referer leaks, all methods) stays exercised.
func SmallConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		TopN:          600,
		ShoppingSites: 60,
		Unreachable:   3,
		NoAuthFlow:    2,
		PhoneVerify:   5,
		IDDocuments:   1,
		RegionBlock:   1,
		EmailConfirm:  8,
		BotDetection:  5,
		Senders:       30,

		EmailNameSenders:     6,
		EmailUsernameSenders: 2,

		PolicyNotSpecific:   23,
		PolicySpecific:      2,
		PolicyNoDescription: 3,
		PolicyExplicitNot:   2,

		InboxMails: 210,
		SpamMails:  15,
	}
}

// Edge is one (sender, receiver) leak relationship with its behaviour.
type Edge struct {
	Sender   int // index into Ecosystem.SenderSites
	Provider int // index into Ecosystem.Providers
	Method   httpmodel.SurfaceKind
	Param    string
	Chain    []string
	PII      []pii.Type
	JSON     bool
}

// Ecosystem is the generated synthetic web.
type Ecosystem struct {
	Config    Config
	Persona   pii.Persona
	List      *tranco.List
	Providers []Provider

	// Sites are the candidate shopping sites, including obstacle
	// sites.
	Sites []*site.Site
	// Crawlable are the sites the §3.2 flow completes on (307 at
	// default config).
	Crawlable []*site.Site
	// SenderSites are the leaky first parties in sender-index order;
	// the first three are the GET-form (referer-leak) senders and the
	// last is the username-only sender.
	SenderSites []*site.Site
	// Edges is the calibrated leak graph (excludes referer leakage,
	// which emerges from the GET forms).
	Edges []Edge
	// Zone holds the CNAME records for cloaked tags.
	Zone *dnssim.Zone
	// EasyListText and EasyPrivacyText are the generated filter lists.
	EasyListText    string
	EasyPrivacyText string
	// BraveShields is the set of receiver registrable domains Brave's
	// shields block.
	BraveShields map[string]bool
	// Faults is the compiled fault injector when Config.Faults is set;
	// nil for the stock, perfectly-reliable substrate.
	Faults *faultsim.Injector
}

const refererSenders = 3 // GET-signup senders (indices 0..2)

// heroSender is the sender index engineered to reach the paper's
// maximum receiver count (the loccitane.com analog).
const heroSender = refererSenders

// Generate builds the ecosystem for a config.
func Generate(cfg Config) (*Ecosystem, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5049494c)) // "PIIL"

	eco := &Ecosystem{
		Config:    cfg,
		Persona:   pii.Default(),
		List:      tranco.Generate(cfg.Seed, cfg.TopN, cfg.ShoppingSites),
		Providers: Catalog(),
		Zone:      dnssim.NewZone(),
	}
	if cfg.Senders != DefaultConfig().Senders {
		scaleCatalog(eco, cfg.Senders)
	}

	eco.buildSites(rng)
	eco.assignEdges(rng)
	eco.markCaptchaSite()
	eco.markMultiPII(rng)
	eco.buildTags(rng)
	eco.assignPolicies(rng)
	eco.assignMail(rng)
	eco.buildBlocklists()
	if cfg.Faults != nil {
		fc := *cfg.Faults
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed // faults follow the ecosystem seed by default
		}
		eco.Faults = faultsim.New(fc)
	}
	return eco, nil
}

// MustGenerate panics on configuration errors.
func MustGenerate(cfg Config) *Ecosystem {
	eco, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return eco
}

// scaleCatalog shrinks slot counts proportionally for non-default sender
// populations, keeping at least one sender per provider so every
// mechanism still appears.
func scaleCatalog(eco *Ecosystem, senders int) {
	f := float64(senders) / float64(DefaultConfig().Senders)
	for i := range eco.Providers {
		for j := range eco.Providers[i].Slots {
			c := int(float64(eco.Providers[i].Slots[j].Count)*f + 0.5)
			if c < 1 {
				c = 1
			}
			eco.Providers[i].Slots[j].Count = c
		}
	}
}

func validate(cfg Config) error {
	obstacles := cfg.Unreachable + cfg.NoAuthFlow + cfg.PhoneVerify + cfg.IDDocuments + cfg.RegionBlock
	crawlable := cfg.ShoppingSites - obstacles
	if crawlable <= 0 {
		return fmt.Errorf("webgen: obstacles (%d) consume all %d sites", obstacles, cfg.ShoppingSites)
	}
	if cfg.Senders > crawlable {
		return fmt.Errorf("webgen: %d senders exceed %d crawlable sites", cfg.Senders, crawlable)
	}
	if cfg.Senders < refererSenders+2 {
		return fmt.Errorf("webgen: need at least %d senders", refererSenders+2)
	}
	if p := cfg.PolicyNotSpecific + cfg.PolicySpecific + cfg.PolicyNoDescription + cfg.PolicyExplicitNot; p != cfg.Senders {
		return fmt.Errorf("webgen: policy classes sum to %d, want %d", p, cfg.Senders)
	}
	if cfg.UniverseSize < 0 {
		return fmt.Errorf("webgen: negative UniverseSize %d", cfg.UniverseSize)
	}
	if cfg.UniverseSize > 0 && cfg.UniverseSize < cfg.ShoppingSites {
		return fmt.Errorf("webgen: UniverseSize %d is smaller than the %d-site study core", cfg.UniverseSize, cfg.ShoppingSites)
	}
	return nil
}

// buildSites creates the candidate sites, assigns funnel obstacles,
// email confirmation, bot detection, and picks the senders.
func (e *Ecosystem) buildSites(rng *rand.Rand) {
	cfg := e.Config
	entries := e.List.Shopping()
	e.Sites = make([]*site.Site, len(entries))
	for i, entry := range entries {
		e.Sites[i] = &site.Site{
			Domain:      entry.Domain,
			Rank:        entry.Rank,
			Collected:   collectedFor(i),
			FieldNaming: namingFor(i),
		}
	}

	// Obstacles on a deterministic shuffle.
	perm := rng.Perm(len(e.Sites))
	idx := 0
	take := func(n int, obstacle site.Obstacle) {
		for i := 0; i < n; i++ {
			e.Sites[perm[idx]].Obstacle = obstacle
			idx++
		}
	}
	take(cfg.Unreachable, site.ObstacleUnreachable)
	take(cfg.NoAuthFlow, site.ObstacleNoAuth)
	take(cfg.PhoneVerify, site.ObstaclePhoneVerify)
	take(cfg.IDDocuments, site.ObstacleIDDocuments)
	take(cfg.RegionBlock, site.ObstacleRegionBlock)

	for _, s := range e.Sites {
		if s.Obstacle == site.ObstacleNone {
			e.Crawlable = append(e.Crawlable, s)
		}
	}

	// Email confirmation and bot detection among the crawlable sites.
	cperm := rng.Perm(len(e.Crawlable))
	for i := 0; i < cfg.EmailConfirm && i < len(cperm); i++ {
		e.Crawlable[cperm[i]].EmailConfirm = true
	}
	cperm = rng.Perm(len(e.Crawlable))
	for i := 0; i < cfg.BotDetection && i < len(cperm); i++ {
		e.Crawlable[cperm[i]].BotDetection = true
	}

	// Senders: a deterministic subset of the crawlable sites; first
	// three are the GET-form referer leakers.
	sperm := rng.Perm(len(e.Crawlable))
	e.SenderSites = make([]*site.Site, cfg.Senders)
	for i := 0; i < cfg.Senders; i++ {
		e.SenderSites[i] = e.Crawlable[sperm[i]]
	}
	for i := 0; i < refererSenders; i++ {
		e.SenderSites[i].SignupGET = true
		// Referer leaks need field names a reader recognizes in the
		// URL; the badly-coded GET sites use the plain scheme.
		e.SenderSites[i].FieldNaming = 0
	}

}

// namingFor assigns form-input naming schemes: roughly one in ten
// sites uses exotic, heuristic-defeating names (experiment X4), the
// rest cycle through the conventional schemes.
func namingFor(i int) int {
	if i%10 == 7 {
		return 3
	}
	return i % 3
}

// collectedFor varies the signup-form PII fields per site.
func collectedFor(i int) []pii.Type {
	base := []pii.Type{pii.TypeEmail, pii.TypeName}
	switch i % 4 {
	case 0:
		return append(base, pii.TypeGender, pii.TypeDOB)
	case 1:
		return append(base, pii.TypeUsername, pii.TypePhone)
	case 2:
		return append(base, pii.TypeAddress)
	default:
		return append(base, pii.TypeJob, pii.TypeGender)
	}
}

// usernameOnlySender returns the index of the sender that leaks only a
// username (Table 1c's single "username" row).
func (e *Ecosystem) usernameOnlySender() int { return len(e.SenderSites) - 1 }

// markCaptchaSite designates the one sender whose CAPTCHA flow breaks
// under Brave shields (§7.1, the nykaa.com case). The site must not be
// a Brave survivor, or the §7.1 surviving-sender count would drift when
// its whole crawl aborts.
func (e *Ecosystem) markCaptchaSite() {
	survivors := map[int]bool{}
	for _, ed := range e.Edges {
		if !e.Providers[ed.Provider].BraveBlocked {
			survivors[ed.Sender] = true
		}
	}
	// Prefer an existing bot-detection sender.
	for i := refererSenders; i < len(e.SenderSites); i++ {
		s := e.SenderSites[i]
		if s.BotDetection && !survivors[i] {
			s.CaptchaBreaksUnderShields = true
			return
		}
	}
	// Otherwise move the bot-detection flag from a non-sender site to
	// a non-surviving sender, keeping the §3.2 count intact.
	senderSet := map[*site.Site]bool{}
	for _, s := range e.SenderSites {
		senderSet[s] = true
	}
	var donor *site.Site
	for _, s := range e.Crawlable {
		if s.BotDetection && !senderSet[s] {
			donor = s
			break
		}
	}
	for i := refererSenders; i < len(e.SenderSites); i++ {
		s := e.SenderSites[i]
		if !survivors[i] {
			if donor != nil {
				donor.BotDetection = false
			}
			s.BotDetection = true
			s.CaptchaBreaksUnderShields = true
			return
		}
	}
}

// assignEdges distributes provider slots over eligible senders with
// heavy-tailed weights, reproducing the paper's receiver-count
// distribution (mean ≈ 3 receivers/sender, a hero sender at the maximum,
// ~46% of senders with ≥3 receivers).
func (e *Ecosystem) assignEdges(rng *rand.Rand) {
	nSenders := len(e.SenderSites)
	usernameOnly := e.usernameOnlySender()

	eligible := func(i int) bool { return i >= refererSenders && i != usernameOnly }

	// Heavy-tailed weights over eligible senders.
	weight := make([]float64, nSenders)
	for i := range weight {
		if !eligible(i) {
			continue
		}
		rank := float64(i-refererSenders) + 1
		weight[i] = 1.0 / math.Pow(rank, 0.80)
	}
	var totalWeight float64
	for _, w := range weight {
		totalWeight += w
	}
	// provCount tracks distinct providers per sender so no sender can
	// exceed the hero's paper-exact maximum.
	provCount := make([]int, nSenders)
	// The hero's 16 pre-assigned providers already exceed the cap, so
	// it receives nothing further and stays the unique maximum.
	const maxProvidersPerSender = 15
	capped := func(i int) bool { return provCount[i] >= maxProvidersPerSender }
	sampleWeighted := func(excluded map[int]bool) int {
		for {
			x := rng.Float64() * totalWeight
			for i, w := range weight {
				if w == 0 {
					continue
				}
				x -= w
				if x <= 0 {
					if !excluded[i] && !capped(i) {
						return i
					}
					break
				}
			}
		}
	}
	// The payload pool concentrates payload-channel leaks on senders
	// with few other edges, keeping the multi-method ("combined")
	// sender cohort near the paper's.
	poolStart := refererSenders + (nSenders-refererSenders)*6/10
	samplePool := func(excluded map[int]bool) int {
		for tries := 0; tries < 10*nSenders; tries++ {
			i := poolStart + rng.IntN(usernameOnly-poolStart)
			if !excluded[i] && !capped(i) {
				return i
			}
		}
		return sampleWeighted(excluded)
	}

	// Hero pre-assignment: one edge from each of the largest providers.
	type provIdx struct{ idx, total int }
	var order []provIdx
	for i := range e.Providers {
		if t := e.Providers[i].TotalSenders(); t > 0 {
			order = append(order, provIdx{i, t})
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].total != order[b].total {
			return order[a].total > order[b].total
		}
		return order[a].idx < order[b].idx
	})
	heroProviders := 16
	if heroProviders > len(order) {
		heroProviders = len(order)
	}
	if nSenders < 40 {
		heroProviders = 6 // scaled-down ecosystems
	}

	linked := make([]map[int]bool, len(e.Providers)) // provider -> sender set
	for i := range linked {
		linked[i] = make(map[int]bool)
	}
	slotUsed := make([][]int, len(e.Providers)) // per-slot assignment counts
	for i := range slotUsed {
		slotUsed[i] = make([]int, len(e.Providers[i].Slots))
	}

	addEdge := func(prov, slot, sender, posInSlot int) {
		p := &e.Providers[prov]
		s := p.Slots[slot]
		method := s.Methods[posInSlot%len(s.Methods)]
		param := s.Param
		if s.ParamPerSender {
			param = fmt.Sprintf("%s%d", s.Param, posInSlot+1)
		}
		e.Edges = append(e.Edges, Edge{
			Sender:   sender,
			Provider: prov,
			Method:   method,
			Param:    param,
			Chain:    s.Chain,
			PII:      []pii.Type{pii.TypeEmail},
			JSON:     s.JSON,
		})
		if !linked[prov][sender] {
			provCount[sender]++
		}
		linked[prov][sender] = true
	}

	for k := 0; k < heroProviders; k++ {
		prov := order[k].idx
		addEdge(prov, 0, heroSender, slotUsed[prov][0])
		slotUsed[prov][0]++
	}

	// Brave-survivor providers must land on pairwise-distinct senders
	// so the §7.1 survivor count is exact.
	survivors := map[int]bool{heroSender: true}
	survivorProvider := make([]bool, len(e.Providers))
	for i := range e.Providers {
		if !e.Providers[i].BraveBlocked {
			survivorProvider[i] = true
		}
	}

	// Main pass: fill every slot.
	for prov := range e.Providers {
		p := &e.Providers[prov]
		for slot := range p.Slots {
			s := p.Slots[slot]
			isSingle := p.TotalSenders() == 1
			for slotUsed[prov][slot] < s.Count {
				pos := slotUsed[prov][slot]
				method := s.Methods[pos%len(s.Methods)]
				excluded := linked[prov]
				var sender int
				switch {
				case survivorProvider[prov]:
					// Uniform over eligible senders not already
					// surviving.
					for {
						sender = refererSenders + rng.IntN(usernameOnly-refererSenders)
						if !excluded[sender] && !survivors[sender] && !capped(sender) {
							break
						}
					}
					survivors[sender] = true
				case isSingle:
					// The long tail spreads uniformly.
					for {
						sender = refererSenders + rng.IntN(usernameOnly-refererSenders)
						if !excluded[sender] && !capped(sender) {
							break
						}
					}
				case method == httpmodel.SurfaceBody:
					sender = samplePool(excluded)
				default:
					sender = sampleWeighted(excluded)
				}
				addEdge(prov, slot, sender, pos)
				slotUsed[prov][slot]++
			}
		}
	}

	// Username-only sender: rewrite the last single-sender tail edge
	// to carry only a username.
	for i := len(e.Edges) - 1; i >= 0; i-- {
		prov := &e.Providers[e.Edges[i].Provider]
		if prov.TotalSenders() == 1 && !survivorProvider[e.Edges[i].Provider] && prov.Slots[0].Chain == nil {
			e.Edges[i].Sender = usernameOnly
			e.Edges[i].PII = []pii.Type{pii.TypeUsername}
			ensureCollected(e.SenderSites[usernameOnly], pii.TypeUsername)
			break
		}
	}

	// Zero-edge protection: every non-referer sender must leak.
	edgeCount := make([]int, nSenders)
	for _, ed := range e.Edges {
		edgeCount[ed.Sender]++
	}
	for z := refererSenders; z < nSenders; z++ {
		if edgeCount[z] > 0 {
			continue
		}
		// Steal an edge from the most-loaded sender, from a provider
		// not yet linked to z and not survivor-critical.
		best, bestIdx := -1, -1
		for i, ed := range e.Edges {
			if survivorProvider[ed.Provider] || ed.Sender == heroSender || ed.Sender == z {
				continue
			}
			if linked[ed.Provider][z] {
				continue
			}
			if edgeCount[ed.Sender] > best && edgeCount[ed.Sender] > 1 {
				best, bestIdx = edgeCount[ed.Sender], i
			}
		}
		if bestIdx < 0 {
			continue
		}
		old := e.Edges[bestIdx].Sender
		delete(linked[e.Edges[bestIdx].Provider], old)
		linked[e.Edges[bestIdx].Provider][z] = true
		e.Edges[bestIdx].Sender = z
		edgeCount[old]--
		edgeCount[z]++
	}
}

// markMultiPII designates the email+name and email+username sender
// cohorts (Table 1c) and widens the PII of selected edges.
func (e *Ecosystem) markMultiPII(rng *rand.Rand) {
	cfg := e.Config

	// Name-capable providers: the large "consistent" receivers.
	nameCapable := map[string]bool{
		"google-analytics.com": true, "doubleclick.net": true,
		"tiktok.com": true, "demdex.net": true, "bing.com": true,
		"twitter.com": true, "linkedin.com": true, "quantserve.com": true,
		"hubspot.com": true, "amazon-adsystem.com": true,
		"outbrain.com": true, "mailchimp.com": true,
	}
	usernameCapable := map[string]bool{
		"google-analytics.com": true, "doubleclick.net": true,
		"tiktok.com": true, "demdex.net": true, "bing.com": true,
		"twitter.com": true,
	}

	// Edges per sender to capable providers.
	nameEdges := map[int][]int{}
	userEdges := map[int][]int{}
	for i, ed := range e.Edges {
		d := e.Providers[ed.Provider].Domain
		if nameCapable[d] {
			nameEdges[ed.Sender] = append(nameEdges[ed.Sender], i)
		}
		if usernameCapable[d] {
			userEdges[ed.Sender] = append(userEdges[ed.Sender], i)
		}
	}

	// Email+username cohort first (kept disjoint from email+name):
	// each marked sender widens two of its capable edges.
	userMarked := map[int]bool{}
	senders := sortedKeys(userEdges)
	for _, s := range senders {
		if len(userMarked) >= cfg.EmailUsernameSenders {
			break
		}
		if len(userEdges[s]) < 2 || s == heroSender {
			continue
		}
		userMarked[s] = true
		for _, ei := range userEdges[s][:2] {
			e.Edges[ei].PII = append(e.Edges[ei].PII, pii.TypeUsername)
		}
		ensureCollected(e.SenderSites[s], pii.TypeUsername)
	}

	// Email+name cohort: first pass gives each name-capable provider
	// one marked edge (spreading the receiver-side count), then fill
	// until the cohort is complete.
	nameMarked := map[int]bool{}
	markEdge := func(ei int) {
		s := e.Edges[ei].Sender
		if userMarked[s] || nameMarked[s] {
			return
		}
		nameMarked[s] = true
		e.Edges[ei].PII = append(e.Edges[ei].PII, pii.TypeName)
	}
	providerFirstEdge := map[int][]int{}
	for i, ed := range e.Edges {
		if nameCapable[e.Providers[ed.Provider].Domain] {
			providerFirstEdge[ed.Provider] = append(providerFirstEdge[ed.Provider], i)
		}
	}
	for _, prov := range sortedKeys(providerFirstEdge) {
		if len(nameMarked) >= cfg.EmailNameSenders {
			break
		}
		for _, ei := range providerFirstEdge[prov] {
			s := e.Edges[ei].Sender
			if !userMarked[s] && !nameMarked[s] {
				markEdge(ei)
				break
			}
		}
	}
	for _, s := range sortedKeys(nameEdges) {
		if len(nameMarked) >= cfg.EmailNameSenders {
			break
		}
		if userMarked[s] || nameMarked[s] {
			continue
		}
		markEdge(nameEdges[s][0])
	}
	_ = rng
}

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func ensureCollected(s *site.Site, t pii.Type) {
	for _, c := range s.Collected {
		if c == t {
			return
		}
	}
	s.Collected = append(s.Collected, t)
}

// refererTagSets returns, per GET-form sender, the indices (into the
// referer-provider group) of the ad tags it embeds. The overlap keeps
// every referer receiver multi-sender.
func refererTagSets() [][]int {
	return [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{0, 1, 2, 5, 6},
		// The third GET sender embeds only EasyList-covered exchanges,
		// making it the single sender EasyList alone fully covers
		// (Table 4's 1/0.8%).
		{0, 1, 3, 4},
	}
}

// buildTags converts edges into per-site tags, wires cloaked CNAMEs, and
// adds benign tags everywhere.
func (e *Ecosystem) buildTags(rng *rand.Rand) {
	// Group edges by (sender, provider).
	type key struct{ sender, prov int }
	group := map[key][]Edge{}
	for _, ed := range e.Edges {
		k := key{ed.Sender, ed.Provider}
		group[k] = append(group[k], ed)
	}

	var refProviders []int
	for i := range e.Providers {
		if e.Providers[i].Referer {
			refProviders = append(refProviders, i)
		}
	}

	// Leak tags.
	keys := make([]key, 0, len(group))
	for k := range group {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].sender != keys[b].sender {
			return keys[a].sender < keys[b].sender
		}
		return keys[a].prov < keys[b].prov
	})
	for _, k := range keys {
		s := e.SenderSites[k.sender]
		p := &e.Providers[k.prov]
		tag := site.Tag{
			Receiver:   p.Domain,
			Host:       p.Host,
			Path:       providerPath(p),
			Type:       httpmodel.TypeScript,
			OnSubpages: p.Persistent,
		}
		if p.Cloaked {
			tag.Host = "smetrics." + s.Domain
			slug := sanitizeSlug(s.Domain)
			e.Zone.AddCNAME(tag.Host, slug+".sc.omtrdc.net")
			if s.CNAMEs == nil {
				s.CNAMEs = map[string]string{}
			}
			s.CNAMEs[tag.Host] = slug + ".sc.omtrdc.net"
		}
		for _, ed := range group[k] {
			tag.Actions = append(tag.Actions, site.LeakAction{
				Method:   ed.Method,
				Param:    ed.Param,
				Chain:    ed.Chain,
				PII:      ed.PII,
				JSONBody: ed.JSON,
			})
		}
		s.Tags = append(s.Tags, tag)
	}

	// Referer senders: ad tags with no actions; the GET form leaks.
	for i, set := range refererTagSets() {
		if i >= len(e.SenderSites) {
			break
		}
		s := e.SenderSites[i]
		for _, j := range set {
			if j >= len(refProviders) {
				continue
			}
			p := &e.Providers[refProviders[j]]
			s.Tags = append(s.Tags, site.Tag{
				Receiver: p.Domain,
				Host:     p.Host,
				Path:     providerPath(p),
				Type:     httpmodel.TypeScript,
			})
		}
	}

	// Benign tags on every crawlable site, plus an actionless facebook
	// pixel on a third of the non-senders (realism: embedding a
	// tracker is not leaking).
	senderSet := map[*site.Site]bool{}
	for _, s := range e.SenderSites {
		senderSet[s] = true
	}
	for i, s := range e.Crawlable {
		if s.SignupGET {
			// GET-form sites load only their ad tags: any extra third
			// party on the signup-result page would receive the
			// accidental referer leak and distort the §4.2.1
			// referer-receiver count.
			continue
		}
		s.Tags = append(s.Tags, benignCDNTag(), benignFontTag())
		if !senderSet[s] && i%3 == 0 {
			s.Tags = append(s.Tags, facebookPixelTag())
		}
	}
	_ = rng
}

func providerPath(p *Provider) string {
	if p.Cloaked {
		return "/b/ss/s_code.js"
	}
	switch p.Domain {
	case "facebook.com":
		return "/en_US/fbevents.js"
	case "google-analytics.com":
		return "/analytics.js"
	case "criteo.com":
		return "/js/ld/ld.js"
	default:
		return "/" + sanitizeSlug(p.Domain) + "/tag.js"
	}
}

func sanitizeSlug(domain string) string {
	out := make([]rune, 0, len(domain))
	for _, r := range domain {
		if r == '.' || r == '-' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// assignPolicies distributes the Table 3 disclosure classes over the
// senders; non-senders default to "not specific".
func (e *Ecosystem) assignPolicies(rng *rand.Rand) {
	cfg := e.Config
	classes := make([]site.PolicyClass, 0, cfg.Senders)
	addN := func(n int, c site.PolicyClass) {
		for i := 0; i < n; i++ {
			classes = append(classes, c)
		}
	}
	addN(cfg.PolicyNotSpecific, site.PolicyNotSpecific)
	addN(cfg.PolicySpecific, site.PolicySpecific)
	addN(cfg.PolicyNoDescription, site.PolicyNoDescription)
	addN(cfg.PolicyExplicitNot, site.PolicyExplicitlyNot)
	perm := rng.Perm(len(classes))
	for i, s := range e.SenderSites {
		s.Policy = classes[perm[i]]
	}
	for _, s := range e.Sites {
		if s.Policy == "" {
			s.Policy = site.PolicyNotSpecific
		}
	}
}

// assignMail spreads the §4.2.3 marketing-mail volumes over the
// crawlable (signed-up) sites.
func (e *Ecosystem) assignMail(rng *rand.Rand) {
	cfg := e.Config
	n := len(e.Crawlable)
	if n == 0 {
		return
	}
	base := cfg.InboxMails / n
	extra := cfg.InboxMails % n
	perm := rng.Perm(n)
	for _, s := range e.Crawlable {
		s.MarketingMails = base
	}
	for i := 0; i < extra; i++ {
		e.Crawlable[perm[i]].MarketingMails++
	}
	// Spam: three mails from each of SpamMails/3 sites (plus remainder
	// on one site).
	spamSites := cfg.SpamMails / 3
	perm = rng.Perm(n)
	for i := 0; i < spamSites && i < n; i++ {
		e.Crawlable[perm[i]].SpamMails = 3
	}
	if rem := cfg.SpamMails % 3; rem > 0 && spamSites < n {
		e.Crawlable[perm[spamSites]].SpamMails = rem
	}
}

// ProviderByDomain finds a catalog entry.
func (e *Ecosystem) ProviderByDomain(domain string) *Provider {
	for i := range e.Providers {
		if e.Providers[i].Domain == domain {
			return &e.Providers[i]
		}
	}
	return nil
}

// SenderIndex returns the sender index of a site, or -1.
func (e *Ecosystem) SenderIndex(s *site.Site) int {
	for i, ss := range e.SenderSites {
		if ss == s {
			return i
		}
	}
	return -1
}
