package webgen

import (
	"encoding/json"
	"strings"
	"testing"

	"piileak/internal/site"
	"piileak/internal/tranco"
)

func universeFixture(t testing.TB, size int) (*Ecosystem, *Universe) {
	t.Helper()
	cfg := SmallConfig(19)
	cfg.UniverseSize = size
	eco, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eco, eco.Universe()
}

func siteJSON(t testing.TB, s *site.Site) []byte {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestUniverseHeadIsTheStudyCore: with UniverseSize zero the universe
// is exactly the materialized core — same length, same pointers — so
// the lazy default cannot perturb a single pre-universe output byte.
func TestUniverseHeadIsTheStudyCore(t *testing.T) {
	eco, u := universeFixture(t, 0)
	if u.Len() != len(eco.Sites) {
		t.Fatalf("default universe has %d sites, core has %d", u.Len(), len(eco.Sites))
	}
	for i := range eco.Sites {
		if u.At(i) != eco.Sites[i] {
			t.Fatalf("index %d: universe returns a different pointer than the core", i)
		}
	}
}

// TestUniverseAccessOrderIndependent is the tentpole purity pin:
// At(i) yields byte-identical sites across sequential, reversed,
// strided-subset and repeated access, and across independent Universe
// values over independently generated ecosystems — the property that
// makes any shard's view of the tail agree with any other's.
func TestUniverseAccessOrderIndependent(t *testing.T) {
	const size = 500
	eco, u := universeFixture(t, size)

	sequential := make([][]byte, size)
	for i := 0; i < size; i++ {
		sequential[i] = siteJSON(t, u.At(i))
	}
	for i := size - 1; i >= 0; i-- {
		if got := siteJSON(t, u.At(i)); string(got) != string(sequential[i]) {
			t.Fatalf("index %d: reversed access diverges from sequential", i)
		}
	}
	// A sparse subset in shard-interleave order, against a second
	// Universe value from a separately generated ecosystem.
	eco2, err := Generate(func() Config { c := SmallConfig(19); c.UniverseSize = size; return c }())
	if err != nil {
		t.Fatal(err)
	}
	u2 := eco2.Universe()
	for i := 3; i < size; i += 7 {
		if got := siteJSON(t, u2.At(i)); string(got) != string(sequential[i]) {
			t.Fatalf("index %d: subset access on a fresh ecosystem diverges", i)
		}
	}
	// Repeated materialization of one tail site is equal bytes but
	// never the same pointer — At caches nothing.
	tail := len(eco.Sites) + 1
	a, b := u.At(tail), u.At(tail)
	if a == b {
		t.Error("tail At returned the same pointer twice — it must not cache")
	}
	if string(siteJSON(t, a)) != string(siteJSON(t, b)) {
		t.Error("tail At returned different bytes for the same index")
	}
}

// TestUniverseTailShape pins the tail population's study-neutrality:
// tail domains are unique, rank-marked and disjoint from the core;
// non-shopping tail sites carry no auth flow; no tail site sends mail
// or collects PII beyond the derived core attributes.
func TestUniverseTailShape(t *testing.T) {
	const size = 800
	eco, u := universeFixture(t, size)
	head := len(eco.Sites)
	coreDomains := map[string]bool{}
	for _, s := range eco.Sites {
		coreDomains[s.Domain] = true
	}
	seen := map[string]bool{}
	shopping := 0
	for i := head; i < size; i++ {
		s := u.At(i)
		if wantRank := eco.Config.TopN + (i - head) + 1; s.Rank != wantRank {
			t.Fatalf("tail index %d has rank %d, want %d", i, s.Rank, wantRank)
		}
		if !strings.Contains(s.Domain, "-r") {
			t.Fatalf("tail domain %s lacks the rank infix", s.Domain)
		}
		if coreDomains[s.Domain] {
			t.Fatalf("tail domain %s collides with the study core", s.Domain)
		}
		if seen[s.Domain] {
			t.Fatalf("tail domain %s repeats", s.Domain)
		}
		seen[s.Domain] = true
		if s.MarketingMails != 0 || s.SpamMails != 0 {
			t.Fatalf("tail site %s sends mail — the tail must not move mailbox counts", s.Domain)
		}
		if s.Rank%tranco.TailShoppingModulus == 0 {
			shopping++
			if s.Obstacle != site.ObstacleNone {
				t.Fatalf("tail shopping site %s has obstacle %v", s.Domain, s.Obstacle)
			}
		} else if s.Obstacle != site.ObstacleNoAuth {
			t.Fatalf("tail non-shopping site %s is crawl-deep (obstacle %v)", s.Domain, s.Obstacle)
		}
	}
	if shopping == 0 {
		t.Error("no shopping sites in the tail — TailShoppingModulus never hit")
	}
}

// TestUniverseOfValidation: scaling below the study core is an error,
// zero means the configured scale, and a negative or too-small
// Config.UniverseSize is rejected at Generate time.
func TestUniverseOfValidation(t *testing.T) {
	eco, _ := universeFixture(t, 0)
	if _, err := eco.UniverseOf(len(eco.Sites) - 1); err == nil {
		t.Error("UniverseOf accepted a size below the study core")
	}
	u, err := eco.UniverseOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != len(eco.Sites) {
		t.Errorf("UniverseOf(0) has %d sites, want the %d-site core", u.Len(), len(eco.Sites))
	}
	grown, err := eco.UniverseOf(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Len() != 10_000 {
		t.Errorf("UniverseOf(10000) has %d sites", grown.Len())
	}

	bad := SmallConfig(19)
	bad.UniverseSize = -1
	if _, err := Generate(bad); err == nil {
		t.Error("Generate accepted a negative UniverseSize")
	}
	bad.UniverseSize = 10
	if _, err := Generate(bad); err == nil {
		t.Error("Generate accepted a UniverseSize below the study core")
	}
}

// TestUniverseAtPanicsOutOfRange: the source contract makes an
// out-of-range index a programming error, not a silent nil.
func TestUniverseAtPanicsOutOfRange(t *testing.T) {
	_, u := universeFixture(t, 0)
	for _, i := range []int{-1, u.Len()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			u.At(i)
		}()
	}
}

// BenchmarkUniverse measures lazy tail materialization: sites/sec and
// allocations per derived site. make bench records it as
// BENCH_universe.json.
func BenchmarkUniverse(b *testing.B) {
	eco, err := Generate(func() Config { c := SmallConfig(19); c.UniverseSize = 1_000_000; return c }())
	if err != nil {
		b.Fatal(err)
	}
	u := eco.Universe()
	head := len(eco.Sites)
	span := u.Len() - head
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := u.At(head + i%span)
		if s.Domain == "" {
			b.Fatal("empty tail site")
		}
	}
}
