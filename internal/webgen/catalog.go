// Package webgen generates the calibrated synthetic web ecosystem the
// study runs against: 404 shopping sites with the §3.2 obstacle funnel,
// 130 PII-leaking senders wired to 100 third-party receivers whose
// behaviours reproduce the paper's published aggregates (Table 1,
// Figure 2, Table 2), CNAME-cloaked Adobe deployments, the Brave shields
// list, and synthetic EasyList/EasyPrivacy filter lists (Table 4).
//
// Ground truth is derived from the paper's published numbers; the
// analysis pipeline never reads it — it must recover the numbers from the
// simulated HTTP traffic.
package webgen

import (
	"fmt"

	"piileak/internal/httpmodel"
)

// Slot is one behaviour row of a provider: Count senders leak with this
// method/encoding/parameter combination (one Table 2 row).
type Slot struct {
	// Count is the number of distinct senders using this behaviour.
	Count int
	// Methods is cycled across the slot's senders (facebook's
	// "URI/Payload" alternates).
	Methods []httpmodel.SurfaceKind
	// Chain is the encoding chain (nil = plaintext).
	Chain []string
	// Param is the PII identifier parameter (§5.1 trackid), body field
	// or cookie name.
	Param string
	// JSON emits payload leaks as JSON bodies.
	JSON bool
	// ParamPerSender appends the sender ordinal to Param, modelling
	// receivers without a *stable* identifier parameter (they fail the
	// §5.2 consistency cue).
	ParamPerSender bool
}

// Provider is one third-party receiver in the catalog.
type Provider struct {
	// Domain is the receiver's registrable domain.
	Domain string
	// DisplayName overrides Domain in reports (the paper prints
	// "adobe_cname" for the cloaked Adobe deployment).
	DisplayName string
	// Brand groups multi-domain organisations for the Figure 2
	// analysis (Google, Adobe).
	Brand string
	// Host is the tag host serving the provider's script.
	Host string
	// Persistent marks Table 2 tracking providers: their tags are
	// present on subpages and re-send the identifier there.
	Persistent bool
	// Cloaked routes the tag through a first-party CNAME subdomain.
	Cloaked bool
	// Referer marks providers that receive PII only through the
	// Referer header of GET-form senders.
	Referer bool
	// Coverage flags for §7.
	EasyPrivacy  bool
	EasyList     bool
	BraveBlocked bool
	// Slots are the provider's behaviour rows (empty for Referer
	// providers).
	Slots []Slot
}

// TotalSenders sums the slot counts.
func (p *Provider) TotalSenders() int {
	n := 0
	for _, s := range p.Slots {
		n += s.Count
	}
	return n
}

func uri() []httpmodel.SurfaceKind  { return []httpmodel.SurfaceKind{httpmodel.SurfaceURI} }
func body() []httpmodel.SurfaceKind { return []httpmodel.SurfaceKind{httpmodel.SurfaceBody} }
func uriBody() []httpmodel.SurfaceKind {
	return []httpmodel.SurfaceKind{httpmodel.SurfaceURI, httpmodel.SurfaceBody}
}

// uri3Body cycles three URI senders for every payload sender, keeping the
// payload-sender marginal near Table 1a's.
func uri3Body() []httpmodel.SurfaceKind {
	return []httpmodel.SurfaceKind{
		httpmodel.SurfaceURI, httpmodel.SurfaceURI, httpmodel.SurfaceURI, httpmodel.SurfaceBody,
	}
}
func cookie() []httpmodel.SurfaceKind { return []httpmodel.SurfaceKind{httpmodel.SurfaceCookie} }

// trackingProviders returns the paper's Table 2 rows verbatim: the 20
// persistent-tracking providers with their identifier parameters,
// methods, encodings and per-encoding sender counts.
func trackingProviders() []Provider {
	return []Provider{
		{
			Domain: "facebook.com", Host: "www.facebook.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{
				{Count: 72, Methods: uri3Body(), Chain: []string{"sha256"}, Param: "udff[em]"},
				{Count: 2, Methods: uri(), Chain: []string{"md5"}, Param: "ud[em]"},
			},
		},
		{
			Domain: "criteo.com", Host: "sslwidget.criteo.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{
				{Count: 26, Methods: uri(), Chain: []string{"md5"}, Param: "p0"},
				{Count: 4, Methods: uri(), Chain: []string{"sha256"}, Param: "p0"},
				{Count: 5, Methods: uri(), Chain: nil, Param: "p1"},
				{Count: 2, Methods: uri(), Chain: []string{"md5", "sha256"}, Param: "p0"},
			},
		},
		{
			Domain: "pinterest.com", Host: "ct.pinterest.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{
				{Count: 25, Methods: uri(), Chain: []string{"sha256"}, Param: "pd"},
				{Count: 8, Methods: uri(), Chain: []string{"md5"}, Param: "pd"},
			},
		},
		{
			Domain: "snapchat.com", Host: "tr.snapchat.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{
				{Count: 18, Methods: uri3Body(), Chain: []string{"sha256"}, Param: "u_hem"},
				{Count: 2, Methods: body(), Chain: []string{"md5"}, Param: "u_hem"},
			},
		},
		{
			Domain: "cquotient.com", Host: "cdn.cquotient.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 7, Methods: uri(), Chain: []string{"sha256"}, Param: "emailId"}},
		},
		{
			Domain: "bluecore.com", Host: "api.bluecore.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 5, Methods: body(), Chain: []string{"base64"}, Param: "data", JSON: true}},
		},
		{
			Domain: "klaviyo.com", Host: "static.klaviyo.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 4, Methods: uri(), Chain: []string{"base64"}, Param: "data"}},
		},
		{
			Domain: "oracleinfinity.io", Host: "dc.oracleinfinity.io",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 4, Methods: uri(), Chain: []string{"sha256"}, Param: "email_hash"}},
		},
		{
			Domain: "rlcdn.com", Host: "id.rlcdn.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 4, Methods: uri(), Chain: []string{"sha1"}, Param: "s"}},
		},
		{
			// The cloaked Adobe deployment: requests go to a
			// first-party subdomain CNAME'd to omtrdc.net. Three
			// senders use the URI channel (Table 2 row 10); four more
			// mint identifying first-party cookies (§4.2.1's
			// cookie-channel cases).
			Domain: "omtrdc.net", DisplayName: "adobe_cname", Brand: "Adobe",
			Host:       "smetrics.FIRSTPARTY", // templated per site
			Persistent: true, Cloaked: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{
				{Count: 3, Methods: uri(), Chain: []string{"sha256"}, Param: "v_em"},
				{Count: 4, Methods: cookie(), Chain: []string{"sha256"}, Param: "s_ecid"},
			},
		},
		{
			Domain: "castle.io", Host: "d2t77mnxyo7adj.castle.io",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: nil, Param: "up"}},
		},
		{
			// custora is one of the three providers the combined
			// blocklists miss (§7.2).
			Domain: "custora.com", Host: "c.custora.com",
			Persistent: true, EasyPrivacy: false, BraveBlocked: true,
			Slots: []Slot{
				{Count: 1, Methods: uri(), Chain: []string{"sha1"}, Param: "uid"},
				{Count: 1, Methods: cookie(), Chain: []string{"sha1"}, Param: "_custrack1_identified"},
			},
		},
		{
			Domain: "dotomi.com", Host: "apps.dotomi.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"sha256"}, Param: "dtm_email_hash"}},
		},
		{
			Domain: "inside-graph.com", Host: "cdn.inside-graph.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: body(), Chain: nil, Param: "md"}},
		},
		{
			Domain: "krxd.net", Host: "beacon.krxd.net",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"sha256"}, Param: "_kua_email_sha256"}},
		},
		{
			Domain: "pxf.io", Host: "events.pxf.io",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: body(), Chain: []string{"sha1"}, Param: "custemail"}},
		},
		{
			// taboola is missed by the combined blocklists (§7.2).
			Domain: "taboola.com", Host: "cdn.taboola.com",
			Persistent: true, EasyPrivacy: false, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"sha256"}, Param: "eflp"}},
		},
		{
			Domain: "thebrighttag.com", Host: "s.thebrighttag.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"sha256"}, Param: "_cb_bt_data"}},
		},
		{
			Domain: "yahoo.com", Host: "sp.analytics.yahoo.com",
			Persistent: true, EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"sha256"}, Param: "he"}},
		},
		{
			// zendesk is missed by the combined blocklists AND by
			// Brave (§7.1 footnote 4, §7.2).
			Domain: "zendesk.com", Host: "ekr.zendesk.com",
			Persistent: true, EasyPrivacy: false, BraveBlocked: false,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"base64"}, Param: "data"}},
		},
	}
}

// consistentProviders are multi-sender receivers with a stable identifier
// parameter that nevertheless fail the persistence cue: their tags are
// absent from subpages, so §5.2 does not classify them as tracking
// providers. Together with the 20 tracking providers they are the
// paper's "34 receivers that get the same ID from more than one sender".
func consistentProviders() []Provider {
	return []Provider{
		{Domain: "google-analytics.com", Brand: "Google", Host: "www.google-analytics.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 30, Methods: uri(), Chain: []string{"sha256"}, Param: "em"}}},
		{Domain: "doubleclick.net", Brand: "Google", Host: "stats.g.doubleclick.net",
			EasyPrivacy: true, EasyList: true, BraveBlocked: true,
			Slots: []Slot{{Count: 18, Methods: uri(), Chain: []string{"sha256"}, Param: "em"}}},
		{Domain: "demdex.net", Brand: "Adobe", Host: "dpm.demdex.net",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 9, Methods: uri(), Chain: []string{"sha256"}, Param: "d_em"}}},
		{Domain: "tiktok.com", Host: "analytics.tiktok.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 10, Methods: uri(), Chain: []string{"sha256"}, Param: "sha_em"}}},
		{Domain: "bing.com", Brand: "Microsoft", Host: "bat.bing.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 7, Methods: uri(), Chain: []string{"sha256"}, Param: "hem"}}},
		{Domain: "twitter.com", Host: "analytics.twitter.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 6, Methods: uri(), Chain: []string{"sha256"}, Param: "tw_em"}}},
		{Domain: "amazon-adsystem.com", Host: "s.amazon-adsystem.com",
			EasyPrivacy: true, EasyList: true, BraveBlocked: true,
			Slots: []Slot{{Count: 5, Methods: uri(), Chain: []string{"sha256"}, Param: "ud"}}},
		{Domain: "linkedin.com", Host: "px.ads.linkedin.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 4, Methods: uri(), Chain: []string{"sha256"}, Param: "li_em"}}},
		{Domain: "segment.io", Host: "api.segment.io",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 4, Methods: body(), Chain: nil, Param: "userId", JSON: true}}},
		{Domain: "outbrain.com", Host: "amplify.outbrain.com",
			EasyPrivacy: true, EasyList: true, BraveBlocked: true,
			Slots: []Slot{{Count: 3, Methods: uri(), Chain: []string{"sha256"}, Param: "obem"}}},
		{Domain: "quantserve.com", Host: "pixel.quantserve.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"sha256"}, Param: "qem"}}},
		{Domain: "mailchimp.com", Host: "login.mailchimp.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"md5"}, Param: "mc_eid"}}},
		{Domain: "hubspot.com", Host: "track.hubspot.com",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: uri(), Chain: []string{"md5"}, Param: "hs_em"}}},
		{Domain: "branch.io", Host: "api2.branch.io",
			EasyPrivacy: true, BraveBlocked: true,
			Slots: []Slot{{Count: 2, Methods: body(), Chain: []string{"sha256"}, Param: "identity", JSON: true}}},
	}
}

// refererProviders receive PII only through the Referer header of the
// three GET-signup-form senders (§4.2.1's accidental leakage). They have
// no identifier parameter of their own.
func refererProviders() []Provider {
	ads := []struct {
		domain, host string
		easyList     bool
		easyPrivacy  bool
	}{
		{"googlesyndication.com", "pagead2.googlesyndication.com", true, true},
		{"adnxs.com", "ib.adnxs.com", true, true},
		{"rubiconproject.com", "fastlane.rubiconproject.com", true, true},
		{"pubmatic.com", "ads.pubmatic.com", true, true},
		{"openx.net", "u.openx.net", true, true},
		{"smartadserver.com", "ww7.smartadserver.com", false, true},
		{"indexww.com", "js-sec.indexww.com", false, false},
	}
	out := make([]Provider, 0, len(ads))
	for _, a := range ads {
		out = append(out, Provider{
			Domain: a.domain, Host: a.host, Referer: true,
			EasyList: a.easyList, EasyPrivacy: a.easyPrivacy, BraveBlocked: true,
		})
	}
	return out
}

// inconsistentProvider is the one multi-sender, non-referer receiver
// whose two senders use different parameters AND different encodings, so
// the receiver never sees the same ID twice and fails §5.2's same-ID
// cue.
func inconsistentProvider() Provider {
	return Provider{
		Domain: "clarity.ms", Brand: "Microsoft", Host: "c.clarity.ms",
		EasyPrivacy: true, BraveBlocked: true,
		Slots: []Slot{
			{Count: 1, Methods: uri(), Chain: []string{"sha256"}, Param: "cl_em1"},
			{Count: 1, Methods: uri(), Chain: []string{"md5"}, Param: "cl_em2"},
		},
	}
}

// braveMissedTail are the seven single-sender receivers Brave's shields
// miss (§7.1 footnote 4; the eighth, zendesk.com, is a tracking
// provider). None of them is covered by EasyPrivacy either, matching
// their niche profile.
func braveMissedTail() []Provider {
	return []Provider{
		{Domain: "aliyun.com", Host: "log.aliyun.com", BraveBlocked: false,
			Slots: []Slot{{Count: 1, Methods: uri(), Chain: []string{"sha256"}, Param: "uid"}}},
		{Domain: "cartsync.io", Host: "sync.cartsync.io", BraveBlocked: false,
			Slots: []Slot{{Count: 1, Methods: body(), Chain: []string{"base64"}, Param: "cart_user", JSON: true}}},
		{Domain: "gravatar.com", Host: "www.gravatar.com", BraveBlocked: false,
			Slots: []Slot{{Count: 1, Methods: uri(), Chain: []string{"md5"}, Param: "avatar"}}},
		{Domain: "herokuapp.com", Host: "shopwidgets.herokuapp.com", BraveBlocked: false,
			Slots: []Slot{{Count: 1, Methods: uri(), Chain: nil, Param: "email"}}},
		{Domain: "intercom.io", Host: "api-iam.intercom.io", BraveBlocked: false,
			Slots: []Slot{{Count: 1, Methods: body(), Chain: nil, Param: "email", JSON: true}}},
		{Domain: "lmcdn.ru", Host: "st.lmcdn.ru", BraveBlocked: false,
			Slots: []Slot{{Count: 1, Methods: uri(), Chain: []string{"sha256"}, Param: "lm_em"}}},
		{Domain: "okta-emea.com", Host: "login.okta-emea.com", BraveBlocked: false,
			Slots: []Slot{{Count: 1, Methods: body(), Chain: nil, Param: "login", JSON: true}}},
	}
}

// tailProviders generates the remaining 51 single-sender receivers. The
// method/encoding mix is calibrated toward Table 1's marginals: a large
// plaintext cohort (the paper found 32.3% of senders leak plaintext),
// payload-only receivers to approach 17 payload receivers, and a few
// two-method receivers contributing to the "combined" rows.
func tailProviders() []Provider {
	var out []Provider
	add := func(i int, methods []httpmodel.SurfaceKind, chain []string, param string, json bool) {
		out = append(out, Provider{
			Domain: fmt.Sprintf("tail%02d-metrics.net", i),
			Host:   fmt.Sprintf("px.tail%02d-metrics.net", i),
			// Roughly half the long tail is on EasyPrivacy, set
			// below.
			BraveBlocked: true,
			Slots:        []Slot{{Count: 1, Methods: methods, Chain: chain, Param: param, JSON: json}},
		})
	}
	i := 0
	// 20 plaintext URI receivers.
	for ; i < 20; i++ {
		add(i, uri(), nil, "email", false)
	}
	// 12 sha256 URI receivers.
	for ; i < 32; i++ {
		add(i, uri(), []string{"sha256"}, "em_hash", false)
	}
	// 5 base64 URI receivers.
	for ; i < 37; i++ {
		add(i, uri(), []string{"base64"}, "data", false)
	}
	// 3 sha1 URI receivers.
	for ; i < 40; i++ {
		add(i, uri(), []string{"sha1"}, "h", false)
	}
	// 7 payload-only receivers (mixed encodings).
	for ; i < 47; i++ {
		chain := []string{"sha256"}
		if i%2 == 0 {
			chain = []string{"base64"}
		}
		add(i, body(), chain, "user_email", i%2 == 1)
	}
	// 4 two-method receivers (URI + payload) for the combined rows.
	for ; i < 51; i++ {
		add(i, uriBody(), []string{"sha256"}, "em", false)
	}
	// EasyPrivacy covers 27 of these 51 (calibrating total EP receiver
	// coverage toward the paper's 65).
	for j := 0; j < 27; j++ {
		out[j*2%51].EasyPrivacy = true
	}
	covered := 0
	for j := range out {
		if out[j].EasyPrivacy {
			covered++
		}
	}
	for j := range out {
		if covered >= 27 {
			break
		}
		if !out[j].EasyPrivacy {
			out[j].EasyPrivacy = true
			covered++
		}
	}
	return out
}

// Catalog returns the full receiver catalog: exactly 100 providers.
func Catalog() []Provider {
	var all []Provider
	all = append(all, trackingProviders()...)
	all = append(all, consistentProviders()...)
	all = append(all, refererProviders()...)
	all = append(all, inconsistentProvider())
	all = append(all, braveMissedTail()...)
	all = append(all, tailProviders()...)
	return all
}

// Display returns the provider's reporting name.
func (p *Provider) Display() string {
	if p.DisplayName != "" {
		return p.DisplayName
	}
	return p.Domain
}
