package webgen

import (
	"testing"

	"piileak/internal/faultsim"
)

func TestGenerateWithoutFaultsHasNoInjector(t *testing.T) {
	eco := MustGenerate(SmallConfig(11))
	if eco.Faults != nil {
		t.Error("fault-free config produced an injector")
	}
}

func TestGenerateWiresFaultInjector(t *testing.T) {
	cfg := SmallConfig(11)
	cfg.Faults = &faultsim.Config{Rate: 0.5}
	eco := MustGenerate(cfg)
	if eco.Faults == nil {
		t.Fatal("Faults config ignored")
	}
	// An unset fault seed defaults to the ecosystem seed, so one -seed
	// flag reproduces the whole run.
	if eco.Faults.Seed() != cfg.Seed {
		t.Errorf("fault seed = %d, want ecosystem seed %d", eco.Faults.Seed(), cfg.Seed)
	}
}

func TestGenerateKeepsExplicitFaultSeed(t *testing.T) {
	cfg := SmallConfig(11)
	cfg.Faults = &faultsim.Config{Seed: 777, Rate: 0.5}
	eco := MustGenerate(cfg)
	if eco.Faults.Seed() != 777 {
		t.Errorf("fault seed = %d, want 777", eco.Faults.Seed())
	}
}

func TestFaultConfigDoesNotPerturbGeneration(t *testing.T) {
	// Fault injection is a transport concern: the generated ecosystem
	// (sites, tags, zone) must be identical with and without it.
	plain := MustGenerate(SmallConfig(11))
	cfg := SmallConfig(11)
	cfg.Faults = &faultsim.Config{Rate: 1}
	faulty := MustGenerate(cfg)
	if len(plain.Sites) != len(faulty.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(plain.Sites), len(faulty.Sites))
	}
	for i := range plain.Sites {
		a, b := plain.Sites[i], faulty.Sites[i]
		if a.Domain != b.Domain || a.Obstacle != b.Obstacle || len(a.Tags) != len(b.Tags) {
			t.Fatalf("site %d differs: %s vs %s", i, a.Domain, b.Domain)
		}
	}
}
