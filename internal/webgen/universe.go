package webgen

import (
	"fmt"
	"math/rand/v2"

	"piileak/internal/httpmodel"
	"piileak/internal/site"
	"piileak/internal/tranco"
)

// universeSalt keys the per-rank attribute streams of lazily derived
// tail sites. It is distinct from tranco's name stream, so a site's
// domain and its attributes draw from independent sequences.
const universeSalt = 0x554e4956 // "UNIV"

// Universe is the ecosystem's full ranked site population as a lazy
// site.Source: the study core (Ecosystem.Sites, everything Generate
// materializes) occupies the first indexes exactly as generated, and
// every index past it is a background long-tail site derived on demand
// from (Config.Seed, rank) via an independent PCG stream. At never
// caches: tail sites are materialized per call and byte-identical
// regardless of access order, subsetting, or which shard asks, which is
// what keeps a sharded crawl over the tail byte-identical to an
// unsharded one with no O(universe) memory anywhere.
type Universe struct {
	eco  *Ecosystem
	size int
}

// Universe returns the ecosystem's site population at the configured
// scale: Config.UniverseSize when set, otherwise exactly the study
// core. With UniverseSize zero the source is the core alone, so every
// output stays byte-identical to the eager []*site.Site path.
func (e *Ecosystem) Universe() *Universe {
	size := e.Config.UniverseSize
	if size < len(e.Sites) {
		size = len(e.Sites)
	}
	return &Universe{eco: e, size: size}
}

// UniverseOf returns the population resized to n sites, overriding
// Config.UniverseSize. n == 0 means the configured scale; a non-zero n
// smaller than the study core is an error — the core is the calibrated
// study population and cannot be truncated by scaling.
func (e *Ecosystem) UniverseOf(n int) (*Universe, error) {
	if n == 0 {
		return e.Universe(), nil
	}
	if n < len(e.Sites) {
		return nil, fmt.Errorf("webgen: universe of %d is smaller than the %d-site study core", n, len(e.Sites))
	}
	return &Universe{eco: e, size: n}, nil
}

// Len returns the universe size.
func (u *Universe) Len() int { return u.size }

// At returns site i: a pointer into the study core for i < len(Sites),
// a freshly derived tail site otherwise. Tail derivation is pure —
// repeated calls return equal values, never the same pointer — and safe
// for concurrent use.
func (u *Universe) At(i int) *site.Site {
	if i < 0 || i >= u.size {
		panic(fmt.Sprintf("webgen: universe index %d out of range [0, %d)", i, u.size))
	}
	if i < len(u.eco.Sites) {
		return u.eco.Sites[i]
	}
	return tailSite(u.eco.Config, len(u.eco.Sites), i)
}

// tailSite derives background site i (global universe index) for a
// config whose study core holds head sites. Tail ranks continue past
// the generated top list: universe index head+j is rank TopN+j+1.
//
// The tail must add crawlable surface without touching the calibrated
// study numbers, so tail sites never leak and never mail the persona:
// non-shopping sites (the vast majority) have no auth flow — §3.2's
// selection would discard them — and carry at most one benign tag;
// shopping sites complete the full flow with benign tags plus an
// occasional actionless tracker pixel (embedding a tracker is not
// leaking), and send no marketing mail.
func tailSite(cfg Config, head, i int) *site.Site {
	rank := cfg.TopN + (i - head) + 1
	entry := tranco.TailEntry(cfg.Seed, rank)
	rng := rand.New(rand.NewPCG(cfg.Seed, universeSalt^uint64(rank)))
	s := &site.Site{
		Domain:      entry.Domain,
		Rank:        entry.Rank,
		Collected:   collectedFor(i),
		FieldNaming: namingFor(i),
		Policy:      site.PolicyNotSpecific,
	}
	if entry.Category != tranco.CategoryShopping {
		s.Obstacle = site.ObstacleNoAuth
		if rng.IntN(4) == 0 {
			s.Tags = append(s.Tags, benignCDNTag())
		}
		return s
	}
	s.Tags = append(s.Tags, benignCDNTag(), benignFontTag())
	if rng.IntN(3) == 0 {
		s.Tags = append(s.Tags, facebookPixelTag())
	}
	return s
}

// The benign third parties every crawlable site embeds, shared between
// the eager core builder and the lazy tail so the two populations load
// the same background resources.

func benignCDNTag() site.Tag {
	return site.Tag{Receiver: "jscdn-static.net", Host: "cdn.jscdn-static.net", Path: "/lib/app.js", Type: httpmodel.TypeScript, OnSubpages: true}
}

func benignFontTag() site.Tag {
	return site.Tag{Receiver: "webfonts-host.org", Host: "fonts.webfonts-host.org", Path: "/css/family.css", Type: httpmodel.TypeStylesheet, OnSubpages: true}
}

func facebookPixelTag() site.Tag {
	return site.Tag{
		Receiver: "facebook.com", Host: "www.facebook.com",
		Path: "/en_US/fbevents.js", Type: httpmodel.TypeScript, OnSubpages: true,
	}
}
