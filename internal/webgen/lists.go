package webgen

import "strings"

// buildBlocklists renders the synthetic EasyList and EasyPrivacy texts
// from the catalog coverage flags, and the Brave shields domain set.
//
// The rule *corpus* is synthetic (the real lists are not available
// offline), but the rule *families* match the real lists' structure:
// per-domain `||domain^$third-party` network rules, Adobe's cloaking-
// resistant path rule (`/b/ss/`), ad-path rules, cosmetic rules the
// engine must skip, and exception rules.
func (e *Ecosystem) buildBlocklists() {
	var ep strings.Builder
	ep.WriteString("[Adblock Plus 2.0]\n")
	ep.WriteString("! Title: EasyPrivacy (synthetic reproduction corpus)\n")
	ep.WriteString("! Tracking-protection supplementary list\n")
	for i := range e.Providers {
		p := &e.Providers[i]
		if !p.EasyPrivacy {
			continue
		}
		if p.Cloaked {
			// The real EasyPrivacy catches CNAME-cloaked Adobe
			// Analytics via its request path, not its (first-party)
			// host.
			ep.WriteString("/b/ss/\n")
			ep.WriteString("||" + p.Domain + "^\n")
			continue
		}
		ep.WriteString("||" + p.Domain + "^$third-party\n")
	}
	// Generic tracking-path rules present in the real list; decoys for
	// our traffic except where hosts embed matching paths.
	ep.WriteString("/tracker/pixel.\n")
	ep.WriteString("||stats-collector.example^$third-party\n")
	e.EasyPrivacyText = ep.String()

	var el strings.Builder
	el.WriteString("[Adblock Plus 2.0]\n")
	el.WriteString("! Title: EasyList (synthetic reproduction corpus)\n")
	for i := range e.Providers {
		p := &e.Providers[i]
		if !p.EasyList {
			continue
		}
		el.WriteString("||" + p.Domain + "^$third-party\n")
	}
	// Ad-path rules and cosmetic filters (the engine skips cosmetics).
	el.WriteString("/banner-ads/\n")
	el.WriteString("/adframe.\n")
	el.WriteString("example.com##.ad-slot\n")
	el.WriteString("@@||webfonts-host.org^$stylesheet\n")
	e.EasyListText = el.String()

	e.BraveShields = map[string]bool{}
	for i := range e.Providers {
		if e.Providers[i].BraveBlocked {
			e.BraveShields[e.Providers[i].Domain] = true
		}
	}
}
