package dnswire

import (
	"bytes"
	"strings"
	"testing"

	"piileak/internal/dnssim"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		ID: 0xBEEF, Response: true, Opcode: 0, Authoritative: true,
		RecursionDesired: true, RecursionAvailable: true, Rcode: RcodeNXDomain,
		QDCount: 1, ANCount: 2,
	}
	packed := h.pack()
	back, err := unpackHeader(packed[:])
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("round trip:\n%+v\n%+v", h, back)
	}
}

func TestEncodeDecodeQuery(t *testing.T) {
	raw, err := NewQuery(42, "smetrics.shop.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 42 || m.Header.Response {
		t.Errorf("header = %+v", m.Header)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "smetrics.shop.example.com" {
		t.Errorf("questions = %+v", m.Questions)
	}
	if m.Questions[0].Type != TypeA || m.Questions[0].Class != ClassIN {
		t.Errorf("question = %+v", m.Questions[0])
	}
}

func TestNameCompression(t *testing.T) {
	// Two answers sharing a suffix must compress: the second occurrence
	// of shop.example.com becomes a 2-byte pointer.
	m := &Message{
		Header: Header{ID: 1, Response: true},
		Questions: []Question{
			{Name: "a.shop.example.com", Type: TypeA, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "a.shop.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "b.shop.example.com"},
			{Name: "b.shop.example.com", Type: TypeA, Class: ClassIN, TTL: 60, Addr: [4]byte{198, 18, 1, 2}},
		},
	}
	raw, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, "shop.example.com" (18 bytes) appears three times;
	// compression should keep the message well under that.
	uncompressed := 12 + 3*(len("a.shop.example.com")+2) + 3*10 + 4
	if len(raw) >= uncompressed {
		t.Errorf("message %d bytes, compression ineffective (uncompressed ≈ %d)", len(raw), uncompressed)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Answers[0].Target != "b.shop.example.com" {
		t.Errorf("target = %q", back.Answers[0].Target)
	}
	if back.Answers[1].Name != "b.shop.example.com" || back.Answers[1].Addr != [4]byte{198, 18, 1, 2} {
		t.Errorf("answer = %+v", back.Answers[1])
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte{1, 2, 3},
		// Header claims one question but none follows.
		append(Header{QDCount: 1}.packSlice(), 0xC0), // dangling pointer
	}
	for i, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Errorf("case %d: malformed message accepted", i)
		}
	}
}

// packSlice is a test helper exposing pack as a slice.
func (h Header) packSlice() []byte {
	b := h.pack()
	return b[:]
}

func TestCompressionLoopRejected(t *testing.T) {
	// A name that points at itself.
	raw := Header{QDCount: 1}.packSlice()
	self := len(raw)
	raw = append(raw, 0xC0, byte(self))
	raw = append(raw, 0, 1, 0, 1)
	if _, err := Decode(raw); err == nil {
		t.Error("self-referential pointer accepted")
	}
}

func TestServerAnswersCNAMEChain(t *testing.T) {
	zone := dnssim.NewZone()
	zone.AddCNAME("smetrics.shop.example.com", "shopexample.sc.omtrdc.net")
	zone.AddCNAME("shopexample.sc.omtrdc.net", "edge.omtrdc.net")
	srv := NewServer(zone)

	query, err := NewQuery(7, "smetrics.shop.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	rawResp, err := srv.Handle(query)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Decode(rawResp)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Response || !resp.Header.Authoritative || resp.Header.ID != 7 {
		t.Errorf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 3 {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if resp.Answers[0].Type != TypeCNAME || resp.Answers[0].Target != "shopexample.sc.omtrdc.net" {
		t.Errorf("first answer = %+v", resp.Answers[0])
	}
	if resp.Answers[1].Target != "edge.omtrdc.net" {
		t.Errorf("second answer = %+v", resp.Answers[1])
	}
	last := resp.Answers[2]
	if last.Type != TypeA || last.Name != "edge.omtrdc.net" {
		t.Errorf("terminal answer = %+v", last)
	}
	if last.Addr[0] != 198 || last.Addr[1] < 18 || last.Addr[1] > 19 {
		t.Errorf("A record %v outside 198.18.0.0/15", last.Addr)
	}
}

func TestServerPlainHost(t *testing.T) {
	srv := NewServer(dnssim.NewZone())
	query, _ := NewQuery(9, "www.shop.example.com", TypeA)
	rawResp, err := srv.Handle(query)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := Decode(rawResp)
	if len(resp.Answers) != 1 || resp.Answers[0].Type != TypeA {
		t.Errorf("answers = %+v", resp.Answers)
	}
}

func TestServerLoopToNXDomain(t *testing.T) {
	zone := dnssim.NewZone()
	zone.AddCNAME("a.x.com", "b.x.com")
	zone.AddCNAME("b.x.com", "a.x.com")
	srv := NewServer(zone)
	query, _ := NewQuery(1, "a.x.com", TypeA)
	rawResp, err := srv.Handle(query)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := Decode(rawResp)
	if resp.Header.Rcode != RcodeNXDomain {
		t.Errorf("rcode = %d", resp.Header.Rcode)
	}
}

func TestEncodeRejectsBadLabels(t *testing.T) {
	long := strings.Repeat("a", 64) + ".example.com"
	if _, err := NewQuery(1, long, TypeA); err == nil {
		t.Error("64-byte label accepted")
	}
	if _, err := NewQuery(1, "a..b.com", TypeA); err == nil {
		t.Error("empty label accepted")
	}
}

func FuzzDecode(f *testing.F) {
	q, _ := NewQuery(3, "smetrics.shop.example.com", TypeA)
	f.Add(q)
	zone := dnssim.NewZone()
	zone.AddCNAME("a.b.c", "d.e.f")
	resp, _ := NewServer(zone).Handle(q)
	f.Add(resp)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(raw)
		if err != nil {
			return
		}
		// Anything we decode must re-encode and re-decode stably for
		// the supported RR types.
		for _, rr := range m.Answers {
			if rr.Type != TypeA && rr.Type != TypeCNAME {
				return
			}
		}
		re, err := Encode(m)
		if err != nil {
			return // e.g. names with invalid labels decoded leniently
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-decode failed: %v\noriginal: %x", err, bytes.TrimSpace(raw))
		}
	})
}
