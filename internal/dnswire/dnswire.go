// Package dnswire implements the RFC 1035 DNS message wire format —
// header, question and resource-record encoding with domain-name
// compression — and a tiny authoritative responder that answers CNAME
// queries from a dnssim zone.
//
// The study itself only needs the logical CNAME view, but the wire
// implementation lets the simulated resolver speak the real protocol:
// the tests exchange binary messages end to end, including compression
// pointers, exactly as a stub resolver and server would.
package dnswire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS constants used by the responder.
const (
	TypeA     = 1
	TypeCNAME = 5
	ClassIN   = 1

	// Response codes.
	RcodeNoError  = 0
	RcodeNXDomain = 3
)

// Header is the 12-byte DNS message header.
type Header struct {
	ID uint16
	// Flags fields, decomposed.
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	Rcode              uint8

	QDCount, ANCount, NSCount, ARCount uint16
}

func (h *Header) pack() [12]byte {
	var b [12]byte
	binary.BigEndian.PutUint16(b[0:2], h.ID)
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.Rcode & 0xF)
	binary.BigEndian.PutUint16(b[2:4], flags)
	binary.BigEndian.PutUint16(b[4:6], h.QDCount)
	binary.BigEndian.PutUint16(b[6:8], h.ANCount)
	binary.BigEndian.PutUint16(b[8:10], h.NSCount)
	binary.BigEndian.PutUint16(b[10:12], h.ARCount)
	return b
}

func unpackHeader(b []byte) (Header, error) {
	if len(b) < 12 {
		return Header{}, fmt.Errorf("dnswire: message shorter than header")
	}
	flags := binary.BigEndian.Uint16(b[2:4])
	return Header{
		ID:                 binary.BigEndian.Uint16(b[0:2]),
		Response:           flags&(1<<15) != 0,
		Opcode:             uint8(flags >> 11 & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		Rcode:              uint8(flags & 0xF),
		QDCount:            binary.BigEndian.Uint16(b[4:6]),
		ANCount:            binary.BigEndian.Uint16(b[6:8]),
		NSCount:            binary.BigEndian.Uint16(b[8:10]),
		ARCount:            binary.BigEndian.Uint16(b[10:12]),
	}, nil
}

// Question is one query entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is one resource record. For CNAME records Target holds the name;
// for A records Addr holds the address.
type RR struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Target string  // CNAME
	Addr   [4]byte // A
}

// Message is a parsed DNS message.
type Message struct {
	Header    Header
	Questions []Question
	Answers   []RR
}

// builder assembles a message with name compression.
type builder struct {
	buf []byte
	// offsets remembers where each (sub)name was written for
	// compression pointers.
	offsets map[string]int
}

func newBuilder() *builder {
	return &builder{offsets: map[string]int{}}
}

// writeName emits a domain name, reusing earlier occurrences via
// compression pointers (RFC 1035 §4.1.4).
func (b *builder) writeName(name string) error {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	for name != "" {
		if off, ok := b.offsets[name]; ok {
			b.buf = append(b.buf, 0xC0|byte(off>>8), byte(off))
			return nil
		}
		if len(b.buf) < 0x3FFF {
			b.offsets[name] = len(b.buf)
		}
		label, rest, _ := strings.Cut(name, ".")
		if len(label) == 0 || len(label) > 63 {
			return fmt.Errorf("dnswire: invalid label %q", label)
		}
		b.buf = append(b.buf, byte(len(label)))
		b.buf = append(b.buf, label...)
		name = rest
	}
	b.buf = append(b.buf, 0)
	return nil
}

func (b *builder) writeU16(v uint16) {
	b.buf = append(b.buf, byte(v>>8), byte(v))
}

func (b *builder) writeU32(v uint32) {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Encode packs a message.
func Encode(m *Message) ([]byte, error) {
	b := newBuilder()
	m.Header.QDCount = uint16(len(m.Questions))
	m.Header.ANCount = uint16(len(m.Answers))
	h := m.Header.pack()
	b.buf = append(b.buf, h[:]...)
	for _, q := range m.Questions {
		if err := b.writeName(q.Name); err != nil {
			return nil, err
		}
		b.writeU16(q.Type)
		b.writeU16(q.Class)
	}
	for _, rr := range m.Answers {
		if err := b.writeName(rr.Name); err != nil {
			return nil, err
		}
		b.writeU16(rr.Type)
		b.writeU16(rr.Class)
		b.writeU32(rr.TTL)
		switch rr.Type {
		case TypeCNAME:
			// RDLENGTH is back-patched after writing the
			// (possibly compressed) target name.
			lenAt := len(b.buf)
			b.writeU16(0)
			start := len(b.buf)
			if err := b.writeName(rr.Target); err != nil {
				return nil, err
			}
			rdlen := len(b.buf) - start
			binary.BigEndian.PutUint16(b.buf[lenAt:lenAt+2], uint16(rdlen))
		case TypeA:
			b.writeU16(4)
			b.buf = append(b.buf, rr.Addr[:]...)
		default:
			return nil, fmt.Errorf("dnswire: unsupported RR type %d", rr.Type)
		}
	}
	return b.buf, nil
}

// readName decodes a possibly-compressed name starting at off,
// returning the name and the offset just past it in the original
// stream.
func readName(msg []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, fmt.Errorf("dnswire: compression loop")
		}
		if off >= len(msg) {
			return "", 0, fmt.Errorf("dnswire: name runs past message")
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, fmt.Errorf("dnswire: truncated pointer")
			}
			ptr := (c&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("dnswire: forward pointer")
			}
			off = ptr
			jumped = true
		case c&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", c)
		default:
			if off+1+c > len(msg) {
				return "", 0, fmt.Errorf("dnswire: label runs past message")
			}
			labels = append(labels, string(msg[off+1:off+1+c]))
			off += 1 + c
		}
	}
}

// Decode parses a message.
func Decode(msg []byte) (*Message, error) {
	h, err := unpackHeader(msg)
	if err != nil {
		return nil, err
	}
	m := &Message{Header: h}
	off := 12
	for i := 0; i < int(h.QDCount); i++ {
		name, next, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(msg) {
			return nil, fmt.Errorf("dnswire: question truncated")
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(msg[next : next+2]),
			Class: binary.BigEndian.Uint16(msg[next+2 : next+4]),
		})
		off = next + 4
	}
	for i := 0; i < int(h.ANCount); i++ {
		name, next, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		if next+10 > len(msg) {
			return nil, fmt.Errorf("dnswire: RR header truncated")
		}
		rr := RR{
			Name:  name,
			Type:  binary.BigEndian.Uint16(msg[next : next+2]),
			Class: binary.BigEndian.Uint16(msg[next+2 : next+4]),
			TTL:   binary.BigEndian.Uint32(msg[next+4 : next+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(msg[next+8 : next+10]))
		rdStart := next + 10
		if rdStart+rdlen > len(msg) {
			return nil, fmt.Errorf("dnswire: RDATA truncated")
		}
		switch rr.Type {
		case TypeCNAME:
			target, _, err := readName(msg, rdStart)
			if err != nil {
				return nil, err
			}
			rr.Target = target
		case TypeA:
			if rdlen != 4 {
				return nil, fmt.Errorf("dnswire: A RDATA length %d", rdlen)
			}
			copy(rr.Addr[:], msg[rdStart:rdStart+4])
		}
		off = rdStart + rdlen
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}

// NewQuery builds a standard recursive query for one name.
func NewQuery(id uint16, name string, qtype uint16) ([]byte, error) {
	return Encode(&Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	})
}
