package dnswire

import (
	"piileak/internal/dnssim"
	"piileak/internal/psl"
)

// Server answers wire-format DNS queries authoritatively from a dnssim
// zone: CNAME chains for cloaked hosts, synthesized A records otherwise.
type Server struct {
	Zone *dnssim.Zone
	// AddrFor synthesizes the terminal A record; defaults to a
	// deterministic mapping when nil.
	AddrFor func(host string) [4]byte
}

// NewServer wraps a zone.
func NewServer(zone *dnssim.Zone) *Server { return &Server{Zone: zone} }

func (s *Server) addr(host string) [4]byte {
	if s.AddrFor != nil {
		return s.AddrFor(host)
	}
	// Deterministic 198.18.0.0/15 mapping, matching the pcap export.
	var sum uint32
	for i := 0; i < len(host); i++ {
		sum = sum*16777619 ^ uint32(host[i])
	}
	return [4]byte{198, 18 + byte(sum>>16&1), byte(sum >> 8), byte(sum)}
}

// Handle answers one query message, mirroring a stub resolver's view:
// the full CNAME chain followed by the terminal A record.
func (s *Server) Handle(query []byte) ([]byte, error) {
	q, err := Decode(query)
	if err != nil {
		return nil, err
	}
	resp := &Message{Header: Header{
		ID:                 q.Header.ID,
		Response:           true,
		Authoritative:      true,
		RecursionDesired:   q.Header.RecursionDesired,
		RecursionAvailable: true,
	}}
	resp.Questions = q.Questions
	if len(q.Questions) != 1 {
		resp.Header.Rcode = RcodeNoError
		return Encode(resp)
	}
	question := q.Questions[0]
	name := psl.Normalize(question.Name)

	chain, err := s.Zone.Resolve(name)
	if err != nil {
		// A CNAME loop answers SERVFAIL-ish; report NXDomain for
		// simplicity of the simulated view.
		resp.Header.Rcode = RcodeNXDomain
		return Encode(resp)
	}
	cur := name
	for _, target := range chain {
		resp.Answers = append(resp.Answers, RR{
			Name: cur, Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: target,
		})
		cur = target
	}
	if question.Type == TypeA || question.Type == TypeCNAME && len(chain) == 0 {
		if question.Type == TypeA {
			resp.Answers = append(resp.Answers, RR{
				Name: cur, Type: TypeA, Class: ClassIN, TTL: 300, Addr: s.addr(cur),
			})
		}
	}
	return Encode(resp)
}
