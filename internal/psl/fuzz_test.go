package psl

import "testing"

// FuzzPublicSuffix ensures arbitrary host strings never panic the
// algorithm and that ETLDPlusOne output, when present, ends with the
// public suffix.
func FuzzPublicSuffix(f *testing.F) {
	f.Add("www.example.com")
	f.Add("a.b.c.co.jp")
	f.Add("..")
	f.Add("")
	f.Add("x.ck")
	f.Add("www.ck")
	f.Add(":8080")
	f.Fuzz(func(t *testing.T, host string) {
		if len(host) > 1<<10 {
			return
		}
		suffix := PublicSuffix(host)
		e, err := ETLDPlusOne(host)
		if err == nil {
			if suffix == "" {
				t.Fatalf("ETLDPlusOne(%q) = %q but no public suffix", host, e)
			}
			if e != suffix && !hasSuffix(e, "."+suffix) {
				t.Fatalf("ETLDPlusOne(%q) = %q does not end with suffix %q", host, e, suffix)
			}
		}
	})
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
