// Package psl implements the Public Suffix List algorithm the paper uses
// to split first-party from third-party resources (§4.1): rules,
// wildcard rules (*.ck) and exception rules (!www.ck), public-suffix and
// eTLD+1 extraction, and site-equality ("same registrable domain")
// classification.
//
// The embedded default list is a curated subset of the real PSL covering
// every suffix the synthetic ecosystem uses, plus the private-section
// entries (herokuapp.com, github.io, ...) that matter for the paper's
// Brave analysis (§7.1, footnote 4). Custom lists can be parsed from the
// standard PSL text format for tests and for users with their own data.
package psl

import (
	"fmt"
	"strings"
)

// List is a parsed public suffix list. The zero value matches nothing;
// use Parse or Default.
type List struct {
	// rules maps a rule's domain form (without "*." or "!") to its kind.
	rules map[string]ruleKind
}

type ruleKind uint8

const (
	ruleNormal ruleKind = iota
	ruleWildcard
	ruleException
)

// Parse reads the standard PSL text format: one rule per line,
// "//" comments, blank lines ignored. Both the ICANN and private sections
// are treated alike, which matches how tracker-blocking tools use the
// list.
func Parse(text string) (*List, error) {
	l := &List{rules: make(map[string]ruleKind)}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "!"):
			l.rules[line[1:]] = ruleException
		case strings.HasPrefix(line, "*."):
			l.rules[line[2:]] = ruleWildcard
		default:
			if strings.ContainsAny(line, " \t") {
				return nil, fmt.Errorf("psl: malformed rule on line %d: %q", lineNo+1, line)
			}
			l.rules[line] = ruleNormal
		}
	}
	return l, nil
}

// MustParse is Parse for static rule text; it panics on error.
func MustParse(text string) *List {
	l, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return l
}

// PublicSuffix returns the public suffix of domain per the PSL algorithm:
// the longest matching rule wins, wildcard rules match one extra leading
// label, exception rules override wildcards, and an unmatched domain
// falls back to its last label.
func (l *List) PublicSuffix(domain string) string {
	domain = Normalize(domain)
	if domain == "" {
		return ""
	}
	labels := strings.Split(domain, ".")
	for _, l := range labels {
		if l == "" {
			return "" // empty label: not a valid host
		}
	}
	// Walk suffixes from longest to shortest so "longest rule wins".
	for i := 0; i < len(labels); i++ {
		suffix := strings.Join(labels[i:], ".")
		if kind, ok := l.rules[suffix]; ok {
			switch kind {
			case ruleException:
				// The exception's own suffix is one label shorter.
				return strings.Join(labels[i+1:], ".")
			case ruleNormal:
				return suffix
			case ruleWildcard:
				// Wildcard matched as its own name: "*.ck" also
				// implies "anything.ck" is a suffix; matching the
				// bare name means the rule is the suffix of a longer
				// domain handled below. Treat bare match as normal.
				return suffix
			}
		}
		// Wildcard: "*.<suffix-without-first-label>".
		if i+1 <= len(labels)-1 {
			parent := strings.Join(labels[i+1:], ".")
			if kind, ok := l.rules[parent]; ok && kind == ruleWildcard {
				// Exception rules are checked first above, so this
				// label is covered by the wildcard.
				return suffix
			}
		}
	}
	return labels[len(labels)-1]
}

// ETLDPlusOne returns the registrable domain (public suffix plus one
// label). It returns an error when the domain is itself a public suffix
// or empty.
func (l *List) ETLDPlusOne(domain string) (string, error) {
	domain = Normalize(domain)
	suffix := l.PublicSuffix(domain)
	if suffix == "" || suffix == domain || domain == "" {
		return "", fmt.Errorf("psl: %q has no registrable domain", domain)
	}
	rest := strings.TrimSuffix(domain, "."+suffix)
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix, nil
}

// SameSite reports whether two hosts share a registrable domain — the
// paper's first-party test. Hosts that are bare public suffixes are never
// same-site with anything.
func (l *List) SameSite(a, b string) bool {
	ea, errA := l.ETLDPlusOne(a)
	eb, errB := l.ETLDPlusOne(b)
	return errA == nil && errB == nil && ea == eb
}

// IsThirdParty reports whether requestHost is a third-party resource for
// a page on siteHost (§4.1's first split, before CNAME uncloaking).
func (l *List) IsThirdParty(siteHost, requestHost string) bool {
	return !l.SameSite(siteHost, requestHost)
}

// Normalize lower-cases a host and strips a trailing dot and port.
func Normalize(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i+1:], ".") {
		// A colon followed by digits is a port; IPv6 literals are not
		// used in this simulator.
		allDigits := i+1 < len(host)
		for _, r := range host[i+1:] {
			if r < '0' || r > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			host = host[:i]
		}
	}
	// Stripping the trailing dot can expose trailing whitespace; trim
	// again so Normalize is idempotent.
	return strings.TrimSpace(strings.TrimSuffix(host, "."))
}

// defaultPSL is the embedded ICANN-section rule set. The paper's party
// classification operates at this granularity (it reports herokuapp.com —
// a private-section suffix — as a single receiver domain), so the default
// list excludes the private section; DefaultWithPrivate adds it for
// callers that want hosting customers separated.
const defaultPSL = `
// ---- ICANN section (subset) ----
com
net
org
edu
gov
info
biz
io
co
ai
jp
co.jp
ne.jp
or.jp
ac.jp
uk
co.uk
org.uk
ac.uk
gov.uk
au
com.au
net.au
org.au
br
com.br
net.br
in
co.in
net.in
de
fr
it
nl
ru
cn
com.cn
net.cn
kr
co.kr
tv
me
cc
app
dev
shop
store
online
site
xyz
club
// Wildcard + exception examples, kept for PSL-algorithm fidelity.
*.ck
!www.ck
*.bd
`

// privatePSL holds the private-section entries (hosting providers whose
// customers are mutually third-party).
const privatePSL = `
// ---- Private section (subset) ----
herokuapp.com
github.io
blogspot.com
cloudfront.net
azurewebsites.net
web.app
firebaseapp.com
`

var (
	defaultList        = MustParse(defaultPSL)
	defaultWithPrivate = MustParse(defaultPSL + privatePSL)
)

// Default returns the embedded ICANN-section list.
func Default() *List { return defaultList }

// DefaultWithPrivate returns the embedded list including the private
// section.
func DefaultWithPrivate() *List { return defaultWithPrivate }

// PublicSuffix applies the embedded list.
func PublicSuffix(domain string) string { return defaultList.PublicSuffix(domain) }

// ETLDPlusOne applies the embedded list.
func ETLDPlusOne(domain string) (string, error) { return defaultList.ETLDPlusOne(domain) }

// SameSite applies the embedded list.
func SameSite(a, b string) bool { return defaultList.SameSite(a, b) }

// IsThirdParty applies the embedded list.
func IsThirdParty(siteHost, requestHost string) bool {
	return defaultList.IsThirdParty(siteHost, requestHost)
}
