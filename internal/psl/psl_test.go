package psl

import "testing"

func TestPublicSuffix(t *testing.T) {
	cases := map[string]string{
		"example.com":         "com",
		"www.example.com":     "com",
		"example.co.jp":       "co.jp",
		"shop.example.co.uk":  "co.uk",
		"com":                 "com",
		"unknown-tld-host.zz": "zz", // fallback: last label
	}
	for in, want := range cases {
		if got := PublicSuffix(in); got != want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWildcardAndException(t *testing.T) {
	// *.ck makes foo.ck a public suffix; !www.ck carves out www.ck.
	if got := PublicSuffix("shop.foo.ck"); got != "foo.ck" {
		t.Errorf("PublicSuffix(shop.foo.ck) = %q, want foo.ck", got)
	}
	if got := PublicSuffix("www.ck"); got != "ck" {
		t.Errorf("PublicSuffix(www.ck) = %q, want ck", got)
	}
	e, err := ETLDPlusOne("www.ck")
	if err != nil || e != "www.ck" {
		t.Errorf("ETLDPlusOne(www.ck) = %q, %v; want www.ck", e, err)
	}
	e, err = ETLDPlusOne("a.b.foo.ck")
	if err != nil || e != "b.foo.ck" {
		t.Errorf("ETLDPlusOne(a.b.foo.ck) = %q, %v; want b.foo.ck", e, err)
	}
}

func TestETLDPlusOne(t *testing.T) {
	cases := map[string]string{
		"example.com":            "example.com",
		"a.b.example.com":        "example.com",
		"cdn.shop.example.co.jp": "example.co.jp",
	}
	for in, want := range cases {
		got, err := ETLDPlusOne(in)
		if err != nil {
			t.Errorf("ETLDPlusOne(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestETLDPlusOneErrors(t *testing.T) {
	for _, in := range []string{"com", "co.jp", ""} {
		if _, err := ETLDPlusOne(in); err == nil {
			t.Errorf("ETLDPlusOne(%q) succeeded, want error", in)
		}
	}
}

func TestSameSite(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"www.example.com", "api.example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "tracker.net", false},
		{"shop.example.co.jp", "mail.example.co.jp", true},
		{"example.co.jp", "example.jp", false},
		{"com", "com", false},
	}
	for _, c := range cases {
		if got := SameSite(c.a, c.b); got != c.want {
			t.Errorf("SameSite(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsThirdParty(t *testing.T) {
	if IsThirdParty("shop.example.com", "cdn.example.com") {
		t.Error("same-site CDN flagged as third party")
	}
	if !IsThirdParty("shop.example.com", "pixel.tracker.net") {
		t.Error("tracker not flagged as third party")
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"WWW.Example.COM":  "www.example.com",
		"example.com.":     "example.com",
		"example.com:8080": "example.com",
		"  example.com ":   "example.com",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseCustomList(t *testing.T) {
	l, err := Parse("// comment\n\ncom\nspecial.test\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.PublicSuffix("a.special.test"); got != "special.test" {
		t.Errorf("custom list PublicSuffix = %q", got)
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := Parse("bad rule with spaces"); err == nil {
		t.Error("Parse accepted a malformed rule")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on malformed input")
		}
	}()
	MustParse("bad rule here")
}

func TestPrivateSectionList(t *testing.T) {
	l := DefaultWithPrivate()
	if got := l.PublicSuffix("example.herokuapp.com"); got != "herokuapp.com" {
		t.Errorf("PublicSuffix(example.herokuapp.com) = %q", got)
	}
	if got := l.PublicSuffix("user.github.io"); got != "github.io" {
		t.Errorf("PublicSuffix(user.github.io) = %q", got)
	}
	// Different customers of one hosting suffix are different sites.
	if l.SameSite("a.herokuapp.com", "b.herokuapp.com") {
		t.Error("hosting customers considered same-site")
	}
	// The ICANN-only default treats herokuapp.com as one site, the
	// granularity the paper reports receivers at.
	e, err := ETLDPlusOne("shopwidgets.herokuapp.com")
	if err != nil || e != "herokuapp.com" {
		t.Errorf("default ETLDPlusOne = %q, %v", e, err)
	}
}

func TestLongestRuleWins(t *testing.T) {
	// Both "jp" and "co.jp" are rules; co.jp must win for x.co.jp.
	if got := PublicSuffix("x.co.jp"); got != "co.jp" {
		t.Errorf("PublicSuffix(x.co.jp) = %q, want co.jp", got)
	}
}
