// Package resilience is the crawl runtime's answer to a flaky web:
// retry with exponential backoff and deterministic jitter, per-attempt
// timeout budgets, and per-host circuit breakers. The studies this
// reproduction follows (OpenWPM-style crawls) all grew this machinery
// once their measurement runs met the live web; here it is a reusable
// layer the crawler drives against the faultsim substrate.
//
// Determinism is the design constraint: backoff jitter is a pure
// function of (seed, key, attempt) and time flows through a Clock, so a
// simulated crawl uses a VirtualClock and replays identically — serial,
// parallel, or resumed.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"piileak/internal/obs"
)

// Policy bundles the retry, timeout and breaker knobs.
type Policy struct {
	// MaxAttempts is the total tries per fetch (1 = no retry).
	MaxAttempts int
	// BaseDelay is the first backoff; successive retries multiply it by
	// Multiplier up to MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of each backoff randomized (0..1),
	// deterministically per (seed, key, attempt).
	Jitter float64
	// AttemptTimeout is the per-attempt budget: a response slower than
	// this fails the attempt.
	AttemptTimeout time.Duration
	// BreakerThreshold consecutive failures open a host's breaker;
	// BreakerCooldown later it half-opens and BreakerProbes successful
	// probes close it again.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	BreakerProbes    int
}

// DefaultPolicy returns the crawl runtime's stock tuning: four attempts
// with 250ms..8s backoff, a 10s attempt budget, and a breaker that
// opens after five straight failures. The threshold deliberately
// exceeds MaxAttempts: one fetch's own retry burst can never trip the
// breaker (a flaky host must be allowed to recover on its last
// attempt); only sustained failure across successive fetches opens it.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:      4,
		BaseDelay:        250 * time.Millisecond,
		MaxDelay:         8 * time.Second,
		Multiplier:       2,
		Jitter:           0.5,
		AttemptTimeout:   10 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  30 * time.Second,
		BreakerProbes:    1,
	}
}

// WithDefaults fills unset fields from DefaultPolicy, so callers can
// override just MaxAttempts and keep the rest stock. Non-positive
// values count as unset: a negative MaxAttempts would otherwise make
// every Do a zero-attempt no-op that reports success.
func (p Policy) WithDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier <= 0 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter <= 0 {
		p.Jitter = d.Jitter
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = d.AttemptTimeout
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	if p.BreakerProbes <= 0 {
		p.BreakerProbes = d.BreakerProbes
	}
	return p
}

// mix64 is splitmix64's finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Backoff returns the delay before retry number attempt (1-based: the
// wait after the attempt-th failure). The jittered part is a pure
// function of (seed, key, attempt).
func (p Policy) Backoff(seed uint64, key string, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		h := seed ^ uint64(attempt)*0x9e3779b97f4a7c15
		for i := 0; i < len(key); i++ {
			h = mix64(h ^ uint64(key[i]))
		}
		u := float64(mix64(h)>>11) / float64(1<<53) // [0, 1)
		d *= 1 - p.Jitter*u                         // full-jitter downward
	}
	return time.Duration(d)
}

// Clock abstracts time so the simulated crawl never sleeps for real.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now returns time.Now.
//
//lint:allow detrand RealClock is the one sanctioned wall-clock source; studies use VirtualClock
func (RealClock) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock advances instantly on Sleep. It starts at a fixed epoch
// so runs are comparable, and is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a clock pinned at the Unix epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(0, 0)}
}

// Now returns the virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual time by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Elapsed is the virtual time slept since the epoch.
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(time.Unix(0, 0))
}

// BreakerState is a circuit breaker's position.
type BreakerState int

// The classic three-state machine.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-host circuit breaker. It is not safe for concurrent
// use; scope one BreakerSet per crawl (the crawler gives every site
// crawl its own, which is what keeps parallel crawls deterministic).
type Breaker struct {
	threshold int
	cooldown  time.Duration
	probes    int

	state     BreakerState
	fails     int
	successes int
	until     time.Time // when an open breaker may half-open
}

// NewBreaker builds a breaker from the policy's thresholds.
func NewBreaker(p Policy) *Breaker {
	return &Breaker{threshold: p.BreakerThreshold, cooldown: p.BreakerCooldown, probes: p.BreakerProbes}
}

// State reports the breaker's current position.
func (b *Breaker) State() BreakerState { return b.state }

// Allow reports whether a request may proceed now. An open breaker
// half-opens once its cooldown has passed.
func (b *Breaker) Allow(now time.Time) bool {
	if b.state == BreakerOpen {
		if now.Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.successes = 0
	}
	return true
}

// Record feeds one request outcome into the state machine.
func (b *Breaker) Record(now time.Time, ok bool) {
	if ok {
		switch b.state {
		case BreakerHalfOpen:
			b.successes++
			if b.successes >= b.probes {
				b.state = BreakerClosed
				b.fails = 0
			}
		default:
			b.fails = 0
		}
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		// A failed probe re-opens immediately.
		b.state = BreakerOpen
		b.until = now.Add(b.cooldown)
	default:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.until = now.Add(b.cooldown)
		}
	}
}

// BreakerSet keys breakers by host, creating them on demand.
type BreakerSet struct {
	policy Policy
	m      map[string]*Breaker
}

// NewBreakerSet builds an empty set under a policy.
func NewBreakerSet(p Policy) *BreakerSet {
	return &BreakerSet{policy: p, m: map[string]*Breaker{}}
}

// Get returns host's breaker, creating it closed.
func (s *BreakerSet) Get(host string) *Breaker {
	b, ok := s.m[host]
	if !ok {
		b = NewBreaker(s.policy)
		s.m[host] = b
	}
	return b
}

// Open lists hosts whose breaker is currently open, for reporting.
func (s *BreakerSet) Open() []string {
	var out []string
	for h, b := range s.m {
		if b.state == BreakerOpen {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// ErrCircuitOpen marks a fetch refused because the host's breaker was
// open — the runtime's "stop hammering a dead host" signal.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// Transient tags errors that are worth retrying.
type Transient interface{ Transient() bool }

// retryable reports whether err should be retried: transient-tagged
// errors by their own word, everything else optimistically (a live
// crawler cannot classify unknown transport errors), except an open
// circuit, which retrying cannot help within the same backoff budget.
func retryable(err error) bool {
	if errors.Is(err, ErrCircuitOpen) {
		return false
	}
	var t Transient
	if errors.As(err, &t) {
		return t.Transient()
	}
	return true
}

// Executor runs operations under one policy, clock and breaker set. It
// is single-goroutine (one per site crawl); Retries accumulates the
// backoff retries performed for reporting.
type Executor struct {
	Policy   Policy
	Clock    Clock
	Seed     uint64
	Breakers *BreakerSet

	// Obs, when set, receives breaker-transition and refusal counts.
	// Telemetry only — never an input to retry decisions.
	Obs *obs.Run

	// Retries counts attempts beyond each fetch's first.
	Retries int
}

// NewExecutor wires an executor with a fresh breaker set; a nil clock
// selects a VirtualClock (the simulation default).
func NewExecutor(p Policy, clock Clock, seed uint64) *Executor {
	p = p.WithDefaults()
	if clock == nil {
		clock = NewVirtualClock()
	}
	return &Executor{Policy: p, Clock: clock, Seed: seed, Breakers: NewBreakerSet(p)}
}

// Do runs op under retry/backoff and key's circuit breaker without
// cancellation — DoContext with a background context.
func (e *Executor) Do(key string, op func() error) error {
	//lint:allow ctxflow Do is the documented no-cancellation wrapper over DoContext
	return e.DoContext(context.Background(), key, op)
}

// DoContext runs op under retry/backoff and key's circuit breaker. op
// is called with nothing and must do its own attempt accounting (the
// crawler's transport counts per-host fetches). It returns nil on
// success, ErrCircuitOpen (wrapped) when the breaker refused, ctx's
// error when the run was cancelled — before an attempt or during a
// backoff wait, which is interrupted rather than slept out — or the
// last attempt's error once the budget is spent.
func (e *Executor) DoContext(ctx context.Context, key string, op func() error) error {
	br := e.Breakers.Get(key)
	var last error
	for attempt := 1; attempt <= e.Policy.MaxAttempts; attempt++ {
		if err := ctxErr(ctx, last); err != nil {
			return err
		}
		before := br.State()
		if !br.Allow(e.Clock.Now()) {
			e.Obs.Count(obs.MetricBreakerRefused, 1)
			if last != nil {
				return fmt.Errorf("%w: %s (last error: %v)", ErrCircuitOpen, key, last)
			}
			return fmt.Errorf("%w: %s", ErrCircuitOpen, key)
		}
		e.noteTransition(before, br.State())
		before = br.State()
		err := op()
		br.Record(e.Clock.Now(), err == nil)
		e.noteTransition(before, br.State())
		if err == nil {
			return nil
		}
		last = err
		if !retryable(err) {
			return last
		}
		if attempt < e.Policy.MaxAttempts {
			// The failure that just landed may have opened the breaker.
			// Sleeping out the backoff would be pure waste — the next
			// Allow refuses until the cooldown, which is longer than any
			// backoff step — so fail fast with the breaker's verdict.
			if br.State() == BreakerOpen {
				return fmt.Errorf("%w: %s (last error: %v)", ErrCircuitOpen, key, last)
			}
			e.Retries++
			if serr := SleepContext(ctx, e.Clock, e.Policy.Backoff(e.Seed, key, attempt)); serr != nil {
				return ctxErr(ctx, last)
			}
		}
	}
	return last
}

// noteTransition counts a breaker state change in the observer. It is
// pure reporting: the state machine has already moved.
func (e *Executor) noteTransition(from, to BreakerState) {
	if e.Obs == nil || from == to {
		return
	}
	switch to {
	case BreakerOpen:
		e.Obs.Count(obs.MetricBreakerOpened, 1)
	case BreakerHalfOpen:
		e.Obs.Count(obs.MetricBreakerHalfOpen, 1)
	case BreakerClosed:
		e.Obs.Count(obs.MetricBreakerClosed, 1)
	}
}

// ctxErr wraps a context error with the last attempt's failure so the
// caller sees both why the run stopped and what the host was doing.
func ctxErr(ctx context.Context, last error) error {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if last != nil {
		return fmt.Errorf("%w (last error: %v)", err, last)
	}
	return err
}
