package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDoContextNoSleepAfterBreakerOpens is the regression test for the
// wasted-backoff bug: when the failure that opens the breaker lands
// mid-budget, Do used to sleep the full backoff and only then discover
// the open circuit. The fix fails fast, so no virtual time passes after
// the breaker opens.
func TestDoContextNoSleepAfterBreakerOpens(t *testing.T) {
	// Threshold 3, budget 4: the third attempt of the first fetch opens
	// the breaker with one attempt left in the budget.
	e := NewExecutor(Policy{MaxAttempts: 4, BreakerThreshold: 3, BreakerCooldown: time.Hour}, nil, 1)
	vc := e.Clock.(*VirtualClock)

	calls := 0
	err := e.Do("h", func() error { calls++; return fmt.Errorf("down") })
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen once the breaker opens mid-budget", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (the opening failure ends the fetch)", calls)
	}
	// Exactly two backoffs were slept (after attempts 1 and 2); the
	// third failure opened the breaker and must not have slept.
	want := e.Policy.Backoff(1, "h", 1) + e.Policy.Backoff(1, "h", 2)
	if got := vc.Elapsed(); got != want {
		t.Errorf("virtual time = %v, want %v (no backoff after the breaker opened)", got, want)
	}
	if e.Retries != 2 {
		t.Errorf("retries = %d, want 2 (the refused attempt is not a retry)", e.Retries)
	}
}

// TestDoContextCancelledBeforeAttempt: a cancelled context stops the
// loop before the next attempt runs, and the error carries both the
// cancellation and the last transport failure.
func TestDoContextCancelledBeforeAttempt(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 4}, nil, 1)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := e.DoContext(ctx, "h", func() error {
		calls++
		cancel() // the run is interrupted while the attempt is failing
		return fmt.Errorf("mid-flight failure")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no attempt after cancellation)", calls)
	}
	if got := err.Error(); !errors.Is(err, context.Canceled) || !contains(got, "mid-flight failure") {
		t.Errorf("error %q does not carry the last attempt's failure", got)
	}
}

// TestDoContextCancelledWaitDoesNotAdvanceVirtualClock: under a virtual
// clock a cancelled backoff wait returns without advancing time — the
// deterministic equivalent of a real clock's interrupted timer.
func TestDoContextCancelledWaitDoesNotAdvanceVirtualClock(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 4}, nil, 1)
	vc := e.Clock.(*VirtualClock)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.DoContext(ctx, "h", func() error { return fmt.Errorf("never runs") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if vc.Elapsed() != 0 {
		t.Errorf("cancelled run advanced the virtual clock by %v", vc.Elapsed())
	}
}

// TestRealClockSleepContextInterruptible: the real clock's backoff wait
// must return promptly on cancellation instead of sleeping out d.
func TestRealClockSleepContextInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- RealClock{}.SleepContext(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SleepContext did not return after cancellation")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("interrupted sleep blocked for real")
	}
}

// TestSleepContextNilContextFallsBack pins the nil-ctx convenience: the
// wait happens on the clock with no cancellation semantics.
func TestSleepContextNilContextFallsBack(t *testing.T) {
	vc := NewVirtualClock()
	if err := SleepContext(nil, vc, time.Minute); err != nil {
		t.Fatalf("SleepContext(nil) = %v", err)
	}
	if vc.Elapsed() != time.Minute {
		t.Errorf("elapsed = %v, want 1m", vc.Elapsed())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
