package resilience

import (
	"context"
	"time"
)

// This file is the cancellation layer over the Clock abstraction: every
// retry/backoff wait in the runtime goes through SleepContext, so a
// cancelled crawl stops waiting immediately instead of finishing its
// backoff first — while virtual-clock studies keep advancing instantly
// and deterministically.

// ContextSleeper is the optional Clock extension for cancellable waits.
// Clocks that do not implement it fall back to an uninterruptible Sleep
// preceded by a cancellation check.
type ContextSleeper interface {
	// SleepContext waits d or until ctx is done, whichever comes
	// first, returning ctx.Err() when the wait was cut short.
	SleepContext(ctx context.Context, d time.Duration) error
}

// SleepContext waits d on c, honouring ctx cancellation. A nil ctx
// means no cancellation (context.Background semantics).
func SleepContext(ctx context.Context, c Clock, d time.Duration) error {
	if ctx == nil {
		c.Sleep(d)
		return nil
	}
	if cs, ok := c.(ContextSleeper); ok {
		return cs.SleepContext(ctx, d)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Sleep(d)
	return ctx.Err()
}

// SleepContext waits on a real timer, returning early when ctx is
// cancelled mid-backoff — the crash-only runtime's "Ctrl-C must not
// wait out an 8s backoff" path.
func (RealClock) SleepContext(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SleepContext advances the virtual clock instantly. A cancelled
// context still short-circuits first, so cancellation behaves
// identically under virtual and real clocks; an uncancelled virtual
// wait never blocks, which is what keeps torture and fault tests
// deterministic and fast.
func (c *VirtualClock) SleepContext(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Sleep(d)
	return nil
}
