package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}.WithDefaults()
	p.Jitter = 0 // pure exponential for this test
	prev := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := p.Backoff(1, "host", attempt)
		if d < prev {
			t.Fatalf("attempt %d: backoff shrank: %v < %v", attempt, d, prev)
		}
		if d > p.MaxDelay {
			t.Fatalf("attempt %d: backoff %v over cap %v", attempt, d, p.MaxDelay)
		}
		prev = d
	}
	if got := p.Backoff(1, "host", 8); got != p.MaxDelay {
		t.Errorf("deep retry = %v, want cap %v", got, p.MaxDelay)
	}
}

func TestBackoffJitterDeterministicPerKey(t *testing.T) {
	p := DefaultPolicy()
	a := p.Backoff(7, "a.com", 2)
	if a != p.Backoff(7, "a.com", 2) {
		t.Fatal("same (seed, key, attempt) must give the same jitter")
	}
	if a == p.Backoff(7, "b.com", 2) && a == p.Backoff(7, "c.com", 2) {
		t.Error("different keys all jittered identically (suspicious)")
	}
	if a > p.Backoff(7, "a.com", 5) && p.Backoff(7, "a.com", 5) == 0 {
		t.Error("jitter zeroed a delay")
	}
	// Jitter only shrinks the deterministic exponential, never grows it.
	noJitter := p
	noJitter.Jitter = 0
	for attempt := 1; attempt <= 5; attempt++ {
		if p.Backoff(7, "a.com", attempt) > noJitter.Backoff(7, "a.com", attempt) {
			t.Fatalf("attempt %d: jittered delay exceeds base", attempt)
		}
	}
}

func TestVirtualClockAdvancesWithoutSleeping(t *testing.T) {
	c := NewVirtualClock()
	start := time.Now()
	c.Sleep(10 * time.Hour)
	if time.Since(start) > time.Second {
		t.Fatal("virtual sleep blocked for real")
	}
	if c.Elapsed() != 10*time.Hour {
		t.Errorf("elapsed = %v, want 10h", c.Elapsed())
	}
	c.Sleep(-time.Hour)
	if c.Elapsed() != 10*time.Hour {
		t.Error("negative sleep moved the clock")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	p := Policy{BreakerThreshold: 3, BreakerCooldown: time.Minute, BreakerProbes: 1}.WithDefaults()
	b := NewBreaker(p)
	now := time.Unix(0, 0)

	if !b.Allow(now) || b.State() != BreakerClosed {
		t.Fatal("new breaker must be closed")
	}
	// Two failures: still closed. Third: open.
	b.Record(now, false)
	b.Record(now, false)
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.Record(now, false)
	if b.State() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.Allow(now.Add(30 * time.Second)) {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
	// Cooldown passes: half-open, a probe is allowed.
	if !b.Allow(now.Add(2 * time.Minute)) {
		t.Fatal("breaker never half-opened")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Failed probe re-opens.
	b.Record(now.Add(2*time.Minute), false)
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	// Next window: successful probe closes.
	if !b.Allow(now.Add(4 * time.Minute)) {
		t.Fatal("second half-open refused")
	}
	b.Record(now.Add(4*time.Minute), true)
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close")
	}
	// Success resets the failure count: two fails, success, two fails
	// must stay closed.
	b.Record(now, false)
	b.Record(now, false)
	b.Record(now, true)
	b.Record(now, false)
	b.Record(now, false)
	if b.State() != BreakerClosed {
		t.Fatal("failure count not reset by success")
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if state.String() != want {
			t.Errorf("%d.String() = %q, want %q", state, state.String(), want)
		}
	}
}

func TestWithDefaultsClampsNonPositive(t *testing.T) {
	p := Policy{MaxAttempts: -3, BaseDelay: -time.Second, BreakerThreshold: -1}.WithDefaults()
	d := DefaultPolicy()
	if p.MaxAttempts != d.MaxAttempts || p.BaseDelay != d.BaseDelay || p.BreakerThreshold != d.BreakerThreshold {
		t.Errorf("negative fields not clamped to defaults: %+v", p)
	}
	// A negative budget must not turn Do into a zero-attempt success.
	e := NewExecutor(Policy{MaxAttempts: -1}, nil, 1)
	calls := 0
	err := e.Do("h", func() error { calls++; return fmt.Errorf("down") })
	if calls == 0 {
		t.Fatal("Do never called the op")
	}
	if err == nil {
		t.Fatal("Do reported success for an always-failing op")
	}
}

type flakyOp struct {
	failures int
	calls    int
}

func (o *flakyOp) run() error {
	o.calls++
	if o.calls <= o.failures {
		return fmt.Errorf("transient glitch %d", o.calls)
	}
	return nil
}

func TestExecutorRetriesTransientFailure(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 4}, nil, 1)
	op := &flakyOp{failures: 2}
	if err := e.Do("host.com", op.run); err != nil {
		t.Fatalf("Do = %v, want recovery", err)
	}
	if op.calls != 3 {
		t.Errorf("calls = %d, want 3", op.calls)
	}
	if e.Retries != 2 {
		t.Errorf("retries = %d, want 2", e.Retries)
	}
	vc := e.Clock.(*VirtualClock)
	if vc.Elapsed() == 0 {
		t.Error("backoff did not consume virtual time")
	}
}

func TestExecutorExhaustsBudget(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 3}, nil, 1)
	op := &flakyOp{failures: 100}
	err := e.Do("host.com", op.run)
	if err == nil {
		t.Fatal("Do succeeded against a dead op")
	}
	if op.calls != 3 {
		t.Errorf("calls = %d, want 3 (MaxAttempts)", op.calls)
	}
}

func TestExecutorCircuitOpensAcrossFetches(t *testing.T) {
	// Threshold 3, budget 2 per fetch: the second fetch's first attempt
	// trips the breaker, so its second is refused and a third fetch
	// fails fast without calling the op at all.
	e := NewExecutor(Policy{MaxAttempts: 2, BreakerThreshold: 3, BreakerCooldown: time.Hour}, nil, 1)
	op := &flakyOp{failures: 100}
	if err := e.Do("host.com", op.run); err == nil {
		t.Fatal("first fetch should fail")
	}
	if err := e.Do("host.com", op.run); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second fetch = %v, want ErrCircuitOpen", err)
	}
	calls := op.calls
	if err := e.Do("host.com", op.run); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third fetch = %v, want ErrCircuitOpen", err)
	}
	if op.calls != calls {
		t.Errorf("open circuit still called the op %d times", op.calls-calls)
	}
	if open := e.Breakers.Open(); len(open) != 1 || open[0] != "host.com" {
		t.Errorf("Open() = %v, want [host.com]", open)
	}
}

func TestExecutorBreakerHalfOpensAfterCooldown(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 1, BreakerThreshold: 2, BreakerCooldown: time.Minute}, nil, 1)
	op := &flakyOp{failures: 2}
	e.Do("h", op.run)
	e.Do("h", op.run)
	if !errors.Is(e.Do("h", op.run), ErrCircuitOpen) {
		t.Fatal("breaker should be open")
	}
	// Advance past cooldown: the half-open probe runs and succeeds.
	e.Clock.Sleep(2 * time.Minute)
	if err := e.Do("h", op.run); err != nil {
		t.Fatalf("post-cooldown probe = %v, want success", err)
	}
	if e.Breakers.Get("h").State() != BreakerClosed {
		t.Error("successful probe did not close the breaker")
	}
}

type fatal struct{}

func (fatal) Error() string   { return "permanent failure" }
func (fatal) Transient() bool { return false }

func TestExecutorDoesNotRetryNonTransient(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 5}, nil, 1)
	calls := 0
	err := e.Do("h", func() error { calls++; return fatal{} })
	if err == nil || calls != 1 {
		t.Fatalf("non-transient error retried: calls=%d err=%v", calls, err)
	}
}

func TestExecutorDeterministicTiming(t *testing.T) {
	run := func() time.Duration {
		e := NewExecutor(Policy{MaxAttempts: 4}, nil, 99)
		op := &flakyOp{failures: 3}
		if err := e.Do("slow-host.com", op.run); err != nil {
			t.Fatal(err)
		}
		return e.Clock.(*VirtualClock).Elapsed()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("virtual elapsed differs across identical runs: %v vs %v", a, b)
	}
}
