package resilience

import (
	"sync"
	"time"
)

// EWMA is an exponentially weighted moving average of durations, safe
// for concurrent use. piiserve's admission control feeds it completed
// job durations and serves the smoothed value as the Retry-After hint
// when shedding load — a recency-weighted estimate that tracks the
// current workload instead of averaging over the server's lifetime.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value time.Duration
	n     int
}

// NewEWMA returns an average with the given smoothing factor in (0, 1];
// higher alpha weighs recent samples more. Out-of-range values clamp to
// the conventional 0.3.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EWMA{alpha: alpha}
}

// Record folds one sample in. The first sample seeds the average.
func (e *EWMA) Record(d time.Duration) {
	if d < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.value = d
	} else {
		e.value = time.Duration(e.alpha*float64(d) + (1-e.alpha)*float64(e.value))
	}
	e.n++
}

// Value returns the current average; ok is false until the first
// sample lands.
func (e *EWMA) Value() (d time.Duration, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value, e.n > 0
}
