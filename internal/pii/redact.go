package pii

import "strings"

// Redact masks a PII value for safe display in logs and examples: the
// first rune survives, the rest is starred, and an email keeps its
// domain ("mariko…@x.example.com" → "m***@x.example.com"). The piilog
// analyzer (internal/analysis/piilog) accepts values routed through
// Redact as sanitized; everything else that looks like persona PII is
// barred from log sinks.
func Redact(s string) string {
	if s == "" {
		return ""
	}
	if at := strings.LastIndexByte(s, '@'); at >= 0 {
		return mask(s[:at]) + "@" + s[at+1:]
	}
	return mask(s)
}

// mask keeps the first rune and replaces the remainder with "***".
func mask(s string) string {
	if s == "" {
		return "***"
	}
	r := []rune(s)
	return string(r[0]) + "***"
}
