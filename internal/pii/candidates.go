package pii

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"piileak/internal/ahocorasick"
)

// CandidateConfig controls candidate-token generation (§3.1).
type CandidateConfig struct {
	// MaxDepth is the maximum transform-chain length. The paper applies
	// encodings/hashes "at most three times"; depth 2 already covers
	// every chain observed in its Table 2 (the deepest being SHA256 of
	// MD5), so 2 is the default. Depth 3 is exercised by ablation A1.
	MaxDepth int
	// Transforms restricts the transform set; nil means every
	// registered transform except base64url. (An unpadded base64url
	// token is a strict prefix of the padded base64 token of the same
	// plaintext, so including both double-reports every base64 leak;
	// pass Transforms explicitly to hunt base64url-only trackers.)
	Transforms []string
	// MinTokenLen drops tokens shorter than this many bytes, which
	// would false-positive on unrelated traffic (e.g. 4-hex-digit CRC16
	// of short fields). Default 8.
	MinTokenLen int
}

func (c CandidateConfig) withDefaults() CandidateConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 2
	}
	if c.Transforms == nil {
		for _, name := range TransformNames() {
			if name != "base64url" {
				c.Transforms = append(c.Transforms, name)
			}
		}
	}
	if c.MinTokenLen == 0 {
		c.MinTokenLen = 8
	}
	return c
}

// Key returns a canonical fingerprint of the effective configuration
// (after defaulting), so configurations that resolve identically — e.g.
// the zero MaxDepth and an explicit 2 — share one cache slot in the
// detection-engine build cache.
func (c CandidateConfig) Key() string {
	c = c.withDefaults()
	return "d=" + strconv.Itoa(c.MaxDepth) +
		"|min=" + strconv.Itoa(c.MinTokenLen) +
		"|t=" + strings.Join(c.Transforms, ",")
}

// Token is one candidate string the detector searches for.
type Token struct {
	// Value is the exact byte string to match.
	Value string `json:"value"`
	// Field is the PII field the token derives from.
	Field Field `json:"field"`
	// Chain is the transform chain, innermost first; empty for
	// plaintext.
	Chain []string `json:"chain,omitempty"`
}

// Label renders the token's chain in Table 1b vocabulary.
func (t Token) Label() string { return ChainLabel(t.Chain) }

// CandidateSet is the compiled token set: the tokens plus an
// Aho-Corasick automaton for single-pass scanning. It is immutable and
// safe for concurrent use.
type CandidateSet struct {
	cfg     CandidateConfig
	tokens  []Token
	matcher *ahocorasick.Matcher
}

// candidateBuilds counts BuildCandidates calls process-wide; the
// detection-engine build cache's tests assert it stays flat on cache
// hits.
var candidateBuilds atomic.Uint64

// CandidateBuilds returns the number of BuildCandidates calls so far in
// this process. It exists so tests can pin that cached code paths stop
// rebuilding candidate sets.
func CandidateBuilds() uint64 { return candidateBuilds.Load() }

// BuildCandidates generates and compiles the candidate set for a
// persona. Chains are explored breadth first and deduplicated by value,
// so a value reachable through several chains is attributed to its
// shortest chain (e.g. rot13∘rot13 collapses into plaintext).
func BuildCandidates(p Persona, cfg CandidateConfig) (*CandidateSet, error) {
	candidateBuilds.Add(1)
	cfg = cfg.withDefaults()
	transforms := make([]Transform, 0, len(cfg.Transforms))
	for _, name := range cfg.Transforms {
		t, ok := LookupTransform(name)
		if !ok {
			return nil, fmt.Errorf("pii: unknown transform %q", name)
		}
		transforms = append(transforms, t)
	}

	cs := &CandidateSet{cfg: cfg}
	seen := make(map[string]bool)
	add := func(value []byte, field Field, chain []string) {
		if len(value) < cfg.MinTokenLen || seen[string(value)] {
			return
		}
		seen[string(value)] = true
		cs.tokens = append(cs.tokens, Token{Value: string(value), Field: field, Chain: chain})
	}

	type work struct {
		data  []byte
		chain []string
	}
	for _, field := range p.Fields() {
		level := []work{{data: []byte(field.Value)}}
		add(level[0].data, field, nil)
		for depth := 1; depth <= cfg.MaxDepth; depth++ {
			next := make([]work, 0, len(level)*len(transforms))
			for _, w := range level {
				for _, t := range transforms {
					// Skip immediate self-repetition: for hashes it
					// is covered by depth anyway and for involutions
					// (rot13) it collapses to the parent.
					if len(w.chain) > 0 && w.chain[len(w.chain)-1] == t.Name {
						continue
					}
					out := t.Apply(w.data)
					chain := append(append([]string(nil), w.chain...), t.Name)
					add(out, field, chain)
					next = append(next, work{data: out, chain: chain})
				}
			}
			level = next
		}
	}

	patterns := make([][]byte, len(cs.tokens))
	for i, t := range cs.tokens {
		patterns[i] = []byte(t.Value)
	}
	cs.matcher = ahocorasick.New(patterns)
	return cs, nil
}

// MustBuildCandidates panics on configuration errors.
func MustBuildCandidates(p Persona, cfg CandidateConfig) *CandidateSet {
	cs, err := BuildCandidates(p, cfg)
	if err != nil {
		panic(err)
	}
	return cs
}

// FindIn returns the distinct tokens occurring in data, in first-match
// order.
func (cs *CandidateSet) FindIn(data []byte) []Token {
	idxs := cs.matcher.FindUnique(data)
	if len(idxs) == 0 {
		return nil
	}
	out := make([]Token, len(idxs))
	for i, idx := range idxs {
		out[i] = cs.tokens[idx]
	}
	return out
}

// Contains reports whether any candidate token occurs in data.
func (cs *CandidateSet) Contains(data []byte) bool {
	return cs.matcher.Contains(data)
}

// ContainsString is Contains for string input; it allocates nothing.
func (cs *CandidateSet) ContainsString(s string) bool {
	return cs.matcher.ContainsString(s)
}

// Scratch is the reusable dedup state FindInto needs; the zero value is
// ready. One Scratch must not be shared between concurrent scans.
type Scratch = ahocorasick.Scratch

// FindInto appends the indices of the distinct tokens occurring in data
// to dst, in first-match order, reusing sc. Index i resolves through
// TokenAt(i). Content and order match FindIn exactly; the only
// allocations are dst growth and sc's first use.
func (cs *CandidateSet) FindInto(data []byte, sc *Scratch, dst []int) []int {
	return cs.matcher.FindUniqueInto(data, sc, dst)
}

// FindStringInto is FindInto for string input, avoiding the []byte
// conversion copy.
func (cs *CandidateSet) FindStringInto(data string, sc *Scratch, dst []int) []int {
	return cs.matcher.FindUniqueStringInto(data, sc, dst)
}

// TokenAt returns the token at index i of the compiled set, as reported
// by FindInto. Callers must not mutate the result's Chain.
func (cs *CandidateSet) TokenAt(i int) Token { return cs.tokens[i] }

// Tokens returns the generated tokens. Callers must not mutate the
// result.
func (cs *CandidateSet) Tokens() []Token { return cs.tokens }

// Size returns the number of candidate tokens.
func (cs *CandidateSet) Size() int { return len(cs.tokens) }

// States returns the automaton state count (a memory proxy reported by
// ablation A1).
func (cs *CandidateSet) States() int { return cs.matcher.NumStates() }

// Config returns the effective configuration after defaulting.
func (cs *CandidateSet) Config() CandidateConfig { return cs.cfg }
