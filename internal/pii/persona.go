// Package pii models the study persona (§3.1) and builds the candidate
// set of leaked-PII tokens: every registered encoding/hash transform chain
// up to a configurable depth applied to every PII field, compiled into an
// Aho-Corasick automaton for single-pass request scanning.
package pii

import "strings"

// Type labels one kind of personally identifiable information. The
// values match the paper's Table 1c vocabulary.
type Type string

// PII types collected on sign-up forms (§3.1).
const (
	TypeEmail    Type = "email"
	TypeUsername Type = "username"
	TypeName     Type = "name"
	TypePhone    Type = "phone"
	TypeDOB      Type = "dob"
	TypeGender   Type = "gender"
	TypeJob      Type = "job"
	TypeAddress  Type = "address"
)

// Field is one PII value with its type.
type Field struct {
	Type  Type   `json:"type"`
	Value string `json:"value"`
}

// Persona is the synthetic account identity used to complete
// authentication flows, mirroring the paper's §3.1 account fields.
type Persona struct {
	Username  string
	FirstName string
	LastName  string
	Phone     string
	Email     string
	DOB       string // ISO date
	Gender    string
	JobTitle  string
	Street    string
	City      string
	Postal    string
	Country   string
}

// Default returns the fixed persona the study harness uses. All values
// are synthetic and deterministic.
func Default() Persona {
	return Persona{
		Username:  "mtanaka2105",
		FirstName: "Mariko",
		LastName:  "Tanaka",
		Phone:     "+81355550123",
		Email:     "mariko.tanaka2105@piistudy.example.com",
		DOB:       "1988-05-21",
		Gender:    "female",
		JobTitle:  "research assistant",
		Street:    "2-1-2 Hitotsubashi",
		City:      "Tokyo",
		Postal:    "101-8430",
		Country:   "JP",
	}
}

// FullName returns "First Last".
func (p Persona) FullName() string { return p.FirstName + " " + p.LastName }

// Fields enumerates every PII value the persona types into forms. Name
// appears in three shapes (full, first, last) because sites split or join
// name inputs; all are treated as the "name" type, as in the paper.
func (p Persona) Fields() []Field {
	return []Field{
		{TypeEmail, p.Email},
		{TypeUsername, p.Username},
		{TypeName, p.FullName()},
		{TypeName, p.FirstName},
		{TypeName, p.LastName},
		{TypePhone, p.Phone},
		{TypeDOB, p.DOB},
		{TypeGender, p.Gender},
		{TypeJob, p.JobTitle},
		{TypeAddress, p.Street + ", " + p.City + " " + p.Postal},
		{TypeAddress, p.Postal},
	}
}

// FieldValue returns the canonical value for a PII type (the first
// matching field).
func (p Persona) FieldValue(t Type) string {
	for _, f := range p.Fields() {
		if f.Type == t {
			return f.Value
		}
	}
	return ""
}

// EmailLocalDomain splits the email for sites that leak only a part.
func (p Persona) EmailLocalDomain() (local, domain string) {
	at := strings.IndexByte(p.Email, '@')
	if at < 0 {
		return p.Email, ""
	}
	return p.Email[:at], p.Email[at+1:]
}
