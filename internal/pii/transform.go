package pii

import (
	"fmt"
	"sort"
	"strings"

	"piileak/internal/encode"
	"piileak/internal/hashes"
)

// Transform is one byte-string transform usable in a candidate chain.
// Hash transforms emit the lower-case hexadecimal digest — the canonical
// wire form of hashed identifiers (§4.2.2) — so that chains like
// "SHA256 of MD5" hash the hex string, matching tracker practice.
type Transform struct {
	Name   string
	IsHash bool
	Apply  func([]byte) []byte
}

// transformRegistry holds the paper's full appendix list: every encoding
// from package encode and every hash from package hashes.
var transformRegistry = func() map[string]Transform {
	reg := make(map[string]Transform)
	for _, name := range encode.Names() {
		c, _ := encode.Lookup(name)
		reg[name] = Transform{Name: name, Apply: c.Encode}
	}
	for _, name := range hashes.Names() {
		f, _ := hashes.Lookup(name)
		fn := f // capture
		reg[name] = Transform{
			Name:   name,
			IsHash: true,
			Apply:  func(d []byte) []byte { return []byte(fn.HexSum(d)) },
		}
	}
	return reg
}()

// TransformNames returns all registered transform names, sorted.
func TransformNames() []string {
	names := make([]string, 0, len(transformRegistry))
	for n := range transformRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupTransform returns the named transform.
func LookupTransform(name string) (Transform, bool) {
	t, ok := transformRegistry[name]
	return t, ok
}

// ApplyChain applies a transform chain left to right: chain {"md5",
// "sha256"} computes sha256(hex(md5(value))) — the paper's "SHA256 of
// MD5". An empty chain returns the plaintext bytes.
func ApplyChain(value string, chain []string) ([]byte, error) {
	data := []byte(value)
	for _, name := range chain {
		t, ok := transformRegistry[name]
		if !ok {
			return nil, fmt.Errorf("pii: unknown transform %q in chain", name)
		}
		data = t.Apply(data)
	}
	return data, nil
}

// MustApplyChain is ApplyChain for statically known chains.
func MustApplyChain(value string, chain []string) []byte {
	out, err := ApplyChain(value, chain)
	if err != nil {
		panic(err)
	}
	return out
}

// ChainLabel renders a chain in the paper's Table 1b vocabulary:
// "plaintext", "sha256", "base64", "sha256ofmd5", ...
func ChainLabel(chain []string) string {
	if len(chain) == 0 {
		return "plaintext"
	}
	parts := make([]string, len(chain))
	for i := range chain {
		// Display order is outermost first: {"md5","sha256"} reads
		// "sha256ofmd5".
		parts[i] = chain[len(chain)-1-i]
	}
	return strings.Join(parts, "of")
}
