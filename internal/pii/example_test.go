package pii_test

import (
	"fmt"

	"piileak/internal/pii"
)

// ExampleBuildCandidates shows the §3.1 candidate-set workflow: compile
// a persona's tokens, then scan traffic for any of them.
func ExampleBuildCandidates() {
	persona := pii.Default()
	cs := pii.MustBuildCandidates(persona, pii.CandidateConfig{
		MaxDepth:   1,
		Transforms: []string{"md5", "sha256"},
	})

	hashed := pii.MustApplyChain(persona.Email, []string{"sha256"})
	blob := []byte("https://tracker.example/p?ud=" + string(hashed))
	for _, tok := range cs.FindIn(blob) {
		fmt.Printf("%s of %s\n", tok.Label(), tok.Field.Type)
	}
	// Output:
	// sha256 of email
}

// ExampleChainLabel renders transform chains in the paper's Table 1b
// vocabulary.
func ExampleChainLabel() {
	fmt.Println(pii.ChainLabel(nil))
	fmt.Println(pii.ChainLabel([]string{"md5", "sha256"}))
	// Output:
	// plaintext
	// sha256ofmd5
}
