package pii

import (
	"bytes"
	"crypto/md5"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"strings"
	"testing"
)

func TestDefaultPersonaFields(t *testing.T) {
	p := Default()
	fields := p.Fields()
	if len(fields) == 0 {
		t.Fatal("no fields")
	}
	types := map[Type]bool{}
	for _, f := range fields {
		if f.Value == "" {
			t.Errorf("field %s has empty value", f.Type)
		}
		types[f.Type] = true
	}
	for _, want := range []Type{TypeEmail, TypeUsername, TypeName, TypePhone, TypeDOB, TypeGender, TypeJob, TypeAddress} {
		if !types[want] {
			t.Errorf("missing PII type %s", want)
		}
	}
}

func TestEmailLocalDomain(t *testing.T) {
	p := Default()
	local, domain := p.EmailLocalDomain()
	if local+"@"+domain != p.Email {
		t.Errorf("split %q + %q does not reassemble %q", local, domain, p.Email)
	}
}

func TestFieldValue(t *testing.T) {
	p := Default()
	if got := p.FieldValue(TypeEmail); got != p.Email {
		t.Errorf("FieldValue(email) = %q", got)
	}
	if got := p.FieldValue(Type("nonexistent")); got != "" {
		t.Errorf("FieldValue(nonexistent) = %q", got)
	}
}

func TestApplyChainMatchesManualComposition(t *testing.T) {
	email := "foo@mydom.com"

	md5Hex := hex.EncodeToString(func() []byte { s := md5.Sum([]byte(email)); return s[:] }())
	sha := sha256.Sum256([]byte(md5Hex))
	want := hex.EncodeToString(sha[:])

	got := MustApplyChain(email, []string{"md5", "sha256"})
	if string(got) != want {
		t.Errorf("sha256ofmd5 = %s, want %s", got, want)
	}
}

func TestApplyChainPlaintextAndEncoding(t *testing.T) {
	got := MustApplyChain("foo", nil)
	if string(got) != "foo" {
		t.Errorf("empty chain = %q", got)
	}
	b64 := MustApplyChain("foo@mydom.com", []string{"base64"})
	if string(b64) != base64.StdEncoding.EncodeToString([]byte("foo@mydom.com")) {
		t.Errorf("base64 chain = %q", b64)
	}
}

func TestApplyChainUnknown(t *testing.T) {
	if _, err := ApplyChain("x", []string{"sha9000"}); err == nil {
		t.Error("unknown transform accepted")
	}
}

func TestChainLabel(t *testing.T) {
	cases := []struct {
		chain []string
		want  string
	}{
		{nil, "plaintext"},
		{[]string{"sha256"}, "sha256"},
		{[]string{"md5", "sha256"}, "sha256ofmd5"},
		{[]string{"base64"}, "base64"},
		{[]string{"md5", "base64", "sha1"}, "sha1ofbase64ofmd5"},
	}
	for _, c := range cases {
		if got := ChainLabel(c.chain); got != c.want {
			t.Errorf("ChainLabel(%v) = %q, want %q", c.chain, got, c.want)
		}
	}
}

func TestTransformRegistryComplete(t *testing.T) {
	names := TransformNames()
	// 10 codecs + 23 hashes.
	if len(names) != 33 {
		t.Errorf("TransformNames has %d entries, want 33: %v", len(names), names)
	}
	for _, mustHave := range []string{"base64", "bzip2", "rot13", "md5", "sha3_256", "whirlpool", "snefru128"} {
		if _, ok := LookupTransform(mustHave); !ok {
			t.Errorf("missing transform %q", mustHave)
		}
	}
}

func smallConfig(depth int) CandidateConfig {
	return CandidateConfig{
		MaxDepth:   depth,
		Transforms: []string{"md5", "sha256", "base64"},
	}
}

func TestBuildCandidatesFindsHashedEmail(t *testing.T) {
	p := Default()
	cs := MustBuildCandidates(p, smallConfig(2))

	sha := sha256.Sum256([]byte(p.Email))
	blob := []byte("https://tracker.net/p?ud=" + hex.EncodeToString(sha[:]) + "&v=1")
	tokens := cs.FindIn(blob)
	if len(tokens) != 1 {
		t.Fatalf("FindIn found %d tokens, want 1: %+v", len(tokens), tokens)
	}
	tok := tokens[0]
	if tok.Field.Type != TypeEmail {
		t.Errorf("token field = %s, want email", tok.Field.Type)
	}
	if tok.Label() != "sha256" {
		t.Errorf("token label = %s, want sha256", tok.Label())
	}
}

func TestBuildCandidatesFindsDepth2(t *testing.T) {
	p := Default()
	cs := MustBuildCandidates(p, smallConfig(2))
	tok := MustApplyChain(p.Email, []string{"md5", "sha256"})
	if got := cs.FindIn(tok); len(got) != 1 || got[0].Label() != "sha256ofmd5" {
		t.Fatalf("depth-2 token not attributed: %+v", got)
	}
}

func TestBuildCandidatesDepth1MissesDepth2(t *testing.T) {
	p := Default()
	cs := MustBuildCandidates(p, smallConfig(1))
	tok := MustApplyChain(p.Email, []string{"md5", "sha256"})
	if cs.Contains(tok) {
		t.Error("depth-1 candidate set matched a depth-2 token")
	}
}

func TestBuildCandidatesPlaintext(t *testing.T) {
	p := Default()
	cs := MustBuildCandidates(p, smallConfig(1))
	if got := cs.FindIn([]byte("email=" + p.Email)); len(got) == 0 || got[0].Label() != "plaintext" {
		t.Fatalf("plaintext email not found: %+v", got)
	}
}

func TestBuildCandidatesMinTokenLen(t *testing.T) {
	p := Default()
	cs := MustBuildCandidates(p, CandidateConfig{
		MaxDepth:    1,
		Transforms:  []string{"sha256"},
		MinTokenLen: 8,
	})
	// "female" (6 bytes) must be dropped; its sha256 (64 hex) kept.
	for _, tok := range cs.Tokens() {
		if len(tok.Value) < 8 {
			t.Errorf("token %q shorter than MinTokenLen", tok.Value)
		}
	}
	if cs.Contains([]byte("gender=female")) {
		t.Error("short plaintext token was not dropped")
	}
	sha := sha256.Sum256([]byte("female"))
	if !cs.Contains([]byte(hex.EncodeToString(sha[:]))) {
		t.Error("hashed short field missing")
	}
}

func TestBuildCandidatesDeduplicates(t *testing.T) {
	p := Default()
	cs := MustBuildCandidates(p, CandidateConfig{
		MaxDepth:   2,
		Transforms: []string{"rot13", "base64"},
	})
	seen := map[string]bool{}
	for _, tok := range cs.Tokens() {
		if seen[tok.Value] {
			t.Fatalf("duplicate token value %q", tok.Value)
		}
		seen[tok.Value] = true
	}
}

func TestBuildCandidatesUnknownTransform(t *testing.T) {
	if _, err := BuildCandidates(Default(), CandidateConfig{Transforms: []string{"nope"}}); err == nil {
		t.Error("unknown transform accepted")
	}
}

func TestCandidateSetGrowsWithDepth(t *testing.T) {
	p := Default()
	s1 := MustBuildCandidates(p, smallConfig(1)).Size()
	s2 := MustBuildCandidates(p, smallConfig(2)).Size()
	if s2 <= s1 {
		t.Errorf("depth 2 size %d not larger than depth 1 size %d", s2, s1)
	}
}

func TestCandidateSetNoFalsePositiveOnCleanTraffic(t *testing.T) {
	p := Default()
	cs := MustBuildCandidates(p, smallConfig(2))
	clean := []byte(strings.Repeat("utm_source=newsletter&id=123456&cb=0.7431985", 20))
	if got := cs.FindIn(clean); got != nil {
		t.Errorf("clean traffic matched tokens: %+v", got)
	}
}

func TestFindInBinaryToken(t *testing.T) {
	// Compressed (binary) tokens must match in raw payload bytes.
	p := Default()
	cs := MustBuildCandidates(p, CandidateConfig{
		MaxDepth:    1,
		Transforms:  []string{"gz"},
		MinTokenLen: 8,
	})
	blob := append([]byte("payload: "), MustApplyChain(p.Email, []string{"gz"})...)
	found := cs.FindIn(blob)
	ok := false
	for _, tok := range found {
		if tok.Label() == "gz" && tok.Field.Type == TypeEmail {
			ok = true
		}
	}
	if !ok {
		t.Errorf("gz token not found: %+v", found)
	}
}

func TestFullTransformSetDepth1(t *testing.T) {
	// Every registered transform should produce at least one email token.
	p := Default()
	cs := MustBuildCandidates(p, CandidateConfig{MaxDepth: 1})
	labels := map[string]bool{}
	for _, tok := range cs.Tokens() {
		if tok.Field.Type == TypeEmail {
			labels[tok.Label()] = true
		}
	}
	for _, name := range TransformNames() {
		// Transforms whose output is shorter than MinTokenLen (crc16:
		// 4 hex chars) are intentionally dropped, and base64url is
		// excluded from the default set (see CandidateConfig).
		if name == "base64url" {
			if labels[name] {
				t.Error("base64url token present in the default set")
			}
			continue
		}
		if out := MustApplyChain(p.Email, []string{name}); len(out) < 8 {
			continue
		}
		if !labels[name] {
			t.Errorf("no email token for transform %s", name)
		}
	}
	if !labels["plaintext"] {
		t.Error("no plaintext email token")
	}
}

func BenchmarkBuildCandidatesDepth2(b *testing.B) {
	p := Default()
	for i := 0; i < b.N; i++ {
		MustBuildCandidates(p, CandidateConfig{MaxDepth: 2})
	}
}

func BenchmarkFindIn(b *testing.B) {
	p := Default()
	cs := MustBuildCandidates(p, CandidateConfig{MaxDepth: 2})
	sha := sha256.Sum256([]byte(p.Email))
	blob := bytes.Repeat([]byte("k=v&cache=173&src=page&"), 20)
	blob = append(blob, []byte("ud="+hex.EncodeToString(sha[:]))...)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs.FindIn(blob) == nil {
			b.Fatal("token lost")
		}
	}
}
