package pii

import "testing"

func TestRedact(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"mariko.tanaka2105@piistudy.example.com", "m***@piistudy.example.com"},
		{"+81355550123", "+***"},
		{"Mariko", "M***"},
		{"@example.com", "***@example.com"},
		{"Ω-unicode", "Ω***"},
	}
	for _, c := range cases {
		if got := Redact(c.in); got != c.want {
			t.Errorf("Redact(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRedactPersonaFields: every persona field must come out changed —
// the redaction helper is what the piilog analyzer steers log sites
// toward, so it must never be the identity on real PII.
func TestRedactPersonaFields(t *testing.T) {
	for _, f := range Default().Fields() {
		if got := Redact(f.Value); got == f.Value {
			t.Errorf("Redact(%q) left the %s value unchanged", f.Value, f.Type)
		}
	}
}
