// Package httpmodel defines the HTTP traffic records the crawler collects
// (§3.2: requests with URL, headers and payload body; responses with URL
// and headers; cookies both set and sent) and the "leak surface"
// decomposition the detector scans (§4.1: referer header, request URI,
// cookie values, payload body).
//
// Surfaces play the role gopacket's decoding layers play for packets:
// a request decodes into a small set of typed byte regions, and the
// detector iterates them generically without knowing how each was
// extracted.
package httpmodel

import (
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// ResourceType classifies a request the way blocklist $type options and
// browser policies need (script, image, xhr, ...).
type ResourceType string

// Resource types the simulator distinguishes.
const (
	TypeScript      ResourceType = "script"
	TypeImage       ResourceType = "image"
	TypeStylesheet  ResourceType = "stylesheet"
	TypeXHR         ResourceType = "xmlhttprequest"
	TypeSubdocument ResourceType = "subdocument"
	TypePing        ResourceType = "ping"
	TypeDocument    ResourceType = "document"
	TypeOther       ResourceType = "other"
)

// Cookie is a name/value pair bound to a host.
type Cookie struct {
	Name   string `json:"name"`
	Value  string `json:"value"`
	Domain string `json:"domain"`
	Path   string `json:"path,omitempty"`
}

// Request is one captured HTTP request.
type Request struct {
	// Method is GET or POST.
	Method string `json:"method"`
	// URL is the absolute request URL.
	URL string `json:"url"`
	// Headers holds request headers; Referer is the one the detector
	// cares about.
	Headers map[string]string `json:"headers,omitempty"`
	// Cookies are the cookies sent with the request.
	Cookies []Cookie `json:"cookies,omitempty"`
	// Body is the request payload, if any.
	Body []byte `json:"body,omitempty"`
	// BodyType is the payload content type ("application/x-www-form-
	// urlencoded", "application/json", "text/plain").
	BodyType string `json:"body_type,omitempty"`
	// Initiator is the URL of the resource that caused this request
	// (the document for top-level fetches); blocklist evaluation walks
	// initiator chains (§7.2).
	Initiator string `json:"initiator,omitempty"`
	// Type is the resource type ($type options, browser policies).
	Type ResourceType `json:"type,omitempty"`
}

// Response is one captured HTTP response.
type Response struct {
	Status     int               `json:"status"`
	Headers    map[string]string `json:"headers,omitempty"`
	SetCookies []Cookie          `json:"set_cookies,omitempty"`
}

// Phase names the authentication-flow step a record was captured in
// (§3.2's browsing procedure).
type Phase string

// Crawl phases, in flow order.
const (
	PhaseHomepage Phase = "homepage"
	PhaseSignup   Phase = "signup"
	PhaseConfirm  Phase = "confirm"
	PhaseSignin   Phase = "signin"
	PhaseReload   Phase = "reload"
	PhaseSubpage  Phase = "subpage"
)

// Record pairs a request with its response and crawl context.
type Record struct {
	// Seq orders records within a crawl.
	Seq int `json:"seq"`
	// Page is the URL of the first-party page being visited.
	Page string `json:"page"`
	// Phase is the flow step.
	Phase    Phase    `json:"phase"`
	Request  Request  `json:"request"`
	Response Response `json:"response"`
}

// Host returns the request's host (no port), or "" when the URL does not
// parse.
func (r *Request) Host() string {
	u, err := url.Parse(r.URL)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// Referer returns the Referer header, if present.
func (r *Request) Referer() string {
	for k, v := range r.Headers {
		if strings.EqualFold(k, "Referer") {
			return v
		}
	}
	return ""
}

// QueryParams returns the decoded query parameters of the request URL in
// deterministic (sorted-key) order.
func (r *Request) QueryParams() []Param {
	u, err := url.Parse(r.URL)
	if err != nil {
		return nil
	}
	return sortedParams(u.Query())
}

// Param is one decoded key/value pair.
type Param struct {
	Key   string
	Value string
}

func sortedParams(vs url.Values) []Param {
	keys := make([]string, 0, len(vs))
	for k := range vs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Param
	for _, k := range keys {
		for _, v := range vs[k] {
			out = append(out, Param{Key: k, Value: v})
		}
	}
	return out
}

// BodyParams decodes the request payload into parameters: form bodies
// yield their fields; JSON bodies yield flattened string leaves with
// dotted-path keys; other types yield nothing.
func (r *Request) BodyParams() []Param {
	switch {
	case strings.HasPrefix(r.BodyType, "application/x-www-form-urlencoded"):
		vs, err := url.ParseQuery(string(r.Body))
		if err != nil {
			return nil
		}
		return sortedParams(vs)
	case strings.HasPrefix(r.BodyType, "application/json"):
		var v interface{}
		if err := json.Unmarshal(r.Body, &v); err != nil {
			return nil
		}
		var out []Param
		flattenJSON("", v, &out)
		sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
		return out
	default:
		return nil
	}
}

func flattenJSON(prefix string, v interface{}, out *[]Param) {
	switch t := v.(type) {
	case map[string]interface{}:
		for k, child := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenJSON(key, child, out)
		}
	case []interface{}:
		for i, child := range t {
			flattenJSON(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case string:
		*out = append(*out, Param{Key: prefix, Value: t})
	case float64:
		*out = append(*out, Param{Key: prefix, Value: trimFloat(t)})
	case bool:
		*out = append(*out, Param{Key: prefix, Value: fmt.Sprintf("%v", t)})
	}
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%v", f)
	return s
}
