package httpmodel

import "net/url"

// SurfaceKind names one of the paper's four leak channels (§4.1).
type SurfaceKind string

// The four leak channels of Figure 1.
const (
	SurfaceReferer SurfaceKind = "referer"
	SurfaceURI     SurfaceKind = "uri"
	SurfaceCookie  SurfaceKind = "cookie"
	SurfaceBody    SurfaceKind = "payload"
)

// AllSurfaceKinds lists the channels in the paper's Table 1a order.
var AllSurfaceKinds = []SurfaceKind{SurfaceReferer, SurfaceURI, SurfaceBody, SurfaceCookie}

// Surface is one scannable byte region of a request, labelled with the
// channel it leaks through and, where applicable, the parameter or
// cookie name carrying it. The detector matches candidate tokens inside
// Data; Name feeds the trackid-parameter mining of §5.2.
type Surface struct {
	Kind SurfaceKind
	// Name is the query-parameter, body-field or cookie name the data
	// came from; empty for whole-region surfaces (the full query
	// string, the raw body, the referer URL).
	Name string
	Data []byte
}

// Surfaces decomposes a request into its leak surfaces:
//
//   - referer: the Referer header, raw and percent-decoded;
//   - uri: the raw query string, its percent-decoded form, and each
//     decoded parameter value individually (named);
//   - cookie: each sent cookie value (named);
//   - payload: the raw body plus each decoded form/JSON field (named).
//
// Whole-region surfaces catch tokens that straddle parameter boundaries
// or hide in unparsed formats; named surfaces attribute a token to the
// identifier parameter that carries it.
func Surfaces(r *Request) []Surface {
	return SurfacesInto(r, nil)
}

// SurfacesInto is Surfaces appending into buf, so steady-state callers
// reuse one backing array across records instead of reallocating the
// slice per request. The request URL is parsed exactly once, feeding
// both the whole-region query/path surfaces and the named parameter
// surfaces. Surface order and content are identical to Surfaces.
func SurfacesInto(r *Request, buf []Surface) []Surface {
	out := buf

	if ref := r.Referer(); ref != "" {
		out = append(out, Surface{Kind: SurfaceReferer, Data: []byte(ref)})
		if dec, err := url.QueryUnescape(ref); err == nil && dec != ref {
			out = append(out, Surface{Kind: SurfaceReferer, Data: []byte(dec)})
		}
	}

	if u, err := url.Parse(r.URL); err == nil {
		if q := u.RawQuery; q != "" {
			out = append(out, Surface{Kind: SurfaceURI, Data: []byte(q)})
			if dec, err := url.QueryUnescape(q); err == nil && dec != q {
				out = append(out, Surface{Kind: SurfaceURI, Data: []byte(dec)})
			}
		}
		if p := u.Path; p != "" && p != "/" {
			out = append(out, Surface{Kind: SurfaceURI, Data: []byte(p)})
		}
		for _, p := range sortedParams(u.Query()) {
			out = append(out, Surface{Kind: SurfaceURI, Name: p.Key, Data: []byte(p.Value)})
		}
	}

	for _, c := range r.Cookies {
		out = append(out, Surface{Kind: SurfaceCookie, Name: c.Name, Data: []byte(c.Value)})
		if dec, err := url.QueryUnescape(c.Value); err == nil && dec != c.Value {
			out = append(out, Surface{Kind: SurfaceCookie, Name: c.Name, Data: []byte(dec)})
		}
	}

	if len(r.Body) > 0 {
		out = append(out, Surface{Kind: SurfaceBody, Data: r.Body})
		for _, p := range r.BodyParams() {
			out = append(out, Surface{Kind: SurfaceBody, Name: p.Key, Data: []byte(p.Value)})
		}
	}
	return out
}
