package httpmodel

import (
	"bytes"
	"encoding/json"
	"net/url"
	"reflect"
	"testing"
)

func TestHost(t *testing.T) {
	r := Request{URL: "https://Pixel.Tracker.NET:443/p?x=1"}
	if got := r.Host(); got != "pixel.tracker.net" {
		t.Errorf("Host = %q", got)
	}
	bad := Request{URL: "::not a url"}
	if got := bad.Host(); got != "" {
		t.Errorf("Host(bad) = %q", got)
	}
}

func TestRefererCaseInsensitive(t *testing.T) {
	r := Request{Headers: map[string]string{"referer": "https://site.com/signup"}}
	if got := r.Referer(); got != "https://site.com/signup" {
		t.Errorf("Referer = %q", got)
	}
}

func TestQueryParamsSortedAndDecoded(t *testing.T) {
	r := Request{URL: "https://t.net/p?b=2&a=foo%40mydom.com&b=1"}
	got := r.QueryParams()
	want := []Param{{"a", "foo@mydom.com"}, {"b", "2"}, {"b", "1"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QueryParams = %+v, want %+v", got, want)
	}
}

func TestBodyParamsForm(t *testing.T) {
	r := Request{
		Body:     []byte("email=foo%40mydom.com&name=Mariko+Tanaka"),
		BodyType: "application/x-www-form-urlencoded",
	}
	got := r.BodyParams()
	want := []Param{{"email", "foo@mydom.com"}, {"name", "Mariko Tanaka"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BodyParams = %+v, want %+v", got, want)
	}
}

func TestBodyParamsJSONNested(t *testing.T) {
	r := Request{
		Body:     []byte(`{"user":{"email":"foo@mydom.com","tags":["a","b"],"active":true,"n":3}}`),
		BodyType: "application/json",
	}
	got := r.BodyParams()
	byKey := map[string]string{}
	for _, p := range got {
		byKey[p.Key] = p.Value
	}
	if byKey["user.email"] != "foo@mydom.com" {
		t.Errorf("user.email = %q", byKey["user.email"])
	}
	if byKey["user.tags[0]"] != "a" || byKey["user.tags[1]"] != "b" {
		t.Errorf("tags = %v", byKey)
	}
	if byKey["user.active"] != "true" || byKey["user.n"] != "3" {
		t.Errorf("scalars = %v", byKey)
	}
}

func TestBodyParamsUnknownType(t *testing.T) {
	r := Request{Body: []byte("opaque"), BodyType: "application/octet-stream"}
	if got := r.BodyParams(); got != nil {
		t.Errorf("BodyParams = %+v, want nil", got)
	}
}

func TestBodyParamsMalformed(t *testing.T) {
	r := Request{Body: []byte("{broken"), BodyType: "application/json"}
	if got := r.BodyParams(); got != nil {
		t.Errorf("malformed JSON BodyParams = %+v", got)
	}
	r2 := Request{Body: []byte("%zz=1;;;=%"), BodyType: "application/x-www-form-urlencoded"}
	if got := r2.BodyParams(); got != nil {
		t.Errorf("malformed form BodyParams = %+v", got)
	}
}

func surfaceKinds(ss []Surface) map[SurfaceKind]int {
	got := map[SurfaceKind]int{}
	for _, s := range ss {
		got[s.Kind]++
	}
	return got
}

func TestSurfacesFourChannels(t *testing.T) {
	r := Request{
		Method: "POST",
		URL:    "https://tracker.net/collect?ud=abc123hash&v=2",
		Headers: map[string]string{
			"Referer": "https://site.com/signup?email=foo%40mydom.com",
		},
		Cookies:  []Cookie{{Name: "uid", Value: "foo@mydom.com", Domain: "tracker.net"}},
		Body:     []byte("em=foo%40mydom.com"),
		BodyType: "application/x-www-form-urlencoded",
	}
	ss := Surfaces(&r)
	kinds := surfaceKinds(ss)
	for _, k := range AllSurfaceKinds {
		if kinds[k] == 0 {
			t.Errorf("no %s surface extracted", k)
		}
	}

	// The decoded referer must expose the unescaped email.
	found := false
	for _, s := range ss {
		if s.Kind == SurfaceReferer && bytes.Contains(s.Data, []byte("foo@mydom.com")) {
			found = true
		}
	}
	if !found {
		t.Error("decoded referer surface missing the unescaped email")
	}

	// Named URI surface for parameter "ud".
	found = false
	for _, s := range ss {
		if s.Kind == SurfaceURI && s.Name == "ud" && string(s.Data) == "abc123hash" {
			found = true
		}
	}
	if !found {
		t.Error("named uri surface for ud missing")
	}
}

func TestSurfacesMinimalRequest(t *testing.T) {
	r := Request{Method: "GET", URL: "https://cdn.site.com/app.js"}
	ss := Surfaces(&r)
	kinds := surfaceKinds(ss)
	if kinds[SurfaceReferer] != 0 || kinds[SurfaceCookie] != 0 || kinds[SurfaceBody] != 0 {
		t.Errorf("unexpected surfaces for bare GET: %v", kinds)
	}
	// Path-only URI surface.
	if kinds[SurfaceURI] != 1 {
		t.Errorf("URI surfaces = %d, want 1 (path)", kinds[SurfaceURI])
	}
}

func TestSurfacesPercentEncodedQueryDecoded(t *testing.T) {
	raw := "em=" + url.QueryEscape("foo@mydom.com")
	r := Request{Method: "GET", URL: "https://t.net/p?" + raw}
	ss := Surfaces(&r)
	found := false
	for _, s := range ss {
		if s.Kind == SurfaceURI && bytes.Contains(s.Data, []byte("foo@mydom.com")) {
			found = true
		}
	}
	if !found {
		t.Error("percent-encoded email not exposed on any URI surface")
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	rec := Record{
		Seq:   7,
		Page:  "https://shop.example.com/",
		Phase: PhaseSignup,
		Request: Request{
			Method:   "POST",
			URL:      "https://shop.example.com/signup",
			Headers:  map[string]string{"Referer": "https://shop.example.com/"},
			Cookies:  []Cookie{{Name: "session", Value: "s1", Domain: "shop.example.com"}},
			Body:     []byte("email=x"),
			BodyType: "application/x-www-form-urlencoded",
		},
		Response: Response{
			Status:     302,
			Headers:    map[string]string{"Location": "/welcome"},
			SetCookies: []Cookie{{Name: "auth", Value: "tok", Domain: "shop.example.com"}},
		},
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", rec, back)
	}
}
