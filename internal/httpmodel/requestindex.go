package httpmodel

// IndexedRequest is the reduced form of a captured request that the
// §7.2 blocklist evaluation needs after full captures are released:
// the URL (rule matching + initiator-chain linking), the initiator URL,
// the resource type ($type filter options) and the sequence number
// (locating the leaky request). Everything else — headers, cookies,
// bodies — is dropped, which is what bounds the streaming pipeline's
// retained state to a few dozen bytes per request instead of the whole
// capture.
type IndexedRequest struct {
	URL       string       `json:"url"`
	Initiator string       `json:"initiator,omitempty"`
	Type      ResourceType `json:"type,omitempty"`
	Seq       int          `json:"seq"`
}

// RequestIndex maps site domains to their reduced request lists. It is
// the only per-record state a streamed study keeps once detection has
// run: the blocklist evaluation walks initiator chains through it
// exactly as it would through the full records.
type RequestIndex struct {
	sites map[string][]IndexedRequest
}

// NewRequestIndex returns an empty index.
func NewRequestIndex() *RequestIndex {
	return &RequestIndex{sites: map[string][]IndexedRequest{}}
}

// ReduceRecords strips captured records down to their indexed form. The
// streaming pipeline's detect stage calls this before releasing a
// site's captures, so the reduction can happen concurrently outside the
// index's owner goroutine.
func ReduceRecords(records []Record) []IndexedRequest {
	rs := make([]IndexedRequest, len(records))
	for i := range records {
		r := &records[i]
		rs[i] = IndexedRequest{
			URL:       r.Request.URL,
			Initiator: r.Request.Initiator,
			Type:      r.Request.Type,
			Seq:       r.Seq,
		}
	}
	return rs
}

// AddSite reduces one site's captured records into the index. Calling
// it again for the same domain replaces the entry (matching the
// last-crawl-wins semantics of rebuilding a site-records map).
func (ix *RequestIndex) AddSite(domain string, records []Record) {
	ix.sites[domain] = ReduceRecords(records)
}

// AddReduced stores an already-reduced request list for a domain.
func (ix *RequestIndex) AddReduced(domain string, rs []IndexedRequest) {
	ix.sites[domain] = rs
}

// Sites reports how many site entries the index holds.
func (ix *RequestIndex) Sites() int { return len(ix.sites) }

// Has reports whether the index holds an entry for the domain.
func (ix *RequestIndex) Has(domain string) bool {
	_, ok := ix.sites[domain]
	return ok
}

// Chain walks Initiator links through a site's indexed requests,
// returning the requests that led to the one with the given sequence
// number. The walk replicates the full-capture initiator chain exactly:
// URL lookups resolve to the last record with that URL, the start is
// the last record with the given Seq, and the walk stops after depth 8,
// at a missing link, or at a self-loop.
func (ix *RequestIndex) Chain(domain string, seq int) []Request {
	rs := ix.sites[domain]
	byURL := map[string]*IndexedRequest{}
	var start *IndexedRequest
	for i := range rs {
		r := &rs[i]
		byURL[r.URL] = r
		if r.Seq == seq {
			start = r
		}
	}
	if start == nil {
		return nil
	}
	var chain []Request
	cur := start
	for depth := 0; depth < 8; depth++ {
		init := cur.Initiator
		if init == "" {
			break
		}
		next, ok := byURL[init]
		if !ok || next == cur {
			break
		}
		chain = append(chain, Request{URL: next.URL, Initiator: next.Initiator, Type: next.Type})
		cur = next
	}
	return chain
}
