// Package policy implements §6's transparency audit: a privacy-policy
// corpus generator (each site publishes a policy text matching its
// disclosure class) and a rule-based classifier that recovers the
// Table 3 disclosure categories from the text alone.
//
// In the real study a human read 130 policies; the substitution keeps
// the taxonomy and audit pipeline identical while generating the corpus
// from per-class linguistic templates with per-site variation.
package policy

import (
	"sort"
	"strings"

	"piileak/internal/site"
)

// specificReceivers derives a plausible receiver list from the site's
// tags for the "specific" disclosure class.
func specificReceivers(s *site.Site) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range s.Tags {
		if len(t.Actions) == 0 || seen[t.Receiver] {
			continue
		}
		seen[t.Receiver] = true
		out = append(out, t.Receiver)
	}
	if len(out) == 0 {
		out = []string{"our analytics partner"}
	}
	sort.Strings(out)
	return out
}

// Classify recovers the disclosure class from policy text using the
// §6 reading rules:
//
//  1. an explicit no-sharing/no-disclosure statement → "explicitly not
//     shared";
//  2. an enumerated third-party list → "specific";
//  3. any sharing/disclosure language naming third parties → "not
//     specific";
//  4. otherwise → "no description of PII sharing".
func Classify(text string) site.PolicyClass {
	t := strings.ToLower(text)
	sharing := strings.Contains(t, "share") || strings.Contains(t, "disclos") || strings.Contains(t, "sold")
	negated := strings.Contains(t, "do not share") || strings.Contains(t, "never share") ||
		strings.Contains(t, "not disclose") || strings.Contains(t, "never shared") ||
		strings.Contains(t, "never sold")
	switch {
	case negated:
		return site.PolicyExplicitlyNot
	case strings.Contains(t, "following third parties:"):
		return site.PolicySpecific
	case sharing && strings.Contains(t, "third"):
		return site.PolicyNotSpecific
	default:
		return site.PolicyNoDescription
	}
}

// Table3 is the §6 disclosure census.
type Table3 struct {
	NotSpecific   int
	Specific      int
	NoDescription int
	ExplicitlyNot int
	Total         int
}

// Row mirrors one printed Table 3 line.
type Row struct {
	Label string
	Count int
	Pct   float64
}

// Rows renders the census in the paper's row order.
func (t Table3) Rows() []Row {
	pct := func(n int) float64 {
		if t.Total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(t.Total)
	}
	return []Row{
		{"Disclose PII sharing (not specific)", t.NotSpecific, pct(t.NotSpecific)},
		{"Disclose PII sharing (specific)", t.Specific, pct(t.Specific)},
		{"No description of PII sharing", t.NoDescription, pct(t.NoDescription)},
		{"Explicitly disclose PII NOT shared", t.ExplicitlyNot, pct(t.ExplicitlyNot)},
	}
}

// Audit generates and classifies the policy of every given site, i.e.
// runs §6 end to end over the sender population.
func Audit(sites []*site.Site) Table3 {
	var t Table3
	for _, s := range sites {
		switch Classify(Generate(s)) {
		case site.PolicyNotSpecific:
			t.NotSpecific++
		case site.PolicySpecific:
			t.Specific++
		case site.PolicyNoDescription:
			t.NoDescription++
		case site.PolicyExplicitlyNot:
			t.ExplicitlyNot++
		}
		t.Total++
	}
	return t
}
