package policy

import (
	"fmt"
	"strings"

	"piileak/internal/site"
)

// The corpus generator uses several phrasings per disclosure class, so
// the classifier is exercised on linguistic variation rather than on a
// single fixed sentence per class. Variant selection is deterministic
// per site (hash of the domain), keeping the audit reproducible.

var collectionIntros = []string{
	"We collect personal information you provide when creating an account, " +
		"such as your name, e-mail address and contact details, " +
		"together with order history and device information.",
	"When you register, we collect personal information including your " +
		"e-mail address, name and, where provided, your phone number.",
	"Personal information — for example your name and e-mail address — is " +
		"collected when you sign up, place an order or contact support.",
}

var notSpecificClauses = []string{
	"We may share your personal information with third-party partners, " +
		"advertising networks and service providers that support our business, " +
		"and with other parties as permitted by law.",
	"Your personal information may be disclosed to selected third parties, " +
		"including analytics and marketing providers, to improve our services.",
	"We sometimes share information about you with third-party vendors who " +
		"perform services on our behalf.",
}

var noDescriptionClauses = []string{
	"We use cookies to keep you signed in and to remember your cart.",
	"Our site uses cookies and similar technologies to provide core shop " +
		"functionality and measure site performance.",
	"Session cookies keep your basket between visits; you can clear them " +
		"in your browser settings.",
}

var explicitlyNotClauses = []string{
	"We do not share your personal information with third parties for " +
		"their marketing purposes.",
	"Your personal data is never shared with or sold to third parties.",
	"We will not disclose your personal information to any third party, " +
		"except where the law requires it.",
}

// variant picks a deterministic template index for a site.
func variant(domain string, n int) int {
	var sum int
	for i := 0; i < len(domain); i++ {
		sum = sum*31 + int(domain[i])
	}
	if sum < 0 {
		sum = -sum
	}
	return sum % n
}

// Generate renders the privacy-policy text a site publishes. The
// phrasing varies per site; the disclosure semantics follow the site's
// class.
func Generate(s *site.Site) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — Privacy Policy\n\n", s.Domain)
	b.WriteString("1. Information we collect.\n")
	b.WriteString(collectionIntros[variant(s.Domain, len(collectionIntros))])
	b.WriteString("\n\n")

	switch s.Policy {
	case site.PolicyNotSpecific:
		b.WriteString("2. How we use and disclose information.\n")
		b.WriteString(notSpecificClauses[variant(s.Domain, len(notSpecificClauses))])
		b.WriteString("\n\n")
	case site.PolicySpecific:
		b.WriteString("2. Third parties receiving your data.\n")
		b.WriteString("We share personal information with the following third parties: ")
		b.WriteString(strings.Join(specificReceivers(s), ", "))
		b.WriteString(". Each processes your data under its own privacy policy.\n\n")
	case site.PolicyNoDescription:
		b.WriteString("2. Cookies.\n")
		b.WriteString(noDescriptionClauses[variant(s.Domain, len(noDescriptionClauses))])
		b.WriteString("\n\n")
	case site.PolicyExplicitlyNot:
		b.WriteString("2. Your privacy.\n")
		b.WriteString(explicitlyNotClauses[variant(s.Domain, len(explicitlyNotClauses))])
		b.WriteString("\n\n")
	}

	b.WriteString("3. Contact.\n")
	fmt.Fprintf(&b, "Questions about this policy: privacy@%s.\n", s.Domain)
	return b.String()
}
