package policy

import (
	"strings"
	"testing"

	"piileak/internal/site"
	"piileak/internal/webgen"
)

func siteWithClass(c site.PolicyClass) *site.Site {
	return &site.Site{Domain: "shop.example", Policy: c}
}

func TestGenerateClassifyRoundTrip(t *testing.T) {
	for _, c := range []site.PolicyClass{
		site.PolicyNotSpecific, site.PolicySpecific,
		site.PolicyNoDescription, site.PolicyExplicitlyNot,
	} {
		text := Generate(siteWithClass(c))
		if got := Classify(text); got != c {
			t.Errorf("class %q round-tripped as %q\n%s", c, got, text)
		}
	}
}

func TestGenerateMentionsCollection(t *testing.T) {
	// §6: all policies disclose collection, whatever the sharing class.
	for _, c := range []site.PolicyClass{
		site.PolicyNotSpecific, site.PolicySpecific,
		site.PolicyNoDescription, site.PolicyExplicitlyNot,
	} {
		text := Generate(siteWithClass(c))
		if !strings.Contains(text, "collect personal information") {
			t.Errorf("class %q policy does not disclose collection", c)
		}
	}
}

func TestSpecificListsReceivers(t *testing.T) {
	s := siteWithClass(site.PolicySpecific)
	s.Tags = []site.Tag{
		{Receiver: "facebook.com", Actions: []site.LeakAction{{}}},
		{Receiver: "criteo.com", Actions: []site.LeakAction{{}}},
		{Receiver: "benign-cdn.net"}, // no actions: not disclosed
	}
	text := Generate(s)
	if !strings.Contains(text, "criteo.com") || !strings.Contains(text, "facebook.com") {
		t.Errorf("specific policy lacks receivers:\n%s", text)
	}
	if strings.Contains(text, "benign-cdn.net") {
		t.Error("specific policy lists a non-receiving tag")
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	cases := map[string]site.PolicyClass{
		"We DO NOT SHARE your data with anyone.":             site.PolicyExplicitlyNot,
		"we share data with the following third parties: X.": site.PolicySpecific,
		"We may share information with third-party vendors.": site.PolicyNotSpecific,
		"We love cookies. That is all.":                      site.PolicyNoDescription,
		"":                                                   site.PolicyNoDescription,
	}
	for text, want := range cases {
		if got := Classify(text); got != want {
			t.Errorf("Classify(%q) = %q, want %q", text, got, want)
		}
	}
}

func TestAuditRecoversEcosystemClasses(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(41))
	tbl := Audit(eco.SenderSites)
	cfg := eco.Config
	if tbl.Total != cfg.Senders {
		t.Errorf("total = %d, want %d", tbl.Total, cfg.Senders)
	}
	if tbl.NotSpecific != cfg.PolicyNotSpecific {
		t.Errorf("not-specific = %d, want %d", tbl.NotSpecific, cfg.PolicyNotSpecific)
	}
	if tbl.Specific != cfg.PolicySpecific {
		t.Errorf("specific = %d, want %d", tbl.Specific, cfg.PolicySpecific)
	}
	if tbl.NoDescription != cfg.PolicyNoDescription {
		t.Errorf("no-description = %d, want %d", tbl.NoDescription, cfg.PolicyNoDescription)
	}
	if tbl.ExplicitlyNot != cfg.PolicyExplicitNot {
		t.Errorf("explicitly-not = %d, want %d", tbl.ExplicitlyNot, cfg.PolicyExplicitNot)
	}
}

func TestTable3Rows(t *testing.T) {
	tbl := Table3{NotSpecific: 102, Specific: 9, NoDescription: 15, ExplicitlyNot: 4, Total: 130}
	rows := tbl.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Count != 102 || rows[0].Pct < 78.4 || rows[0].Pct > 78.6 {
		t.Errorf("row 0 = %+v", rows[0])
	}
}
