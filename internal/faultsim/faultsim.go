// Package faultsim injects deterministic transport faults into the
// synthetic web. The live crawl behind §3.2's funnel fought unreachable
// hosts, timeouts and half-broken sign-up flows; the synthetic substrate
// is perfectly reliable, so this package supplies the missing failure
// modes — transient DNS errors, connection timeouts, HTTP 5xx, slow
// responses, truncated bodies — without giving up reproducibility.
//
// Every decision is a pure function of (seed, host, attempt): the
// injector keeps no mutable state, so serial and parallel crawls see
// identical faults, retries are replayable, and a resumed crawl picks
// up exactly where it stopped. Hosts fall into four behaviours:
//
//   - healthy: never fault (most hosts);
//   - flaky: the first 1..MaxFailures fetch attempts fail, then the
//     host recovers (retry-with-backoff wins);
//   - permanent: every attempt fails (the crawl's circuit breaker
//     exhausts and the site is funnelled out as unreachable);
//   - degrading: the host serves its first fetches, then dies
//     mid-flow (the crawl degrades to a partial record).
package faultsim

import (
	"fmt"
	"time"
)

// Kind is a fault class.
type Kind string

// Fault kinds, mirroring what a real measurement crawl hits.
const (
	// KindDNS is a transient name-resolution failure (SERVFAIL).
	KindDNS Kind = "dns_failure"
	// KindTimeout is a connection that never completes within the
	// attempt budget.
	KindTimeout Kind = "conn_timeout"
	// KindHTTP5xx is a server error response.
	KindHTTP5xx Kind = "http_5xx"
	// KindSlow is a response delayed by Fault.Delay; it only fails the
	// fetch when the delay exceeds the caller's attempt budget.
	KindSlow Kind = "slow_response"
	// KindTruncated is a response body cut off mid-transfer.
	KindTruncated Kind = "truncated_body"
	// KindPanic makes the transport panic instead of returning an
	// error — the poison-site case the crash-only runtime quarantines.
	// It is deliberately absent from AllKinds: the seeded assignment
	// must stay stable, so panics are only injected when a Config pins
	// them explicitly (Kinds or Hosts).
	KindPanic Kind = "panic"
)

// AllKinds lists every fault kind the seeded assignment draws from, in
// draw order. KindPanic is excluded; see its doc.
func AllKinds() []Kind {
	return []Kind{KindDNS, KindTimeout, KindHTTP5xx, KindSlow, KindTruncated}
}

// Fault describes one injected failure. It implements error so it can
// travel through retry machinery unchanged.
type Fault struct {
	Kind    Kind
	Host    string
	Attempt int
	// Status is the response code for KindHTTP5xx faults.
	Status int
	// Delay is the injected latency for KindSlow faults.
	Delay time.Duration
}

// Error renders the fault as a transport error message.
func (f *Fault) Error() string {
	switch f.Kind {
	case KindHTTP5xx:
		return fmt.Sprintf("faultsim: %s: attempt %d: HTTP %d", f.Host, f.Attempt, f.Status)
	case KindSlow:
		return fmt.Sprintf("faultsim: %s: attempt %d: slow response (%v)", f.Host, f.Attempt, f.Delay)
	default:
		return fmt.Sprintf("faultsim: %s: attempt %d: %s", f.Host, f.Attempt, f.Kind)
	}
}

// Transient reports whether retrying could plausibly help. A live
// crawler cannot tell a permanently dead host from a flaky one, so every
// injected fault presents as transient; circuit breakers are what stop
// the retrying.
func (f *Fault) Transient() bool { return true }

// Profile is one host's fault behaviour.
type Profile struct {
	// Kind is the failure mode this host exhibits.
	Kind Kind
	// FailFirst > 0 fails fetch attempts 1..FailFirst, after which the
	// host recovers (flaky-then-healthy).
	FailFirst int
	// FailAfter > 0 serves attempts 1..FailAfter and fails every later
	// one (healthy-then-dead — the mid-flow degradation case).
	FailAfter int
	// Permanent fails every attempt regardless of the windows above.
	Permanent bool
	// Status is the HTTP status for KindHTTP5xx (default 503).
	Status int
	// Delay is the latency for KindSlow (default 15s, i.e. over any
	// sane attempt budget).
	Delay time.Duration
}

// faulty reports whether the profile fails the attempt-th fetch.
func (p *Profile) faulty(attempt int) bool {
	if p.Permanent {
		return true
	}
	if p.FailFirst > 0 && attempt <= p.FailFirst {
		return true
	}
	if p.FailAfter > 0 && attempt > p.FailAfter {
		return true
	}
	return false
}

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every fault decision; same seed, same faults.
	Seed uint64
	// Rate is the fraction of hosts that are faulty at all (0..1).
	Rate float64
	// PermanentFrac is the fraction of faulty hosts that never recover
	// (default 0.1).
	PermanentFrac float64
	// DegradeFrac is the fraction of faulty hosts that die mid-flow
	// after serving their first fetches (default 0.1). The remainder
	// are flaky-then-healthy.
	DegradeFrac float64
	// MaxFailures bounds how many leading attempts a flaky host fails
	// (default 3 — one under the default retry budget, so retries
	// recover every flaky host).
	MaxFailures int
	// MinHealthy/MaxHealthy bound how many fetches a degrading host
	// serves before dying (defaults 2 and 8).
	MinHealthy int
	MaxHealthy int
	// Kinds restricts the failure modes drawn for faulty hosts
	// (default: all of AllKinds).
	Kinds []Kind
	// Hosts pins explicit per-host profiles, overriding the seeded
	// assignment. A zero-valued Profile pins the host healthy.
	Hosts map[string]Profile
}

// withDefaults fills unset tuning fields.
func (c Config) withDefaults() Config {
	if c.PermanentFrac == 0 {
		c.PermanentFrac = 0.1
	}
	if c.DegradeFrac == 0 {
		c.DegradeFrac = 0.1
	}
	if c.MaxFailures == 0 {
		c.MaxFailures = 3
	}
	if c.MinHealthy == 0 {
		c.MinHealthy = 2
	}
	if c.MaxHealthy == 0 {
		c.MaxHealthy = 8
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	return c
}

// Injector decides, deterministically, whether a fetch faults. It is
// stateless after construction and safe for concurrent use.
type Injector struct {
	cfg Config
}

// New builds an injector; nil Config semantics live on Config itself
// (zero value = no faults).
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg.withDefaults()}
}

// Seed returns the injector's fault seed.
func (in *Injector) Seed() uint64 { return in.cfg.Seed }

// mix64 is splitmix64's finalizer — a cheap, well-distributed hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hostHash derives the per-(seed, host, salt) decision word.
func (in *Injector) hostHash(host string, salt uint64) uint64 {
	h := in.cfg.Seed ^ 0xfa017517_deadbeef ^ salt
	for i := 0; i < len(host); i++ {
		h = mix64(h ^ uint64(host[i]))
	}
	return mix64(h)
}

// unit maps a hash word onto [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// ProfileFor returns host's fault profile, or nil when the host is
// healthy. The result depends only on (seed, host).
func (in *Injector) ProfileFor(host string) *Profile {
	if p, ok := in.cfg.Hosts[host]; ok {
		if p.Kind == "" && !p.Permanent && p.FailFirst == 0 && p.FailAfter == 0 {
			return nil // explicitly pinned healthy
		}
		return in.finish(&p, host)
	}
	if in.cfg.Rate <= 0 {
		return nil
	}
	if unit(in.hostHash(host, 1)) >= in.cfg.Rate {
		return nil
	}
	p := &Profile{}
	class := unit(in.hostHash(host, 2))
	switch {
	case class < in.cfg.PermanentFrac:
		p.Permanent = true
	case class < in.cfg.PermanentFrac+in.cfg.DegradeFrac:
		span := in.cfg.MaxHealthy - in.cfg.MinHealthy + 1
		p.FailAfter = in.cfg.MinHealthy + int(in.hostHash(host, 3)%uint64(span))
	default:
		p.FailFirst = 1 + int(in.hostHash(host, 4)%uint64(in.cfg.MaxFailures))
	}
	p.Kind = in.cfg.Kinds[in.hostHash(host, 5)%uint64(len(in.cfg.Kinds))]
	return in.finish(p, host)
}

// finish fills kind-specific defaults.
func (in *Injector) finish(p *Profile, host string) *Profile {
	if p.Kind == "" {
		p.Kind = in.cfg.Kinds[in.hostHash(host, 5)%uint64(len(in.cfg.Kinds))]
	}
	if p.Kind == KindHTTP5xx && p.Status == 0 {
		p.Status = []int{500, 502, 503, 504}[in.hostHash(host, 6)%4]
	}
	if p.Kind == KindSlow && p.Delay == 0 {
		p.Delay = 15 * time.Second
	}
	return p
}

// Check returns the fault for the attempt-th fetch of host (1-based),
// or nil when the fetch succeeds. DNS-kind hosts are the resolver's
// business — Check skips them so the DNSHook path owns their attempt
// accounting; transport callers pair Check with a hooked resolver.
func (in *Injector) Check(host string, attempt int) *Fault {
	p := in.ProfileFor(host)
	if p == nil || p.Kind == KindDNS || !p.faulty(attempt) {
		return nil
	}
	return &Fault{Kind: p.Kind, Host: host, Attempt: attempt, Status: p.Status, Delay: p.Delay}
}

// CheckDNS returns the DNS fault for the attempt-th resolution of host,
// or nil. Only KindDNS profiles resolve-fail; other kinds connect fine
// and fail later in the exchange.
func (in *Injector) CheckDNS(host string, attempt int) *Fault {
	p := in.ProfileFor(host)
	if p == nil || p.Kind != KindDNS || !p.faulty(attempt) {
		return nil
	}
	return &Fault{Kind: KindDNS, Host: host, Attempt: attempt}
}

// DNSHook adapts CheckDNS to the dnssim.Resolver hook signature without
// importing dnssim (the dependency points the other way).
func (in *Injector) DNSHook() func(host string, attempt int) error {
	return func(host string, attempt int) error {
		if f := in.CheckDNS(host, attempt); f != nil {
			return f
		}
		return nil
	}
}
