package faultsim

import (
	"testing"
	"time"
)

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 7})
	for _, host := range []string{"www.example.com", "cdn.tracker.net", "a.b.c"} {
		if p := in.ProfileFor(host); p != nil {
			t.Errorf("%s: profile %+v from zero-rate config", host, p)
		}
		if f := in.Check(host, 1); f != nil {
			t.Errorf("%s: fault %v from zero-rate config", host, f)
		}
	}
}

func TestProfilesAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.5}
	a, b := New(cfg), New(cfg)
	hosts := []string{"one.com", "two.com", "three.com", "four.com", "five.com", "six.com"}
	faulty := 0
	for _, h := range hosts {
		pa, pb := a.ProfileFor(h), b.ProfileFor(h)
		if (pa == nil) != (pb == nil) {
			t.Fatalf("%s: determinism broken: %v vs %v", h, pa, pb)
		}
		if pa == nil {
			continue
		}
		faulty++
		if *pa != *pb {
			t.Errorf("%s: profiles differ: %+v vs %+v", h, pa, pb)
		}
	}
	if faulty == 0 {
		t.Error("rate 0.5 made no host faulty")
	}
	// A different seed reshuffles the assignment.
	c := New(Config{Seed: 43, Rate: 0.5})
	same := true
	for _, h := range hosts {
		if (a.ProfileFor(h) == nil) != (c.ProfileFor(h) == nil) {
			same = false
		}
	}
	if same {
		t.Error("seed change did not alter any host's fate (suspicious)")
	}
}

func TestRateBounds(t *testing.T) {
	hosts := make([]string, 200)
	for i := range hosts {
		hosts[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + "host.example"
	}
	all := New(Config{Seed: 1, Rate: 1})
	none := New(Config{Seed: 1, Rate: 0})
	for _, h := range hosts {
		if all.ProfileFor(h) == nil {
			t.Fatalf("rate 1: %s healthy", h)
		}
		if none.ProfileFor(h) != nil {
			t.Fatalf("rate 0: %s faulty", h)
		}
	}
}

func TestFlakyWindowThenRecovery(t *testing.T) {
	in := New(Config{Seed: 9, Hosts: map[string]Profile{
		"flaky.com": {Kind: KindHTTP5xx, FailFirst: 2},
	}})
	if f := in.Check("flaky.com", 1); f == nil {
		t.Fatal("attempt 1 should fault")
	} else if f.Status < 500 || f.Status > 599 {
		t.Errorf("5xx fault carries status %d", f.Status)
	}
	if f := in.Check("flaky.com", 2); f == nil {
		t.Fatal("attempt 2 should fault")
	}
	if f := in.Check("flaky.com", 3); f != nil {
		t.Fatalf("attempt 3 should recover, got %v", f)
	}
}

func TestDegradingHostDiesMidFlow(t *testing.T) {
	in := New(Config{Seed: 9, Hosts: map[string]Profile{
		"degrade.com": {Kind: KindTimeout, FailAfter: 3},
	}})
	for a := 1; a <= 3; a++ {
		if f := in.Check("degrade.com", a); f != nil {
			t.Fatalf("attempt %d should succeed, got %v", a, f)
		}
	}
	for a := 4; a <= 6; a++ {
		if f := in.Check("degrade.com", a); f == nil {
			t.Fatalf("attempt %d should fault", a)
		}
	}
}

func TestPermanentHostNeverRecovers(t *testing.T) {
	in := New(Config{Seed: 9, Hosts: map[string]Profile{
		"dead.com": {Kind: KindTruncated, Permanent: true},
	}})
	for _, a := range []int{1, 2, 10, 1000} {
		if in.Check("dead.com", a) == nil {
			t.Fatalf("attempt %d should fault", a)
		}
	}
}

func TestPinnedHealthyOverridesRate(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Hosts: map[string]Profile{
		"safe.com": {},
	}})
	if p := in.ProfileFor("safe.com"); p != nil {
		t.Errorf("pinned-healthy host got profile %+v", p)
	}
	if in.ProfileFor("other.com") == nil {
		t.Error("rate 1 host unexpectedly healthy")
	}
}

func TestDNSKindRoutesThroughHook(t *testing.T) {
	in := New(Config{Seed: 9, Hosts: map[string]Profile{
		"nodns.com": {Kind: KindDNS, FailFirst: 1},
	}})
	// Check skips DNS-kind hosts; CheckDNS (and the hook) owns them.
	if f := in.Check("nodns.com", 1); f != nil {
		t.Fatalf("Check handled a DNS-kind host: %v", f)
	}
	if f := in.CheckDNS("nodns.com", 1); f == nil || f.Kind != KindDNS {
		t.Fatalf("CheckDNS attempt 1 = %v, want DNS fault", f)
	}
	if f := in.CheckDNS("nodns.com", 2); f != nil {
		t.Fatalf("CheckDNS attempt 2 = %v, want recovery", f)
	}
	hook := in.DNSHook()
	if err := hook("nodns.com", 1); err == nil {
		t.Fatal("hook attempt 1 should fail")
	}
	if err := hook("nodns.com", 2); err != nil {
		t.Fatalf("hook attempt 2 = %v, want nil", err)
	}
}

func TestFaultErrorAndTransient(t *testing.T) {
	f := &Fault{Kind: KindHTTP5xx, Host: "x.com", Attempt: 3, Status: 503}
	if f.Error() == "" || !f.Transient() {
		t.Error("fault must render and be transient")
	}
	slow := &Fault{Kind: KindSlow, Host: "x.com", Attempt: 1, Delay: 15 * time.Second}
	if slow.Error() == "" {
		t.Error("slow fault must render")
	}
}

func TestClassMixRoughlyMatchesFractions(t *testing.T) {
	in := New(Config{Seed: 5, Rate: 1, PermanentFrac: 0.2, DegradeFrac: 0.2})
	perm, degrade, flaky := 0, 0, 0
	for i := 0; i < 300; i++ {
		h := hostName(i)
		p := in.ProfileFor(h)
		if p == nil {
			t.Fatalf("%s healthy at rate 1", h)
		}
		switch {
		case p.Permanent:
			perm++
		case p.FailAfter > 0:
			degrade++
		case p.FailFirst > 0:
			flaky++
		default:
			t.Fatalf("%s: profile with no failure window: %+v", h, p)
		}
	}
	// Loose sanity bounds — the split is hash-based, not exact.
	if perm == 0 || degrade == 0 || flaky == 0 {
		t.Fatalf("class mix degenerate: perm=%d degrade=%d flaky=%d", perm, degrade, flaky)
	}
	if flaky < perm || flaky < degrade {
		t.Errorf("flaky should dominate at 60%%: perm=%d degrade=%d flaky=%d", perm, degrade, flaky)
	}
}

func hostName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return "h" + string(letters[i%26]) + string(letters[(i/26)%26]) + ".example.com"
}
