package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// hist is a streaming summary histogram: count/sum/min/max plus
// power-of-two magnitude buckets, enough to characterize per-site
// distributions without retaining samples.
type hist struct {
	count, sum, min, max int64
	buckets              [16]int64 // buckets[i] counts v with 2^(i-1) < v <= 2^i-ish (log2 magnitude)
}

func (h *hist) add(v int64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	b := 0
	for x := v; x > 1 && b < len(h.buckets)-1; x >>= 1 {
		b++
	}
	h.buckets[b]++
}

// HistSnapshot is a histogram's exported form.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets[i] counts observations of log2 magnitude i (index 0 holds
	// values <= 1); trailing zero buckets are trimmed.
	Buckets []int64 `json:"buckets"`
}

func (h *hist) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	last := -1
	for i, n := range h.buckets {
		if n != 0 {
			last = i
		}
	}
	s.Buckets = append([]int64{}, h.buckets[:last+1]...)
	return s
}

// RunInfo is the manifest's run identity block: everything needed to
// reproduce the run the telemetry came from.
type RunInfo struct {
	EcoSeed       uint64 `json:"eco_seed"`
	FaultSeed     uint64 `json:"fault_seed,omitempty"`
	Browser       string `json:"browser,omitempty"`
	Sites         int    `json:"sites,omitempty"`
	CrawlWorkers  int    `json:"crawl_workers,omitempty"`
	DetectWorkers int    `json:"detect_workers,omitempty"`
	Streamed      bool   `json:"streamed,omitempty"`
	// Shards is the shard count of a sharded study (zero when unsharded);
	// Shard is the "i/K" label when this telemetry covers a single shard
	// worker rather than a whole supervised study.
	Shards int    `json:"shards,omitempty"`
	Shard  string `json:"shard,omitempty"`
}

// Manifest folds the registry into the run summary the CLIs print and
// the metrics file leads with: what ran, what failed, what the
// resilience machinery did about it, and what the pipeline's memory
// bound was.
type Manifest struct {
	// Schema versions the manifest layout.
	Schema int     `json:"schema"`
	Run    RunInfo `json:"run"`

	// Outcomes counts crawled sites by outcome kind.
	Outcomes map[string]int64 `json:"outcomes,omitempty"`
	// Faults counts injected faults by kind.
	Faults map[string]int64 `json:"faults,omitempty"`
	// Quarantined counts quarantined sites by stage (crawl/detect).
	Quarantined map[string]int64 `json:"quarantined,omitempty"`

	Resilience ResilienceManifest `json:"resilience"`
	Checkpoint CheckpointManifest `json:"checkpoint"`
	Pipeline   PipelineManifest   `json:"pipeline"`
	// Sharding is present only on supervised sharded runs.
	Sharding *ShardingManifest `json:"sharding,omitempty"`
}

// ResilienceManifest summarizes the retry/breaker/watchdog machinery.
type ResilienceManifest struct {
	Attempts         int64 `json:"attempts"`
	Retries          int64 `json:"retries"`
	FailedFetches    int64 `json:"failed_fetches"`
	BreakerOpened    int64 `json:"breaker_opened"`
	BreakerHalfOpen  int64 `json:"breaker_half_opened"`
	BreakerClosed    int64 `json:"breaker_closed"`
	BreakerRefusals  int64 `json:"breaker_refusals"`
	WatchdogTimeouts int64 `json:"watchdog_timeouts"`
}

// CheckpointManifest summarizes crash-only persistence activity.
type CheckpointManifest struct {
	Appends      int64 `json:"appends"`
	ResumedSites int64 `json:"resumed_sites"`
	TornRecords  int64 `json:"torn_records"`
}

// ShardingManifest summarizes a supervised sharded run: how many shards
// were planned, how the supervisor fought for them, and what the
// verified merge folded.
type ShardingManifest struct {
	Planned         int64 `json:"planned"`
	Completed       int64 `json:"completed"`
	Missing         int64 `json:"missing"`
	Runs            int64 `json:"runs"`
	Restarts        int64 `json:"restarts"`
	Stalls          int64 `json:"stalls"`
	MergedSites     int64 `json:"merged_sites"`
	DigestsVerified int64 `json:"digests_verified"`
}

// PipelineManifest summarizes the fused pipeline's throughput.
type PipelineManifest struct {
	CrawledSites     int64 `json:"crawled_sites"`
	Records          int64 `json:"records"`
	DetectedSites    int64 `json:"detected_sites"`
	Leaks            int64 `json:"leaks"`
	ReleasedCaptures int64 `json:"released_captures"`
	// CaptureHighWater is the peak number of record-bearing captures in
	// flight (streamed runs; zero in batch mode). It is a bound, not a
	// byte-reproducible quantity, in parallel runs — see DESIGN.md §10.
	CaptureHighWater int64 `json:"capture_high_water"`
}

// labeled extracts a counter family's per-label values: every key of
// the form name{label}.
func (r *Run) labeled(name string) map[string]int64 {
	var out map[string]int64
	prefix := name + "{"
	for k, v := range r.counters {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, "}") {
			if out == nil {
				out = map[string]int64{}
			}
			out[k[len(prefix):len(k)-1]] = v
		}
	}
	return out
}

// Manifest assembles the run summary from the registry.
func (r *Run) Manifest() Manifest {
	if r == nil {
		return Manifest{Schema: 1}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Manifest{
		Schema:      1,
		Run:         r.info,
		Outcomes:    r.labeled(MetricCrawlOutcome),
		Faults:      r.labeled(MetricFaultInjected),
		Quarantined: r.labeled(MetricQuarantined),
		Resilience: ResilienceManifest{
			Attempts:         r.counter(MetricFetchAttempts),
			Retries:          r.counter(MetricFetchRetries),
			FailedFetches:    r.counter(MetricFetchFailures),
			BreakerOpened:    r.counter(MetricBreakerOpened),
			BreakerHalfOpen:  r.counter(MetricBreakerHalfOpen),
			BreakerClosed:    r.counter(MetricBreakerClosed),
			BreakerRefusals:  r.counter(MetricBreakerRefused),
			WatchdogTimeouts: r.counter(MetricWatchdogTimeouts),
		},
		Checkpoint: CheckpointManifest{
			Appends:      r.counter(MetricCheckpointAppends),
			ResumedSites: r.counter(MetricCheckpointResumed),
			TornRecords:  r.counter(MetricCheckpointTorn),
		},
		Pipeline: PipelineManifest{
			CrawledSites:     r.counter(MetricCrawlSites),
			Records:          r.counter(MetricCrawlRecords),
			DetectedSites:    r.counter(MetricDetectSites),
			Leaks:            r.counter(MetricDetectLeaks),
			ReleasedCaptures: r.counter(MetricReleased),
			CaptureHighWater: r.gauges[MetricCaptureHighWater],
		},
		Sharding: r.sharding(),
	}
}

// sharding assembles the manifest's sharding block, or nil when the run
// never touched the shard supervisor. Per-shard series (runs/restarts
// by shard index) are folded into totals here; the labeled breakdowns
// stay available in the raw counter export.
func (r *Run) sharding() *ShardingManifest {
	if r.info.Shards == 0 && r.counter(MetricShardsCompleted) == 0 && r.counter(MetricShardsMissing) == 0 {
		return nil
	}
	sum := func(name string) int64 {
		var total int64
		for _, v := range r.labeled(name) {
			total += v
		}
		return total
	}
	return &ShardingManifest{
		Planned:         int64(r.info.Shards),
		Completed:       r.counter(MetricShardsCompleted),
		Missing:         r.counter(MetricShardsMissing),
		Runs:            sum(MetricShardRuns),
		Restarts:        sum(MetricShardRestarts),
		Stalls:          sum(MetricShardStalls),
		MergedSites:     r.counter(MetricShardMergedSites),
		DigestsVerified: r.counter(MetricShardDigests),
	}
}

// Export is the metrics file's shape: the manifest up front, then the
// full registry. encoding/json marshals every map in sorted key order,
// which is what makes the export stable and diffable across runs.
type Export struct {
	Manifest   Manifest                `json:"manifest"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry for export.
func (r *Run) Snapshot() Export {
	ex := Export{Manifest: r.Manifest(), Counters: map[string]int64{}}
	if r == nil {
		return ex
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		ex.Counters[k] = v
	}
	for k, v := range r.gauges {
		if ex.Gauges == nil {
			ex.Gauges = map[string]int64{}
		}
		ex.Gauges[k] = v
	}
	for k, h := range r.hists {
		if ex.Histograms == nil {
			ex.Histograms = map[string]HistSnapshot{}
		}
		ex.Histograms[k] = h.snapshot()
	}
	return ex
}

// WriteMetrics writes the metrics + manifest export as indented JSON.
// Two runs of the same seed and configuration produce byte-identical
// output (sorted maps, deterministic counters, clock-derived times).
func (r *Run) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// Trace returns the run's spans sorted by (site index, stage, site) —
// the deterministic order WriteTrace emits.
func (r *Run) Trace() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := append([]SpanRecord{}, r.spans...)
	r.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Index != spans[j].Index {
			return spans[i].Index < spans[j].Index
		}
		if a, b := stageRank(spans[i].Stage), stageRank(spans[j].Stage); a != b {
			return a < b
		}
		return spans[i].Site < spans[j].Site
	})
	return spans
}

// WriteTrace writes the span trace as JSONL, one span per line, in the
// deterministic (site index, stage) order.
func (r *Run) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Trace() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
