// Package obs is the study's deterministic telemetry layer: a metrics
// registry (counters, gauges, histograms with sorted, stable export),
// stage-scoped trace spans, and a run manifest folding together what
// the runtime layers used to scatter across ad-hoc counters and stdout
// — resilience attempts/retries/breaker transitions, faultsim
// injections by kind, watchdog timeouts, quarantine counts, checkpoint
// appends/torn records, and the pipeline's capture-occupancy high-water
// mark.
//
// Telemetry is a side channel, never an input: nothing in the study
// reads an instrument back, so leak output and table numbers are
// byte-identical with observation on or off. Determinism is the design
// constraint — counters are order-independent sums, export walks every
// map in sorted key order, spans are emitted sorted by (site index,
// stage), and time flows through an injected Clock that defaults to a
// virtual clock pinned at the Unix epoch, so two runs of the same seed
// produce byte-identical metrics and trace files. The one documented
// exception is the capture-occupancy watermark, which is a
// scheduler-dependent bound (never exceeded, not exactly reproduced)
// in parallel streamed runs.
//
// A nil *Run is the no-op observer: every method is nil-receiver safe
// and allocation-free, so instrumented hot paths cost nothing when
// nobody is watching.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels a trace span with the pipeline stage that produced it.
type Stage string

// The study's pipeline stages, plus the sharded runtime's supervisor
// stages: one StageShard span per shard attempt and one StageMerge span
// for the verified fold.
const (
	StageCrawl      Stage = "crawl"
	StageDetect     Stage = "detect"
	StageAccumulate Stage = "accumulate"
	StageShard      Stage = "shard"
	StageMerge      Stage = "merge"
)

// stageRank orders spans within one site for the trace export.
func stageRank(s Stage) int {
	switch s {
	case StageCrawl:
		return 0
	case StageDetect:
		return 1
	case StageAccumulate:
		return 2
	case StageShard:
		return 3
	case StageMerge:
		return 4
	default:
		return 5
	}
}

// Metric names are compile-time constants (piilint's obskey analyzer
// enforces this at every call site): dynamic names would make the
// sorted export's key set depend on run-time data and break stable,
// diffable output.
const (
	// Crawl stage.
	MetricCrawlSites   = "crawl_sites_total"
	MetricCrawlOutcome = "crawl_outcome_total" // by outcome kind
	MetricCrawlRecords = "crawl_records_total"

	// Checkpoint / resume.
	MetricCheckpointAppends = "checkpoint_appends_total"
	MetricCheckpointResumed = "checkpoint_resumed_sites_total"
	MetricCheckpointTorn    = "checkpoint_torn_records_total"

	// Crash-only runtime.
	MetricWatchdogTimeouts = "crawler_watchdog_timeouts_total"
	MetricQuarantined      = "crawler_quarantined_total" // by stage

	// Fault injection.
	MetricFaultInjected = "faultsim_injected_total" // by fault kind

	// Resilient transport.
	MetricFetchAttempts   = "resilience_fetch_attempts_total"
	MetricFetchRetries    = "resilience_fetch_retries_total"
	MetricBreakerOpened   = "resilience_breaker_opened_total"
	MetricBreakerHalfOpen = "resilience_breaker_half_opened_total"
	MetricBreakerClosed   = "resilience_breaker_closed_total"
	MetricBreakerRefused  = "resilience_breaker_refusals_total"

	// Browser engine.
	MetricBrowserRequests = "browser_requests_total"
	MetricBrowserBlocked  = "browser_blocked_total"
	MetricFetchFailures   = "browser_failed_fetches_total"

	// Detection + accumulation.
	MetricDetectSites = "detect_sites_total"
	MetricDetectLeaks = "detect_leaks_total"
	MetricReleased    = "pipeline_released_captures_total"

	// Pipeline memory bound (gauge; streamed runs only).
	MetricCaptureHighWater = "pipeline_capture_highwater_sites"

	// Lazy-universe memory bound (gauge): the largest number of sites
	// one crawl materialized from its source — for a shard worker over
	// a lazy universe, the shard's size, never the whole universe.
	MetricUniverseMaterialized = "universe_materialized_sites"

	// Sharded runtime (supervisor-side).
	MetricShardRuns        = "shard_runs_total"         // worker attempts, by shard index
	MetricShardRestarts    = "shard_restarts_total"     // supervisor restarts, by shard index
	MetricShardStalls      = "shard_stalls_total"       // watchdog kills, by shard index
	MetricShardsCompleted  = "shard_completed_total"    // shards that produced a verified result
	MetricShardsMissing    = "shard_missing_total"      // shards dropped after the retry budget
	MetricShardMergedSites = "shard_merged_sites_total" // sites folded by the verified merge
	MetricShardDigests     = "shard_digests_verified_total"

	// Study service (cmd/piiserve): server-level admission and
	// lifecycle counters, kept on the server's own Run and exported at
	// /metrics alongside the engine build cache's hit/miss counters.
	MetricServeSubmitted = "serve_jobs_submitted_total"
	MetricServeRejected  = "serve_jobs_rejected_total" // by reason (saturated, draining, invalid)
	MetricServeFinished  = "serve_jobs_finished_total" // by terminal state
	MetricServeRequeued  = "serve_jobs_requeued_total" // drain/crash recoveries
	MetricServeRecovered = "serve_jobs_recovered_total"
	MetricServeWatchdog  = "serve_watchdog_timeouts_total"
	MetricServeTorn      = "serve_store_torn_records_total"

	// Per-site distributions.
	HistSiteRecords   = "crawl_site_records"
	HistSiteLeaks     = "detect_site_leaks"
	HistSiteVirtualMS = "crawl_site_virtual_ms"
)

// Clock is the time source spans are stamped on. It is a structural
// subset of resilience.Clock so an executor's clock plugs in directly;
// obs keeps its own copy because the dependency points the other way
// (resilience imports obs).
type Clock interface {
	Now() time.Time
}

// epochClock is the default: frozen at the Unix epoch, so span
// timestamps are all zero and export bytes never depend on wall time.
type epochClock struct{}

func (epochClock) Now() time.Time { return time.Unix(0, 0) }

// Span is one stage's work on one site. A nil *Span (from a nil Run)
// is a no-op; every method is nil-receiver safe.
type Span struct {
	run   *Run
	start time.Time
	rec   SpanRecord
}

// SpanRecord is a span's exported form: one JSONL line in the trace.
type SpanRecord struct {
	Stage Stage  `json:"stage"`
	Site  string `json:"site"`
	Index int    `json:"index"`
	// StartMS/DurMS are on the run's clock — zero under the default
	// epoch clock, virtual milliseconds under a fault run's
	// VirtualClock, never wall time unless a real clock is injected.
	StartMS int64 `json:"start_ms"`
	DurMS   int64 `json:"dur_ms"`
	// N is the span's payload size: records captured for crawl spans,
	// leaks found for detect spans.
	N int `json:"n"`
	// Outcome is the crawl outcome (crawl spans only).
	Outcome string `json:"outcome,omitempty"`
}

// SetN records the span's payload size.
func (s *Span) SetN(n int) {
	if s == nil {
		return
	}
	s.rec.N = n
}

// SetOutcome records the site's crawl outcome.
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.rec.Outcome = outcome
}

// AddDuration adds d to the span's duration on top of whatever the
// run's clock observes — the crawler feeds each site transport's
// virtual elapsed time through here, so fault-run traces carry the
// deterministic simulated cost per site.
func (s *Span) AddDuration(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.rec.DurMS += d.Milliseconds()
}

// End closes the span and files it with the run.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.DurMS += s.run.clock.Now().Sub(s.start).Milliseconds()
	s.run.mu.Lock()
	s.run.spans = append(s.run.spans, s.rec)
	s.run.mu.Unlock()
}

// Watermark tracks a level and its high-water mark with lock-free
// updates — the pipeline's in-flight capture gauge. The zero value is
// ready to use.
type Watermark struct {
	cur, high atomic.Int64
}

// Inc raises the level, ratcheting the high-water mark.
func (w *Watermark) Inc() {
	c := w.cur.Add(1)
	for {
		h := w.high.Load()
		if c <= h || w.high.CompareAndSwap(h, c) {
			return
		}
	}
}

// Dec lowers the level.
func (w *Watermark) Dec() { w.cur.Add(-1) }

// High returns the high-water mark.
func (w *Watermark) High() int64 { return w.high.Load() }

// Run is one study run's telemetry: the metrics registry plus the span
// trace. A nil *Run is the no-op observer — every method is safe and
// allocation-free on a nil receiver. A non-nil Run is safe for
// concurrent use from all pipeline stages.
type Run struct {
	clock Clock

	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*hist
	spans    []SpanRecord
	info     RunInfo
}

// NewRun builds an observer on the given clock; nil selects the epoch
// clock (the deterministic default — see the package doc).
func NewRun(clock Clock) *Run {
	if clock == nil {
		clock = epochClock{}
	}
	return &Run{
		clock:    clock,
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		hists:    map[string]*hist{},
	}
}

// SetInfo records the run's identifying metadata for the manifest.
func (r *Run) SetInfo(info RunInfo) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.info = info
	r.mu.Unlock()
}

// key renders a labeled metric name as name{label}.
func key(name, label string) string {
	return name + "{" + label + "}"
}

// Count adds delta to a counter. name must be a compile-time constant
// (enforced by piilint obskey).
func (r *Run) Count(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// CountKind adds delta to the kind-labeled series of a counter family,
// exported as name{kind}. The family name must be a compile-time
// constant; the kind is data (an outcome, a fault kind, a stage).
func (r *Run) CountKind(name, kind string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[key(name, kind)] += delta
	r.mu.Unlock()
}

// GaugeSet sets a gauge to v.
func (r *Run) GaugeSet(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// GaugeMax ratchets a gauge up to v if v exceeds its current value.
func (r *Run) GaugeMax(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Observe feeds v into a histogram.
func (r *Run) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &hist{min: v, max: v}
		r.hists[name] = h
	}
	h.add(v)
	r.mu.Unlock()
}

// StartSpan opens a stage span for one site. On a nil Run it returns a
// nil Span, whose methods are all no-ops — the hot path allocates
// nothing when unobserved.
func (r *Run) StartSpan(stage Stage, site string, index int) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		run:   r,
		start: r.clock.Now(),
		rec: SpanRecord{
			Stage:   stage,
			Site:    site,
			Index:   index,
			StartMS: r.clock.Now().Sub(time.Unix(0, 0)).Milliseconds(),
		},
	}
}

// counter reads one counter under the lock (export helpers).
func (r *Run) counter(name string) int64 {
	return r.counters[name]
}
