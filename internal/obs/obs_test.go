package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// exercise applies one fixed instrument sequence — the test's stand-in
// for a seeded run.
func exercise(r *Run) {
	r.SetInfo(RunInfo{EcoSeed: 2021, Browser: "Firefox 88", Sites: 3})
	r.Count(MetricCrawlSites, 3)
	r.CountKind(MetricCrawlOutcome, "success", 2)
	r.CountKind(MetricCrawlOutcome, "unreachable", 1)
	r.CountKind(MetricFaultInjected, "conn_timeout", 4)
	r.Count(MetricFetchAttempts, 9)
	r.Count(MetricFetchRetries, 6)
	r.GaugeSet(MetricCaptureHighWater, 4)
	r.Observe(HistSiteRecords, 12)
	r.Observe(HistSiteRecords, 40)
	r.Observe(HistSiteRecords, 0)
	for i, site := range []string{"shop0.com", "shop1.com", "shop2.com"} {
		sp := r.StartSpan(StageCrawl, site, i)
		sp.SetN(10 + i)
		sp.SetOutcome("success")
		sp.AddDuration(time.Duration(i) * time.Second)
		sp.End()
		dp := r.StartSpan(StageDetect, site, i)
		dp.SetN(i)
		dp.End()
	}
}

// TestExportDeterministic: two observers fed the identical sequence
// export byte-identical metrics and trace files — the property the
// CLI's -metrics/-trace contract rests on.
func TestExportDeterministic(t *testing.T) {
	var m1, m2, t1, t2 bytes.Buffer
	a, b := NewRun(nil), NewRun(nil)
	exercise(a)
	exercise(b)
	if err := a.WriteMetrics(&m1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetrics(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Errorf("metrics exports differ:\n%s\n----\n%s", m1.String(), m2.String())
	}
	if err := a.WriteTrace(&t1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Errorf("trace exports differ:\n%s\n----\n%s", t1.String(), t2.String())
	}
	if m1.Len() == 0 || t1.Len() == 0 {
		t.Fatal("empty export")
	}
}

// TestExportOrderIndependent: counters are sums and the export sorts
// every map, so the same instrument calls in a different interleaving
// (a parallel run's reality) export the same bytes. Spans likewise sort
// by (index, stage) regardless of End order.
func TestExportOrderIndependent(t *testing.T) {
	a, b := NewRun(nil), NewRun(nil)
	exercise(a)

	b.SetInfo(RunInfo{EcoSeed: 2021, Browser: "Firefox 88", Sites: 3})
	for i := 2; i >= 0; i-- {
		site := []string{"shop0.com", "shop1.com", "shop2.com"}[i]
		dp := b.StartSpan(StageDetect, site, i)
		dp.SetN(i)
		dp.End()
		sp := b.StartSpan(StageCrawl, site, i)
		sp.SetN(10 + i)
		sp.SetOutcome("success")
		sp.AddDuration(time.Duration(i) * time.Second)
		sp.End()
	}
	b.Observe(HistSiteRecords, 0)
	b.Observe(HistSiteRecords, 40)
	b.Observe(HistSiteRecords, 12)
	b.GaugeSet(MetricCaptureHighWater, 4)
	b.Count(MetricFetchRetries, 6)
	b.Count(MetricFetchAttempts, 9)
	b.CountKind(MetricFaultInjected, "conn_timeout", 4)
	b.CountKind(MetricCrawlOutcome, "unreachable", 1)
	b.CountKind(MetricCrawlOutcome, "success", 2)
	for i := 0; i < 3; i++ {
		b.Count(MetricCrawlSites, 1)
	}

	var ma, mb, ta, tb bytes.Buffer
	if err := a.WriteMetrics(&ma); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ma.Bytes(), mb.Bytes()) {
		t.Errorf("reordered metrics differ:\n%s\n----\n%s", ma.String(), mb.String())
	}
	if err := a.WriteTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Errorf("reordered traces differ:\n%s\n----\n%s", ta.String(), tb.String())
	}
}

// TestNilRunZeroAlloc: the no-op observer's instrument calls allocate
// nothing — the ISSUE's hot-path guarantee, asserted here and
// benchmarked end-to-end in BenchmarkObsOverhead.
func TestNilRunZeroAlloc(t *testing.T) {
	var r *Run
	allocs := testing.AllocsPerRun(1000, func() {
		r.Count(MetricCrawlSites, 1)
		r.CountKind(MetricCrawlOutcome, "success", 1)
		r.GaugeSet(MetricCaptureHighWater, 3)
		r.GaugeMax(MetricCaptureHighWater, 5)
		r.Observe(HistSiteRecords, 7)
		sp := r.StartSpan(StageCrawl, "shop0.com", 0)
		sp.SetN(1)
		sp.SetOutcome("success")
		sp.AddDuration(time.Second)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil observer allocates: %v allocs/op, want 0", allocs)
	}
}

// TestManifestFoldsRegistry: the manifest pulls the right counters into
// the right summary slots, including labeled families.
func TestManifestFoldsRegistry(t *testing.T) {
	r := NewRun(nil)
	exercise(r)
	r.CountKind(MetricQuarantined, "detect", 1)
	r.Count(MetricWatchdogTimeouts, 2)
	r.Count(MetricCheckpointAppends, 3)

	m := r.Manifest()
	if m.Schema != 1 {
		t.Errorf("schema = %d, want 1", m.Schema)
	}
	if m.Run.EcoSeed != 2021 || m.Run.Sites != 3 {
		t.Errorf("run info = %+v", m.Run)
	}
	if m.Outcomes["success"] != 2 || m.Outcomes["unreachable"] != 1 {
		t.Errorf("outcomes = %v", m.Outcomes)
	}
	if m.Faults["conn_timeout"] != 4 {
		t.Errorf("faults = %v", m.Faults)
	}
	if m.Quarantined["detect"] != 1 {
		t.Errorf("quarantined = %v", m.Quarantined)
	}
	if m.Resilience.Attempts != 9 || m.Resilience.Retries != 6 || m.Resilience.WatchdogTimeouts != 2 {
		t.Errorf("resilience = %+v", m.Resilience)
	}
	if m.Checkpoint.Appends != 3 {
		t.Errorf("checkpoint = %+v", m.Checkpoint)
	}
	if m.Pipeline.CrawledSites != 3 || m.Pipeline.CaptureHighWater != 4 {
		t.Errorf("pipeline = %+v", m.Pipeline)
	}
}

// TestNilRunExports: a nil observer still exports valid (empty) files.
func TestNilRunExports(t *testing.T) {
	var r *Run
	var m, tr bytes.Buffer
	if err := r.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), `"schema": 1`) {
		t.Errorf("nil metrics export missing manifest: %s", m.String())
	}
	if tr.Len() != 0 {
		t.Errorf("nil trace export non-empty: %q", tr.String())
	}
	if m := r.Manifest(); m.Schema != 1 {
		t.Errorf("nil manifest schema = %d", m.Schema)
	}
}

// TestGaugeMax ratchets up, never down.
func TestGaugeMax(t *testing.T) {
	r := NewRun(nil)
	r.GaugeMax(MetricCaptureHighWater, 3)
	r.GaugeMax(MetricCaptureHighWater, 7)
	r.GaugeMax(MetricCaptureHighWater, 5)
	if got := r.Snapshot().Gauges[MetricCaptureHighWater]; got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

// TestWatermark tracks the high-water mark across inc/dec churn.
func TestWatermark(t *testing.T) {
	var w Watermark
	w.Inc()
	w.Inc()
	w.Inc()
	w.Dec()
	w.Inc()
	w.Dec()
	w.Dec()
	if w.High() != 3 {
		t.Errorf("high = %d, want 3", w.High())
	}
}

// TestHistogramSnapshot checks the summary stats and magnitude buckets.
func TestHistogramSnapshot(t *testing.T) {
	r := NewRun(nil)
	for _, v := range []int64{0, 1, 2, 3, 100} {
		r.Observe(HistSiteLeaks, v)
	}
	h := r.Snapshot().Histograms[HistSiteLeaks]
	if h.Count != 5 || h.Sum != 106 || h.Min != 0 || h.Max != 100 {
		t.Errorf("snapshot = %+v", h)
	}
	var n int64
	for _, b := range h.Buckets {
		n += b
	}
	if n != 5 {
		t.Errorf("bucket total = %d, want 5", n)
	}
}

// TestSpanClock: spans pick up durations from the injected clock, and
// the default epoch clock yields all-zero timestamps.
func TestSpanClock(t *testing.T) {
	r := NewRun(nil)
	sp := r.StartSpan(StageCrawl, "shop0.com", 0)
	sp.End()
	tr := r.Trace()
	if len(tr) != 1 || tr[0].StartMS != 0 || tr[0].DurMS != 0 {
		t.Errorf("epoch-clock span = %+v, want zero times", tr)
	}

	c := &fakeClock{now: time.Unix(0, 0)}
	r2 := NewRun(c)
	sp2 := r2.StartSpan(StageDetect, "shop1.com", 1)
	c.now = c.now.Add(250 * time.Millisecond)
	sp2.AddDuration(time.Second)
	sp2.End()
	tr2 := r2.Trace()
	if len(tr2) != 1 || tr2[0].DurMS != 1250 {
		t.Errorf("clocked span = %+v, want dur_ms 1250", tr2)
	}
}

type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time { return c.now }
