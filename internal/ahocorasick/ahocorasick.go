// Package ahocorasick implements the Aho-Corasick multi-pattern string
// matching automaton.
//
// The PII leak detector compiles the persona's candidate-token set —
// tens to hundreds of thousands of encoded/hashed PII strings (§3.1) —
// into one automaton and scans every third-party request surface in a
// single pass, instead of running len(tokens) substring searches per
// request. Benchmark A2 in the top-level harness quantifies the
// difference.
//
// Children are stored as small sorted edge slices rather than per-node
// maps: candidate tokens are mostly hex/base64 text with little prefix
// sharing, so node counts approach total pattern bytes, and slice edges
// keep memory linear in that size.
package ahocorasick

// Match reports one pattern occurrence.
type Match struct {
	// Pattern is the index of the matched pattern in the slice passed
	// to New.
	Pattern int
	// End is the byte offset just past the match in the scanned text.
	End int
}

type edge struct {
	b    byte
	node int32
}

type node struct {
	// edges is sorted by byte for binary search; nodes typically have
	// very few children, so linear scan wins and sorting keeps builds
	// deterministic.
	edges []edge
	fail  int32
	// out lists pattern indices ending at this node (including ones
	// inherited through failure links).
	out []int32
}

func (n *node) child(b byte) (int32, bool) {
	for _, e := range n.edges {
		if e.b == b {
			return e.node, true
		}
		if e.b > b {
			break
		}
	}
	return 0, false
}

func (n *node) addChild(b byte, id int32) {
	i := 0
	for i < len(n.edges) && n.edges[i].b < b {
		i++
	}
	n.edges = append(n.edges, edge{})
	copy(n.edges[i+1:], n.edges[i:])
	n.edges[i] = edge{b: b, node: id}
}

// Matcher is an immutable Aho-Corasick automaton. It is safe for
// concurrent use after construction.
type Matcher struct {
	nodes    []node
	patterns int
	// patLens[i] is the length of pattern i (used to compute start
	// offsets on demand).
	patLens []int
}

// New builds an automaton over the given patterns. Empty patterns are
// permitted but never match. Duplicate patterns each report their own
// index.
func New(patterns [][]byte) *Matcher {
	m := &Matcher{
		nodes:    make([]node, 1, 64),
		patterns: len(patterns),
		patLens:  make([]int, len(patterns)),
	}

	// Phase 1: trie.
	for i, p := range patterns {
		m.patLens[i] = len(p)
		if len(p) == 0 {
			continue
		}
		cur := int32(0)
		for _, b := range p {
			nxt, ok := m.nodes[cur].child(b)
			if !ok {
				m.nodes = append(m.nodes, node{})
				nxt = int32(len(m.nodes) - 1)
				m.nodes[cur].addChild(b, nxt)
			}
			cur = nxt
		}
		m.nodes[cur].out = append(m.nodes[cur].out, int32(i))
	}

	// Phase 2: failure links, breadth first.
	queue := make([]int32, 0, len(m.nodes))
	for _, e := range m.nodes[0].edges {
		m.nodes[e.node].fail = 0
		queue = append(queue, e.node)
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, e := range m.nodes[cur].edges {
			child := e.node
			queue = append(queue, child)
			f := m.nodes[cur].fail
			for {
				if nxt, ok := m.nodes[f].child(e.b); ok && nxt != child {
					m.nodes[child].fail = nxt
					break
				}
				if f == 0 {
					m.nodes[child].fail = 0
					break
				}
				f = m.nodes[f].fail
			}
			// Inherit outputs from the failure target so scanning
			// never walks failure chains for reporting.
			ft := m.nodes[child].fail
			if len(m.nodes[ft].out) > 0 {
				m.nodes[child].out = append(m.nodes[child].out, m.nodes[ft].out...)
			}
		}
	}
	return m
}

// NewStrings is New for string patterns.
func NewStrings(patterns []string) *Matcher {
	bs := make([][]byte, len(patterns))
	for i, p := range patterns {
		bs[i] = []byte(p)
	}
	return New(bs)
}

// step advances the automaton from state s on byte b.
func (m *Matcher) step(s int32, b byte) int32 {
	for {
		if nxt, ok := m.nodes[s].child(b); ok {
			return nxt
		}
		if s == 0 {
			return 0
		}
		s = m.nodes[s].fail
	}
}

// Find returns every occurrence of every pattern in text, in scan order.
func (m *Matcher) Find(text []byte) []Match {
	var matches []Match
	s := int32(0)
	for i, b := range text {
		s = m.step(s, b)
		for _, p := range m.nodes[s].out {
			matches = append(matches, Match{Pattern: int(p), End: i + 1})
		}
	}
	return matches
}

// FindUnique returns the set of distinct pattern indices occurring in
// text, in first-match order. It is the detector's hot path.
func (m *Matcher) FindUnique(text []byte) []int {
	var found []int
	var seen map[int]bool
	s := int32(0)
	for _, b := range text {
		s = m.step(s, b)
		for _, p := range m.nodes[s].out {
			if seen == nil {
				seen = make(map[int]bool)
			}
			if !seen[int(p)] {
				seen[int(p)] = true
				found = append(found, int(p))
			}
		}
	}
	return found
}

// Scratch is reusable per-goroutine dedup state for FindUniqueInto: a
// generation-stamped array sized to the automaton's pattern count, so
// clearing between scans is a counter bump, not an allocation. The zero
// value is ready to use; a Scratch must not be shared between
// concurrent scans.
type Scratch struct {
	stamp []uint32
	gen   uint32
}

// text abstracts the two scannable representations so the scan loops
// are written once; indexing a string yields bytes without conversion.
type text interface{ ~string | ~[]byte }

// findUniqueInto is the allocation-free FindUnique core, generic over
// string and []byte inputs.
func findUniqueInto[T text](m *Matcher, data T, sc *Scratch, dst []int) []int {
	if len(sc.stamp) < m.patterns {
		sc.stamp = make([]uint32, m.patterns)
		sc.gen = 0
	}
	sc.gen++
	if sc.gen == 0 { // wrapped: stamps from 2^32 scans ago could alias
		clear(sc.stamp)
		sc.gen = 1
	}
	s := int32(0)
	for i := 0; i < len(data); i++ {
		s = m.step(s, data[i])
		for _, p := range m.nodes[s].out {
			if sc.stamp[p] != sc.gen {
				sc.stamp[p] = sc.gen
				dst = append(dst, int(p))
			}
		}
	}
	return dst
}

// FindUniqueInto appends the distinct pattern indices occurring in text
// to dst, in first-match order, reusing sc for dedup state. It returns
// the extended slice and allocates only when dst's capacity is
// exceeded (or on sc's first use). The result order and content match
// FindUnique exactly.
func (m *Matcher) FindUniqueInto(data []byte, sc *Scratch, dst []int) []int {
	return findUniqueInto(m, data, sc, dst)
}

// FindUniqueStringInto is FindUniqueInto for string input, avoiding the
// []byte conversion copy.
func (m *Matcher) FindUniqueStringInto(data string, sc *Scratch, dst []int) []int {
	return findUniqueInto(m, data, sc, dst)
}

// contains is the shared Contains core, generic over string and []byte.
func contains[T text](m *Matcher, data T) bool {
	s := int32(0)
	for i := 0; i < len(data); i++ {
		s = m.step(s, data[i])
		if len(m.nodes[s].out) > 0 {
			return true
		}
	}
	return false
}

// Contains reports whether any pattern occurs in text.
func (m *Matcher) Contains(text []byte) bool { return contains(m, text) }

// ContainsString is Contains for string input, avoiding the []byte
// conversion copy. It allocates nothing.
func (m *Matcher) ContainsString(s string) bool { return contains(m, s) }

// PatternLen returns the length of pattern i, so callers can recover the
// start offset of a Match (End - PatternLen).
func (m *Matcher) PatternLen(i int) int { return m.patLens[i] }

// NumPatterns returns the number of patterns the automaton was built from.
func (m *Matcher) NumPatterns() int { return m.patterns }

// NumStates returns the number of automaton states (trie nodes), which the
// candidate-set ablation reports as a memory proxy.
func (m *Matcher) NumStates() int { return len(m.nodes) }
