package ahocorasick_test

import (
	"fmt"

	"piileak/internal/ahocorasick"
)

// Example scans one pass over a request blob for multiple tokens.
func Example() {
	m := ahocorasick.NewStrings([]string{"deadbeef", "cafebabe"})
	for _, idx := range m.FindUnique([]byte("GET /p?a=cafebabe&b=deadbeef")) {
		fmt.Println(idx)
	}
	// Output:
	// 1
	// 0
}
