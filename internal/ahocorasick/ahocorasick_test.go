package ahocorasick

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestFindClassicExample(t *testing.T) {
	// The textbook he/she/his/hers example.
	m := NewStrings([]string{"he", "she", "his", "hers"})
	got := m.Find([]byte("ushers"))
	want := []Match{
		{Pattern: 1, End: 4}, // she
		{Pattern: 0, End: 4}, // he
		{Pattern: 3, End: 6}, // hers
	}
	sortMatches(got)
	sortMatches(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Find = %+v, want %+v", got, want)
	}
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].End != ms[b].End {
			return ms[a].End < ms[b].End
		}
		return ms[a].Pattern < ms[b].Pattern
	})
}

func TestOverlappingMatches(t *testing.T) {
	m := NewStrings([]string{"aa", "aaa"})
	got := m.Find([]byte("aaaa"))
	// "aa" at ends 2,3,4; "aaa" at ends 3,4.
	if len(got) != 5 {
		t.Errorf("got %d matches, want 5: %+v", len(got), got)
	}
}

func TestFindUnique(t *testing.T) {
	m := NewStrings([]string{"foo", "bar", "baz"})
	got := m.FindUnique([]byte("barbar foofoo bar"))
	want := []int{1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FindUnique = %v, want %v", got, want)
	}
}

func TestContains(t *testing.T) {
	m := NewStrings([]string{"needle"})
	if !m.Contains([]byte("a haystack with a needle inside")) {
		t.Error("Contains missed the needle")
	}
	if m.Contains([]byte("just hay")) {
		t.Error("Contains false positive")
	}
}

func TestEmptyPatternNeverMatches(t *testing.T) {
	m := NewStrings([]string{"", "x"})
	got := m.Find([]byte("xx"))
	for _, g := range got {
		if g.Pattern == 0 {
			t.Fatalf("empty pattern matched: %+v", g)
		}
	}
	if len(got) != 2 {
		t.Errorf("pattern x: got %d matches, want 2", len(got))
	}
}

func TestNoPatterns(t *testing.T) {
	m := New(nil)
	if m.Contains([]byte("anything")) {
		t.Error("empty automaton matched")
	}
	if got := m.Find([]byte("anything")); got != nil {
		t.Errorf("empty automaton Find = %v", got)
	}
}

func TestDuplicatePatternsReportBothIndices(t *testing.T) {
	m := NewStrings([]string{"dup", "dup"})
	got := m.FindUnique([]byte("a dup"))
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("duplicate patterns: FindUnique = %v", got)
	}
}

func TestPatternMetadata(t *testing.T) {
	m := NewStrings([]string{"abc", "de"})
	if m.NumPatterns() != 2 {
		t.Errorf("NumPatterns = %d", m.NumPatterns())
	}
	if m.PatternLen(0) != 3 || m.PatternLen(1) != 2 {
		t.Errorf("PatternLen = %d, %d", m.PatternLen(0), m.PatternLen(1))
	}
	if m.NumStates() < 6 {
		t.Errorf("NumStates = %d, want >= 6", m.NumStates())
	}
}

func TestMatchEndOffsets(t *testing.T) {
	m := NewStrings([]string{"oo@my"})
	got := m.Find([]byte("foo@mydom.com"))
	if len(got) != 1 {
		t.Fatalf("got %d matches", len(got))
	}
	start := got[0].End - m.PatternLen(got[0].Pattern)
	if start != 1 || got[0].End != 6 {
		t.Errorf("match span [%d,%d), want [1,6)", start, got[0].End)
	}
}

// TestMatchesNaiveSearch cross-checks the automaton against strings.Index
// on random inputs over a tiny alphabet (maximizing overlap and failure
// transitions).
func TestMatchesNaiveSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(2))
		}
		return string(b)
	}
	for trial := 0; trial < 100; trial++ {
		var patterns []string
		for i := 0; i < rng.Intn(6)+1; i++ {
			patterns = append(patterns, randStr(rng.Intn(4)+1))
		}
		text := randStr(rng.Intn(50))
		m := NewStrings(patterns)

		got := map[[2]int]bool{}
		for _, match := range m.Find([]byte(text)) {
			got[[2]int{match.Pattern, match.End}] = true
		}
		want := map[[2]int]bool{}
		for pi, p := range patterns {
			for off := 0; ; {
				idx := strings.Index(text[off:], p)
				if idx < 0 {
					break
				}
				want[[2]int{pi, off + idx + len(p)}] = true
				off += idx + 1
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("patterns %q text %q:\n got %v\nwant %v", patterns, text, got, want)
		}
	}
}

func TestQuickSinglePattern(t *testing.T) {
	property := func(pattern, prefix, suffix []byte) bool {
		if len(pattern) == 0 {
			return true
		}
		m := New([][]byte{pattern})
		text := append(append(append([]byte(nil), prefix...), pattern...), suffix...)
		return m.Contains(text)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScan64KTokens(b *testing.B) {
	// Approximates the detector's workload: tens of thousands of hex
	// tokens scanned over a kilobyte-scale request blob.
	patterns := make([][]byte, 64<<10)
	rng := rand.New(rand.NewSource(3))
	hexdig := []byte("0123456789abcdef")
	for i := range patterns {
		p := make([]byte, 32)
		for j := range p {
			p[j] = hexdig[rng.Intn(16)]
		}
		patterns[i] = p
	}
	m := New(patterns)
	text := bytes.Repeat([]byte("utm_source=newsletter&ud5f="), 40)
	text = append(text, patterns[100]...)
	b.ResetTimer()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if !m.Contains(text) {
			b.Fatal("lost the token")
		}
	}
}
