// Package site models a first-party shopping site in the synthetic web:
// its pages, authentication forms, embedded third-party tags with their
// leak behaviours (Figure 1's four channels), CNAME-cloaked subdomains,
// and its privacy-policy disclosure class (§6).
//
// A Site is pure data plus deterministic request-construction logic; the
// browser package decides which requests actually happen (cookie policy,
// shields, ...), and the crawler package sequences the §3.2 flow.
package site

import (
	"fmt"
	"net/url"
	"strings"

	"piileak/internal/blocklist"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

// Obstacle explains why a site drops out of the §3.2 collection funnel.
type Obstacle string

// Funnel obstacles, matching the paper's accounting (404 → 307).
const (
	ObstacleNone        Obstacle = ""
	ObstacleUnreachable Obstacle = "unreachable"
	ObstacleNoAuth      Obstacle = "no_auth_flow"
	ObstaclePhoneVerify Obstacle = "phone_verification"
	ObstacleIDDocuments Obstacle = "id_documents"
	ObstacleRegionBlock Obstacle = "region_blocked"
)

// PolicyClass is the privacy-policy disclosure category of Table 3.
type PolicyClass string

// Table 3 disclosure classes.
const (
	PolicyNotSpecific   PolicyClass = "not_specific"
	PolicySpecific      PolicyClass = "specific"
	PolicyNoDescription PolicyClass = "no_description"
	PolicyExplicitlyNot PolicyClass = "explicitly_not"
)

// Event is a browsing event tags react to.
type Event string

// Browsing events in flow order.
const (
	EventPageLoad Event = "pageload"
	EventSignup   Event = "signup"
	EventSignin   Event = "signin"
)

// LeakAction describes how a tag exfiltrates PII on authentication
// events (and, when the tag is persistent, on later page views).
type LeakAction struct {
	// Method is the leak channel: SurfaceURI, SurfaceBody or
	// SurfaceCookie. Referer leaks are not actions — they emerge from
	// GET signup forms.
	Method httpmodel.SurfaceKind
	// Param is the PII identifier parameter (§5.1's trackid), the body
	// field, or the cookie name.
	Param string
	// Chain is the encoding/hash chain applied to each PII value
	// (empty = plaintext).
	Chain []string
	// PII lists the leaked types; email-only is the common case.
	PII []pii.Type
	// JSONBody emits the payload as JSON instead of a form body.
	JSONBody bool
}

// Tag is one third-party resource a site embeds.
type Tag struct {
	// Receiver is the registrable domain that ultimately receives the
	// data (the reporting identity; for cloaked tags this differs from
	// Host's registrable domain).
	Receiver string
	// Host is the request host; for CNAME-cloaked tags this is a
	// first-party subdomain.
	Host string
	// Path is the resource path of the tag's script/pixel.
	Path string
	// Type is the tag's resource type for blocklist evaluation.
	Type blocklist.ResourceType
	// OnSubpages marks tags present beyond the auth pages; combined
	// with a LeakAction this is §5.2's persistence cue.
	OnSubpages bool
	// Actions is the tag's leak behaviour; empty for benign tags.
	Actions []LeakAction
}

// URL returns the tag's resource URL.
func (t *Tag) URL() string { return "https://" + t.Host + t.Path }

// Site is one first-party site.
type Site struct {
	// Domain is the registrable domain.
	Domain string
	// Rank is the Tranco rank.
	Rank int
	// SignupGET marks the poorly-coded GET signup form that causes
	// referer leaks (§4.1, "unintentional leakage").
	SignupGET bool
	// EmailConfirm requires the emailed activation link (§3.2: 68
	// sites).
	EmailConfirm bool
	// BotDetection marks sites running bot checks (§3.2: 43 sites).
	BotDetection bool
	// CaptchaBreaksUnderShields marks the one site whose CAPTCHA flow
	// breaks when Brave blocks its script (§7.1, nykaa.com).
	CaptchaBreaksUnderShields bool
	// Obstacle removes the site from the crawl funnel.
	Obstacle Obstacle
	// Collected lists the PII types the signup form asks for.
	Collected []pii.Type
	// FieldNaming selects the form's input-name scheme: 0 plain
	// ("email"), 1 prefixed ("user_email"), 2 camelCase
	// ("loginEmail"), 3 exotic ("field_a7" — unmatchable by automated
	// form-filling heuristics, §3.2's motivation for manual
	// collection).
	FieldNaming int
	// Tags are the embedded third parties.
	Tags []Tag
	// CNAMEs maps this site's cloaked subdomains to tracker targets.
	CNAMEs map[string]string
	// Policy is the site's Table 3 disclosure class.
	Policy PolicyClass
	// MarketingMails is how many marketing e-mails the site sends the
	// persona after sign-up (inbox), SpamMails the spam-folder count
	// (§4.2.3).
	MarketingMails int
	SpamMails      int
}

// Host returns the site's canonical web host.
func (s *Site) Host() string { return "www." + s.Domain }

// BaseURL returns the homepage URL.
func (s *Site) BaseURL() string { return "https://" + s.Host() + "/" }

// PageURL builds a URL for a site page path.
func (s *Site) PageURL(path string) string { return "https://" + s.Host() + path }

// SignupActionURL is where the signup form submits, including the PII
// query for GET forms.
func (s *Site) SignupActionURL(p pii.Persona) string {
	if !s.SignupGET {
		return s.PageURL("/account/signup")
	}
	q := url.Values{}
	for _, f := range s.FormFields(p) {
		q.Set(f.Name, f.Value)
	}
	return s.PageURL("/account/signup") + "?" + q.Encode()
}

// FormField is one signup-form input.
type FormField struct {
	Name  string
	Value string
}

// fieldNameSchemes maps each PII type to its input name under the four
// naming schemes. A human operator reads labels, so every scheme is
// fillable manually; scheme 3 defeats keyword-based automation.
var fieldNameSchemes = map[pii.Type][4]string{
	pii.TypeEmail:    {"email", "user_email", "loginEmail", "field_a7"},
	pii.TypeUsername: {"username", "user_name", "userName", "field_b2"},
	pii.TypeName:     {"name", "full_name", "fullName", "field_c9"},
	pii.TypePhone:    {"phone", "phone_number", "phoneNumber", "field_d4"},
	pii.TypeDOB:      {"dob", "birth_date", "birthDate", "field_e1"},
	pii.TypeGender:   {"gender", "user_gender", "genderSelect", "field_f6"},
	pii.TypeJob:      {"job_title", "occupation", "jobTitle", "field_g3"},
	pii.TypeAddress:  {"address", "street_address", "postalAddress", "field_h8"},
}

// FieldName returns the form-input name for a PII type under the site's
// naming scheme.
func (s *Site) FieldName(t pii.Type) string {
	scheme := s.FieldNaming
	if scheme < 0 || scheme > 3 {
		scheme = 0
	}
	names, ok := fieldNameSchemes[t]
	if !ok {
		return string(t)
	}
	return names[scheme]
}

// RequiredInputs lists the signup form's input names (including the
// password), the automated crawler's matching target.
func (s *Site) RequiredInputs() []string {
	out := make([]string, 0, len(s.Collected)+1)
	for _, t := range s.Collected {
		out = append(out, s.FieldName(t))
	}
	return append(out, "password")
}

// FormFields returns the signup form's fields filled with the persona's
// values, in a deterministic order.
func (s *Site) FormFields(p pii.Persona) []FormField {
	var out []FormField
	for _, t := range s.Collected {
		name := s.FieldName(t)
		switch t {
		case pii.TypeEmail:
			out = append(out, FormField{name, p.Email})
		case pii.TypeUsername:
			out = append(out, FormField{name, p.Username})
		case pii.TypeName:
			out = append(out, FormField{name, p.FullName()})
		case pii.TypePhone:
			out = append(out, FormField{name, p.Phone})
		case pii.TypeDOB:
			out = append(out, FormField{name, p.DOB})
		case pii.TypeGender:
			out = append(out, FormField{name, p.Gender})
		case pii.TypeJob:
			out = append(out, FormField{name, p.JobTitle})
		case pii.TypeAddress:
			out = append(out, FormField{name, p.Street + ", " + p.City + " " + p.Postal})
		}
	}
	out = append(out, FormField{"password", "correct-horse-battery"})
	return out
}

// TagsOn returns the tags present on a page: all tags on auth pages, only
// OnSubpages tags elsewhere.
func (s *Site) TagsOn(subpage bool) []Tag {
	if !subpage {
		return s.Tags
	}
	var out []Tag
	for _, t := range s.Tags {
		if t.OnSubpages {
			out = append(out, t)
		}
	}
	return out
}

// leakValue renders one PII value through an action's chain.
func leakValue(p pii.Persona, typ pii.Type, chain []string) string {
	v := p.FieldValue(typ)
	if typ == pii.TypeName {
		v = p.FullName()
	}
	return string(pii.MustApplyChain(v, chain))
}

// paramFor derives the wire parameter carrying a given PII type: the
// action's main Param carries email (or the single leaked type), and
// secondary types get stable derived names.
func paramFor(action LeakAction, typ pii.Type) string {
	if len(action.PII) == 1 || typ == pii.TypeEmail {
		return action.Param
	}
	switch typ {
	case pii.TypeName:
		return action.Param + "_n"
	case pii.TypeUsername:
		return action.Param + "_u"
	default:
		return action.Param + "_" + string(typ)
	}
}

// LeakRequest constructs the HTTP request a tag's action emits for an
// auth event on pageURL. Cookie-channel actions return the cookie to set
// instead of carrying the data in the request (the jar attaches it).
func (t *Tag) LeakRequest(action LeakAction, pageURL string, p pii.Persona) (httpmodel.Request, []httpmodel.Cookie) {
	switch action.Method {
	case httpmodel.SurfaceURI:
		q := url.Values{}
		for _, typ := range action.PII {
			q.Set(paramFor(action, typ), leakValue(p, typ, action.Chain))
		}
		q.Set("v", "2")
		return httpmodel.Request{
			Method:    "GET",
			URL:       "https://" + t.Host + strings.TrimSuffix(t.Path, ".js") + "/collect?" + q.Encode(),
			Type:      t.Type,
			Initiator: t.URL(),
		}, nil
	case httpmodel.SurfaceBody:
		if action.JSONBody {
			var sb strings.Builder
			sb.WriteString("{")
			for i, typ := range action.PII {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, "%q:%q", paramFor(action, typ), leakValue(p, typ, action.Chain))
			}
			sb.WriteString(`,"event":"identify"}`)
			return httpmodel.Request{
				Method:    "POST",
				URL:       "https://" + t.Host + strings.TrimSuffix(t.Path, ".js") + "/events",
				Body:      []byte(sb.String()),
				BodyType:  "application/json",
				Type:      blocklist.TypeXHR,
				Initiator: t.URL(),
			}, nil
		}
		q := url.Values{}
		for _, typ := range action.PII {
			q.Set(paramFor(action, typ), leakValue(p, typ, action.Chain))
		}
		q.Set("event", "identify")
		return httpmodel.Request{
			Method:    "POST",
			URL:       "https://" + t.Host + strings.TrimSuffix(t.Path, ".js") + "/events",
			Body:      []byte(q.Encode()),
			BodyType:  "application/x-www-form-urlencoded",
			Type:      blocklist.TypeXHR,
			Initiator: t.URL(),
		}, nil
	case httpmodel.SurfaceCookie:
		// The action mints an identifying cookie on the tag's host;
		// the value travels on subsequent requests to that host.
		cookies := make([]httpmodel.Cookie, 0, len(action.PII))
		for _, typ := range action.PII {
			cookies = append(cookies, httpmodel.Cookie{
				Name:   paramFor(action, typ),
				Value:  leakValue(p, typ, action.Chain),
				Domain: t.Host,
			})
		}
		return httpmodel.Request{
			Method:    "GET",
			URL:       "https://" + t.Host + strings.TrimSuffix(t.Path, ".js") + "/b/ss/pageview",
			Type:      blocklist.TypeImage,
			Initiator: t.URL(),
		}, cookies
	default:
		panic(fmt.Sprintf("site: leak action with unsupported method %q", action.Method))
	}
}

// LoadRequest is the tag's benign resource fetch on a page view.
func (t *Tag) LoadRequest(pageURL string) httpmodel.Request {
	return httpmodel.Request{
		Method:    "GET",
		URL:       t.URL(),
		Type:      t.Type,
		Initiator: pageURL,
	}
}
