package site

// Source supplies a ranked site population by index without promising
// anything about how the sites are stored. Len is the population size;
// At(i) returns site i (0-based, rank order). At must be pure: the same
// i yields an identical site every call, regardless of access order,
// subsetting, or which process asks — that property is what lets a
// sharded crawl over a lazily generated universe stay byte-identical to
// an unsharded one. At may materialize a fresh value per call, so
// callers must not rely on pointer identity across calls, and a Source
// must be safe for concurrent At calls.
type Source interface {
	Len() int
	At(i int) *Site
}

// Slice adapts a materialized site slice to a Source. It is the bridge
// for the eager paths: Options.Sites and every deprecated []*Site
// entry point wrap their slice in one of these.
type Slice []*Site

// Len returns the slice length.
func (s Slice) Len() int { return len(s) }

// At returns site i.
func (s Slice) At(i int) *Site { return s[i] }
