package site

import (
	"net/url"
	"strings"
	"testing"

	"piileak/internal/blocklist"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

func testSite() *Site {
	return &Site{
		Domain:    "urbanmarket.com",
		Rank:      120,
		Collected: []pii.Type{pii.TypeEmail, pii.TypeName, pii.TypeGender},
		Policy:    PolicyNotSpecific,
		Tags: []Tag{
			{
				Receiver:   "facebook.com",
				Host:       "www.facebook.com",
				Path:       "/en_US/fbevents.js",
				Type:       blocklist.TypeScript,
				OnSubpages: true,
				Actions: []LeakAction{{
					Method: httpmodel.SurfaceURI,
					Param:  "udff[em]",
					Chain:  []string{"sha256"},
					PII:    []pii.Type{pii.TypeEmail},
				}},
			},
			{
				Receiver: "cdnstatic.net",
				Host:     "cdn.cdnstatic.net",
				Path:     "/lib.js",
				Type:     blocklist.TypeScript,
			},
		},
	}
}

func TestHostAndURLs(t *testing.T) {
	s := testSite()
	if s.Host() != "www.urbanmarket.com" {
		t.Errorf("Host = %q", s.Host())
	}
	if s.BaseURL() != "https://www.urbanmarket.com/" {
		t.Errorf("BaseURL = %q", s.BaseURL())
	}
	if got := s.PageURL("/product/42"); got != "https://www.urbanmarket.com/product/42" {
		t.Errorf("PageURL = %q", got)
	}
}

func TestFormFields(t *testing.T) {
	p := pii.Default()
	s := testSite()
	fields := s.FormFields(p)
	byName := map[string]string{}
	for _, f := range fields {
		byName[f.Name] = f.Value
	}
	if byName["email"] != p.Email {
		t.Errorf("email field = %q", byName["email"])
	}
	if byName["name"] != p.FullName() {
		t.Errorf("name field = %q", byName["name"])
	}
	if byName["gender"] != p.Gender {
		t.Errorf("gender field = %q", byName["gender"])
	}
	if _, ok := byName["password"]; !ok {
		t.Error("no password field")
	}
	if _, ok := byName["phone"]; ok {
		t.Error("uncollected phone field present")
	}
}

func TestSignupActionURLPostVsGet(t *testing.T) {
	p := pii.Default()
	s := testSite()
	if got := s.SignupActionURL(p); strings.Contains(got, "?") {
		t.Errorf("POST form action carries query: %q", got)
	}
	s.SignupGET = true
	got := s.SignupActionURL(p)
	u, err := url.Parse(got)
	if err != nil {
		t.Fatal(err)
	}
	if u.Query().Get("email") != p.Email {
		t.Errorf("GET form action missing email: %q", got)
	}
}

func TestTagsOnSubpage(t *testing.T) {
	s := testSite()
	if got := len(s.TagsOn(false)); got != 2 {
		t.Errorf("auth-page tags = %d, want 2", got)
	}
	sub := s.TagsOn(true)
	if len(sub) != 1 || sub[0].Receiver != "facebook.com" {
		t.Errorf("subpage tags = %+v", sub)
	}
}

func TestLeakRequestURI(t *testing.T) {
	p := pii.Default()
	s := testSite()
	tag := s.Tags[0]
	req, cookies := tag.LeakRequest(tag.Actions[0], s.BaseURL(), p)
	if cookies != nil {
		t.Errorf("URI action returned cookies: %+v", cookies)
	}
	if req.Method != "GET" {
		t.Errorf("method = %s", req.Method)
	}
	u, err := url.Parse(req.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := string(pii.MustApplyChain(p.Email, []string{"sha256"}))
	if got := u.Query().Get("udff[em]"); got != want {
		t.Errorf("udff[em] = %q, want %q", got, want)
	}
	if u.Hostname() != "www.facebook.com" {
		t.Errorf("host = %q", u.Hostname())
	}
	if req.Initiator != tag.URL() {
		t.Errorf("initiator = %q", req.Initiator)
	}
}

func TestLeakRequestPayloadForm(t *testing.T) {
	p := pii.Default()
	action := LeakAction{
		Method: httpmodel.SurfaceBody,
		Param:  "u_hem",
		Chain:  []string{"sha256"},
		PII:    []pii.Type{pii.TypeEmail},
	}
	tag := Tag{Receiver: "snapchat.com", Host: "tr.snapchat.com", Path: "/sc.js", Type: blocklist.TypeScript}
	req, _ := tag.LeakRequest(action, "https://x/", p)
	if req.Method != "POST" || req.BodyType != "application/x-www-form-urlencoded" {
		t.Fatalf("req = %+v", req)
	}
	vs, err := url.ParseQuery(string(req.Body))
	if err != nil {
		t.Fatal(err)
	}
	want := string(pii.MustApplyChain(p.Email, []string{"sha256"}))
	if vs.Get("u_hem") != want {
		t.Errorf("u_hem = %q", vs.Get("u_hem"))
	}
}

func TestLeakRequestPayloadJSON(t *testing.T) {
	p := pii.Default()
	action := LeakAction{
		Method:   httpmodel.SurfaceBody,
		Param:    "data",
		Chain:    []string{"base64"},
		PII:      []pii.Type{pii.TypeEmail},
		JSONBody: true,
	}
	tag := Tag{Receiver: "bluecore.com", Host: "api.bluecore.com", Path: "/bc.js", Type: blocklist.TypeScript}
	req, _ := tag.LeakRequest(action, "https://x/", p)
	if req.BodyType != "application/json" {
		t.Fatalf("body type = %s", req.BodyType)
	}
	params := req.BodyParams()
	found := false
	want := string(pii.MustApplyChain(p.Email, []string{"base64"}))
	for _, pr := range params {
		if pr.Key == "data" && pr.Value == want {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON body params = %+v", params)
	}
}

func TestLeakRequestCookie(t *testing.T) {
	p := pii.Default()
	action := LeakAction{
		Method: httpmodel.SurfaceCookie,
		Param:  "s_vi",
		Chain:  []string{"sha256"},
		PII:    []pii.Type{pii.TypeEmail},
	}
	tag := Tag{Receiver: "omtrdc.net", Host: "smetrics.urbanmarket.com", Path: "/s_code.js", Type: blocklist.TypeScript}
	req, cookies := tag.LeakRequest(action, "https://x/", p)
	if len(cookies) != 1 {
		t.Fatalf("cookies = %+v", cookies)
	}
	want := string(pii.MustApplyChain(p.Email, []string{"sha256"}))
	if cookies[0].Name != "s_vi" || cookies[0].Value != want {
		t.Errorf("cookie = %+v", cookies[0])
	}
	if cookies[0].Domain != "smetrics.urbanmarket.com" {
		t.Errorf("cookie domain = %q", cookies[0].Domain)
	}
	if strings.Contains(req.URL, want) {
		t.Error("cookie-channel request carries the value in the URL")
	}
}

func TestLeakRequestMultiPII(t *testing.T) {
	p := pii.Default()
	action := LeakAction{
		Method: httpmodel.SurfaceURI,
		Param:  "ud",
		Chain:  nil,
		PII:    []pii.Type{pii.TypeEmail, pii.TypeName},
	}
	tag := Tag{Receiver: "t.net", Host: "px.t.net", Path: "/t.js", Type: blocklist.TypeImage}
	req, _ := tag.LeakRequest(action, "https://x/", p)
	u, _ := url.Parse(req.URL)
	if u.Query().Get("ud") != p.Email {
		t.Errorf("ud = %q", u.Query().Get("ud"))
	}
	if u.Query().Get("ud_n") != p.FullName() {
		t.Errorf("ud_n = %q", u.Query().Get("ud_n"))
	}
}

func TestLoadRequest(t *testing.T) {
	s := testSite()
	req := s.Tags[0].LoadRequest(s.BaseURL())
	if req.URL != "https://www.facebook.com/en_US/fbevents.js" {
		t.Errorf("URL = %q", req.URL)
	}
	if req.Initiator != s.BaseURL() {
		t.Errorf("initiator = %q", req.Initiator)
	}
	if req.Type != blocklist.TypeScript {
		t.Errorf("type = %q", req.Type)
	}
}

func TestLeakRequestUnsupportedMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for referer-method action")
		}
	}()
	tag := Tag{Receiver: "t.net", Host: "t.net", Path: "/x.js"}
	tag.LeakRequest(LeakAction{Method: httpmodel.SurfaceReferer}, "https://x/", pii.Default())
}

func TestFieldNamingSchemes(t *testing.T) {
	s := testSite()
	for scheme, want := range map[int]string{0: "email", 1: "user_email", 2: "loginEmail", 3: "field_a7"} {
		s.FieldNaming = scheme
		if got := s.FieldName(pii.TypeEmail); got != want {
			t.Errorf("scheme %d: FieldName(email) = %q, want %q", scheme, got, want)
		}
	}
	// Out-of-range schemes fall back to plain.
	s.FieldNaming = 99
	if got := s.FieldName(pii.TypeEmail); got != "email" {
		t.Errorf("fallback FieldName = %q", got)
	}
}

func TestRequiredInputs(t *testing.T) {
	s := testSite() // collects email, name, gender
	s.FieldNaming = 1
	got := s.RequiredInputs()
	want := []string{"user_email", "full_name", "user_gender", "password"}
	if len(got) != len(want) {
		t.Fatalf("RequiredInputs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RequiredInputs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFormFieldsFollowNamingScheme(t *testing.T) {
	p := pii.Default()
	s := testSite()
	s.FieldNaming = 3
	for _, f := range s.FormFields(p) {
		if f.Name == "email" {
			t.Error("exotic scheme leaked a plain field name")
		}
	}
}
