// Package cliflags is the flag surface the piileak CLIs share: one
// Common struct registers the study-shaping flags (seed, browser,
// fault injection, the crash-only runtime's knobs) and the telemetry
// outputs (-metrics, -trace, -pprof), and turns them into a validated
// piileak.Config, a resolved browser profile, and the RunOption list a
// Study.Run call consumes. Extracting it means every CLI gets the full
// flag set — piirepro gained -site-timeout, -quarantine, -only and the
// rest the day it switched over — and the flags behave identically
// everywhere.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux's profile endpoints
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"piileak"
	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/faultsim"
	"piileak/internal/obs"
	"piileak/internal/pipeline"
	"piileak/internal/resilience"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// Common is the flag set shared by the piileak CLIs. Register binds
// every field to its flag; the zero value of each field is the flag's
// default.
type Common struct {
	// Seed is the ecosystem seed; Small selects the scaled-down web.
	Seed  uint64
	Small bool
	// Browser names the collection profile (see ResolveProfile).
	Browser string
	// Universe extends the study to that many total sites: the
	// calibrated study core stays byte-identical and the rest is a
	// lazily generated ranked tail, derived per site from (seed, rank).
	// 0 runs the study core alone.
	Universe int
	// Workers parallelizes the crawl (and, streamed, detection); 0 is
	// serial.
	Workers int
	// DetectWorkers overrides the detection stage's parallelism; 0
	// follows Workers. Detection scans through per-worker Scanners over
	// one shared engine, so extra detect workers cost scratch buffers,
	// not candidate-set compiles.
	DetectWorkers int
	// Stream fuses crawl+detect and releases captures after detection.
	Stream bool

	// Faults is the fraction of hosts made faulty (0 disables
	// injection); FaultSeed overrides the injection seed (default: the
	// ecosystem seed); Retries caps fetch attempts under faults.
	Faults    float64
	FaultSeed uint64
	Retries   int

	// SiteTimeout is the per-site watchdog budget on the run's clock;
	// QuarantineDir collects diagnostics bundles for panicked sites;
	// QuarantineMax caps the bundle files kept on disk (oldest evicted
	// first, 0 = unbounded); Only restricts the run to a comma-separated
	// site subset.
	SiteTimeout   time.Duration
	QuarantineDir string
	QuarantineMax int
	Only          string

	// Checkpoint persists per-site progress; Resume continues a killed
	// run from that file.
	Checkpoint string
	Resume     bool

	// Shards shards the study into K failure domains; Shard selects one
	// ("i" with -shards, or the self-contained "i/K" form) to run as a
	// single worker; Supervise runs all K under the self-healing
	// supervisor and merges. ShardDir is the shard working directory
	// (plan, checkpoints, results, report). Reexec makes the supervisor
	// run workers as re-execed subprocesses, watched by the
	// StallTimeout checkpoint-growth watchdog; MaxRestarts caps
	// per-shard restarts (0 = default 2, negative = never restart).
	Shards       int
	Shard        string
	Supervise    bool
	ShardDir     string
	Reexec       bool
	StallTimeout time.Duration
	MaxRestarts  int

	// Metrics and Trace name telemetry output files (deterministic
	// metrics JSON, stage-trace JSONL). Setting either attaches an
	// observer to the run. Pprof, when non-empty, serves
	// net/http/pprof on that address for the process's lifetime.
	Metrics string
	Trace   string
	Pprof   string
}

// Register binds the shared flags on fs and returns the struct their
// values land in. Call before fs.Parse.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Uint64Var(&c.Seed, "seed", 2021, "ecosystem seed")
	fs.BoolVar(&c.Small, "small", false, "use the scaled-down ecosystem")
	fs.StringVar(&c.Browser, "browser", "firefox", "collection browser: firefox, chrome, opera, safari, firefox-etp, brave")
	fs.IntVar(&c.Universe, "universe", 0, "extend the study to N total sites with a lazily generated ranked tail (0 = study core only)")
	fs.IntVar(&c.Workers, "workers", 0, "parallel crawl workers (0 = serial)")
	fs.IntVar(&c.DetectWorkers, "detect-workers", 0, "parallel detection workers (0 = follow -workers)")
	fs.BoolVar(&c.Stream, "stream", false, "fuse crawl+detect: stream captures through detection, release records after scanning")
	fs.Float64Var(&c.Faults, "faults", 0, "fraction of hosts made faulty (0 disables fault injection)")
	fs.Uint64Var(&c.FaultSeed, "fault-seed", 0, "fault-injection seed (default: the ecosystem seed)")
	fs.IntVar(&c.Retries, "retries", 0, "max fetch attempts per request under faults (default 4)")
	fs.DurationVar(&c.SiteTimeout, "site-timeout", 0, "per-site watchdog budget on the run's clock (0 disables)")
	fs.StringVar(&c.QuarantineDir, "quarantine", "", "directory collecting diagnostics for panicked sites")
	fs.IntVar(&c.QuarantineMax, "quarantine-max", 0, "max quarantine bundle files kept on disk; oldest evicted first, recorded in the manifest (0 = unbounded)")
	fs.StringVar(&c.Only, "only", "", "comma-separated site domains to crawl (e.g. re-running quarantined sites)")
	fs.StringVar(&c.Checkpoint, "checkpoint", "", "write per-site progress to this file")
	fs.BoolVar(&c.Resume, "resume", false, "resume a previous run from -checkpoint")
	fs.IntVar(&c.Shards, "shards", 0, "shard the study into K independent failure domains (0 = unsharded)")
	fs.StringVar(&c.Shard, "shard", "", "run one shard worker: index i (with -shards), or the self-contained i/K form")
	fs.BoolVar(&c.Supervise, "supervise", false, "run all -shards workers under the self-healing supervisor and merge")
	fs.StringVar(&c.ShardDir, "shard-dir", "", "shard working directory (plan, per-shard checkpoints and results, report)")
	fs.BoolVar(&c.Reexec, "reexec", false, "supervisor runs shard workers as re-execed subprocesses")
	fs.DurationVar(&c.StallTimeout, "stall-timeout", 0, "kill a re-execed worker whose checkpoint stops growing for this long (0 disables)")
	fs.IntVar(&c.MaxRestarts, "max-restarts", 0, "per-shard restart budget (0 = default 2, negative = never restart)")
	fs.StringVar(&c.Metrics, "metrics", "", "write the run's deterministic metrics + manifest JSON to this file")
	fs.StringVar(&c.Trace, "trace", "", "write the run's stage-trace JSONL to this file")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return c
}

// Validate rejects contradictory flag combinations up front, before
// any ecosystem generation happens.
func (c *Common) Validate() error {
	if c.Faults < 0 || c.Faults > 1 {
		return fmt.Errorf("-faults %v out of range [0, 1]", c.Faults)
	}
	if c.QuarantineMax < 0 {
		return fmt.Errorf("-quarantine-max %d is negative", c.QuarantineMax)
	}
	if c.QuarantineMax > 0 && c.QuarantineDir == "" {
		return fmt.Errorf("-quarantine-max needs -quarantine")
	}
	if c.DetectWorkers < 0 {
		return fmt.Errorf("-detect-workers %d is negative", c.DetectWorkers)
	}
	if c.Universe < 0 {
		return fmt.Errorf("-universe %d is negative", c.Universe)
	}
	if c.Universe > 0 {
		if core := c.StudyConfig().Ecosystem.ShoppingSites; c.Universe < core {
			return fmt.Errorf("-universe %d is smaller than the %d-site study core", c.Universe, core)
		}
		if c.Only != "" {
			return fmt.Errorf("-universe and -only are contradictory: -only selects from the study core")
		}
	}
	// Sharded runs keep their checkpoints under -shard-dir, so -resume
	// stands alone there; everywhere else it needs -checkpoint.
	if c.Resume && c.Checkpoint == "" && !c.Supervise && c.Shard == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	return c.validateShards()
}

// validateShards enforces the sharded mode's flag algebra: every
// contradictory combination is a named error here instead of a
// confusing failure mid-run.
func (c *Common) validateShards() error {
	if c.Shards < 0 {
		return fmt.Errorf("-shards %d is negative", c.Shards)
	}
	shard, shards, isWorker, err := c.shardCoords()
	if err != nil {
		return err
	}
	if c.Supervise && isWorker {
		return fmt.Errorf("-supervise and -shard are exclusive: supervise the study or be one worker of it")
	}
	if c.Supervise && c.Shards == 0 {
		return fmt.Errorf("-supervise requires -shards")
	}
	if c.Shards > 0 && !c.Supervise && !isWorker {
		return fmt.Errorf("-shards %d needs a mode: -supervise to run them all, or -shard i to run one worker", c.Shards)
	}
	sharded := c.Supervise || isWorker
	if !sharded {
		if c.ShardDir != "" {
			return fmt.Errorf("-shard-dir is only meaningful with -shards")
		}
		if c.Reexec || c.StallTimeout != 0 || c.MaxRestarts != 0 {
			return fmt.Errorf("-reexec, -stall-timeout and -max-restarts are only meaningful with -supervise")
		}
		return nil
	}
	if c.ShardDir == "" {
		return fmt.Errorf("sharded runs need -shard-dir for the plan, checkpoints and results")
	}
	if c.Only != "" {
		return fmt.Errorf("-shards and -only are contradictory: the shard plan partitions the full site universe")
	}
	if c.StallTimeout < 0 {
		return fmt.Errorf("-stall-timeout %v is negative", c.StallTimeout)
	}
	if c.Supervise {
		if c.Checkpoint != "" {
			return fmt.Errorf("-supervise owns each shard's checkpoint under -shard-dir; drop -checkpoint")
		}
		if c.StallTimeout > 0 && !c.Reexec {
			return fmt.Errorf("-stall-timeout watches re-execed workers; add -reexec (in-process workers use -site-timeout)")
		}
		return nil
	}
	// Worker mode: a custom -checkpoint must not point a shard at a
	// checkpoint from a different scope. Peek at the header — a file
	// that exists with the wrong (or no) shard label would be refused
	// at open time anyway, but failing at flag validation names the
	// actual mistake.
	if c.Reexec || c.StallTimeout != 0 || c.MaxRestarts != 0 {
		return fmt.Errorf("-reexec, -stall-timeout and -max-restarts are supervisor flags; a -shard worker does not take them")
	}
	if c.Resume && c.Checkpoint != "" {
		label, found, err := crawler.CheckpointShard(c.Checkpoint)
		if err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
		want := fmt.Sprintf("%d/%d", shard, shards)
		if found && label == "" {
			return fmt.Errorf("-resume: %s is an unsharded run's checkpoint; shard %s cannot resume it", c.Checkpoint, want)
		}
		if found && label != want {
			return fmt.Errorf("-resume: %s belongs to shard %s, not %s", c.Checkpoint, label, want)
		}
	}
	return nil
}

// shardCoords parses the -shard/-shards pair. The -shard flag accepts
// a bare index (scoped by -shards) or the self-contained "i/K" form; if
// both are given the K values must agree.
func (c *Common) shardCoords() (shard, shards int, ok bool, err error) {
	if c.Shard == "" {
		return 0, 0, false, nil
	}
	spec := c.Shard
	if i, k, found := strings.Cut(spec, "/"); found {
		shard, err = strconv.Atoi(strings.TrimSpace(i))
		if err == nil {
			shards, err = strconv.Atoi(strings.TrimSpace(k))
		}
		if err != nil {
			return 0, 0, false, fmt.Errorf("-shard %q: want i/K (e.g. 2/8)", spec)
		}
		if c.Shards > 0 && shards != c.Shards {
			return 0, 0, false, fmt.Errorf("-shard %s disagrees with -shards %d", spec, c.Shards)
		}
	} else {
		shard, err = strconv.Atoi(strings.TrimSpace(spec))
		if err != nil {
			return 0, 0, false, fmt.Errorf("-shard %q: want an index or i/K", spec)
		}
		if c.Shards == 0 {
			return 0, 0, false, fmt.Errorf("-shard %s needs -shards K (or use the i/K form)", spec)
		}
		shards = c.Shards
	}
	if shards < 1 {
		return 0, 0, false, fmt.Errorf("-shard %s: shard count %d must be >= 1", spec, shards)
	}
	if shard < 0 || shard >= shards {
		return 0, 0, false, fmt.Errorf("-shard %s: index %d out of range [0, %d)", spec, shard, shards)
	}
	return shard, shards, true, nil
}

// ShardCoords resolves the validated -shard worker coordinates;
// ok is false when the run is not a shard worker.
func (c *Common) ShardCoords() (shard, shards int, ok bool) {
	shard, shards, ok, err := c.shardCoords()
	if err != nil {
		return 0, 0, false
	}
	return shard, shards, ok
}

// ShardWorkerArgs builds the argv (minus argv[0]) that re-execs this
// run as the given shard's worker: the study-shaping flags replicated,
// the shard coordinates in self-contained i/K form, and none of the
// supervisor-only flags. The supervisor's subprocess mode feeds this to
// its own executable.
func (c *Common) ShardWorkerArgs(shard int) []string {
	args := []string{
		"-seed", strconv.FormatUint(c.Seed, 10),
		"-browser", c.Browser,
		"-shard", fmt.Sprintf("%d/%d", shard, c.Shards),
		"-shard-dir", c.ShardDir,
	}
	if c.Small {
		args = append(args, "-small")
	}
	if c.Universe > 0 {
		args = append(args, "-universe", strconv.Itoa(c.Universe))
	}
	if c.Workers != 0 {
		args = append(args, "-workers", strconv.Itoa(c.Workers))
	}
	if c.DetectWorkers != 0 {
		args = append(args, "-detect-workers", strconv.Itoa(c.DetectWorkers))
	}
	if c.Faults > 0 {
		args = append(args, "-faults", strconv.FormatFloat(c.Faults, 'g', -1, 64))
	}
	if c.FaultSeed != 0 {
		args = append(args, "-fault-seed", strconv.FormatUint(c.FaultSeed, 10))
	}
	if c.Retries > 0 {
		args = append(args, "-retries", strconv.Itoa(c.Retries))
	}
	if c.SiteTimeout > 0 {
		args = append(args, "-site-timeout", c.SiteTimeout.String())
	}
	if c.QuarantineDir != "" {
		args = append(args, "-quarantine", c.QuarantineDir)
	}
	if c.QuarantineMax > 0 {
		args = append(args, "-quarantine-max", strconv.Itoa(c.QuarantineMax))
	}
	return args
}

// StudyConfig builds the study configuration the flags describe. The
// browser profile is left at the default; resolve it against the
// generated ecosystem with ResolveProfile (the shielded profiles need
// the ecosystem's Brave shield list).
func (c *Common) StudyConfig() piileak.Config {
	cfg := piileak.DefaultConfig()
	if c.Small {
		cfg = piileak.SmallConfig(c.Seed)
	}
	cfg.Ecosystem.Seed = c.Seed
	cfg.Ecosystem.UniverseSize = c.Universe
	cfg.Workers = c.Workers
	if c.Faults > 0 {
		cfg.Ecosystem.Faults = &faultsim.Config{Seed: c.FaultSeed, Rate: c.Faults}
	}
	return cfg
}

// EcosystemConfig is StudyConfig's webgen slice, for tools that crawl
// without building a Study.
func (c *Common) EcosystemConfig() webgen.Config {
	return c.StudyConfig().Ecosystem
}

// ResolveProfile maps the -browser name to its profile. The shielded
// profiles (firefox-etp, brave) are parameterized by the ecosystem's
// generated shield list, which is why this takes eco rather than
// running at flag-parse time.
func (c *Common) ResolveProfile(eco *webgen.Ecosystem) (browser.Profile, error) {
	return ResolveBrowser(c.Browser, eco)
}

// ResolveBrowser maps a collection-browser name to its profile — the
// single vocabulary every entry point (CLI flags, piiserve job specs)
// resolves through, so the accepted names cannot drift apart.
func ResolveBrowser(name string, eco *webgen.Ecosystem) (browser.Profile, error) {
	switch name {
	case "firefox":
		return browser.Firefox88(), nil
	case "chrome":
		return browser.Chrome93(), nil
	case "opera":
		return browser.Opera79(), nil
	case "safari":
		return browser.Safari14(), nil
	case "firefox-etp":
		return browser.Firefox88ETP(eco.BraveShields), nil
	case "brave":
		return browser.Brave129(eco.BraveShields), nil
	default:
		return browser.Profile{}, fmt.Errorf("unknown browser %q", name)
	}
}

// Runtime is the per-run state the flags materialize: the telemetry
// observer (when -metrics or -trace asked for one), the quarantine
// store and the -only site subset.
type Runtime struct {
	Observer   *obs.Run
	Quarantine *crawler.Quarantine
	Sites      []*site.Site
}

// Runtime builds the run state against the generated ecosystem.
func (c *Common) Runtime(eco *webgen.Ecosystem) (*Runtime, error) {
	rt := &Runtime{}
	if c.Metrics != "" || c.Trace != "" {
		rt.Observer = obs.NewRun(nil)
	}
	if c.QuarantineDir != "" {
		q, err := crawler.NewQuarantine(c.QuarantineDir)
		if err != nil {
			return nil, err
		}
		q.SetLimit(c.QuarantineMax)
		rt.Quarantine = q
	}
	if c.Only != "" {
		sites, err := SelectSites(eco, c.Only)
		if err != nil {
			return nil, err
		}
		rt.Sites = sites
	}
	return rt, nil
}

// RunOptions assembles the Study.Run option list the flags describe.
// progress, when non-nil, receives pipeline events (see
// ProgressPrinter); prog names the CLI for the resume banner.
func (c *Common) RunOptions(rt *Runtime, prog string, progress func(pipeline.Event)) []piileak.RunOption {
	var opts []piileak.RunOption
	if c.Stream {
		opts = append(opts, piileak.WithStream())
	}
	if c.DetectWorkers > 0 {
		opts = append(opts, piileak.WithWorkers(c.Workers, c.DetectWorkers))
	}
	if c.SiteTimeout > 0 {
		opts = append(opts, piileak.WithSiteTimeout(c.SiteTimeout))
	}
	if c.Retries > 0 {
		opts = append(opts, piileak.WithRetryPolicy(resilience.Policy{MaxAttempts: c.Retries}))
	}
	if rt.Quarantine != nil {
		opts = append(opts, piileak.WithQuarantine(rt.Quarantine))
	}
	if rt.Sites != nil {
		opts = append(opts, piileak.WithSites(rt.Sites))
	}
	if c.Checkpoint != "" {
		opts = append(opts, piileak.WithCheckpoint(c.Checkpoint))
	}
	if c.Resume {
		opts = append(opts, piileak.WithResume(ResumeBanner(prog, os.Stderr)))
	}
	if rt.Observer != nil {
		opts = append(opts, piileak.WithObserver(rt.Observer))
	}
	if progress != nil {
		opts = append(opts, piileak.WithProgress(progress))
	}
	return opts
}

// EffectiveDetectWorkers resolves the detection stage's parallelism:
// the -detect-workers value when given, else the crawl worker count.
func (c *Common) EffectiveDetectWorkers() int {
	if c.DetectWorkers > 0 {
		return c.DetectWorkers
	}
	return c.Workers
}

// CrawlerOptions assembles the raw crawler options for tools that run
// the crawl stage alone (piicrawl's dataset mode). OnResume is only
// set when -resume is given — Options.Validate rejects a resume
// callback on a non-resuming run.
func (c *Common) CrawlerOptions(rt *Runtime, prog string) crawler.Options {
	copts := crawler.Options{
		Workers:        c.Workers,
		Policy:         resilience.Policy{MaxAttempts: c.Retries},
		SiteTimeout:    c.SiteTimeout,
		Quarantine:     rt.Quarantine,
		Sites:          rt.Sites,
		CheckpointPath: c.Checkpoint,
		Resume:         c.Resume,
		Obs:            rt.Observer,
	}
	if c.Resume {
		copts.OnResume = ResumeBanner(prog, os.Stderr)
	}
	return copts
}

// SelectSites resolves a -only domain list against the ecosystem,
// preserving ecosystem site order.
func SelectSites(eco *webgen.Ecosystem, only string) ([]*site.Site, error) {
	want := map[string]bool{}
	for _, d := range strings.Split(only, ",") {
		if d = strings.TrimSpace(d); d != "" {
			want[d] = true
		}
	}
	var sel []*site.Site
	for _, s := range eco.Sites {
		if want[s.Domain] {
			sel = append(sel, s)
			delete(want, s.Domain)
		}
	}
	if len(want) > 0 {
		var missing []string
		for d := range want {
			missing = append(missing, d)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("-only: unknown site domains: %s", strings.Join(missing, ", "))
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("-only: no sites selected")
	}
	return sel, nil
}

// WriteTelemetry flushes the observer's outputs to the -metrics and
// -trace files. A nil observer (neither flag given) writes nothing.
func (c *Common) WriteTelemetry(rt *Runtime) error {
	if rt == nil || rt.Observer == nil {
		return nil
	}
	if c.Metrics != "" {
		if err := writeFile(c.Metrics, rt.Observer.WriteMetrics); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
	}
	if c.Trace != "" {
		if err := writeFile(c.Trace, rt.Observer.WriteTrace); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	return nil
}

// writeFile streams one telemetry artifact to path, surfacing the
// Close error (the write is the point of the file).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //lint:allow closecheck the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// StartPprof serves net/http/pprof's default-mux endpoints on the
// -pprof address for the process's lifetime. It binds synchronously —
// a bad address fails here, not in a goroutine's logs — and never
// returns on the serving path. No-op when the flag is unset.
func (c *Common) StartPprof(prog string) error {
	if c.Pprof == "" {
		return nil
	}
	ln, err := net.Listen("tcp", c.Pprof)
	if err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	fmt.Fprintf(os.Stderr, "%s: pprof on http://%s/debug/pprof/\n", prog, ln.Addr()) //lint:allow piilog a TCP listen address is not persona PII
	//lint:allow goroleak the pprof server serves for the process lifetime by design
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof server: %v\n", prog, err)
		}
	}()
	return nil
}

// ProgressPrinter returns the CLIs' shared progress line: crawl and
// detect counters plus the cumulative leak count, printed every 25
// detections and at the end.
func ProgressPrinter(prog string, w io.Writer) func(pipeline.Event) {
	crawled := 0
	return func(ev pipeline.Event) {
		if ev.Stage == "crawl" {
			crawled = ev.Done
			return
		}
		if ev.Done%25 == 0 || ev.Done == ev.Total {
			fmt.Fprintf(w, "%s: crawl %d/%d  detect %d/%d  leaks %d\n",
				prog, crawled, ev.Total, ev.Done, ev.Total, ev.Leaks)
		}
	}
}

// ResumeBanner returns the resume callback announcing what the
// checkpoint contributed.
func ResumeBanner(prog string, w io.Writer) func(crawler.ResumeSummary) {
	return func(rs crawler.ResumeSummary) {
		fmt.Fprintf(w, "%s: resume: %d sites loaded from checkpoint, %d torn records dropped\n",
			prog, rs.Completed, rs.TornRecords)
	}
}

// InstallSignalHandler wires crash-only shutdown: the first
// SIGINT/SIGTERM cancels the run and bounds the drain on the wall
// clock; a second signal (or a drain overrun) hard-exits 130.
func InstallSignalHandler(prog string, cancel context.CancelFunc) {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintf(os.Stderr, "%s: interrupted: draining workers and flushing the checkpoint (signal again to hard-exit)\n", prog)
		cancel()
		// Shutdown grace is genuinely wall time — a hung worker must
		// not turn Ctrl-C into an indefinite hang. It must also be
		// detached: the caller's ctx is the one we just cancelled.
		//lint:allow ctxflow the grace period outlives the ctx this handler cancels
		grace, stop := context.WithTimeout(context.Background(), 30*time.Second) //lint:allow detrand CLI shutdown grace is wall time by design
		defer stop()
		select {
		case <-sigc:
			fmt.Fprintf(os.Stderr, "%s: second signal: hard exit\n", prog)
		case <-grace.Done():
			fmt.Fprintf(os.Stderr, "%s: drain exceeded 30s grace: hard exit\n", prog)
		}
		os.Exit(130)
	}()
}

// ExitInterrupted reports a cancelled run. With a checkpoint the exit
// is the crash-only success path: progress is on disk and resumable.
func ExitInterrupted(prog, checkpoint string) {
	if checkpoint != "" {
		fmt.Fprintf(os.Stderr, "%s: interrupted: checkpoint %s is valid; continue with -resume -checkpoint %s\n",
			prog, checkpoint, checkpoint)
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "%s: interrupted: no checkpoint, progress lost (use -checkpoint for resumable runs)\n", prog)
	os.Exit(1)
}

// PrintQuarantine lists quarantined sites; the study still succeeded,
// so this is a report, not an error.
func PrintQuarantine(prog string, q *crawler.Quarantine) {
	if q.Len() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %d site(s) quarantined (see %s): %s\n",
		prog, q.Len(), q.ManifestPath(), strings.Join(q.Sites(), ", "))
	fmt.Fprintf(os.Stderr, "%s: re-run them individually with -only %s\n", prog, strings.Join(q.Sites(), ","))
}
