package browser

import (
	"errors"
	"testing"

	"piileak/internal/httpmodel"
)

// failTransport fails delivery to the listed hosts and counts calls.
type failTransport struct {
	fail  map[string]bool
	calls int
}

func (t *failTransport) Fetch(host string) error {
	t.calls++
	if t.fail[host] {
		return errors.New("injected transport failure")
	}
	return nil
}

func TestTransportFailureOnDocumentAbortsVisit(t *testing.T) {
	s := leakySite()
	b := New(Firefox88(), nil)
	tr := &failTransport{fail: map[string]bool{s.Host(): true}}
	b.Transport = tr
	if b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false) {
		t.Fatal("VisitPage succeeded against a dead document host")
	}
	if len(b.Records) != 0 {
		t.Errorf("failed document fetch still recorded %d requests", len(b.Records))
	}
	if b.FailedFetches != 1 {
		t.Errorf("FailedFetches = %d, want 1", b.FailedFetches)
	}
	if tr.calls != 1 {
		t.Errorf("transport consulted %d times, want 1 (no subresources after a dead document)", tr.calls)
	}
}

func TestTransportFailureOnTagSkipsOnlyThatRequest(t *testing.T) {
	s := leakySite()
	b := New(Firefox88(), nil)
	b.Transport = &failTransport{fail: map[string]bool{"www.facebook.com": true}}
	if !b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false) {
		t.Fatal("document fetch failed with a healthy site host")
	}
	if len(b.Records) == 0 {
		t.Fatal("no records despite a successful visit")
	}
	for _, r := range b.Records {
		if r.Request.Host() == "www.facebook.com" {
			t.Errorf("undeliverable host recorded: %s", r.Request.URL)
		}
	}
	if b.FailedFetches != 1 {
		t.Errorf("FailedFetches = %d, want 1", b.FailedFetches)
	}
}

func TestNilTransportDeliversEverything(t *testing.T) {
	s := leakySite()
	b := New(Firefox88(), nil)
	if !b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false) {
		t.Fatal("nil-transport visit failed")
	}
	if b.FailedFetches != 0 {
		t.Errorf("FailedFetches = %d without a transport", b.FailedFetches)
	}
}

func TestResetClearsTransportState(t *testing.T) {
	b := New(Firefox88(), nil)
	b.Transport = &failTransport{}
	b.FailedFetches = 7
	b.Reset()
	if b.Transport != nil {
		t.Error("Reset kept the transport")
	}
	if b.FailedFetches != 0 {
		t.Error("Reset kept FailedFetches")
	}
}
