package browser

import (
	"strings"
	"testing"

	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/site"
)

func leakySite() *site.Site {
	return &site.Site{
		Domain:    "urbanmarket.com",
		Collected: []pii.Type{pii.TypeEmail, pii.TypeName},
		Tags: []site.Tag{
			{
				Receiver: "facebook.com", Host: "www.facebook.com",
				Path: "/en_US/fbevents.js", Type: httpmodel.TypeScript, OnSubpages: true,
				Actions: []site.LeakAction{{
					Method: httpmodel.SurfaceURI, Param: "udff[em]",
					Chain: []string{"sha256"}, PII: []pii.Type{pii.TypeEmail},
				}},
			},
			{
				Receiver: "jscdn-static.net", Host: "cdn.jscdn-static.net",
				Path: "/lib/app.js", Type: httpmodel.TypeScript, OnSubpages: true,
			},
		},
	}
}

func TestVisitPageRecordsDocumentAssetAndTags(t *testing.T) {
	b := New(Firefox88(), nil)
	s := leakySite()
	b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
	if len(b.Records) != 4 { // document + asset + 2 tags
		t.Fatalf("records = %d, want 4", len(b.Records))
	}
	if b.Records[0].Request.Type != httpmodel.TypeDocument {
		t.Error("first record is not the document")
	}
	for _, r := range b.Records[1:] {
		if r.Request.Headers["Referer"] == "" {
			t.Errorf("subresource %s missing referer", r.Request.URL)
		}
	}
}

func TestSubpageOnlyLoadsPersistentTags(t *testing.T) {
	b := New(Firefox88(), nil)
	s := leakySite()
	s.Tags[1].OnSubpages = false
	b.VisitPage(s, s.PageURL("/product/1"), httpmodel.PhaseSubpage, true)
	for _, r := range b.Records {
		if strings.Contains(r.Request.URL, "jscdn-static") {
			t.Error("non-persistent tag loaded on subpage")
		}
	}
}

func TestFireAuthEventEmitsLeak(t *testing.T) {
	b := New(Firefox88(), nil)
	s := leakySite()
	p := pii.Default()
	b.FireAuthEvent(s, s.BaseURL(), httpmodel.PhaseSignup, false, p, 1)
	if len(b.Records) != 1 {
		t.Fatalf("records = %d, want 1 leak", len(b.Records))
	}
	want := string(pii.MustApplyChain(p.Email, []string{"sha256"}))
	if !strings.Contains(b.Records[0].Request.URL, want) {
		t.Error("leak request does not carry the hashed email")
	}
	// times=2 doubles the emission.
	b.Reset()
	b.FireAuthEvent(s, s.BaseURL(), httpmodel.PhaseSubpage, false, p, 2)
	if len(b.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(b.Records))
	}
}

func TestBraveShieldsBlockReceiver(t *testing.T) {
	shields := map[string]bool{"facebook.com": true}
	b := New(Brave129(shields), nil)
	s := leakySite()
	b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
	for _, r := range b.Records {
		if strings.Contains(r.Request.URL, "facebook") {
			t.Error("shielded request went through")
		}
	}
	if b.Blocked["facebook.com"] == 0 {
		t.Error("block not counted")
	}
	// The benign CDN is not shielded.
	found := false
	for _, r := range b.Records {
		if strings.Contains(r.Request.URL, "jscdn-static") {
			found = true
		}
	}
	if !found {
		t.Error("unshielded tag was blocked")
	}
}

func TestBraveUncloaksCNAME(t *testing.T) {
	zone := dnssim.NewZone()
	zone.AddCNAME("smetrics.urbanmarket.com", "urbanmarket.sc.omtrdc.net")
	shields := map[string]bool{"omtrdc.net": true}
	b := New(Brave129(shields), zone)

	req := httpmodel.Request{Method: "GET", URL: "https://smetrics.urbanmarket.com/b/ss/pageview", Type: httpmodel.TypeImage}
	ok := b.Do(req, "https://www.urbanmarket.com/", httpmodel.PhaseReload, "", httpmodel.Response{})
	if ok {
		t.Error("cloaked request passed Brave shields")
	}
	if b.Blocked["omtrdc.net"] == 0 {
		t.Error("uncloaked block not attributed to omtrdc.net")
	}

	// A non-uncloaking profile with the same shields lets it through.
	p := Brave129(shields)
	p.UncloakCNAME = false
	b2 := New(p, zone)
	if ok := b2.Do(req, "https://www.urbanmarket.com/", httpmodel.PhaseReload, "", httpmodel.Response{}); !ok {
		t.Error("shields matched a first-party host without uncloaking")
	}
}

func TestThirdPartyCookiePolicy(t *testing.T) {
	tpCookie := httpmodel.Cookie{Name: "uid", Value: "x", Domain: "tracker.net"}
	req := httpmodel.Request{Method: "GET", URL: "https://pixel.tracker.net/p", Type: httpmodel.TypeImage}
	page := "https://www.shop.com/"

	for _, tc := range []struct {
		name    string
		profile Profile
		want    int // cookies attached
	}{
		{"vanilla chrome sends", Chrome93(), 1},
		{"safari ITP strips", Safari14(), 0},
		{"firefox vanilla sends", Firefox88(), 1},
		{"firefox ETP strips known tracker", Firefox88ETP(map[string]bool{"tracker.net": true}), 0},
		{"firefox ETP keeps unknown", Firefox88ETP(map[string]bool{"other.net": true}), 1},
	} {
		b := New(tc.profile, nil)
		b.SetCookie(tpCookie)
		b.Do(req, page, httpmodel.PhaseHomepage, "", httpmodel.Response{})
		got := len(b.Records[0].Request.Cookies)
		if got != tc.want {
			t.Errorf("%s: %d cookies attached, want %d", tc.name, got, tc.want)
		}
	}
}

func TestFirstPartyCookiesAlwaysSent(t *testing.T) {
	// The cloaked-cookie channel: a first-party subdomain cookie is
	// attached even under ITP/Brave (what makes CNAME cloaking work).
	c := httpmodel.Cookie{Name: "s_ecid", Value: "hash", Domain: "smetrics.shop.com"}
	req := httpmodel.Request{Method: "GET", URL: "https://smetrics.shop.com/b/ss/pv", Type: httpmodel.TypeImage}
	for _, profile := range []Profile{Chrome93(), Safari14(), Firefox88ETP(map[string]bool{"omtrdc.net": true})} {
		b := New(profile, nil)
		b.SetCookie(c)
		b.Do(req, "https://www.shop.com/", httpmodel.PhaseReload, "", httpmodel.Response{})
		if len(b.Records[0].Request.Cookies) != 1 {
			t.Errorf("%s: first-party cookie stripped", profile.Name)
		}
	}
}

func TestSetCookieRespectsPolicy(t *testing.T) {
	resp := httpmodel.Response{SetCookies: []httpmodel.Cookie{{Name: "tid", Value: "1", Domain: "tracker.net"}}}
	req := httpmodel.Request{Method: "GET", URL: "https://pixel.tracker.net/p", Type: httpmodel.TypeImage}

	b := New(Safari14(), nil)
	b.Do(req, "https://www.shop.com/", httpmodel.PhaseHomepage, "", resp)
	b.Do(req, "https://www.shop.com/", httpmodel.PhaseHomepage, "", httpmodel.Response{})
	if len(b.Records[1].Request.Cookies) != 0 {
		t.Error("ITP stored a third-party cookie")
	}

	b2 := New(Chrome93(), nil)
	b2.Do(req, "https://www.shop.com/", httpmodel.PhaseHomepage, "", resp)
	b2.Do(req, "https://www.shop.com/", httpmodel.PhaseHomepage, "", httpmodel.Response{})
	if len(b2.Records[1].Request.Cookies) != 1 {
		t.Error("Chrome dropped a storable cookie")
	}
}

func TestRefererPolicyCrossOrigin(t *testing.T) {
	// Default policy: cross-origin subresources see only the origin.
	s := leakySite()
	pageWithQuery := s.PageURL("/account/signup?email=secret%40x.com")
	got := refererFrom(s, pageWithQuery, "www.facebook.com")
	if strings.Contains(got, "secret") {
		t.Errorf("cross-origin referer leaked the query: %q", got)
	}
	// Same-origin gets the full URL.
	got = refererFrom(s, pageWithQuery, s.Host())
	if !strings.Contains(got, "secret") {
		t.Errorf("same-origin referer trimmed: %q", got)
	}
	// GET-form (unsafe-url) sites leak cross-origin.
	s.SignupGET = true
	got = refererFrom(s, pageWithQuery, "www.facebook.com")
	if !strings.Contains(got, "secret") {
		t.Errorf("unsafe-url referer trimmed: %q", got)
	}
}

func TestSubmitFormGETvsPOST(t *testing.T) {
	b := New(Firefox88(), nil)
	s := leakySite()
	p := pii.Default()

	action := s.SignupActionURL(p) // POST form
	b.SubmitForm(s, action, s.FormFields(p), httpmodel.PhaseSignup, s.BaseURL())
	if b.Records[0].Request.Method != "POST" || len(b.Records[0].Request.Body) == 0 {
		t.Errorf("POST form submission wrong: %+v", b.Records[0].Request)
	}

	s.SignupGET = true
	b.Reset()
	action = s.SignupActionURL(p)
	b.SubmitForm(s, action, s.FormFields(p), httpmodel.PhaseSignup, s.BaseURL())
	if b.Records[0].Request.Method != "GET" {
		t.Error("GET form submitted as POST")
	}
	if !strings.Contains(b.Records[0].Request.URL, "email=") {
		t.Error("GET form URL lacks fields")
	}
	// The session cookie was stored.
	b.Do(httpmodel.Request{Method: "GET", URL: s.BaseURL(), Type: httpmodel.TypeDocument},
		s.BaseURL(), httpmodel.PhaseReload, "", httpmodel.Response{})
	if len(b.Records[1].Request.Cookies) == 0 {
		t.Error("session cookie not persisted")
	}
}

func TestResetClearsState(t *testing.T) {
	b := New(Chrome93(), nil)
	b.SetCookie(httpmodel.Cookie{Name: "x", Value: "1", Domain: "a.com"})
	b.Do(httpmodel.Request{Method: "GET", URL: "https://a.com/"}, "https://a.com/", httpmodel.PhaseHomepage, "", httpmodel.Response{})
	b.Reset()
	if len(b.Records) != 0 || len(b.Blocked) != 0 {
		t.Error("Reset left records")
	}
	b.Do(httpmodel.Request{Method: "GET", URL: "https://a.com/"}, "https://a.com/", httpmodel.PhaseHomepage, "", httpmodel.Response{})
	if len(b.Records[0].Request.Cookies) != 0 {
		t.Error("Reset left cookies")
	}
}
